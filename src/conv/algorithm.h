/**
 * @file
 * The conv::Algorithm interface: one common contract every convolution
 * lowering scheme implements so that all algorithms can be compared on
 * equal footing across both simulators (ROADMAP "Algorithm zoo").
 *
 * An Algorithm bundles five things:
 *   - identity (stable id + canonical name),
 *   - an applicability predicate (stride/dilation/groups restrictions),
 *   - the lowered-matrix geometry (GEMM dims, workspace, duplication),
 *   - a DRAM traffic model (unique bytes each operand class moves),
 *   - a functional execute() proven against tensor::convDirect.
 *
 * The registry is append-only: ids are serialized into memo-cache and
 *  tuned-config-DB keys, so new algorithms append at the end and
 * existing ids never renumber.
 */

#ifndef CFCONV_CONV_ALGORITHM_H
#define CFCONV_CONV_ALGORITHM_H

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "tensor/conv_params.h"
#include "tensor/tensor.h"

namespace cfconv::conv {

using tensor::ConvParams;
using tensor::Tensor;

/**
 * Stable identity of a registered algorithm. Serialized (as its name)
 * into RunRecords and tuned-config-DB entries — append new entries at
 * the end, never reorder.
 */
enum class AlgorithmId {
    ChannelFirst,   ///< implicit im2col, H_F->W_F->C_I column order
    ChannelLast,    ///< implicit im2col, C_I->H_F->W_F column order
    ExplicitIm2col, ///< materialized lowered matrix + GEMM
    Indirect,       ///< indirection-buffer pointer GEMM (Dukhan)
    Smm,            ///< scalar-matrix-multiply, zero packing (SMM-Conv)
};

/** Number of registered algorithm ids. */
inline constexpr int kAlgorithmCount = 5;

/**
 * Lowered-matrix geometry of one algorithm on one layer: the logical
 * GEMM it performs plus the memory-shape consequences of how the
 * lowered operand is (or is not) materialized.
 */
struct LoweredGeometry
{
    Index m = 0; ///< GEMM rows (N * H_O * W_O)
    Index k = 0; ///< GEMM depth as the algorithm schedules it
    Index n = 0; ///< GEMM columns (C_O)

    /** Extra DRAM workspace the algorithm materializes (bytes). Zero
     *  for every implicit scheme; loweredBytes() for explicit. */
    Bytes workspaceBytes = 0;

    /** Side-table metadata (indirection-buffer pointers) in bytes. */
    Bytes metadataBytes = 0;

    /** Input-duplication factor of the lowered operand relative to the
     *  IFMap (Table 1): 1.0 when nothing is duplicated. */
    double duplication = 1.0;
};

/**
 * Unique DRAM bytes each operand class moves for one layer, before any
 * backend-specific efficiency or caching effects. The simulators use
 * their own per-pass models for cycle counts; this is the
 * backend-neutral summary used by reports and tests.
 */
struct Traffic
{
    Bytes inputBytes = 0;    ///< unique IFMap bytes read
    Bytes filterBytes = 0;   ///< filter bytes read
    Bytes outputBytes = 0;   ///< OFMap bytes written
    Bytes workspaceBytes = 0;///< lowered-workspace write + read bytes
    Bytes metadataBytes = 0; ///< indirection-buffer bytes read

    Bytes
    totalBytes() const
    {
        return inputBytes + filterBytes + outputBytes + workspaceBytes +
               metadataBytes;
    }
};

/**
 * One convolution lowering scheme. Implementations are stateless
 * singletons owned by the registry; callers hold `const Algorithm *`
 * and never delete.
 */
class Algorithm
{
  public:
    virtual ~Algorithm() = default;

    /** Stable registry id. */
    virtual AlgorithmId id() const = 0;

    /** Canonical lowercase name, e.g. "channel-first". This is the
     *  spelling used by `algo=` on bench CLIs, variant descriptions,
     *  and tuned-config-DB entries. */
    virtual const char *name() const = 0;

    /** One-line human description for listings. */
    virtual const char *description() const = 0;

    /**
     * Applicability predicate: OK when this algorithm can run @p params
     * with @p groups, INVALID_ARGUMENT (naming algorithm and offending
     * field) otherwise. The default accepts any validated layer.
     */
    virtual Status supports(const ConvParams &params, Index groups) const;

    /** Lowered-matrix geometry on @p params. */
    virtual LoweredGeometry geometry(const ConvParams &params) const = 0;

    /** Backend-neutral unique-DRAM-traffic model on @p params. */
    virtual Traffic traffic(const ConvParams &params) const = 0;

    /**
     * Functional execution: @p input is (N, C_I, H_I, W_I), @p filter
     * is (C_O, C_I, H_F, W_F); returns the (N, C_O, H_O, W_O) OFMap in
     * NCHW layout. Must be bit-identical at any parallel::threads()
     * count and match tensor::convDirect within accumulation-order
     * float tolerance. Callers must check supports() first; executing
     * an unsupported layer is a fatal() user error.
     */
    virtual Tensor execute(const ConvParams &params, const Tensor &input,
                           const Tensor &filter) const = 0;
};

/** The registered algorithm with @p id (never null). */
const Algorithm *findAlgorithm(AlgorithmId id);

/** The registered algorithm named @p name, or nullptr when unknown. */
const Algorithm *findAlgorithm(const std::string &name);

/** All registered algorithms in id order. */
const std::vector<const Algorithm *> &allAlgorithms();

/** Canonical name of @p id (same as findAlgorithm(id)->name()). */
const char *algorithmName(AlgorithmId id);

/** Parse a canonical name; INVALID_ARGUMENT names the offender and
 *  lists the known algorithms when @p name is unknown. */
StatusOr<AlgorithmId> parseAlgorithmName(const std::string &name);

} // namespace cfconv::conv

#endif // CFCONV_CONV_ALGORITHM_H
