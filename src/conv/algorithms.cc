/**
 * @file
 * The registered convolution algorithms: the paper's three lowering
 * schemes (channel-first implicit, channel-last implicit, explicit
 * im2col) plus the two zoo additions from PAPERS.md — IndirectConv
 * (Dukhan, arXiv:1907.02129) and SMM-Conv (Ofir & Ben-Artzi,
 * arXiv:2411.15659). Every execute() is deterministic at any thread
 * count: parallelFor only ever distributes disjoint output rows.
 */

#include "conv/algorithm.h"

#include <vector>

#include "common/parallel.h"
#include "im2col/filter_decomp.h"
#include "im2col/implicit_conv.h"
#include "tensor/im2col_explicit.h"

namespace cfconv::conv {

namespace {

using tensor::ColumnOrder;
using tensor::Matrix;

/** Pointer-size of one indirection-buffer entry (64-bit host). */
constexpr Bytes kPointerBytes = 8;

/**
 * Implicit GEMM over a virtual lowered view in @p order: out row m is
 * sum_k lowered(m, k) * wflat(k, co) without materializing the lowered
 * matrix. Rows are disjoint across parallelFor chunks and each row
 * accumulates serially k-major, so the result is thread-invariant.
 */
Tensor
implicitGemmExecute(const ConvParams &params, const Tensor &input,
                    const Tensor &filter, ColumnOrder order)
{
    const Index m_total = params.gemmM();
    const Index k_total = params.gemmK();
    const Index n_total = params.gemmN();
    const Matrix wflat = tensor::flattenFilter(params, filter, order);
    Matrix out(m_total, n_total);
    parallel::parallelFor(0, m_total, 16, [&](Index begin, Index end) {
        for (Index m = begin; m < end; ++m) {
            for (Index co = 0; co < n_total; ++co) {
                float acc = 0.0f;
                for (Index k = 0; k < k_total; ++k)
                    acc += tensor::loweredElement(params, order, input, m,
                                                  k) *
                           wflat.at(k, co);
                out.at(m, co) = acc;
            }
        }
    });
    return tensor::foldOutput(params, out);
}

/** Shared geometry for the implicit schemes: full logical GEMM, no
 *  workspace, no duplication. */
LoweredGeometry
implicitGeometry(const ConvParams &params)
{
    LoweredGeometry g;
    g.m = params.gemmM();
    g.k = params.gemmK();
    g.n = params.gemmN();
    return g;
}

/** Shared traffic skeleton: unique input union + filter + output. */
Traffic
implicitTraffic(const ConvParams &params)
{
    Traffic t;
    t.inputBytes = im2col::inputUnionBytes(params);
    t.filterBytes = params.filterBytes();
    t.outputBytes = params.outputBytes();
    return t;
}

// ---------------------------------------------------------------------------
// Channel-first implicit im2col (the paper's algorithm, Sec. III).
// ---------------------------------------------------------------------------

class ChannelFirstAlgorithm final : public Algorithm
{
  public:
    AlgorithmId id() const override { return AlgorithmId::ChannelFirst; }
    const char *name() const override { return "channel-first"; }

    const char *
    description() const override
    {
        return "implicit im2col, H_F->W_F->C_I order, decomposed 1x1 "
               "tiles (the paper's algorithm)";
    }

    LoweredGeometry
    geometry(const ConvParams &params) const override
    {
        return implicitGeometry(params);
    }

    Traffic
    traffic(const ConvParams &params) const override
    {
        return implicitTraffic(params);
    }

    Tensor
    execute(const ConvParams &params, const Tensor &input,
            const Tensor &filter) const override
    {
        return im2col::convImplicit(params, input, filter);
    }
};

// ---------------------------------------------------------------------------
// Channel-last implicit im2col (the conventional column order).
// ---------------------------------------------------------------------------

class ChannelLastAlgorithm final : public Algorithm
{
  public:
    AlgorithmId id() const override { return AlgorithmId::ChannelLast; }
    const char *name() const override { return "channel-last"; }

    const char *
    description() const override
    {
        return "implicit im2col, C_I->H_F->W_F order (conventional "
               "sliding-window columns)";
    }

    LoweredGeometry
    geometry(const ConvParams &params) const override
    {
        return implicitGeometry(params);
    }

    Traffic
    traffic(const ConvParams &params) const override
    {
        return implicitTraffic(params);
    }

    Tensor
    execute(const ConvParams &params, const Tensor &input,
            const Tensor &filter) const override
    {
        return implicitGemmExecute(params, input, filter,
                                   ColumnOrder::ChannelLast);
    }
};

// ---------------------------------------------------------------------------
// Explicit im2col: materialized lowered matrix + GEMM (Sec. II-B).
// ---------------------------------------------------------------------------

class ExplicitIm2colAlgorithm final : public Algorithm
{
  public:
    AlgorithmId
    id() const override
    {
        return AlgorithmId::ExplicitIm2col;
    }

    const char *name() const override { return "explicit-im2col"; }

    const char *
    description() const override
    {
        return "materialized lowered matrix + GEMM (the baseline whose "
               "duplication motivates the paper)";
    }

    LoweredGeometry
    geometry(const ConvParams &params) const override
    {
        LoweredGeometry g = implicitGeometry(params);
        g.workspaceBytes = params.loweredBytes();
        const Index in_elems = params.inputElems();
        g.duplication =
            in_elems > 0 ? static_cast<double>(params.loweredElems()) /
                               static_cast<double>(in_elems)
                         : 1.0;
        return g;
    }

    Traffic
    traffic(const ConvParams &params) const override
    {
        Traffic t;
        t.inputBytes = params.inputBytes();
        t.filterBytes = params.filterBytes();
        t.outputBytes = params.outputBytes();
        // The lowered workspace is written by the transform and read
        // back by the GEMM.
        t.workspaceBytes = 2 * params.loweredBytes();
        return t;
    }

    Tensor
    execute(const ConvParams &params, const Tensor &input,
            const Tensor &filter) const override
    {
        return tensor::convExplicitIm2col(params, input, filter,
                                          ColumnOrder::ChannelLast);
    }
};

// ---------------------------------------------------------------------------
// IndirectConv (Dukhan, arXiv:1907.02129): a pointer table of
// M x H_F x W_F entries gathers C_I-deep input rows straight out of the
// IFMap, so nothing is duplicated and striding/dilation only change
// which pointers are materialized. The cost of the scheme is the
// indirection buffer itself: M * H_F * W_F pointers streamed alongside
// the GEMM.
// ---------------------------------------------------------------------------

class IndirectAlgorithm final : public Algorithm
{
  public:
    AlgorithmId id() const override { return AlgorithmId::Indirect; }
    const char *name() const override { return "indirect"; }

    const char *
    description() const override
    {
        return "indirection-buffer pointer GEMM (Dukhan) — no lowered "
               "duplication, streams M*HF*WF pointers";
    }

    LoweredGeometry
    geometry(const ConvParams &params) const override
    {
        LoweredGeometry g = implicitGeometry(params);
        g.metadataBytes = metadataBytes(params);
        return g;
    }

    Traffic
    traffic(const ConvParams &params) const override
    {
        Traffic t = implicitTraffic(params);
        t.metadataBytes = metadataBytes(params);
        return t;
    }

    Tensor
    execute(const ConvParams &params, const Tensor &input,
            const Tensor &filter) const override
    {
        const Index m_total = params.gemmM();
        const Index taps = params.kernelH * params.kernelW;
        const Index ci = params.inChannels;
        const Index co_total = params.outChannels;

        // Materialize the indirection buffer: one (n, ih, iw) entry per
        // (output position, filter tap); padding-halo taps point at the
        // shared zero row (entry.valid == false).
        struct Entry
        {
            Index n, ih, iw;
            bool valid;
        };
        std::vector<Entry> table(
            static_cast<size_t>(m_total * taps));
        for (Index m = 0; m < m_total; ++m) {
            const tensor::RowCoord rc = tensor::rowCoord(params, m);
            for (Index r = 0; r < params.kernelH; ++r) {
                for (Index s = 0; s < params.kernelW; ++s) {
                    const Index ih = rc.oh * params.strideH -
                                     params.padH + r * params.dilationH;
                    const Index iw = rc.ow * params.strideW -
                                     params.padW + s * params.dilationW;
                    Entry &e =
                        table[static_cast<size_t>(m * taps +
                                                  r * params.kernelW + s)];
                    e.n = rc.n;
                    e.ih = ih;
                    e.iw = iw;
                    e.valid = ih >= 0 && ih < params.inH && iw >= 0 &&
                              iw < params.inW;
                }
            }
        }

        // Pointer GEMM: each output row gathers its taps through the
        // table; accumulation is tap-major then channel, matching the
        // channel-first column order.
        Matrix out(m_total, co_total);
        parallel::parallelFor(0, m_total, 16, [&](Index begin,
                                                  Index end) {
            for (Index m = begin; m < end; ++m) {
                for (Index co = 0; co < co_total; ++co) {
                    float acc = 0.0f;
                    for (Index r = 0; r < params.kernelH; ++r) {
                        for (Index s = 0; s < params.kernelW; ++s) {
                            const Entry &e = table[static_cast<size_t>(
                                m * taps + r * params.kernelW + s)];
                            if (!e.valid)
                                continue;
                            for (Index c = 0; c < ci; ++c)
                                acc += input.at(e.n, c, e.ih, e.iw) *
                                       filter.at(co, c, r, s);
                        }
                    }
                    out.at(m, co) = acc;
                }
            }
        });
        return tensor::foldOutput(params, out);
    }

  private:
    static Bytes
    metadataBytes(const ConvParams &params)
    {
        return static_cast<Bytes>(params.gemmM()) *
               static_cast<Bytes>(params.kernelH * params.kernelW) *
               kPointerBytes;
    }
};

// ---------------------------------------------------------------------------
// SMM-Conv (Ofir & Ben-Artzi, arXiv:2411.15659): one scalar-matrix
// multiply per filter tap over contiguous input rows with zero packing
// at the borders — no im2col at all, but only defined for unit stride
// and dilation (the contiguity the scheme exploits).
// ---------------------------------------------------------------------------

class SmmAlgorithm final : public Algorithm
{
  public:
    AlgorithmId id() const override { return AlgorithmId::Smm; }
    const char *name() const override { return "smm"; }

    const char *
    description() const override
    {
        return "scalar-matrix-multiply per filter tap with zero packing "
               "(SMM-Conv); unit stride/dilation only";
    }

    Status
    supports(const ConvParams &params, Index groups) const override
    {
        CFCONV_RETURN_IF_ERROR(Algorithm::supports(params, groups));
        if (params.strideH != 1 || params.strideW != 1)
            return invalidArgumentError(
                "algorithm \"smm\" requires unit stride (got %lldx%lld)",
                static_cast<long long>(params.strideH),
                static_cast<long long>(params.strideW));
        if (params.dilationH != 1 || params.dilationW != 1)
            return invalidArgumentError(
                "algorithm \"smm\" requires unit dilation (got "
                "%lldx%lld)",
                static_cast<long long>(params.dilationH),
                static_cast<long long>(params.dilationW));
        return okStatus();
    }

    LoweredGeometry
    geometry(const ConvParams &params) const override
    {
        return implicitGeometry(params);
    }

    Traffic
    traffic(const ConvParams &params) const override
    {
        return implicitTraffic(params);
    }

    Tensor
    execute(const ConvParams &params, const Tensor &input,
            const Tensor &filter) const override
    {
        const Status ok = supports(params, /*groups=*/1);
        CFCONV_FATAL_IF(!ok.ok(), "SmmConv: %s", ok.message().c_str());

        const Index m_total = params.gemmM();
        const Index co_total = params.outChannels;
        Matrix out(m_total, co_total);
        // One scalar-matrix pass per tap <r, s>; each pass shifts the
        // whole IFMap by (r - pad, s - pad) and accumulates, with the
        // border rows packed as zeros (atPadded). The tap loop is
        // serial and rows are disjoint, so accumulation order per
        // output element is fixed at any thread count.
        for (Index r = 0; r < params.kernelH; ++r) {
            for (Index s = 0; s < params.kernelW; ++s) {
                parallel::parallelFor(0, m_total, 16, [&](Index begin,
                                                          Index end) {
                    for (Index m = begin; m < end; ++m) {
                        const tensor::RowCoord rc =
                            tensor::rowCoord(params, m);
                        const Index ih = rc.oh - params.padH + r;
                        const Index iw = rc.ow - params.padW + s;
                        for (Index co = 0; co < co_total; ++co) {
                            float acc = 0.0f;
                            for (Index c = 0; c < params.inChannels; ++c)
                                acc += input.atPadded(rc.n, c, ih, iw) *
                                       filter.at(co, c, r, s);
                            out.at(m, co) += acc;
                        }
                    }
                });
            }
        }
        return tensor::foldOutput(params, out);
    }
};

} // namespace

Status
Algorithm::supports(const ConvParams &params, Index groups) const
{
    (void)params;
    if (groups < 1)
        return invalidArgumentError(
            "algorithm \"%s\": groups must be >= 1 (got %lld)", name(),
            static_cast<long long>(groups));
    return okStatus();
}

const std::vector<const Algorithm *> &
allAlgorithms()
{
    static const ChannelFirstAlgorithm channel_first;
    static const ChannelLastAlgorithm channel_last;
    static const ExplicitIm2colAlgorithm explicit_im2col;
    static const IndirectAlgorithm indirect;
    static const SmmAlgorithm smm;
    static const std::vector<const Algorithm *> all = {
        &channel_first, &channel_last, &explicit_im2col, &indirect, &smm,
    };
    return all;
}

const Algorithm *
findAlgorithm(AlgorithmId id)
{
    const auto &all = allAlgorithms();
    const auto index = static_cast<size_t>(id);
    CFCONV_ASSERT(index < all.size(), "(unregistered AlgorithmId)");
    return all[index];
}

const Algorithm *
findAlgorithm(const std::string &name)
{
    for (const Algorithm *algo : allAlgorithms())
        if (name == algo->name())
            return algo;
    return nullptr;
}

const char *
algorithmName(AlgorithmId id)
{
    return findAlgorithm(id)->name();
}

StatusOr<AlgorithmId>
parseAlgorithmName(const std::string &name)
{
    if (const Algorithm *algo = findAlgorithm(name))
        return algo->id();
    std::string known;
    for (const Algorithm *algo : allAlgorithms()) {
        if (!known.empty())
            known += ", ";
        known += algo->name();
    }
    return invalidArgumentError("unknown algorithm \"%s\" (known: %s)",
                                name.c_str(), known.c_str());
}

} // namespace cfconv::conv
