/**
 * @file
 * Process-wide memo cache for TpuSim layer results. The benches and
 * examples re-simulate identical layer shapes constantly (ResNet's
 * repeated bottleneck blocks, the Fig 13/14/15 validation grids, model
 * sweeps at a fixed config), and a layer's timing result is a pure
 * function of (ConvParams, TpuConfig, TpuRunOptions) — so each unique
 * shape is paid for once. Shared-mutex protected, safe under the
 * parallel model/sweep runners; hit/miss counters are exported through
 * the common/stats StatGroup machinery. Disable with
 * CFCONV_LAYER_CACHE=0 (results are identical either way).
 */

#ifndef CFCONV_TPUSIM_LAYER_CACHE_H
#define CFCONV_TPUSIM_LAYER_CACHE_H

#include <atomic>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "common/stats.h"
#include "tensor/conv_params.h"
#include "tpusim/tpu_config.h"
#include "tpusim/tpu_sim.h"

namespace cfconv::tpusim {

/**
 * Exact textual cache key for one simulated layer: every field of the
 * params, run options, and core config that the timing result depends
 * on. Full-fidelity keys make hash collisions impossible to observe
 * (equal keys imply equal inputs).
 */
std::string layerCacheKey(const TpuConfig &config,
                          const tensor::ConvParams &params,
                          const TpuRunOptions &options);

/** Cache key for a plain GEMM run. */
std::string gemmCacheKey(const TpuConfig &config, Index m, Index k,
                         Index n, DataType dtype);

/** The process-wide layer-result memo cache. */
class LayerCache
{
  public:
    static LayerCache &instance();

    bool enabled() const { return enabled_.load(); }
    void setEnabled(bool on) { enabled_.store(on); }

    /** @return true and fill @p out on a hit; count the lookup. */
    bool lookup(const std::string &key, TpuLayerResult *out);

    /** Store @p result under @p key (last writer wins; results for a
     *  given key are identical by construction, so races are benign). */
    void insert(const std::string &key, const TpuLayerResult &result);

    /** Drop all entries and reset the counters. */
    void clear();

    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }
    std::uint64_t entries() const;

    /** Hit fraction over all lookups so far (0 when none). */
    double hitRate() const;

    /** Snapshot of the counters as a common/stats StatGroup
     *  ("layer_cache.hits" / "layer_cache.misses" /
     *  "layer_cache.entries"). */
    StatGroup statsSnapshot() const;

  private:
    LayerCache();

    mutable std::shared_mutex mutex_;
    std::unordered_map<std::string, TpuLayerResult> entries_;
    std::atomic<bool> enabled_{true};
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
};

} // namespace cfconv::tpusim

#endif // CFCONV_TPUSIM_LAYER_CACHE_H
