/**
 * @file
 * Process-wide memo cache for TpuSim layer results: the TPU
 * instantiation of the generic common/memo_cache template. A layer's
 * timing result is a pure function of (ConvParams, TpuConfig,
 * TpuRunOptions), so each unique shape is simulated once — ResNet's
 * repeated bottleneck blocks, the Fig 13/14/15 validation grids, and
 * model sweeps at a fixed config all collapse onto cache hits.
 * Disable with CFCONV_LAYER_CACHE=0 (results are identical either
 * way). The GPU counterpart lives in gpusim/kernel_cache.
 */

#ifndef CFCONV_TPUSIM_LAYER_CACHE_H
#define CFCONV_TPUSIM_LAYER_CACHE_H

#include <string>

#include "common/memo_cache.h"
#include "tensor/conv_params.h"
#include "tpusim/tpu_config.h"
#include "tpusim/tpu_sim.h"

namespace cfconv::tpusim {

/**
 * Exact textual cache key for one simulated layer: every field of the
 * params, run options, and core config that the timing result depends
 * on. Full-fidelity keys make hash collisions impossible to observe
 * (equal keys imply equal inputs).
 */
std::string layerCacheKey(const TpuConfig &config,
                          const tensor::ConvParams &params,
                          const TpuRunOptions &options);

/** Cache key for a plain GEMM run. */
std::string gemmCacheKey(const TpuConfig &config, Index m, Index k,
                         Index n, DataType dtype);

/** Field-by-field checksum of a cached timing result (the per-unit
 *  trace rides along uncovered — it is derived data). Entry checksums
 *  let the cache detect corrupted entries (and the `cache.corrupt`
 *  chaos site) and recompute instead of serving damaged figures. */
std::uint64_t layerResultChecksum(const TpuLayerResult &r);

/** The process-wide TPU layer-result memo cache ("layer_cache.hits" /
 *  ".misses" / ".entries" in statsSnapshot()). */
class LayerCache : public MemoCache<TpuLayerResult>
{
  public:
    static LayerCache &instance();

  private:
    LayerCache() : MemoCache<TpuLayerResult>("layer_cache")
    {
        setChecksumFn(&layerResultChecksum);
    }
};

} // namespace cfconv::tpusim

#endif // CFCONV_TPUSIM_LAYER_CACHE_H
