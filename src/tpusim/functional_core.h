/**
 * @file
 * Functional TPU core: wires per-row vector memories, serializers, the
 * skewed address generation, and the cycle-level systolic array into an
 * executable model of Fig 10. Small configurations prove that the
 * channel-first mapping produces exact convolution results and that
 * IFMap reads and OFMap writes interleave on the single SRAM port
 * without conflicts.
 */

#ifndef CFCONV_TPUSIM_FUNCTIONAL_CORE_H
#define CFCONV_TPUSIM_FUNCTIONAL_CORE_H

#include <memory>
#include <vector>

#include "im2col/multi_tile.h"
#include "sram/vector_memory.h"
#include "systolic/systolic_array.h"
#include "tensor/conv_ref.h"

namespace cfconv::tpusim {

using im2col::TileGroup;
using tensor::ConvParams;
using tensor::Matrix;
using tensor::Tensor;

/** Result of a functional run. */
struct FunctionalRunResult
{
    Tensor output;          ///< the OFMap (N, C_O, H_O, W_O)
    bool portConflict;      ///< any same-cycle double use of an SRAM port
    Index vecMemReads;      ///< total word reads across vector memories
    Index vecMemWrites;     ///< total word writes across vector memories
    Cycles cycles;          ///< systolic cycles summed over tile passes
};

/**
 * Functional TPU core with @p array_rows x @p array_cols PEs and one
 * vector memory (word size @p word_elems) per PE row. The word size
 * plays the serializer/de-serializer role of Fig 9: each SRAM word read
 * feeds word_elems consecutive GEMM rows, and OFMap writes land on the
 * complementary port cycles.
 */
class FunctionalTpuCore
{
  public:
    FunctionalTpuCore(Index array_rows, Index array_cols,
                      Index word_elems);

    /**
     * Execute a full convolution with the channel-first algorithm and
     * multi-tile parameter @p tiles_per_group. C_I * tiles_per_group
     * must fit in the array rows and C_O in the array cols (use the
     * tile-level TpuSim for larger shapes).
     */
    FunctionalRunResult runConv(const ConvParams &params,
                                const Tensor &input,
                                const Tensor &filter,
                                Index tiles_per_group);

  private:
    Index arrayRows_, arrayCols_, wordElems_;
};

} // namespace cfconv::tpusim

#endif // CFCONV_TPUSIM_FUNCTIONAL_CORE_H
