#include "tpusim/tpu_sim.h"

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/trace.h"
#include "dram/access_pattern.h"
#include "systolic/systolic_timing.h"
#include "tensor/space_to_depth.h"
#include "tpusim/layer_cache.h"

namespace cfconv::tpusim {

namespace {

/** Closed-form DRAM efficiency by access-pattern friendliness. */
double
layoutEfficiency(tensor::Layout layout)
{
    switch (layout) {
      case tensor::Layout::HWCN:
      case tensor::Layout::NHWC:
        return 0.85; // long contiguous bursts (Fig 7, HWC side)
      case tensor::Layout::NCHW:
      case tensor::Layout::CHWN:
        return 0.45; // short scattered bursts (Fig 7, CHW side)
    }
    return 0.5;
}

/** Label for a layer's rows on the simulated-cycles clock. */
std::string
convTraceLabel(const ConvParams &params)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), "conv %lldx%lld %lld->%lld M=%lld",
                  static_cast<long long>(params.kernelH),
                  static_cast<long long>(params.kernelW),
                  static_cast<long long>(params.inChannels),
                  static_cast<long long>(params.outChannels),
                  static_cast<long long>(params.gemmM()));
    return buf;
}

std::string
gemmTraceLabel(Index m, Index k, Index n)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "gemm %lldx%lldx%lld",
                  static_cast<long long>(m), static_cast<long long>(k),
                  static_cast<long long>(n));
    return buf;
}

/**
 * Re-play a captured unit schedule onto the simulated-cycles clock.
 * Mirrors scheduleUnits' double buffering: fill 0 is fully exposed,
 * fill i+1 overlaps compute i, and time advances by
 * max(compute_i, fill_{i+1}). Two rows per timeline because the
 * overlapped phases would collide on a single track.
 */
void
emitSimTimeline(const std::string &label, const TpuConfig &config,
                const TpuLayerResult &r)
{
    if (!trace::enabled() || r.trace.empty())
        return;
    // Keep giant layers viewable: past this many units the picture is
    // periodic anyway.
    constexpr size_t kMaxUnits = 512;
    trace::SimTrack fill_row = trace::simTrack(label + " fill");
    trace::SimTrack compute_row = trace::simTrack(label + " compute");
    std::uint64_t t = config.invokeOverheadCycles;
    trace::simSpan(fill_row, "fill", t, r.trace.front().fill);
    t += r.trace.front().fill;
    const size_t n = std::min(r.trace.size(), kMaxUnits);
    for (size_t i = 0; i < n; ++i) {
        const Cycles c = r.trace[i].compute;
        const Cycles f =
            i + 1 < r.trace.size() ? r.trace[i + 1].fill : 0;
        trace::simSpan(compute_row, "compute", t, c,
                       {{"unit", static_cast<double>(i)}});
        if (f > 0)
            trace::simSpan(fill_row, "fill", t, f);
        t += std::max(c, f);
    }
}

} // namespace

TpuSim::TpuSim(const TpuConfig &config) : config_(config)
{
    CFCONV_FATAL_IF(config.vectorMemories != config.array.rows,
                    "TpuSim: expect one vector memory per PE row "
                    "(%lld vs %lld)",
                    static_cast<long long>(config.vectorMemories),
                    static_cast<long long>(config.array.rows));
}

Cycles
TpuSim::dramCycles(Bytes bytes, double efficiency) const
{
    if (bytes == 0)
        return 0;
    return dram::transferCycles(bytes, config_.dram.peakGBps(),
                                config_.clockGhz, efficiency);
}

Cycles
TpuSim::tileFillCoreCycles(const ConvParams &params,
                           const im2col::FilterTile &tile,
                           tensor::Layout layout, bool detailed) const
{
    const Bytes bytes =
        static_cast<Bytes>(im2col::tileFillElems(params, tile)) *
        dataTypeSize(params.dataType);
    if (!detailed)
        return dramCycles(bytes, layoutEfficiency(layout));

    dram::DramModel model(config_.dram);
    const auto stream = dram::tileFillStream(params, tile, layout);
    if (stream.empty())
        return 0;
    const Cycles dram_cycles = model.service(stream);
    const double secs = model.cyclesToSeconds(dram_cycles);
    return static_cast<Cycles>(secs * config_.clockGhz * 1e9 + 0.5);
}

TpuLayerResult
TpuSim::scheduleUnits(const std::vector<Unit> &units,
                      Flops total_flops, bool capture_trace) const
{
    TpuLayerResult r;
    CFCONV_FATAL_IF(units.empty(), "TpuSim: nothing to schedule");

    // Double buffering: the fill of unit i+1 overlaps the compute of
    // unit i; only unit 0's fill is fully exposed. With multiple
    // matrix units, independent passes run concurrently until the
    // single-port vector memories run out of bandwidth: each MXU needs
    // its own word stream, so per-unit compute divides by the MXU
    // count but never below the port-service time.
    const double mxus = static_cast<double>(config_.mxus);
    Cycles total = config_.invokeOverheadCycles + units.front().fill;
    Index port_ops = 0;
    for (size_t i = 0; i < units.size(); ++i) {
        const Cycles next_fill =
            i + 1 < units.size() ? units[i + 1].fill : 0;
        const Cycles port_floor = static_cast<Cycles>(
            divCeil<Index>(units[i].portOps, config_.vectorMemories));
        const Cycles compute = std::max<Cycles>(
            static_cast<Cycles>(
                static_cast<double>(units[i].compute) / mxus + 0.5),
            port_floor);
        total += std::max(compute, next_fill);
        r.computeCycles += compute;
        r.fillCycles += units[i].fill;
        port_ops += units[i].portOps;
        if (capture_trace)
            r.trace.push_back({units[i].fill, compute});
    }

    r.cycles = total;
    r.vecMemOps = port_ops;
    r.exposedFillCycles = total - r.computeCycles;
    r.seconds = config_.cyclesToSeconds(total);
    r.tflops = static_cast<double>(total_flops) / r.seconds / 1e12;
    const double capacity = static_cast<double>(total) *
                            static_cast<double>(config_.array.rows) *
                            static_cast<double>(config_.array.cols);
    r.arrayUtilization =
        static_cast<double>(total_flops) / 2.0 / capacity;
    r.portUtilization =
        static_cast<double>(port_ops) /
        (static_cast<double>(total) *
         static_cast<double>(config_.vectorMemories));
    return r;
}

TpuLayerResult
TpuSim::runConv(const ConvParams &params,
                const TpuRunOptions &options) const
{
    params.validate();

    // Timeline emission needs the captured unit schedule; forcing the
    // flag while tracing is benign because captureTrace is part of the
    // memo key, so traced and untraced runs use distinct entries.
    TpuRunOptions opts = options;
    if (trace::enabled())
        opts.captureTrace = true;

    // A layer result is a pure function of (params, options, config);
    // memoize it so repeated shapes (model blocks, sweep grids) are
    // simulated once. Concurrent misses on the same key may compute
    // the identical result twice — benign, last insert wins.
    LayerCache &cache = LayerCache::instance();
    std::string key;
    TpuLayerResult cached;
    if (cache.enabled()) {
        key = layerCacheKey(config_, params, opts);
        if (cache.lookup(key, &cached))
            return cached;
    }

    TRACE_SCOPE_DYN("tpusim", convTraceLabel(params));
    TpuLayerResult r = runConvUncached(params, opts);
    if (trace::enabled())
        emitSimTimeline(convTraceLabel(params), config_, r);
    if (cache.enabled())
        cache.insert(key, r);
    return r;
}

TpuLayerResult
TpuSim::runConvUncached(const ConvParams &params,
                        const TpuRunOptions &options) const
{
    if (options.spaceToDepthFirstLayer && params.inChannels <= 4 &&
        params.strideH % 2 == 0 && params.strideW % 2 == 0 &&
        params.dilationH == 1 && params.dilationW == 1) {
        // Shallow stem: remap through space-to-depth so the systolic
        // rows are four times better occupied.
        TpuRunOptions inner = options;
        inner.spaceToDepthFirstLayer = false;
        return runConv(tensor::spaceToDepthParams(params, 2), inner);
    }
    switch (options.algorithm) {
      case ConvAlgorithm::ChannelFirst:
        return runChannelFirst(params, options);
      case ConvAlgorithm::ChannelLast:
        return runChannelLast(params, options);
      case ConvAlgorithm::Explicit:
        return runExplicit(params, options);
      case ConvAlgorithm::Indirect:
        return runIndirect(params, options);
      case ConvAlgorithm::Smm:
        return runSmm(params, options);
    }
    panic("TpuSim: unknown algorithm");
}

TpuLayerResult
TpuSim::runChannelFirst(const ConvParams &params,
                        const TpuRunOptions &options) const
{
    const Index rows = config_.array.rows;
    const Index cols = config_.array.cols;
    const Index m_total = params.gemmM();
    const Bytes elem = dataTypeSize(params.dataType);
    const Index word = config_.wordElems;

    // Channel chunking for C_I > rows; multi-tile merging otherwise.
    struct Pass
    {
        Index kEff;         ///< systolic rows occupied
        Cycles fillCore;    ///< full-layer fill cycles for this pass
        Bytes fillBytes;    ///< full-layer fill bytes for this pass
        Index lanes;        ///< operand lanes resident on chip
    };
    std::vector<Pass> passes;
    Index multi_tile = 1;

    if (params.inChannels <= rows) {
        multi_tile = options.multiTileOverride > 0
            ? std::min({options.multiTileOverride,
                        params.kernelH * params.kernelW,
                        std::max<Index>(1, rows / params.inChannels)})
            : im2col::tpuMultiTileParam(rows, params);
        const im2col::MultiTilePlan plan =
            im2col::planMultiTile(params, multi_tile);
        for (const auto &group : plan.groups) {
            Pass p{};
            p.kEff = group.mergedK(params);
            for (const auto &t : group.tiles) {
                p.fillCore += tileFillCoreCycles(
                    params, t, options.dramLayout, options.detailedDram);
                p.fillBytes +=
                    static_cast<Bytes>(im2col::tileFillElems(params, t)) *
                    elem;
            }
            p.lanes = p.kEff;
            passes.push_back(p);
        }
    } else {
        const Index chunks = divCeil(params.inChannels, rows);
        for (const auto &tile : im2col::decomposeFilter(params)) {
            const Cycles tile_fill = tileFillCoreCycles(
                params, tile, options.dramLayout, options.detailedDram);
            const Bytes tile_bytes =
                static_cast<Bytes>(im2col::tileFillElems(params, tile)) *
                elem;
            for (Index c = 0; c < chunks; ++c) {
                Pass p{};
                p.kEff = std::min(rows, params.inChannels - c * rows);
                const double frac = static_cast<double>(p.kEff) /
                                    static_cast<double>(params.inChannels);
                p.fillCore = static_cast<Cycles>(
                    static_cast<double>(tile_fill) * frac + 0.5);
                p.fillBytes = static_cast<Bytes>(
                    static_cast<double>(tile_bytes) * frac + 0.5);
                p.lanes = p.kEff;
                passes.push_back(p);
            }
        }
    }

    // M tiling by vector-memory capacity: each lane (channel x tile
    // copy) stores one element per GEMM row, double buffered.
    const Index usable =
        static_cast<Index>(config_.perArrayBytes() / config_.elemBytes);
    Index m_tile = std::min<Index>(m_total, usable / 2 - 4 * word);
    m_tile = std::max<Index>(word, (m_tile / word) * word);
    const Index m_tiles = divCeil(m_total, m_tile);

    const Index n_passes = divCeil(params.gemmN(), cols);

    // When the layer's whole input footprint fits on chip, it is loaded
    // from DRAM once; later decomposed-filter groups replicate data
    // inside the vector memories instead of refetching (Sec. IV-B).
    const Bytes union_bytes = im2col::inputUnionBytes(params);
    // Residency depends only on the activation volume: M-tiling a
    // resident input redistributes data inside the unified memory,
    // never over DRAM.
    const bool resident = union_bytes * 2 <= config_.onChipBytes;

    std::vector<Unit> units;
    Bytes dram_bytes = 0;
    Bytes peak_on_chip = 0;
    for (const auto &pass : passes) {
        dram_bytes += pass.fillBytes;
        peak_on_chip = std::max(
            peak_on_chip, static_cast<Bytes>(pass.lanes) *
                              static_cast<Bytes>(std::min(m_tile, m_total))
                              * config_.elemBytes);
        for (Index mt = 0; mt < m_tiles; ++mt) {
            const Index m_cur =
                std::min(m_tile, m_total - mt * m_tile);
            Unit u;
            const double frac = static_cast<double>(m_cur) /
                                static_cast<double>(m_total);
            if (resident) {
                // Activations live in the unified on-chip memory
                // between layers (32 MB); tile replication happens
                // inside the vector memories, not over DRAM.
                u.fill = 0;
            } else {
                u.fill = static_cast<Cycles>(
                    static_cast<double>(pass.fillCore) * frac + 0.5);
            }
            for (Index n0 = 0; n0 < params.gemmN(); n0 += cols) {
                const Index n_eff =
                    std::min(cols, params.gemmN() - n0);
                u.compute += systolic::passCycles(config_.array, m_cur,
                                                  pass.kEff, n_eff);
                u.portOps += pass.kEff * divCeil(m_cur, word) +
                             n_eff * divCeil(m_cur, word);
            }
            u.macs = static_cast<Flops>(m_cur) *
                     static_cast<Flops>(pass.kEff) *
                     static_cast<Flops>(params.gemmN());
            units.push_back(u);
        }
    }
    (void)n_passes;

    // Weight traffic always streams from DRAM; the OFMap is written
    // back only when the activations do not stay on chip. Writeback
    // shares the bus, so spread its cycles across the fill phases.
    if (resident) {
        dram_bytes = params.filterBytes();
    } else {
        dram_bytes += params.filterBytes() + params.outputBytes();
        const Cycles out_cycles = dramCycles(params.outputBytes(), 0.85);
        for (auto &u : units)
            u.fill += out_cycles / static_cast<Cycles>(units.size());
    }

    TpuLayerResult r =
        scheduleUnits(units, params.flops(), options.captureTrace);
    r.dramBytes = dram_bytes;
    r.multiTile = multi_tile;
    r.peakOnChipBytes = peak_on_chip;
    return r;
}

TpuLayerResult
TpuSim::runChannelLast(const ConvParams &params,
                       const TpuRunOptions &options) const
{
    const Index rows = config_.array.rows;
    const Index cols = config_.array.cols;
    const Index m_total = params.gemmM();
    const Index k_total = params.gemmK();
    const Bytes elem = dataTypeSize(params.dataType);
    const Index word = config_.wordElems;

    // The channel-last fill loads the union of all receptive fields --
    // effectively the whole input region -- regardless of stride.
    const Bytes union_bytes = im2col::inputUnionBytes(params);
    (void)elem;

    const Index usable =
        static_cast<Index>(config_.perArrayBytes() / config_.elemBytes);
    Index m_tile = std::min<Index>(m_total, usable / 2 - 4 * word);
    m_tile = std::max<Index>(word, (m_tile / word) * word);
    const Index m_tiles = divCeil(m_total, m_tile);

    const bool resident = union_bytes * 2 <= config_.onChipBytes;

    std::vector<Unit> units;
    for (Index mt = 0; mt < m_tiles; ++mt) {
        const Index m_cur = std::min(m_tile, m_total - mt * m_tile);
        const double frac = static_cast<double>(m_cur) /
                            static_cast<double>(m_total);
        Unit u;
        u.fill = resident
            ? 0
            : dramCycles(static_cast<Bytes>(
                             static_cast<double>(union_bytes) * frac),
                         layoutEfficiency(options.dramLayout));
        for (Index k0 = 0; k0 < k_total; k0 += rows) {
            const Index k_eff = std::min(rows, k_total - k0);
            for (Index n0 = 0; n0 < params.gemmN(); n0 += cols) {
                const Index n_eff = std::min(cols, params.gemmN() - n0);
                u.compute += systolic::passCycles(config_.array, m_cur,
                                                  k_eff, n_eff);
                u.portOps += (k_eff + n_eff) * divCeil(m_cur, word);
            }
        }
        units.push_back(u);
    }

    TpuLayerResult r =
        scheduleUnits(units, params.flops(), options.captureTrace);
    r.dramBytes = resident
        ? params.filterBytes()
        : union_bytes + params.filterBytes() + params.outputBytes();
    r.multiTile = 1;
    r.peakOnChipBytes = union_bytes / static_cast<Bytes>(m_tiles ? m_tiles
                                                                 : 1);
    return r;
}

TpuLayerResult
TpuSim::runExplicit(const ConvParams &params,
                    const TpuRunOptions &options) const
{
    // GEMM over the materialized lowered matrix, streamed from DRAM.
    TpuLayerResult r =
        runGemm(params.gemmM(), params.gemmK(), params.gemmN(),
                params.dataType);
    // The transformation itself: by default estimated as the DRAM time
    // to read the IFMap and write the lowered matrix; callers may
    // substitute a measured/estimated figure (Fig 2b uses GPU numbers).
    double transform = options.explicitTransformSeconds;
    if (transform <= 0.0) {
        const Cycles t = dramCycles(
            params.inputBytes() + params.loweredBytes(), 0.7);
        transform = config_.cyclesToSeconds(t);
    }
    r.seconds += transform;
    r.cycles += static_cast<Cycles>(transform * config_.clockGhz * 1e9);
    r.tflops =
        static_cast<double>(params.flops()) / r.seconds / 1e12;
    r.dramBytes += params.inputBytes() + 2 * params.loweredBytes();
    const double capacity = static_cast<double>(r.cycles) *
                            static_cast<double>(config_.array.rows) *
                            static_cast<double>(config_.array.cols);
    r.arrayUtilization =
        static_cast<double>(params.flops()) / 2.0 / capacity;
    return r;
}

TpuLayerResult
TpuSim::runIndirect(const ConvParams &params,
                    const TpuRunOptions &options) const
{
    // IndirectConv (Dukhan): the systolic passes are the channel-first
    // per-tap schedule without multi-tile merging — the indirection
    // buffer already de-duplicates input rows, so each <r, s> tap runs
    // its own C_I-chunked weight-stationary passes. The price of the
    // scheme is the pointer table: M * H_F * W_F eight-byte entries
    // streamed from DRAM alongside the fills.
    const Index rows = config_.array.rows;
    const Index cols = config_.array.cols;
    const Index m_total = params.gemmM();
    const Bytes elem = dataTypeSize(params.dataType);
    const Index word = config_.wordElems;
    constexpr Bytes kPointerBytes = 8;

    struct Pass
    {
        Index kEff;
        Cycles fillCore;
        Bytes fillBytes;
    };
    std::vector<Pass> passes;
    const Index chunks = divCeil(params.inChannels, rows);
    for (const auto &tile : im2col::decomposeFilter(params)) {
        const Cycles tile_fill = tileFillCoreCycles(
            params, tile, options.dramLayout, options.detailedDram);
        const Bytes tile_bytes =
            static_cast<Bytes>(im2col::tileFillElems(params, tile)) *
            elem;
        for (Index c = 0; c < chunks; ++c) {
            Pass p{};
            p.kEff = std::min(rows, params.inChannels - c * rows);
            const double frac = static_cast<double>(p.kEff) /
                                static_cast<double>(params.inChannels);
            p.fillCore = static_cast<Cycles>(
                static_cast<double>(tile_fill) * frac + 0.5);
            p.fillBytes = static_cast<Bytes>(
                static_cast<double>(tile_bytes) * frac + 0.5);
            passes.push_back(p);
        }
    }

    const Index usable =
        static_cast<Index>(config_.perArrayBytes() / config_.elemBytes);
    Index m_tile = std::min<Index>(m_total, usable / 2 - 4 * word);
    m_tile = std::max<Index>(word, (m_tile / word) * word);
    const Index m_tiles = divCeil(m_total, m_tile);

    const Bytes union_bytes = im2col::inputUnionBytes(params);
    const bool resident = union_bytes * 2 <= config_.onChipBytes;
    const Bytes meta_bytes =
        static_cast<Bytes>(m_total) *
        static_cast<Bytes>(params.kernelH * params.kernelW) *
        kPointerBytes;

    std::vector<Unit> units;
    Bytes dram_bytes = 0;
    Bytes peak_on_chip = 0;
    for (const auto &pass : passes) {
        dram_bytes += pass.fillBytes;
        peak_on_chip = std::max(
            peak_on_chip,
            static_cast<Bytes>(pass.kEff) *
                    static_cast<Bytes>(std::min(m_tile, m_total)) *
                    config_.elemBytes +
                static_cast<Bytes>(std::min(m_tile, m_total)) *
                    kPointerBytes);
        for (Index mt = 0; mt < m_tiles; ++mt) {
            const Index m_cur = std::min(m_tile, m_total - mt * m_tile);
            Unit u;
            const double frac = static_cast<double>(m_cur) /
                                static_cast<double>(m_total);
            u.fill = resident
                ? 0
                : static_cast<Cycles>(
                      static_cast<double>(pass.fillCore) * frac + 0.5);
            for (Index n0 = 0; n0 < params.gemmN(); n0 += cols) {
                const Index n_eff = std::min(cols, params.gemmN() - n0);
                u.compute += systolic::passCycles(config_.array, m_cur,
                                                  pass.kEff, n_eff);
                u.portOps += pass.kEff * divCeil(m_cur, word) +
                             n_eff * divCeil(m_cur, word);
            }
            u.macs = static_cast<Flops>(m_cur) *
                     static_cast<Flops>(pass.kEff) *
                     static_cast<Flops>(params.gemmN());
            units.push_back(u);
        }
    }

    // Pointer-table streaming shares the bus with the fills; spread its
    // cycles across the units like the output writeback. The table
    // streams even when the activations are resident.
    if (resident) {
        dram_bytes = params.filterBytes() + meta_bytes;
    } else {
        dram_bytes +=
            params.filterBytes() + params.outputBytes() + meta_bytes;
        const Cycles out_cycles = dramCycles(params.outputBytes(), 0.85);
        for (auto &u : units)
            u.fill += out_cycles / static_cast<Cycles>(units.size());
    }
    const Cycles meta_cycles = dramCycles(meta_bytes, 0.85);
    for (auto &u : units)
        u.fill += meta_cycles / static_cast<Cycles>(units.size());

    TpuLayerResult r =
        scheduleUnits(units, params.flops(), options.captureTrace);
    r.dramBytes = dram_bytes;
    r.multiTile = 1;
    r.peakOnChipBytes = peak_on_chip;
    return r;
}

TpuLayerResult
TpuSim::runSmm(const ConvParams &params,
               const TpuRunOptions &options) const
{
    // SMM-Conv (Ofir & Ben-Artzi): one scalar-matrix multiply per
    // filter tap over contiguous, zero-packed input rows. Only defined
    // for unit stride/dilation — that contiguity is the scheme. Fills
    // are closed-form at a high burst efficiency (no gather): the
    // shifted input block per tap is read as long sequential runs.
    CFCONV_FATAL_IF(params.strideH != 1 || params.strideW != 1 ||
                        params.dilationH != 1 || params.dilationW != 1,
                    "TpuSim: SMM-Conv requires unit stride/dilation "
                    "(layer %s)",
                    params.toString().c_str());

    const Index rows = config_.array.rows;
    const Index cols = config_.array.cols;
    const Index m_total = params.gemmM();
    const Bytes elem = dataTypeSize(params.dataType);
    const Index word = config_.wordElems;
    constexpr double kContiguousEfficiency = 0.95;

    struct Pass
    {
        Index kEff;
        Cycles fillCore;
        Bytes fillBytes;
    };
    std::vector<Pass> passes;
    const Index chunks = divCeil(params.inChannels, rows);
    for (const auto &tile : im2col::decomposeFilter(params)) {
        const Bytes tile_bytes =
            static_cast<Bytes>(im2col::tileFillElems(params, tile)) *
            elem;
        const Cycles tile_fill =
            dramCycles(tile_bytes, kContiguousEfficiency);
        for (Index c = 0; c < chunks; ++c) {
            Pass p{};
            p.kEff = std::min(rows, params.inChannels - c * rows);
            const double frac = static_cast<double>(p.kEff) /
                                static_cast<double>(params.inChannels);
            p.fillCore = static_cast<Cycles>(
                static_cast<double>(tile_fill) * frac + 0.5);
            p.fillBytes = static_cast<Bytes>(
                static_cast<double>(tile_bytes) * frac + 0.5);
            passes.push_back(p);
        }
    }

    const Index usable =
        static_cast<Index>(config_.perArrayBytes() / config_.elemBytes);
    Index m_tile = std::min<Index>(m_total, usable / 2 - 4 * word);
    m_tile = std::max<Index>(word, (m_tile / word) * word);
    const Index m_tiles = divCeil(m_total, m_tile);

    const Bytes union_bytes = im2col::inputUnionBytes(params);
    const bool resident = union_bytes * 2 <= config_.onChipBytes;

    std::vector<Unit> units;
    Bytes dram_bytes = 0;
    Bytes peak_on_chip = 0;
    for (const auto &pass : passes) {
        dram_bytes += pass.fillBytes;
        peak_on_chip = std::max(
            peak_on_chip,
            static_cast<Bytes>(pass.kEff) *
                static_cast<Bytes>(std::min(m_tile, m_total)) *
                config_.elemBytes);
        for (Index mt = 0; mt < m_tiles; ++mt) {
            const Index m_cur = std::min(m_tile, m_total - mt * m_tile);
            Unit u;
            const double frac = static_cast<double>(m_cur) /
                                static_cast<double>(m_total);
            u.fill = resident
                ? 0
                : static_cast<Cycles>(
                      static_cast<double>(pass.fillCore) * frac + 0.5);
            for (Index n0 = 0; n0 < params.gemmN(); n0 += cols) {
                const Index n_eff = std::min(cols, params.gemmN() - n0);
                u.compute += systolic::passCycles(config_.array, m_cur,
                                                  pass.kEff, n_eff);
                u.portOps += pass.kEff * divCeil(m_cur, word) +
                             n_eff * divCeil(m_cur, word);
            }
            u.macs = static_cast<Flops>(m_cur) *
                     static_cast<Flops>(pass.kEff) *
                     static_cast<Flops>(params.gemmN());
            units.push_back(u);
        }
    }

    if (resident) {
        dram_bytes = params.filterBytes();
    } else {
        dram_bytes += params.filterBytes() + params.outputBytes();
        const Cycles out_cycles = dramCycles(params.outputBytes(), 0.85);
        for (auto &u : units)
            u.fill += out_cycles / static_cast<Cycles>(units.size());
    }

    TpuLayerResult r =
        scheduleUnits(units, params.flops(), options.captureTrace);
    r.dramBytes = dram_bytes;
    r.multiTile = 1;
    r.peakOnChipBytes = peak_on_chip;
    return r;
}

TpuLayerResult
TpuSim::runGroupedConv(const ConvParams &base, Index groups,
                       const TpuRunOptions &options) const
{
    base.validate();
    CFCONV_FATAL_IF(groups < 1, "runGroupedConv: groups must be >= 1");
    if (groups == 1)
        return runConv(base, options);
    CFCONV_FATAL_IF(base.inChannels % groups != 0 ||
                    base.outChannels % groups != 0,
                    "runGroupedConv: channels not divisible by groups");

    const Index cig = base.inChannels / groups;
    const Index cog = base.outChannels / groups;
    // Block-diagonal packing: each pass holds `pack` group slices.
    const Index pack = std::max<Index>(
        1, std::min(config_.array.rows / std::max<Index>(1, cig),
                    config_.array.cols / std::max<Index>(1, cog)));
    const Index packed = std::min(pack, groups);

    ConvParams eq = base;
    eq.inChannels = packed * cig;
    eq.outChannels = packed * cog;
    TpuLayerResult r = runConv(eq, options);

    const Index reps = divCeil(groups, packed);
    r.seconds *= static_cast<double>(reps);
    r.cycles *= static_cast<Cycles>(reps);
    r.dramBytes *= static_cast<Bytes>(reps);
    r.computeCycles *= static_cast<Cycles>(reps);
    r.fillCycles *= static_cast<Cycles>(reps);
    r.vecMemOps *= reps;

    // Useful work is the grouped FLOP count; the block-diagonal zeros
    // are wasted array capacity.
    const Flops useful = base.flops() / static_cast<Flops>(groups);
    r.tflops = static_cast<double>(useful) / r.seconds / 1e12;
    r.arrayUtilization =
        static_cast<double>(useful) / 2.0 /
        (static_cast<double>(r.cycles) *
         static_cast<double>(config_.array.rows) *
         static_cast<double>(config_.array.cols));
    return r;
}

TpuLayerResult
TpuSim::runGemm(Index m, Index k, Index n, DataType dtype) const
{
    CFCONV_FATAL_IF(m < 1 || k < 1 || n < 1,
                    "TpuSim::runGemm: non-positive dimensions");
    LayerCache &cache = LayerCache::instance();
    std::string key;
    TpuLayerResult cached;
    if (cache.enabled()) {
        key = gemmCacheKey(config_, m, k, n, dtype);
        if (cache.lookup(key, &cached))
            return cached;
    }
    TRACE_SCOPE_DYN("tpusim", gemmTraceLabel(m, k, n));
    const Index rows = config_.array.rows;
    const Index cols = config_.array.cols;
    const Bytes elem = dataTypeSize(dtype);
    const Index word = config_.wordElems;

    const Index usable =
        static_cast<Index>(config_.perArrayBytes() / config_.elemBytes);
    Index m_tile = std::min<Index>(m, usable / 2 - 4 * word);
    m_tile = std::max<Index>(word, (m_tile / word) * word);

    std::vector<Unit> units;
    for (Index m0 = 0; m0 < m; m0 += m_tile) {
        const Index m_cur = std::min(m_tile, m - m0);
        for (Index k0 = 0; k0 < k; k0 += rows) {
            const Index k_eff = std::min(rows, k - k0);
            Unit u;
            u.fill = dramCycles(static_cast<Bytes>(m_cur) *
                                    static_cast<Bytes>(k_eff) * elem,
                                0.85);
            for (Index n0 = 0; n0 < n; n0 += cols) {
                const Index n_eff = std::min(cols, n - n0);
                u.compute += systolic::passCycles(config_.array, m_cur,
                                                  k_eff, n_eff);
                u.portOps += (k_eff + n_eff) * divCeil(m_cur, word);
            }
            u.macs = static_cast<Flops>(m_cur) *
                     static_cast<Flops>(k_eff) * static_cast<Flops>(n);
            units.push_back(u);
        }
    }

    const Flops flops = 2ULL * static_cast<Flops>(m) *
                        static_cast<Flops>(k) * static_cast<Flops>(n);
    TpuLayerResult r = scheduleUnits(units, flops, trace::enabled());
    if (trace::enabled())
        emitSimTimeline(gemmTraceLabel(m, k, n), config_, r);
    r.dramBytes = (static_cast<Bytes>(m) * static_cast<Bytes>(k) +
                   static_cast<Bytes>(k) * static_cast<Bytes>(n) +
                   static_cast<Bytes>(m) * static_cast<Bytes>(n)) *
                  elem;
    if (cache.enabled())
        cache.insert(key, r);
    return r;
}

TpuModelResult
TpuSim::runModelMultiCore(const models::ModelSpec &model, Index cores,
                          const TpuRunOptions &options) const
{
    CFCONV_FATAL_IF(cores < 1, "runModelMultiCore: cores must be >= 1");
    // Thin compatibility wrapper: the batch-slicing rule is hoisted
    // into models::splitBatchAcrossCores, shared with the multi-chip
    // scheduler path (serve::runModelDataParallel), so the two can
    // never drift. Kept byte-identical to the pre-hoist behaviour.
    TpuModelResult result =
        runModel(models::splitBatchAcrossCores(model, cores), options);
    result.model = model.name + " (x" + std::to_string(cores) +
                   " cores)";
    // Throughput accounting covers the full batch.
    Flops flops = 0;
    for (const auto &layer : model.layers)
        flops += layer.params.flops() * static_cast<Flops>(layer.count);
    result.tflops =
        static_cast<double>(flops) / result.seconds / 1e12;
    return result;
}

TpuModelResult
TpuSim::runModel(const models::ModelSpec &model,
                 const TpuRunOptions &options) const
{
    TRACE_SCOPE_DYN("tpusim", "runModel " + model.name);
    TpuModelResult result;
    result.model = model.name;
    // Per-layer timings are independent; simulate them in parallel and
    // reduce in layer order afterwards, so totals match the serial run
    // bit for bit.
    const Index n_layers = static_cast<Index>(model.layers.size());
    result.layers.resize(model.layers.size());
    parallel::parallelFor(0, n_layers, 1, [&](Index b, Index e) {
        for (Index i = b; i < e; ++i)
            result.layers[static_cast<size_t>(i)] = runGroupedConv(
                model.layers[static_cast<size_t>(i)].params,
                model.layers[static_cast<size_t>(i)].groups, options);
    });
    Flops flops = 0;
    for (size_t i = 0; i < model.layers.size(); ++i) {
        result.seconds += result.layers[i].seconds *
                          static_cast<double>(model.layers[i].count);
        flops += model.layers[i].flops() *
                 static_cast<Flops>(model.layers[i].count);
    }
    result.tflops = static_cast<double>(flops) / result.seconds / 1e12;
    return result;
}

} // namespace cfconv::tpusim
