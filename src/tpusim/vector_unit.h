/**
 * @file
 * TPU vector-unit timing: Table II lists 256 vector ALUs alongside the
 * systolic array; they run the non-GEMM layers (pooling, batch norm,
 * ReLU, residual adds) directly on the unskewed HWC layout — which is
 * exactly why the TPU skews *address generation* instead of the data
 * (Sec. IV-A). This model prices those layers so whole-network
 * estimates include them.
 */

#ifndef CFCONV_TPUSIM_VECTOR_UNIT_H
#define CFCONV_TPUSIM_VECTOR_UNIT_H

#include "tensor/conv_params.h"
#include "tpusim/tpu_config.h"

namespace cfconv::tpusim {

/** Vector-unit operation kinds with their per-element ALU op counts. */
enum class VectorOp {
    Relu,      ///< 1 op/element
    Add,       ///< 1 op/element (reads two operands)
    BatchNorm, ///< 2 ops/element (fused multiply-add per element)
    MaxPool,   ///< window-1 compares per output element
    AvgPool,   ///< window adds + 1 multiply per output element
};

/** Timing/accounting result for one vector-unit layer. */
struct VectorOpResult
{
    Cycles cycles = 0;
    double seconds = 0.0;
    Index elements = 0; ///< output elements produced
};

/** Vector-unit shape (defaults match Table II). */
struct VectorUnitConfig
{
    Index alus = 256;    ///< lanes
    double opsPerAluPerCycle = 1.0;
};

/**
 * Cycles for an element-wise op over @p elements outputs, or a pooling
 * op with an @p window-element reduction per output.
 */
VectorOpResult vectorOpTiming(const TpuConfig &tpu,
                              const VectorUnitConfig &vu, VectorOp op,
                              Index elements, Index window = 1);

/**
 * End-to-end time of a conv + BN + ReLU (+ pool) block: the
 * convolution on the systolic array, the rest on the vector unit. The
 * point the numbers make: the vector-unit layers are a small additive
 * cost precisely because no layout skewing/restoring is needed.
 */
double convBlockSeconds(const TpuConfig &tpu, const VectorUnitConfig &vu,
                        const tensor::ConvParams &conv,
                        bool with_pool = false, Index pool_window = 4);

} // namespace cfconv::tpusim

#endif // CFCONV_TPUSIM_VECTOR_UNIT_H
