/**
 * @file
 * Energy accounting on top of TPUSim results: combines the SRAM/DRAM
 * access-energy models with the simulator's traffic counters to report
 * per-layer energy and pJ/MAC — the energy companion to the paper's
 * area-oriented design-space study (Fig 16b).
 */

#ifndef CFCONV_TPUSIM_ENERGY_H
#define CFCONV_TPUSIM_ENERGY_H

#include "sram/energy_model.h"
#include "tpusim/tpu_sim.h"

namespace cfconv::tpusim {

/** Energy breakdown of one simulated layer. */
struct TpuEnergyReport
{
    double dramPj = 0.0;   ///< off-chip traffic energy
    double sramPj = 0.0;   ///< vector-memory access energy
    double macPj = 0.0;    ///< systolic-array compute energy
    double totalPj = 0.0;
    double pjPerMac = 0.0; ///< total energy per useful MAC
};

/**
 * Energy for one layer result produced by @p config's simulator. MAC
 * count is recovered from the result's throughput accounting.
 */
TpuEnergyReport layerEnergy(const TpuConfig &config,
                            const TpuLayerResult &result);

} // namespace cfconv::tpusim

#endif // CFCONV_TPUSIM_ENERGY_H
