#include "tpusim/tpu_config.h"

#include "common/logging.h"

namespace cfconv::tpusim {

TpuConfig
TpuConfig::tpuV2()
{
    TpuConfig c;
    c.array.rows = 128;
    c.array.cols = 128;
    c.array.weightLoadOverlapped = true;
    c.clockGhz = 0.7;
    c.vectorMemories = 128;
    c.wordElems = 8;
    c.elemBytes = 4;
    c.onChipBytes = 32ULL * 1024 * 1024;
    c.dram = dram::DramConfig::hbm700();
    return c;
}

TpuConfig
TpuConfig::tpuV3ish()
{
    TpuConfig c = tpuV2();
    c.mxus = 2;
    c.clockGhz = 0.94;
    c.dram = dram::DramConfig::hbm900();
    return c;
}

TpuConfig
tpuConfigFrom(const Config &config, TpuConfig base)
{
    TpuConfig c = base;
    const Index array =
        static_cast<Index>(config.getInt("array", c.array.rows));
    c.array.rows = c.array.cols = array;
    c.vectorMemories = array;
    c.clockGhz = config.getDouble("clock_ghz", c.clockGhz);
    c.wordElems =
        static_cast<Index>(config.getInt("word_elems", c.wordElems));
    c.elemBytes = static_cast<Bytes>(
        config.getInt("elem_bytes",
                      static_cast<long long>(c.elemBytes)));
    c.onChipBytes = static_cast<Bytes>(config.getInt(
                        "onchip_mb",
                        static_cast<long long>(c.onChipBytes >> 20)))
                    << 20;
    const double gbps =
        config.getDouble("dram_gbps", c.dram.peakGBps());
    c.dram.clockGhz *= gbps / c.dram.peakGBps();
    c.invokeOverheadCycles = static_cast<Cycles>(config.getInt(
        "invoke_overhead_cycles",
        static_cast<long long>(c.invokeOverheadCycles)));
    c.mxus = static_cast<Index>(config.getInt("mxus", c.mxus));

    const auto unused = config.unusedKeys();
    CFCONV_FATAL_IF(!unused.empty(),
                    "tpu config: unknown key '%s'",
                    unused.begin()->c_str());
    return c;
}

} // namespace cfconv::tpusim
