#include "tpusim/vector_unit.h"

#include "common/logging.h"
#include "tpusim/tpu_sim.h"

namespace cfconv::tpusim {

VectorOpResult
vectorOpTiming(const TpuConfig &tpu, const VectorUnitConfig &vu,
               VectorOp op, Index elements, Index window)
{
    CFCONV_FATAL_IF(elements < 1, "vectorOpTiming: no elements");
    CFCONV_FATAL_IF(window < 1, "vectorOpTiming: bad window");
    CFCONV_FATAL_IF(vu.alus < 1, "vectorOpTiming: no ALUs");

    double ops_per_element;
    switch (op) {
      case VectorOp::Relu:
      case VectorOp::Add:
        ops_per_element = 1.0;
        break;
      case VectorOp::BatchNorm:
        ops_per_element = 2.0; // scale + shift (fused)
        break;
      case VectorOp::MaxPool:
        ops_per_element = static_cast<double>(window - 1);
        if (ops_per_element < 1.0)
            ops_per_element = 1.0;
        break;
      case VectorOp::AvgPool:
        ops_per_element = static_cast<double>(window);
        break;
      default:
        panic("vectorOpTiming: unknown op");
    }

    const double total_ops =
        static_cast<double>(elements) * ops_per_element;
    const double throughput =
        static_cast<double>(vu.alus) * vu.opsPerAluPerCycle;
    VectorOpResult r;
    r.elements = elements;
    r.cycles = static_cast<Cycles>(total_ops / throughput + 0.999);
    r.seconds = tpu.cyclesToSeconds(r.cycles);
    return r;
}

double
convBlockSeconds(const TpuConfig &tpu, const VectorUnitConfig &vu,
                 const tensor::ConvParams &conv, bool with_pool,
                 Index pool_window)
{
    TpuSim sim(tpu);
    double total = sim.runConv(conv).seconds;
    const Index out_elems = conv.outputElems();
    total += vectorOpTiming(tpu, vu, VectorOp::BatchNorm, out_elems)
                 .seconds;
    total += vectorOpTiming(tpu, vu, VectorOp::Relu, out_elems).seconds;
    if (with_pool) {
        total += vectorOpTiming(tpu, vu, VectorOp::MaxPool,
                                out_elems / pool_window, pool_window)
                     .seconds;
    }
    return total;
}

} // namespace cfconv::tpusim
