#include "tpusim/layer_cache.h"

namespace cfconv::tpusim {

namespace {

void
appendConfig(std::string &key, const TpuConfig &config)
{
    memoKeyAppendInt(key, config.array.rows);
    memoKeyAppendInt(key, config.array.cols);
    memoKeyAppendInt(key, config.array.weightLoadOverlapped ? 1 : 0);
    memoKeyAppendInt(key, config.mxus);
    memoKeyAppendFloat(key, config.clockGhz);
    memoKeyAppendInt(key, config.vectorMemories);
    memoKeyAppendInt(key, config.wordElems);
    memoKeyAppendInt(key, static_cast<long long>(config.elemBytes));
    memoKeyAppendInt(key, static_cast<long long>(config.onChipBytes));
    memoKeyAppendInt(key,
                     static_cast<long long>(config.invokeOverheadCycles));
    const dram::DramConfig &d = config.dram;
    memoKeyAppendInt(key, d.channels);
    memoKeyAppendInt(key, d.banksPerChannel);
    memoKeyAppendInt(key, static_cast<long long>(d.rowBytes));
    memoKeyAppendInt(key, static_cast<long long>(d.busBytesPerCycle));
    memoKeyAppendInt(key, static_cast<long long>(d.tPrecharge));
    memoKeyAppendInt(key, static_cast<long long>(d.tActivate));
    memoKeyAppendInt(key, static_cast<long long>(d.tCas));
    memoKeyAppendFloat(key, d.clockGhz);
    memoKeyAppendInt(key, static_cast<long long>(d.pagePolicy));
    memoKeyAppendInt(key, static_cast<long long>(d.mapping));
}

void
appendParams(std::string &key, const tensor::ConvParams &p)
{
    memoKeyAppendInt(key, p.batch);
    memoKeyAppendInt(key, p.inChannels);
    memoKeyAppendInt(key, p.inH);
    memoKeyAppendInt(key, p.inW);
    memoKeyAppendInt(key, p.outChannels);
    memoKeyAppendInt(key, p.kernelH);
    memoKeyAppendInt(key, p.kernelW);
    memoKeyAppendInt(key, p.strideH);
    memoKeyAppendInt(key, p.strideW);
    memoKeyAppendInt(key, p.padH);
    memoKeyAppendInt(key, p.padW);
    memoKeyAppendInt(key, p.dilationH);
    memoKeyAppendInt(key, p.dilationW);
    memoKeyAppendInt(key, static_cast<long long>(p.dataType));
}

} // namespace

std::string
layerCacheKey(const TpuConfig &config, const tensor::ConvParams &params,
              const TpuRunOptions &options)
{
    std::string key = "conv|";
    key.reserve(256);
    appendParams(key, params);
    memoKeyAppendInt(key, static_cast<long long>(options.algorithm));
    memoKeyAppendInt(key, options.multiTileOverride);
    memoKeyAppendInt(key, static_cast<long long>(options.dramLayout));
    memoKeyAppendInt(key, options.detailedDram ? 1 : 0);
    memoKeyAppendFloat(key, options.explicitTransformSeconds);
    memoKeyAppendInt(key, options.captureTrace ? 1 : 0);
    memoKeyAppendInt(key, options.spaceToDepthFirstLayer ? 1 : 0);
    appendConfig(key, config);
    return key;
}

std::string
gemmCacheKey(const TpuConfig &config, Index m, Index k, Index n,
             DataType dtype)
{
    std::string key = "gemm|";
    key.reserve(192);
    memoKeyAppendInt(key, m);
    memoKeyAppendInt(key, k);
    memoKeyAppendInt(key, n);
    memoKeyAppendInt(key, static_cast<long long>(dtype));
    appendConfig(key, config);
    return key;
}

std::uint64_t
layerResultChecksum(const TpuLayerResult &r)
{
    std::uint64_t h = 0;
    auto mixInt = [&h](long long v) {
        h = hashCombine(h, static_cast<std::uint64_t>(v));
    };
    auto mixFloat = [&h](double v) {
        h = hashCombine(h, hashBytes(&v, sizeof v));
    };
    mixInt(static_cast<long long>(r.cycles));
    mixFloat(r.seconds);
    mixFloat(r.tflops);
    mixFloat(r.arrayUtilization);
    mixInt(static_cast<long long>(r.dramBytes));
    mixInt(r.multiTile);
    mixFloat(r.portUtilization);
    mixInt(static_cast<long long>(r.peakOnChipBytes));
    mixInt(r.vecMemOps);
    mixInt(static_cast<long long>(r.computeCycles));
    mixInt(static_cast<long long>(r.fillCycles));
    mixInt(static_cast<long long>(r.exposedFillCycles));
    return h;
}

LayerCache &
LayerCache::instance()
{
    static LayerCache cache;
    return cache;
}

} // namespace cfconv::tpusim
