#include "tpusim/layer_cache.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace cfconv::tpusim {

namespace {

void
appendInt(std::string &key, long long v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld|", v);
    key += buf;
}

void
appendFloat(std::string &key, double v)
{
    char buf[40];
    // %.17g round-trips doubles, so distinct values get distinct keys.
    std::snprintf(buf, sizeof(buf), "%.17g|", v);
    key += buf;
}

void
appendConfig(std::string &key, const TpuConfig &config)
{
    appendInt(key, config.array.rows);
    appendInt(key, config.array.cols);
    appendInt(key, config.array.weightLoadOverlapped ? 1 : 0);
    appendInt(key, config.mxus);
    appendFloat(key, config.clockGhz);
    appendInt(key, config.vectorMemories);
    appendInt(key, config.wordElems);
    appendInt(key, static_cast<long long>(config.elemBytes));
    appendInt(key, static_cast<long long>(config.onChipBytes));
    appendInt(key, static_cast<long long>(config.invokeOverheadCycles));
    const dram::DramConfig &d = config.dram;
    appendInt(key, d.channels);
    appendInt(key, d.banksPerChannel);
    appendInt(key, static_cast<long long>(d.rowBytes));
    appendInt(key, static_cast<long long>(d.busBytesPerCycle));
    appendInt(key, static_cast<long long>(d.tPrecharge));
    appendInt(key, static_cast<long long>(d.tActivate));
    appendInt(key, static_cast<long long>(d.tCas));
    appendFloat(key, d.clockGhz);
    appendInt(key, static_cast<long long>(d.pagePolicy));
    appendInt(key, static_cast<long long>(d.mapping));
}

void
appendParams(std::string &key, const tensor::ConvParams &p)
{
    appendInt(key, p.batch);
    appendInt(key, p.inChannels);
    appendInt(key, p.inH);
    appendInt(key, p.inW);
    appendInt(key, p.outChannels);
    appendInt(key, p.kernelH);
    appendInt(key, p.kernelW);
    appendInt(key, p.strideH);
    appendInt(key, p.strideW);
    appendInt(key, p.padH);
    appendInt(key, p.padW);
    appendInt(key, p.dilationH);
    appendInt(key, p.dilationW);
    appendInt(key, static_cast<long long>(p.dataType));
}

} // namespace

std::string
layerCacheKey(const TpuConfig &config, const tensor::ConvParams &params,
              const TpuRunOptions &options)
{
    std::string key = "conv|";
    key.reserve(256);
    appendParams(key, params);
    appendInt(key, static_cast<long long>(options.algorithm));
    appendInt(key, options.multiTileOverride);
    appendInt(key, static_cast<long long>(options.dramLayout));
    appendInt(key, options.detailedDram ? 1 : 0);
    appendFloat(key, options.explicitTransformSeconds);
    appendInt(key, options.captureTrace ? 1 : 0);
    appendInt(key, options.spaceToDepthFirstLayer ? 1 : 0);
    appendConfig(key, config);
    return key;
}

std::string
gemmCacheKey(const TpuConfig &config, Index m, Index k, Index n,
             DataType dtype)
{
    std::string key = "gemm|";
    key.reserve(192);
    appendInt(key, m);
    appendInt(key, k);
    appendInt(key, n);
    appendInt(key, static_cast<long long>(dtype));
    appendConfig(key, config);
    return key;
}

LayerCache::LayerCache()
{
    if (const char *env = std::getenv("CFCONV_LAYER_CACHE"))
        enabled_.store(env[0] != '0');
}

LayerCache &
LayerCache::instance()
{
    static LayerCache cache;
    return cache;
}

bool
LayerCache::lookup(const std::string &key, TpuLayerResult *out)
{
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            *out = it->second;
            ++hits_;
            return true;
        }
    }
    ++misses_;
    return false;
}

void
LayerCache::insert(const std::string &key, const TpuLayerResult &result)
{
    std::unique_lock<std::shared_mutex> lock(mutex_);
    entries_[key] = result;
}

void
LayerCache::clear()
{
    std::unique_lock<std::shared_mutex> lock(mutex_);
    entries_.clear();
    hits_.store(0);
    misses_.store(0);
}

std::uint64_t
LayerCache::entries() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return entries_.size();
}

double
LayerCache::hitRate() const
{
    const std::uint64_t h = hits_.load(), m = misses_.load();
    return h + m == 0
        ? 0.0
        : static_cast<double>(h) / static_cast<double>(h + m);
}

StatGroup
LayerCache::statsSnapshot() const
{
    StatGroup g;
    g.add("layer_cache.hits", static_cast<double>(hits()));
    g.add("layer_cache.misses", static_cast<double>(misses()));
    g.add("layer_cache.entries", static_cast<double>(entries()));
    return g;
}

} // namespace cfconv::tpusim
