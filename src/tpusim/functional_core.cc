#include "tpusim/functional_core.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "common/trace.h"
#include "tensor/im2col_explicit.h"
#include "tensor/microkernel.h"

namespace cfconv::tpusim {

FunctionalTpuCore::FunctionalTpuCore(Index array_rows, Index array_cols,
                                     Index word_elems)
    : arrayRows_(array_rows), arrayCols_(array_cols),
      wordElems_(word_elems)
{
    CFCONV_FATAL_IF(array_rows < 1 || array_cols < 1 || word_elems < 1,
                    "FunctionalTpuCore: bad configuration");
}

FunctionalRunResult
FunctionalTpuCore::runConv(const ConvParams &params, const Tensor &input,
                           const Tensor &filter, Index tiles_per_group)
{
    params.validate();
    CFCONV_FATAL_IF(params.inChannels * tiles_per_group > arrayRows_,
                    "FunctionalTpuCore: C_I * T = %lld exceeds array "
                    "rows %lld",
                    static_cast<long long>(params.inChannels *
                                           tiles_per_group),
                    static_cast<long long>(arrayRows_));
    CFCONV_FATAL_IF(params.outChannels > arrayCols_,
                    "FunctionalTpuCore: C_O exceeds array columns");

    const Index m_dim = params.gemmM();
    const Index w = wordElems_;
    const im2col::MultiTilePlan plan =
        im2col::planMultiTile(params, tiles_per_group);

    Matrix acc(m_dim, params.gemmN());
    acc.fill(0.0f);

    FunctionalRunResult result{
        Tensor(1, 1, 1, 1), false, 0, 0, 0};

    systolic::SystolicArray array(arrayRows_, arrayCols_);

    // One simulated-cycles row for the array passes (serializer feeds)
    // and one for the de-serializer writebacks: the two phases overlap,
    // so they would collide on a single track. Tile-group rounds are
    // laid out back to back.
    TRACE_SCOPE_DYN("tpusim",
                    "functional conv " +
                        std::to_string(params.inChannels) + "->" +
                        std::to_string(params.outChannels));
    trace::SimTrack array_row;
    trace::SimTrack deser_row;
    if (trace::enabled()) {
        array_row = trace::simTrack("functional array");
        deser_row = trace::simTrack("functional de-serializer");
    }
    Cycles round_start = 0;
    double round = 0.0;

    for (const auto &group : plan.groups) {
        const Matrix a = im2col::groupOperand(params, input, group);
        const Matrix b = im2col::groupWeights(params, filter, group);
        const Index k_dim = a.cols();

        // One vector memory per active PE row. The IFMap occupies word
        // addresses [0, words_in); the OFMap region starts above it.
        const Index words_in = divCeil(m_dim, w);
        sram::VectorMemoryConfig vm_cfg;
        vm_cfg.wordElems = w;
        vm_cfg.elemBytes = 4;
        vm_cfg.capacityBytes =
            static_cast<Bytes>(2 * words_in * w) * vm_cfg.elemBytes;
        std::vector<sram::VectorMemory> vmems;
        vmems.reserve(static_cast<size_t>(arrayRows_));
        for (Index i = 0; i < arrayRows_; ++i)
            vmems.emplace_back(vm_cfg);

        // Prefill: vector memory k holds column k of the merged operand
        // (its channel/tile lane), in HWCN word order.
        for (Index k = 0; k < k_dim; ++k) {
            for (Index word = 0; word < words_in; ++word) {
                std::vector<float> data(static_cast<size_t>(w), 0.0f);
                for (Index e = 0; e < w; ++e) {
                    const Index m = word * w + e;
                    if (m < m_dim)
                        data[static_cast<size_t>(e)] = a.at(m, k);
                }
                vmems[static_cast<size_t>(k)].writeWord(word, data, 0);
            }
        }
        for (auto &vm : vmems)
            vm.resetStats();

        array.loadWeights(b);

        // Serializer state per row, plus the exact cycles each port is
        // busy with a read (for scheduling the interleaved writes).
        std::vector<std::vector<float>> ser_buf(
            static_cast<size_t>(k_dim));
        std::vector<std::set<Cycles>> busy(
            static_cast<size_t>(arrayRows_));

        systolic::ActivationProvider provider =
            [&](Index k, Cycles t) -> float {
            const Index m = static_cast<Index>(t) - k;
            if (k >= k_dim || m < 0 || m >= m_dim)
                return 0.0f;
            auto &buf = ser_buf[static_cast<size_t>(k)];
            if (m % w == 0) {
                buf = vmems[static_cast<size_t>(k)].readWord(m / w, t);
                busy[static_cast<size_t>(k)].insert(t);
            }
            return buf[static_cast<size_t>(m % w)];
        };

        const Matrix out = array.runWithProvider(provider, m_dim);
        const Cycles group_cycles = array.lastRunCycles();
        result.cycles += group_cycles;

        // De-serializer: output column j (of array column j) produces
        // C[m][j] at cycle m + j + k_dim - 1; after w results a word
        // write is due. Schedule each write at the first port-free cycle
        // at or after it becomes ready. Column j's results are stored in
        // vector memory j % arrayRows_ above the IFMap region.
        Cycles deser_last = 0;
        for (Index j = 0; j < b.cols(); ++j) {
            const Index target = j % arrayRows_;
            auto &busy_set = busy[static_cast<size_t>(target)];
            for (Index word = 0; word < words_in; ++word) {
                const Index m_last =
                    std::min(word * w + w - 1, m_dim - 1);
                Cycles ready = static_cast<Cycles>(
                    m_last + j + k_dim - 1) + 1;
                while (busy_set.count(ready))
                    ++ready;
                busy_set.insert(ready);
                deser_last = std::max(deser_last, ready);

                std::vector<float> data(static_cast<size_t>(w), 0.0f);
                for (Index e = 0; e < w; ++e) {
                    const Index m = word * w + e;
                    if (m < m_dim)
                        data[static_cast<size_t>(e)] = out.at(m, j);
                }
                const Index dest = words_in + (j / arrayRows_) * words_in
                                   + word;
                vmems[static_cast<size_t>(target)].writeWord(
                    dest % vm_cfg.words(), data, ready);
            }
        }

        bool group_conflict = false;
        for (const auto &vm : vmems) {
            group_conflict |= vm.hadPortConflict();
            result.vecMemReads += vm.readCount();
            result.vecMemWrites += vm.writeCount();
        }
        result.portConflict |= group_conflict;

        if (array_row.active()) {
            trace::simSpan(array_row, "array pass", round_start,
                           group_cycles,
                           {{"round", round},
                            {"k", static_cast<double>(k_dim)}});
            trace::simSpan(deser_row, "de-serialize", round_start,
                           deser_last);
            if (group_conflict)
                trace::simInstant(deser_row, "port conflict",
                                  round_start + deser_last);
        }
        round_start += std::max(group_cycles, deser_last);
        round += 1.0;

        // Partial-sum accumulation across tile groups: one add per
        // element either way, so the vectorized form is bit-exact.
        tensor::vectorAddInto(acc.data(), out.data(),
                              m_dim * params.gemmN());
    }

    result.output = tensor::foldOutput(params, acc);
    return result;
}

} // namespace cfconv::tpusim
