#include "tpusim/energy.h"

namespace cfconv::tpusim {

TpuEnergyReport
layerEnergy(const TpuConfig &config, const TpuLayerResult &result)
{
    TpuEnergyReport e;
    e.dramPj = static_cast<double>(result.dramBytes) *
               sram::kDramPjPerByte;

    sram::SramEnergyModel sram_model(config.elemBytes);
    const double per_access =
        sram_model.accessPj(config.perArrayBytes(), config.wordElems);
    e.sramPj = static_cast<double>(result.vecMemOps) * per_access;

    const double macs = result.tflops * 1e12 * result.seconds / 2.0;
    e.macPj = macs * sram::kMacPj;

    e.totalPj = e.dramPj + e.sramPj + e.macPj;
    e.pjPerMac = macs > 0.0 ? e.totalPj / macs : 0.0;
    return e;
}

} // namespace cfconv::tpusim
