/**
 * @file
 * TPU-v2-like core configuration (Table II): 128x128 weight-stationary
 * systolic array at 700 MHz, 32 MB unified on-chip memory organized as
 * 128 single-port vector memories with 8-element (32-byte) words, fed by
 * ~700 GB/s HBM.
 */

#ifndef CFCONV_TPUSIM_TPU_CONFIG_H
#define CFCONV_TPUSIM_TPU_CONFIG_H

#include "common/config.h"
#include "dram/dram_model.h"
#include "sram/vector_memory.h"
#include "systolic/systolic_timing.h"

namespace cfconv::tpusim {

/** Full configuration of one simulated TPU core. */
struct TpuConfig
{
    systolic::SystolicConfig array{};      ///< 128 x 128 by default
    /**
     * Matrix units sharing the vector memories. TPU-v3 adds a second
     * systolic array to use the port bandwidth an 8-element word
     * leaves idle (Fig 16b's closing insight); compute throughput
     * scales until the single-port vector memories saturate.
     */
    Index mxus = 1;
    double clockGhz = 0.7;                 ///< core clock
    Index vectorMemories = 128;            ///< one per PE row
    Index wordElems = 8;                   ///< elements per SRAM word
    Bytes elemBytes = 4;                   ///< vector-memory element width
    Bytes onChipBytes = 32ULL * 1024 * 1024; ///< unified SRAM capacity
    /** Fixed per-invocation overhead (dispatch, sync) in core cycles. */
    Cycles invokeOverheadCycles = 1400;
    dram::DramConfig dram = dram::DramConfig::hbm700();

    /** Capacity of one vector memory. */
    Bytes
    perArrayBytes() const
    {
        return onChipBytes / static_cast<Bytes>(vectorMemories);
    }

    /** Peak MAC throughput in TFLOPS (2 flops per MAC). */
    double
    peakTflops() const
    {
        return 2.0 * static_cast<double>(mxus) *
               static_cast<double>(array.rows) *
               static_cast<double>(array.cols) * clockGhz / 1e3;
    }

    /** Convert core cycles to seconds. */
    double
    cyclesToSeconds(Cycles cycles) const
    {
        return static_cast<double>(cycles) / (clockGhz * 1e9);
    }

    /** The published TPU-v2 single-core configuration. */
    static TpuConfig tpuV2();

    /**
     * A TPU-v3-like core: the v2 array with a second matrix unit
     * (using the port bandwidth an 8-element word leaves idle — the
     * Fig 16b insight), a faster clock, and HBM at ~900 GB/s. "ish"
     * because the real v3's full parameters are not public.
     */
    static TpuConfig tpuV3ish();
};

/**
 * Override @p base with keys from a configuration file. Recognized
 * keys: array, clock_ghz, word_elems, elem_bytes, onchip_mb,
 * dram_gbps, invoke_overhead_cycles. Fatal on unknown keys so typos
 * surface.
 */
TpuConfig tpuConfigFrom(const Config &config,
                        TpuConfig base = TpuConfig::tpuV2());

} // namespace cfconv::tpusim

#endif // CFCONV_TPUSIM_TPU_CONFIG_H
