/**
 * @file
 * TPUSim: the configurable tile-level TPU performance simulator
 * (Sec. VI). Maps convolutions onto the systolic array with the
 * channel-first implicit algorithm (multi-tile, HWCN vector-memory
 * layout, double-buffered DRAM fills overlapped with compute), and also
 * models the channel-last and explicit-im2col baselines for the
 * motivation experiments (Figs 2b, 4b, 8b).
 */

#ifndef CFCONV_TPUSIM_TPU_SIM_H
#define CFCONV_TPUSIM_TPU_SIM_H

#include <string>
#include <vector>

#include "im2col/multi_tile.h"
#include "models/model_zoo.h"
#include "tensor/conv_params.h"
#include "tensor/layout.h"
#include "tpusim/tpu_config.h"

namespace cfconv::tpusim {

using tensor::ConvParams;

/**
 * Which lowering algorithm the simulated core runs. The enum value is
 * serialized into layer memo-cache keys, so new algorithms append at
 * the end — never reorder.
 */
enum class ConvAlgorithm {
    ChannelFirst, ///< the paper's implicit channel-first algorithm
    ChannelLast,  ///< Lym-style implicit channel-last (stride-sensitive)
    Explicit,     ///< explicit im2col: transform then GEMM
    Indirect,     ///< indirection-buffer pointer GEMM (Dukhan)
    Smm,          ///< SMM-Conv scalar-matrix multiply (unit stride only)
};

/** Per-run knobs. */
struct TpuRunOptions
{
    ConvAlgorithm algorithm = ConvAlgorithm::ChannelFirst;
    /** 0 = use the inferred TPU strategy MIN(rows/C_I, W_F). */
    Index multiTileOverride = 0;
    /** DRAM layout of the IFMap. */
    tensor::Layout dramLayout = tensor::Layout::HWCN;
    /** Service fills through the banked DRAM model (vs closed form). */
    bool detailedDram = true;
    /**
     * Seconds spent on the explicit transformation (Explicit algorithm
     * only); the paper estimates this from GPU measurements for Fig 2b.
     */
    double explicitTransformSeconds = 0.0;
    /** Capture the per-unit schedule into TpuLayerResult::trace. */
    bool captureTrace = false;
    /**
     * Rewrite shallow stride-2k first layers with space-to-depth
     * before mapping (what production TPU stacks do for C_I = 3
     * stems); quadruples systolic-row occupancy per pass.
     */
    bool spaceToDepthFirstLayer = false;
};

/** One schedule unit as executed: a DRAM fill phase overlapped with
 *  the previous unit's compute, then this unit's compute passes. */
struct UnitTrace
{
    Cycles fill = 0;
    Cycles compute = 0;
};

/** Result of simulating one layer (or one GEMM). */
struct TpuLayerResult
{
    Cycles cycles = 0;
    double seconds = 0.0;
    double tflops = 0.0;           ///< useful FLOPs / second
    double arrayUtilization = 0.0; ///< MACs / (cycles * rows * cols)
    Bytes dramBytes = 0;           ///< total off-chip traffic
    Index multiTile = 1;           ///< multi-tile parameter used
    double portUtilization = 0.0;  ///< vector-memory port busy fraction
    Bytes peakOnChipBytes = 0;     ///< peak IFMap workspace on chip
    Index vecMemOps = 0;           ///< vector-memory word accesses
    Cycles computeCycles = 0;      ///< engine-busy cycles
    Cycles fillCycles = 0;         ///< total DRAM fill cycles
    Cycles exposedFillCycles = 0;  ///< fill cycles not hidden by compute
    /** Per-unit schedule (only when TpuRunOptions::captureTrace). */
    std::vector<UnitTrace> trace;
};

/** Result of simulating a whole model. */
struct TpuModelResult
{
    std::string model;
    std::vector<TpuLayerResult> layers; ///< one entry per distinct layer
    double seconds = 0.0;               ///< total incl. repetitions
    double tflops = 0.0;
};

/** The TPU performance simulator. */
class TpuSim
{
  public:
    explicit TpuSim(const TpuConfig &config);

    const TpuConfig &config() const { return config_; }

    /** Simulate one convolution layer. */
    TpuLayerResult runConv(const ConvParams &params,
                           const TpuRunOptions &options = {}) const;

    /**
     * Simulate a grouped convolution mapped block-diagonally: each
     * weight-stationary pass packs as many group slices as fit in the
     * array (rows and columns), so depthwise layers cost
     * ~H_F*W_F * ceil(C_I/rows) passes instead of one GEMM per
     * channel. Wasted MACs (the off-diagonal zeros) show up as low
     * utilization, which is the honest depthwise penalty.
     */
    TpuLayerResult runGroupedConv(const ConvParams &base, Index groups,
                                  const TpuRunOptions &options =
                                      {}) const;

    /** Simulate a plain GEMM (validation microbenchmarks, Fig 13a). */
    TpuLayerResult runGemm(Index m, Index k, Index n,
                           DataType dtype = DataType::Bf16) const;

    /** Simulate all conv layers of @p model. */
    TpuModelResult runModel(const models::ModelSpec &model,
                            const TpuRunOptions &options = {}) const;

    /**
     * Simulate @p model on a multi-core board (e.g. the 8-core cloud
     * TPU-v2) with the batch split data-parallel across cores; weights
     * are broadcast, activations stay core-local.
     *
     * Deprecated: multi-core execution is generalized behind the
     * Accelerator API by serve::runModelDataParallel (any backend, and
     * the serving scheduler's multi-chip dispatch builds on it); this
     * TPU-only entry point remains as a thin byte-identical
     * compatibility wrapper over the shared
     * models::splitBatchAcrossCores slicing rule (parity-tested in
     * tests/serve/test_multi_chip.cc). Prefer the serve path in new
     * code.
     */
    TpuModelResult runModelMultiCore(const models::ModelSpec &model,
                                     Index cores,
                                     const TpuRunOptions &options =
                                         {}) const;

  private:
    /** One schedulable unit: a DRAM fill followed by compute passes. */
    struct Unit
    {
        Cycles compute = 0;
        Cycles fill = 0;
        Flops macs = 0;
        Index portOps = 0; ///< vector-memory reads+writes in this unit
    };

    /** runConv body, bypassing the layer memo cache. */
    TpuLayerResult runConvUncached(const ConvParams &params,
                                   const TpuRunOptions &options) const;

    TpuLayerResult scheduleUnits(const std::vector<Unit> &units,
                                 Flops total_flops,
                                 bool capture_trace = false) const;

    Cycles dramCycles(Bytes bytes, double efficiency) const;

    /** Core cycles to fill one decomposed tile's footprint from DRAM. */
    Cycles tileFillCoreCycles(const ConvParams &params,
                              const im2col::FilterTile &tile,
                              tensor::Layout layout,
                              bool detailed) const;

    TpuLayerResult runChannelFirst(const ConvParams &params,
                                   const TpuRunOptions &options) const;
    TpuLayerResult runChannelLast(const ConvParams &params,
                                  const TpuRunOptions &options) const;
    TpuLayerResult runExplicit(const ConvParams &params,
                               const TpuRunOptions &options) const;
    TpuLayerResult runIndirect(const ConvParams &params,
                               const TpuRunOptions &options) const;
    TpuLayerResult runSmm(const ConvParams &params,
                          const TpuRunOptions &options) const;

    TpuConfig config_;
};

} // namespace cfconv::tpusim

#endif // CFCONV_TPUSIM_TPU_SIM_H
