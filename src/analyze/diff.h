/**
 * @file
 * Cross-trace comparison of two analyses (analyze/analysis.h): the
 * paper's side-by-side tables as code. Timelines align by their
 * normalized signature ("3x3 64->64"), which drops the lowering word
 * and the TPU-only M= tail, so one recorded ResNet run on tpu-v2
 * lines up layer-for-layer against the same model on gpu-v100, and a
 * channel-first run lines up against an im2col or indirect run of the
 * same network. Aligned rows report cycle-ratio and
 * overlap/exposed-fill deltas; layers present on only one side are
 * listed, never silently dropped — a diff that hides missing layers
 * reads as "same shape" when it is not.
 */

#ifndef CFCONV_ANALYZE_DIFF_H
#define CFCONV_ANALYZE_DIFF_H

#include <cstddef>
#include <string>
#include <vector>

#include "analyze/analysis.h"

namespace cfconv::analyze {

/** One aligned (or one-sided) pair of timelines. */
struct DiffRow
{
    std::string signature; ///< the shared identity
    std::string leftKey;   ///< raw label on the left ("" if absent)
    std::string rightKey;  ///< raw label on the right ("" if absent)

    double leftSpanCycles = 0.0;
    double rightSpanCycles = 0.0;
    double spanRatio = 0.0; ///< right / left (speedup < 1, slowdown > 1)

    double leftOverlapRatio = 0.0;
    double rightOverlapRatio = 0.0;
    double overlapDelta = 0.0; ///< right - left

    double leftExposedFillFrac = 0.0;
    double rightExposedFillFrac = 0.0;
    double exposedFillDelta = 0.0; ///< right - left

    bool leftFillBound = false;
    bool rightFillBound = false;
};

/** Side-by-side resilience totals: chaos events plus the serving
 *  breaker/hedge/degradation rollup. Present (any == true) when
 *  either trace recorded resilience activity, so diffs of two stock
 *  traces stay byte-identical to the pre-resilience format. */
struct ResilienceDiff
{
    bool any = false;

    std::size_t leftFaults = 0, rightFaults = 0;
    std::size_t leftFailovers = 0, rightFailovers = 0;
    std::size_t leftChipDown = 0, rightChipDown = 0;

    std::size_t leftTrips = 0, rightTrips = 0;
    std::size_t leftProbes = 0, rightProbes = 0;
    std::size_t leftCloses = 0, rightCloses = 0;
    double leftOpenTicks = 0.0, rightOpenTicks = 0.0;
    std::size_t leftHedgeWins = 0, rightHedgeWins = 0;
    std::size_t leftHedgeLosses = 0, rightHedgeLosses = 0;
    int leftMaxStep = 0, rightMaxStep = 0;
    std::size_t leftDegradeTransitions = 0;
    std::size_t rightDegradeTransitions = 0;
};

/** The whole comparison: aligned rows plus both one-sided lists. */
struct AnalysisDiff
{
    std::vector<DiffRow> aligned;   ///< sorted by signature
    std::vector<DiffRow> leftOnly;  ///< sorted by signature
    std::vector<DiffRow> rightOnly; ///< sorted by signature

    CriticalPathBreakdown left;  ///< run-level rollup, left trace
    CriticalPathBreakdown right; ///< run-level rollup, right trace

    ResilienceDiff resilience; ///< chaos + serving-resilience totals

    /** Geometric-mean right/left span ratio over aligned rows with
     *  nonzero spans on both sides (0 when none align). */
    double spanRatioGeoMean = 0.0;
    /** Mean right-left overlap-ratio delta over aligned rows. */
    double overlapDeltaMean = 0.0;
    /** Rows whose fill/compute boundedness flips between sides. */
    std::size_t boundednessFlips = 0;
};

/** Align @p left against @p right by timeline signature. Pure. */
AnalysisDiff diffAnalyses(const TraceAnalysis &left,
                          const TraceAnalysis &right);

} // namespace cfconv::analyze

#endif // CFCONV_ANALYZE_DIFF_H
