/**
 * @file
 * Cross-trace comparison of two analyses (analyze/analysis.h): the
 * paper's side-by-side tables as code. Timelines align by their
 * normalized signature ("3x3 64->64"), which drops the lowering word
 * and the TPU-only M= tail, so one recorded ResNet run on tpu-v2
 * lines up layer-for-layer against the same model on gpu-v100, and a
 * channel-first run lines up against an im2col or indirect run of the
 * same network. Aligned rows report cycle-ratio and
 * overlap/exposed-fill deltas; layers present on only one side are
 * listed, never silently dropped — a diff that hides missing layers
 * reads as "same shape" when it is not.
 */

#ifndef CFCONV_ANALYZE_DIFF_H
#define CFCONV_ANALYZE_DIFF_H

#include <cstddef>
#include <string>
#include <vector>

#include "analyze/analysis.h"

namespace cfconv::analyze {

/** One aligned (or one-sided) pair of timelines. */
struct DiffRow
{
    std::string signature; ///< the shared identity
    std::string leftKey;   ///< raw label on the left ("" if absent)
    std::string rightKey;  ///< raw label on the right ("" if absent)

    double leftSpanCycles = 0.0;
    double rightSpanCycles = 0.0;
    double spanRatio = 0.0; ///< right / left (speedup < 1, slowdown > 1)

    double leftOverlapRatio = 0.0;
    double rightOverlapRatio = 0.0;
    double overlapDelta = 0.0; ///< right - left

    double leftExposedFillFrac = 0.0;
    double rightExposedFillFrac = 0.0;
    double exposedFillDelta = 0.0; ///< right - left

    bool leftFillBound = false;
    bool rightFillBound = false;
};

/** The whole comparison: aligned rows plus both one-sided lists. */
struct AnalysisDiff
{
    std::vector<DiffRow> aligned;   ///< sorted by signature
    std::vector<DiffRow> leftOnly;  ///< sorted by signature
    std::vector<DiffRow> rightOnly; ///< sorted by signature

    CriticalPathBreakdown left;  ///< run-level rollup, left trace
    CriticalPathBreakdown right; ///< run-level rollup, right trace

    /** Geometric-mean right/left span ratio over aligned rows with
     *  nonzero spans on both sides (0 when none align). */
    double spanRatioGeoMean = 0.0;
    /** Mean right-left overlap-ratio delta over aligned rows. */
    double overlapDeltaMean = 0.0;
    /** Rows whose fill/compute boundedness flips between sides. */
    std::size_t boundednessFlips = 0;
};

/** Align @p left against @p right by timeline signature. Pure. */
AnalysisDiff diffAnalyses(const TraceAnalysis &left,
                          const TraceAnalysis &right);

} // namespace cfconv::analyze

#endif // CFCONV_ANALYZE_DIFF_H
