#include "analyze/diff.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace cfconv::analyze {

namespace {

/** Fill one side of the resilience comparison from its analysis. */
void
resilienceSide(const TraceAnalysis &a, bool onLeft, ResilienceDiff &d)
{
    const auto put = [onLeft](auto &left, auto &right, auto value) {
        (onLeft ? left : right) = value;
    };
    put(d.leftFaults, d.rightFaults, a.resilience.faults);
    put(d.leftFailovers, d.rightFailovers, a.resilience.failovers);
    put(d.leftChipDown, d.rightChipDown,
        a.resilience.chipDownEvents);
    std::size_t trips = 0, probes = 0, closes = 0;
    double openTicks = 0.0;
    for (const auto &c : a.serving.chips) {
        trips += c.trips;
        probes += c.probes;
        closes += c.closes;
        openTicks += c.openTicks;
    }
    put(d.leftTrips, d.rightTrips, trips);
    put(d.leftProbes, d.rightProbes, probes);
    put(d.leftCloses, d.rightCloses, closes);
    put(d.leftOpenTicks, d.rightOpenTicks, openTicks);
    put(d.leftHedgeWins, d.rightHedgeWins, a.serving.hedgeWins);
    put(d.leftHedgeLosses, d.rightHedgeLosses,
        a.serving.hedgeLosses);
    int maxStep = 0;
    std::size_t transitions = 0;
    for (const auto &occ : a.serving.degradation) {
        maxStep = std::max(maxStep, occ.maxStep);
        transitions += occ.transitions;
    }
    put(d.leftMaxStep, d.rightMaxStep, maxStep);
    put(d.leftDegradeTransitions, d.rightDegradeTransitions,
        transitions);
}

DiffRow
oneSided(const TimelineAnalysis &t, bool onLeft)
{
    DiffRow row;
    row.signature = t.signature;
    (onLeft ? row.leftKey : row.rightKey) = t.key;
    (onLeft ? row.leftSpanCycles : row.rightSpanCycles) = t.spanCycles;
    (onLeft ? row.leftOverlapRatio : row.rightOverlapRatio) =
        t.overlapRatio;
    (onLeft ? row.leftExposedFillFrac : row.rightExposedFillFrac) =
        t.exposedFillFrac;
    (onLeft ? row.leftFillBound : row.rightFillBound) = t.fillBound;
    return row;
}

} // namespace

AnalysisDiff
diffAnalyses(const TraceAnalysis &left, const TraceAnalysis &right)
{
    AnalysisDiff diff;
    diff.left = left.criticalPath;
    diff.right = right.criticalPath;
    diff.resilience.any = left.hasResilience ||
                          left.hasServingResilience ||
                          right.hasResilience ||
                          right.hasServingResilience;
    if (diff.resilience.any) {
        resilienceSide(left, /*onLeft=*/true, diff.resilience);
        resilienceSide(right, /*onLeft=*/false, diff.resilience);
    }

    // Signatures are unique within one analysis (the analyzer
    // suffixes collisions), so a plain map is a faithful index.
    std::map<std::string, const TimelineAnalysis *> rightBySig;
    for (const auto &t : right.timelines)
        rightBySig[t.signature] = &t;

    std::map<std::string, bool> rightMatched;
    double logRatioSum = 0.0;
    std::size_t ratioCount = 0;
    double overlapDeltaSum = 0.0;

    for (const auto &t : left.timelines) {
        auto it = rightBySig.find(t.signature);
        if (it == rightBySig.end()) {
            diff.leftOnly.push_back(oneSided(t, /*onLeft=*/true));
            continue;
        }
        rightMatched[t.signature] = true;
        const TimelineAnalysis &r = *it->second;

        DiffRow row;
        row.signature = t.signature;
        row.leftKey = t.key;
        row.rightKey = r.key;
        row.leftSpanCycles = t.spanCycles;
        row.rightSpanCycles = r.spanCycles;
        if (t.spanCycles > 0.0 && r.spanCycles > 0.0) {
            row.spanRatio = r.spanCycles / t.spanCycles;
            logRatioSum += std::log(row.spanRatio);
            ++ratioCount;
        }
        row.leftOverlapRatio = t.overlapRatio;
        row.rightOverlapRatio = r.overlapRatio;
        row.overlapDelta = r.overlapRatio - t.overlapRatio;
        overlapDeltaSum += row.overlapDelta;
        row.leftExposedFillFrac = t.exposedFillFrac;
        row.rightExposedFillFrac = r.exposedFillFrac;
        row.exposedFillDelta = r.exposedFillFrac - t.exposedFillFrac;
        row.leftFillBound = t.fillBound;
        row.rightFillBound = r.fillBound;
        if (row.leftFillBound != row.rightFillBound)
            ++diff.boundednessFlips;
        diff.aligned.push_back(std::move(row));
    }
    for (const auto &t : right.timelines)
        if (!rightMatched.count(t.signature))
            diff.rightOnly.push_back(oneSided(t, /*onLeft=*/false));

    const auto bySig = [](const DiffRow &x, const DiffRow &y) {
        return x.signature < y.signature;
    };
    std::sort(diff.aligned.begin(), diff.aligned.end(), bySig);
    std::sort(diff.leftOnly.begin(), diff.leftOnly.end(), bySig);
    std::sort(diff.rightOnly.begin(), diff.rightOnly.end(), bySig);

    if (ratioCount > 0)
        diff.spanRatioGeoMean =
            std::exp(logRatioSum / static_cast<double>(ratioCount));
    if (!diff.aligned.empty())
        diff.overlapDeltaMean =
            overlapDeltaSum / static_cast<double>(diff.aligned.size());
    return diff;
}

} // namespace cfconv::analyze
