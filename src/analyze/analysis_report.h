/**
 * @file
 * Emission half of the trace analyzer: the versioned
 * "cfconv.trace_analysis" / "cfconv.trace_analysis_diff" JSON
 * documents tools consume, and the human-readable tables
 * (common/table) the trace_analyze CLI prints. Emission is a pure
 * function of the analysis structs — all container iteration is over
 * pre-sorted vectors and std::maps — so the same analysis always
 * renders to the same bytes, which is what the determinism gate
 * (scripts/check_analyze.sh) byte-compares.
 */

#ifndef CFCONV_ANALYZE_ANALYSIS_REPORT_H
#define CFCONV_ANALYZE_ANALYSIS_REPORT_H

#include <cstdio>
#include <string>

#include "analyze/analysis.h"
#include "analyze/diff.h"

namespace cfconv::analyze {

/** Schema stamped into every analysis document. Version 2 adds the
 *  serving-resilience section (breaker timelines, hedge tallies,
 *  degradation occupancy); documents without it still stamp version
 *  1, so stock-trace output is byte-identical across releases. */
inline constexpr const char kAnalysisSchema[] = "cfconv.trace_analysis";
inline constexpr const char kDiffSchema[] = "cfconv.trace_analysis_diff";
inline constexpr int kAnalysisSchemaVersion = 2;
inline constexpr int kAnalysisSchemaBaseVersion = 1;

/** The full analysis as a "cfconv.trace_analysis" v1 JSON document
 *  (trailing newline included). */
std::string analysisJson(const TraceAnalysis &a);

/** The comparison as a "cfconv.trace_analysis_diff" v1 JSON document
 *  (embeds both sides' critical paths, not the full analyses). */
std::string diffJson(const AnalysisDiff &d);

/** Print the per-timeline / critical-path / serving / wall tables. */
void printAnalysis(const TraceAnalysis &a, std::FILE *out = stdout);

/** Print the aligned-delta and one-sided tables. */
void printDiff(const AnalysisDiff &d, std::FILE *out = stdout);

/** One-line machine-greppable summary, e.g.
 *  "ANALYZE file.trace timelines=53 overlap=0.42 exposed_fill=0.31". */
std::string analysisHeadline(const std::string &label,
                             const TraceAnalysis &a);

/** One-line diff summary, e.g.
 *  "DIFF aligned=53 left_only=0 right_only=2 span_ratio_gmean=1.73". */
std::string diffHeadline(const AnalysisDiff &d);

} // namespace cfconv::analyze

#endif // CFCONV_ANALYZE_ANALYSIS_REPORT_H
