/**
 * @file
 * Offline analytics over a parsed trace (analyze/trace_model.h): the
 * paper's characterization methodology as code. From the
 * simulated-cycles clock domain it reconstructs each layer's
 * fill/compute timeline (the TPU's double-buffered unit pipeline, the
 * GPU's smem-fill/MAC step pipeline) and computes the numbers the
 * paper reads off Figs 9-14 by hand: how many fill cycles hide under
 * compute (overlap ratio), how many are exposed on the critical path,
 * how much of the timeline is idle, and whether the layer is fill- or
 * compute-bound. Serving traces yield per-chip busy/down/idle
 * occupancy (outage instants attribute idle to faults); chaos traces
 * yield fault/failover counts. Resilient serving traces additionally
 * yield per-chip circuit-breaker timelines (trip/probe/close), hedge
 * win/loss tallies, and degradation-ladder step occupancy, so two
 * chaos runs can be diffed breaker-for-breaker. The wall-clock domain
 * contributes pool
 * queue-depth / active-worker utilization integrals and memo-cache
 * hit/miss activity.
 *
 * Determinism contract: everything outside the `wall` section is a
 * pure function of the simulated-cycle content of the trace, which
 * the simulators emit identically at any thread count — timelines are
 * grouped by track *label* (tid allocation order varies across
 * thread counts), sorted by content, and exact duplicates (concurrent
 * memo-cache misses recompute identical timelines) are collapsed. The
 * `wall` section integrates real timestamps and so varies run to run;
 * AnalyzeOptions::includeWall=false drops it, which is what the
 * byte-identity gate (scripts/check_analyze.sh) compares across
 * thread counts.
 */

#ifndef CFCONV_ANALYZE_ANALYSIS_H
#define CFCONV_ANALYZE_ANALYSIS_H

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "analyze/trace_model.h"

namespace cfconv::analyze {

/** Analyzer knobs (the trace_analyze CLI's wall=on|off). */
struct AnalyzeOptions
{
    /** Include the wall-clock section (pool counter integrals, cache
     *  activity, runner span tallies). Off for byte-identity
     *  comparisons: wall timestamps differ between runs. */
    bool includeWall = true;
};

/**
 * One reconstructed fill/compute timeline: a fill row paired with its
 * compute (TPU) or mac (GPU) row. All cycle fields are exact interval
 * arithmetic on the recorded spans; the identity
 * span == compute + exposedFill + idle holds by construction.
 */
struct TimelineAnalysis
{
    std::string key;       ///< track label minus the phase suffix
    std::string signature; ///< cross-backend identity (see timelineSignature)
    std::string kind;      ///< "conv", "gemm", or "other"
    std::string style;     ///< lowering word from the label, e.g. "cf-conv"
    std::string phases;    ///< "fill/compute" (TPU) or "fill/mac" (GPU)
    int instance = 0;      ///< ordinal among same-key timelines

    double spanCycles = 0.0;        ///< first start to last end
    double computeCycles = 0.0;     ///< union of compute spans
    double fillCycles = 0.0;        ///< union of fill spans
    double overlapCycles = 0.0;     ///< fill hidden under compute
    double exposedFillCycles = 0.0; ///< fill on the critical path
    double idleCycles = 0.0;        ///< neither filling nor computing

    std::size_t fillSpans = 0;    ///< fill segments (unit/tile structure)
    std::size_t computeSpans = 0; ///< compute segments (units simulated)

    double overlapRatio = 0.0;     ///< overlap / fill (1 = fully hidden)
    double computeFrac = 0.0;      ///< compute / span
    double exposedFillFrac = 0.0;  ///< exposedFill / span
    double idleFrac = 0.0;         ///< idle / span
    double fillResidency = 0.0;    ///< fill / span (fill-row occupancy)
    double computeResidency = 0.0; ///< compute / span
    bool fillBound = false;        ///< fill > compute (paper's memory-bound)
};

/** Run-level critical-path rollup over every conv/gemm timeline. */
struct CriticalPathBreakdown
{
    std::size_t timelines = 0;
    double spanCycles = 0.0;
    double computeCycles = 0.0;
    double fillCycles = 0.0;
    double overlapCycles = 0.0;
    double exposedFillCycles = 0.0;
    double idleCycles = 0.0;
    double overlapRatio = 0.0;    ///< Σoverlap / Σfill
    double computeFrac = 0.0;     ///< Σcompute / Σspan
    double exposedFillFrac = 0.0; ///< Σexposed / Σspan
    double idleFrac = 0.0;        ///< Σidle / Σspan
};

/** A simulated-cycles row that is not part of a fill/compute pair
 *  (functional-core rounds, chaos tracks, ...). */
struct GenericTrack
{
    std::string label;
    std::size_t spans = 0;
    std::size_t instants = 0;
    double busyCycles = 0.0; ///< union of the row's spans
    double spanCycles = 0.0; ///< first start to last end
};

/** Occupancy of one serving chip track ("serve chipN (variant)").
 *  A bench may run several serving scenarios in one trace session;
 *  each allocates fresh chip tracks (restarting the tick axis), so
 *  every track is its own occupancy row, tagged with the scenario
 *  ordinal its label occurrence implies (allocation order). */
struct ChipOccupancy
{
    std::string track;   ///< full track label
    int run = 0;         ///< scenario ordinal within the trace
    int chip = -1;       ///< chip index parsed from the label
    std::string variant; ///< accelerator variant parsed from the label
    std::size_t batches = 0; ///< batch spans served
    double requests = 0.0;   ///< Σ span "batch" args
    std::size_t outages = 0; ///< chip_down instants
    double busyTicks = 0.0;  ///< serving batches
    double downTicks = 0.0;  ///< in outage repair (from instant args)
    double idleTicks = 0.0;  ///< makespan - busy - down
    double makespanTicks = 0.0; ///< fleet-wide last span end, same run
    double occupancy = 0.0;     ///< busy / makespan
};

/** Chaos activity read back from the resilience instants. */
struct ResilienceEvents
{
    std::size_t faults = 0;
    std::size_t failovers = 0;
    std::size_t chipDownEvents = 0;
};

/** One circuit-breaker state change on a chip track, in tick order.
 *  State is "open" (trip), "probe" (half-open canary dispatch), or
 *  "closed" (canary quota met, chip restored). */
struct BreakerEvent
{
    double tick = 0.0;
    std::string state;
};

/** Per-chip serving-resilience activity: breaker events and hedge
 *  outcomes read off the chip's serving track. Rows exist only for
 *  chips with at least one event, so stock serving traces produce
 *  none. */
struct ChipResilience
{
    std::string track;   ///< full track label
    int run = 0;         ///< scenario ordinal (matches ChipOccupancy)
    int chip = -1;       ///< chip index parsed from the label
    std::string variant; ///< accelerator variant parsed from the label
    std::size_t trips = 0;   ///< breaker_open instants
    std::size_t probes = 0;  ///< breaker_probe instants
    std::size_t closes = 0;  ///< breaker_close instants
    double openTicks = 0.0;  ///< Σ configured open-window ticks
    std::size_t hedgeWins = 0;   ///< hedge races won by this chip
    std::size_t hedgeLosses = 0; ///< hedge races this chip's batch lost
    std::vector<BreakerEvent> timeline; ///< tick-ordered state changes
};

/** Degradation-ladder occupancy for one serving scenario, integrated
 *  from the "serve degradation" track's step instants: how long the
 *  scenario spent at each ladder step. */
struct DegradationOccupancy
{
    int run = 0; ///< ordinal among degradation-enabled scenarios
    std::size_t transitions = 0; ///< step changes after the initial state
    int maxStep = 0;             ///< deepest step reached
    double stepTicks[4] = {0.0, 0.0, 0.0, 0.0}; ///< residency per step
};

/** The serving-resilience section: breaker timelines, hedge tallies,
 *  and degradation-step occupancy. Empty (any() == false) for traces
 *  recorded without breakers/hedging/degradation, which keeps the
 *  analyzer's output byte-identical for stock traces. */
struct ServingResilience
{
    std::vector<ChipResilience> chips; ///< sorted by (run, chip, track)
    std::vector<DegradationOccupancy> degradation; ///< sorted by run
    std::size_t hedgeWins = 0;   ///< Σ over chips
    std::size_t hedgeLosses = 0; ///< Σ over chips

    bool any() const { return !chips.empty() || !degradation.empty(); }
};

/** Time-weighted summary of one wall-clock counter track. */
struct CounterStats
{
    std::size_t samples = 0;
    double min = 0.0;
    double max = 0.0;
    double timeWeightedMean = 0.0; ///< integral / observed duration
    double last = 0.0;
};

/** Hit/miss tallies of one memo cache ("layer_cache", ...). */
struct CacheActivity
{
    double hits = 0.0;
    double misses = 0.0;
};

/** The run-to-run-varying wall-clock section. */
struct WallStats
{
    std::size_t events = 0;     ///< wall-clock events in the trace
    std::size_t modelSpans = 0; ///< runner "runModel ..." spans
    std::size_t layerSpans = 0; ///< runner "... layer ..." spans
    double layerWallUsTotal = 0.0;
    std::map<std::string, CounterStats> counters;
    std::map<std::string, CacheActivity> caches;
};

/** Everything the analyzer extracts from one trace. */
struct TraceAnalysis
{
    /** Sorted unique identities parsed from runner span names/args;
     *  thread-count invariant (one model span per run). */
    std::vector<std::string> models;
    std::vector<std::string> accelerators;
    std::vector<std::string> algorithms;
    std::vector<std::string> variants;

    std::vector<TimelineAnalysis> timelines; ///< sorted by (key, instance)
    CriticalPathBreakdown criticalPath;
    std::vector<GenericTrack> otherTracks; ///< sorted by (label, content)
    std::vector<ChipOccupancy> chips;      ///< sorted by (run, chip)

    ResilienceEvents resilience;
    bool hasResilience = false;

    ServingResilience serving;
    bool hasServingResilience = false;

    WallStats wall;
    bool hasWall = false;
};

/** Analyze one parsed trace. Pure function of @p doc and @p options. */
TraceAnalysis analyzeTrace(const TraceDocument &doc,
                           const AnalyzeOptions &options = {});

/**
 * The cross-backend / cross-algorithm identity of a timeline key:
 * conv labels ("conv 3x3 64->64 M=12544", "cf-conv 3x3 64->128")
 * normalize to kernel + channels ("3x3 64->64") — the lowering word
 * and the TPU-only M= tail drop out, so the same model layer aligns
 * between tpu-v2 and gpu-v100 and between channel-first and indirect
 * runs. Non-conv labels pass through unchanged.
 */
std::string timelineSignature(const std::string &key);

/** Total union length of @p spans given as (start, end) pairs.
 *  Exposed for the synthetic-timeline unit tests. */
double unionCycles(std::vector<std::pair<double, double>> spans);

} // namespace cfconv::analyze

#endif // CFCONV_ANALYZE_ANALYSIS_H
