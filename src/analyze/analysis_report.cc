#include "analyze/analysis_report.h"

#include "common/report.h"
#include "common/table.h"

namespace cfconv::analyze {

namespace {

void
emitStringArray(JsonWriter &w, const std::string &key,
                const std::vector<std::string> &values)
{
    w.key(key);
    w.beginArray();
    for (const auto &v : values)
        w.value(v);
    w.endArray();
}

void
emitCriticalPath(JsonWriter &w, const CriticalPathBreakdown &cp)
{
    w.beginObject();
    w.field("timelines", static_cast<std::uint64_t>(cp.timelines));
    w.field("span_cycles", cp.spanCycles);
    w.field("compute_cycles", cp.computeCycles);
    w.field("fill_cycles", cp.fillCycles);
    w.field("overlap_cycles", cp.overlapCycles);
    w.field("exposed_fill_cycles", cp.exposedFillCycles);
    w.field("idle_cycles", cp.idleCycles);
    w.field("overlap_ratio", cp.overlapRatio);
    w.field("compute_frac", cp.computeFrac);
    w.field("exposed_fill_frac", cp.exposedFillFrac);
    w.field("idle_frac", cp.idleFrac);
    w.endObject();
}

void
emitTimeline(JsonWriter &w, const TimelineAnalysis &t)
{
    w.beginObject();
    w.field("key", t.key);
    w.field("signature", t.signature);
    w.field("kind", t.kind);
    w.field("style", t.style);
    w.field("phases", t.phases);
    w.field("instance", static_cast<long long>(t.instance));
    w.field("span_cycles", t.spanCycles);
    w.field("compute_cycles", t.computeCycles);
    w.field("fill_cycles", t.fillCycles);
    w.field("overlap_cycles", t.overlapCycles);
    w.field("exposed_fill_cycles", t.exposedFillCycles);
    w.field("idle_cycles", t.idleCycles);
    w.field("fill_spans", static_cast<std::uint64_t>(t.fillSpans));
    w.field("compute_spans",
            static_cast<std::uint64_t>(t.computeSpans));
    w.field("overlap_ratio", t.overlapRatio);
    w.field("compute_frac", t.computeFrac);
    w.field("exposed_fill_frac", t.exposedFillFrac);
    w.field("idle_frac", t.idleFrac);
    w.field("fill_residency", t.fillResidency);
    w.field("compute_residency", t.computeResidency);
    w.field("fill_bound", t.fillBound);
    w.endObject();
}

void
emitDiffRow(JsonWriter &w, const DiffRow &row, bool aligned)
{
    w.beginObject();
    w.field("signature", row.signature);
    if (!row.leftKey.empty())
        w.field("left_key", row.leftKey);
    if (!row.rightKey.empty())
        w.field("right_key", row.rightKey);
    if (aligned) {
        w.field("left_span_cycles", row.leftSpanCycles);
        w.field("right_span_cycles", row.rightSpanCycles);
        w.field("span_ratio", row.spanRatio);
        w.field("left_overlap_ratio", row.leftOverlapRatio);
        w.field("right_overlap_ratio", row.rightOverlapRatio);
        w.field("overlap_delta", row.overlapDelta);
        w.field("left_exposed_fill_frac", row.leftExposedFillFrac);
        w.field("right_exposed_fill_frac", row.rightExposedFillFrac);
        w.field("exposed_fill_delta", row.exposedFillDelta);
        w.field("left_fill_bound", row.leftFillBound);
        w.field("right_fill_bound", row.rightFillBound);
    } else {
        const bool onLeft = !row.leftKey.empty();
        w.field("span_cycles",
                onLeft ? row.leftSpanCycles : row.rightSpanCycles);
        w.field("overlap_ratio",
                onLeft ? row.leftOverlapRatio : row.rightOverlapRatio);
        w.field("fill_bound",
                onLeft ? row.leftFillBound : row.rightFillBound);
    }
    w.endObject();
}

void
emitServingResilience(JsonWriter &w, const ServingResilience &s)
{
    w.key("serving");
    w.beginObject();
    w.field("hedge_wins", static_cast<std::uint64_t>(s.hedgeWins));
    w.field("hedge_losses",
            static_cast<std::uint64_t>(s.hedgeLosses));
    w.key("breakers");
    w.beginArray();
    for (const auto &c : s.chips) {
        w.beginObject();
        w.field("run", static_cast<long long>(c.run));
        w.field("chip", static_cast<long long>(c.chip));
        w.field("variant", c.variant);
        w.field("trips", static_cast<std::uint64_t>(c.trips));
        w.field("probes", static_cast<std::uint64_t>(c.probes));
        w.field("closes", static_cast<std::uint64_t>(c.closes));
        w.field("open_ticks", c.openTicks);
        w.field("hedge_wins",
                static_cast<std::uint64_t>(c.hedgeWins));
        w.field("hedge_losses",
                static_cast<std::uint64_t>(c.hedgeLosses));
        w.key("timeline");
        w.beginArray();
        for (const auto &e : c.timeline) {
            w.beginObject();
            w.field("tick", e.tick);
            w.field("state", e.state);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.key("degradation");
    w.beginArray();
    for (const auto &d : s.degradation) {
        w.beginObject();
        w.field("run", static_cast<long long>(d.run));
        w.field("transitions",
                static_cast<std::uint64_t>(d.transitions));
        w.field("max_step", static_cast<long long>(d.maxStep));
        w.key("step_ticks");
        w.beginArray();
        for (const double t : d.stepTicks)
            w.value(t);
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

/** Compact one-line rendering of a breaker timeline for the text
 *  table: "open@120 probe@260 closed@264 ...". */
std::string
timelineCell(const std::vector<BreakerEvent> &timeline)
{
    std::string out;
    for (const auto &e : timeline) {
        if (!out.empty())
            out += ' ';
        out += e.state + "@" + cell("%.0f", e.tick);
    }
    return out.empty() ? std::string("-") : out;
}

} // namespace

std::string
analysisJson(const TraceAnalysis &a)
{
    JsonWriter w;
    w.beginObject();
    w.field("schema", kAnalysisSchema);
    w.field("version", static_cast<long long>(
                           a.hasServingResilience
                               ? kAnalysisSchemaVersion
                               : kAnalysisSchemaBaseVersion));

    w.key("source");
    w.beginObject();
    emitStringArray(w, "models", a.models);
    emitStringArray(w, "accelerators", a.accelerators);
    emitStringArray(w, "algorithms", a.algorithms);
    emitStringArray(w, "variants", a.variants);
    w.endObject();

    w.key("critical_path");
    emitCriticalPath(w, a.criticalPath);

    w.key("timelines");
    w.beginArray();
    for (const auto &t : a.timelines)
        emitTimeline(w, t);
    w.endArray();

    if (!a.otherTracks.empty()) {
        w.key("tracks");
        w.beginArray();
        for (const auto &t : a.otherTracks) {
            w.beginObject();
            w.field("label", t.label);
            w.field("spans", static_cast<std::uint64_t>(t.spans));
            w.field("instants",
                    static_cast<std::uint64_t>(t.instants));
            w.field("busy_cycles", t.busyCycles);
            w.field("span_cycles", t.spanCycles);
            w.endObject();
        }
        w.endArray();
    }

    if (!a.chips.empty()) {
        w.key("serving");
        w.beginObject();
        w.key("chips");
        w.beginArray();
        for (const auto &c : a.chips) {
            w.beginObject();
            w.field("run", static_cast<long long>(c.run));
            w.field("chip", static_cast<long long>(c.chip));
            w.field("variant", c.variant);
            w.field("batches",
                    static_cast<std::uint64_t>(c.batches));
            w.field("requests", c.requests);
            w.field("outages",
                    static_cast<std::uint64_t>(c.outages));
            w.field("busy_ticks", c.busyTicks);
            w.field("down_ticks", c.downTicks);
            w.field("idle_ticks", c.idleTicks);
            w.field("makespan_ticks", c.makespanTicks);
            w.field("occupancy", c.occupancy);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }

    if (a.hasResilience || a.hasServingResilience) {
        w.key("resilience");
        w.beginObject();
        w.field("faults",
                static_cast<std::uint64_t>(a.resilience.faults));
        w.field("failovers",
                static_cast<std::uint64_t>(a.resilience.failovers));
        w.field("chip_down_events",
                static_cast<std::uint64_t>(
                    a.resilience.chipDownEvents));
        if (a.hasServingResilience)
            emitServingResilience(w, a.serving);
        w.endObject();
    }

    if (a.hasWall) {
        w.key("wall");
        w.beginObject();
        w.field("events", static_cast<std::uint64_t>(a.wall.events));
        w.field("model_spans",
                static_cast<std::uint64_t>(a.wall.modelSpans));
        w.field("layer_spans",
                static_cast<std::uint64_t>(a.wall.layerSpans));
        w.field("layer_wall_us_total", a.wall.layerWallUsTotal);
        w.key("counters");
        w.beginObject();
        for (const auto &[name, c] : a.wall.counters) {
            w.key(name);
            w.beginObject();
            w.field("samples",
                    static_cast<std::uint64_t>(c.samples));
            w.field("min", c.min);
            w.field("max", c.max);
            w.field("time_weighted_mean", c.timeWeightedMean);
            w.field("last", c.last);
            w.endObject();
        }
        w.endObject();
        w.key("caches");
        w.beginObject();
        for (const auto &[name, c] : a.wall.caches) {
            w.key(name);
            w.beginObject();
            w.field("hits", c.hits);
            w.field("misses", c.misses);
            w.endObject();
        }
        w.endObject();
        w.endObject();
    }

    w.endObject();
    return w.str() + "\n";
}

std::string
diffJson(const AnalysisDiff &d)
{
    JsonWriter w;
    w.beginObject();
    w.field("schema", kDiffSchema);
    w.field("version", static_cast<long long>(
                           d.resilience.any
                               ? kAnalysisSchemaVersion
                               : kAnalysisSchemaBaseVersion));
    w.key("critical_path");
    w.beginObject();
    w.key("left");
    emitCriticalPath(w, d.left);
    w.key("right");
    emitCriticalPath(w, d.right);
    w.endObject();
    w.field("span_ratio_geomean", d.spanRatioGeoMean);
    w.field("overlap_delta_mean", d.overlapDeltaMean);
    w.field("boundedness_flips",
            static_cast<std::uint64_t>(d.boundednessFlips));
    if (d.resilience.any) {
        const auto &r = d.resilience;
        const auto pair = [&w](const char *key, std::uint64_t left,
                               std::uint64_t right) {
            w.key(key);
            w.beginObject();
            w.field("left", left);
            w.field("right", right);
            w.endObject();
        };
        w.key("resilience");
        w.beginObject();
        pair("faults", r.leftFaults, r.rightFaults);
        pair("failovers", r.leftFailovers, r.rightFailovers);
        pair("chip_down_events", r.leftChipDown, r.rightChipDown);
        pair("breaker_trips", r.leftTrips, r.rightTrips);
        pair("breaker_probes", r.leftProbes, r.rightProbes);
        pair("breaker_closes", r.leftCloses, r.rightCloses);
        w.key("breaker_open_ticks");
        w.beginObject();
        w.field("left", r.leftOpenTicks);
        w.field("right", r.rightOpenTicks);
        w.endObject();
        pair("hedge_wins", r.leftHedgeWins, r.rightHedgeWins);
        pair("hedge_losses", r.leftHedgeLosses, r.rightHedgeLosses);
        pair("degrade_max_step",
             static_cast<std::uint64_t>(r.leftMaxStep),
             static_cast<std::uint64_t>(r.rightMaxStep));
        pair("degrade_transitions", r.leftDegradeTransitions,
             r.rightDegradeTransitions);
        w.endObject();
    }
    w.key("aligned");
    w.beginArray();
    for (const auto &row : d.aligned)
        emitDiffRow(w, row, /*aligned=*/true);
    w.endArray();
    w.key("left_only");
    w.beginArray();
    for (const auto &row : d.leftOnly)
        emitDiffRow(w, row, /*aligned=*/false);
    w.endArray();
    w.key("right_only");
    w.beginArray();
    for (const auto &row : d.rightOnly)
        emitDiffRow(w, row, /*aligned=*/false);
    w.endArray();
    w.endObject();
    return w.str() + "\n";
}

void
printAnalysis(const TraceAnalysis &a, std::FILE *out)
{
    if (!a.timelines.empty()) {
        Table table("Fill/compute timelines (simulated cycles)");
        table.setHeader({"timeline", "phases", "span", "compute",
                         "fill", "overlap", "exposed", "idle",
                         "ovl%", "bound"});
        for (const auto &t : a.timelines) {
            std::string name = t.key;
            if (t.instance > 0)
                name += " #" + std::to_string(t.instance + 1);
            table.addRow({name, t.phases, cell("%.0f", t.spanCycles),
                          cell("%.0f", t.computeCycles),
                          cell("%.0f", t.fillCycles),
                          cell("%.0f", t.overlapCycles),
                          cell("%.0f", t.exposedFillCycles),
                          cell("%.0f", t.idleCycles),
                          cell("%.1f", t.overlapRatio * 100.0),
                          t.fillBound ? "fill" : "compute"});
        }
        table.print(out);

        const auto &cp = a.criticalPath;
        Table summary("Critical-path breakdown (all timelines)");
        summary.setHeader({"timelines", "span", "compute%",
                           "exposed_fill%", "idle%", "overlap%"});
        summary.addRow(
            {cell("%zu", cp.timelines), cell("%.0f", cp.spanCycles),
             cell("%.1f", cp.computeFrac * 100.0),
             cell("%.1f", cp.exposedFillFrac * 100.0),
             cell("%.1f", cp.idleFrac * 100.0),
             cell("%.1f", cp.overlapRatio * 100.0)});
        summary.print(out);
    }

    if (!a.chips.empty()) {
        Table table("Serving chip occupancy (simulated ticks)");
        table.setHeader({"run", "chip", "variant", "batches",
                         "requests", "busy", "down", "idle",
                         "occupancy%", "outages"});
        for (const auto &c : a.chips)
            table.addRow({cell("%d", c.run), cell("%d", c.chip),
                          c.variant,
                          cell("%zu", c.batches),
                          cell("%.0f", c.requests),
                          cell("%.0f", c.busyTicks),
                          cell("%.0f", c.downTicks),
                          cell("%.0f", c.idleTicks),
                          cell("%.1f", c.occupancy * 100.0),
                          cell("%zu", c.outages)});
        table.print(out);
    }

    if (!a.otherTracks.empty()) {
        Table table("Other simulated tracks");
        table.setHeader({"track", "spans", "instants", "busy",
                         "extent"});
        for (const auto &t : a.otherTracks)
            table.addRow({t.label, cell("%zu", t.spans),
                          cell("%zu", t.instants),
                          cell("%.0f", t.busyCycles),
                          cell("%.0f", t.spanCycles)});
        table.print(out);
    }

    if (a.hasResilience) {
        Table table("Resilience events");
        table.setHeader({"faults", "failovers", "chip_down"});
        table.addRow({cell("%zu", a.resilience.faults),
                      cell("%zu", a.resilience.failovers),
                      cell("%zu", a.resilience.chipDownEvents)});
        table.print(out);
    }

    if (!a.serving.chips.empty()) {
        Table table("Serving breaker / hedge activity");
        table.setHeader({"run", "chip", "variant", "trips", "probes",
                         "closes", "open_ticks", "hedge_w", "hedge_l",
                         "timeline"});
        for (const auto &c : a.serving.chips)
            table.addRow({cell("%d", c.run), cell("%d", c.chip),
                          c.variant, cell("%zu", c.trips),
                          cell("%zu", c.probes),
                          cell("%zu", c.closes),
                          cell("%.0f", c.openTicks),
                          cell("%zu", c.hedgeWins),
                          cell("%zu", c.hedgeLosses),
                          timelineCell(c.timeline)});
        table.print(out);
    }

    if (!a.serving.degradation.empty()) {
        Table table("Degradation-ladder occupancy (ticks)");
        table.setHeader({"run", "transitions", "max_step", "step0",
                         "step1", "step2", "step3"});
        for (const auto &d : a.serving.degradation)
            table.addRow({cell("%d", d.run),
                          cell("%zu", d.transitions),
                          cell("%d", d.maxStep),
                          cell("%.0f", d.stepTicks[0]),
                          cell("%.0f", d.stepTicks[1]),
                          cell("%.0f", d.stepTicks[2]),
                          cell("%.0f", d.stepTicks[3])});
        table.print(out);
    }

    if (a.hasWall) {
        if (!a.wall.counters.empty()) {
            Table table("Wall-clock counters (time-weighted)");
            table.setHeader(
                {"counter", "samples", "min", "max", "mean", "last"});
            for (const auto &[name, c] : a.wall.counters)
                table.addRow({name, cell("%zu", c.samples),
                              cell("%.0f", c.min),
                              cell("%.0f", c.max),
                              cell("%.2f", c.timeWeightedMean),
                              cell("%.0f", c.last)});
            table.print(out);
        }
        if (!a.wall.caches.empty()) {
            Table table("Memo-cache activity");
            table.setHeader({"cache", "hits", "misses"});
            for (const auto &[name, c] : a.wall.caches)
                table.addRow({name, cell("%.0f", c.hits),
                              cell("%.0f", c.misses)});
            table.print(out);
        }
    }
}

void
printDiff(const AnalysisDiff &d, std::FILE *out)
{
    if (!d.aligned.empty()) {
        Table table("Aligned timelines (right vs left)");
        table.setHeader({"signature", "span_L", "span_R", "ratio",
                         "ovl%_L", "ovl%_R", "Δovl%", "bound_L",
                         "bound_R"});
        for (const auto &row : d.aligned)
            table.addRow(
                {row.signature, cell("%.0f", row.leftSpanCycles),
                 cell("%.0f", row.rightSpanCycles),
                 cell("%.2f", row.spanRatio),
                 cell("%.1f", row.leftOverlapRatio * 100.0),
                 cell("%.1f", row.rightOverlapRatio * 100.0),
                 cell("%+.1f", row.overlapDelta * 100.0),
                 row.leftFillBound ? "fill" : "compute",
                 row.rightFillBound ? "fill" : "compute"});
        table.print(out);
    }
    const auto oneSidedTable = [out](const char *title,
                                     const std::vector<DiffRow> &rows,
                                     bool onLeft) {
        if (rows.empty())
            return;
        Table table(title);
        table.setHeader({"signature", "key", "span", "ovl%"});
        for (const auto &row : rows)
            table.addRow(
                {row.signature, onLeft ? row.leftKey : row.rightKey,
                 cell("%.0f", onLeft ? row.leftSpanCycles
                                     : row.rightSpanCycles),
                 cell("%.1f", (onLeft ? row.leftOverlapRatio
                                      : row.rightOverlapRatio) *
                                  100.0)});
        table.print(out);
    };
    oneSidedTable("Only in left trace", d.leftOnly, /*onLeft=*/true);
    oneSidedTable("Only in right trace", d.rightOnly,
                  /*onLeft=*/false);

    if (d.resilience.any) {
        const auto &r = d.resilience;
        Table table("Resilience (left vs right)");
        table.setHeader({"metric", "left", "right"});
        const auto row = [&table](const char *metric, std::size_t l,
                                  std::size_t rv) {
            table.addRow({metric, cell("%zu", l), cell("%zu", rv)});
        };
        row("faults", r.leftFaults, r.rightFaults);
        row("failovers", r.leftFailovers, r.rightFailovers);
        row("chip_down", r.leftChipDown, r.rightChipDown);
        row("breaker_trips", r.leftTrips, r.rightTrips);
        row("breaker_probes", r.leftProbes, r.rightProbes);
        row("breaker_closes", r.leftCloses, r.rightCloses);
        table.addRow({"breaker_open_ticks",
                      cell("%.0f", r.leftOpenTicks),
                      cell("%.0f", r.rightOpenTicks)});
        row("hedge_wins", r.leftHedgeWins, r.rightHedgeWins);
        row("hedge_losses", r.leftHedgeLosses, r.rightHedgeLosses);
        table.addRow({"degrade_max_step", cell("%d", r.leftMaxStep),
                      cell("%d", r.rightMaxStep)});
        row("degrade_transitions", r.leftDegradeTransitions,
            r.rightDegradeTransitions);
        table.print(out);
    }
}

std::string
analysisHeadline(const std::string &label, const TraceAnalysis &a)
{
    const auto &cp = a.criticalPath;
    std::string line = "ANALYZE " + label;
    line += cell(" timelines=%zu span_cycles=%.0f overlap=%.3f"
                 " exposed_fill=%.3f idle=%.3f",
                 cp.timelines, cp.spanCycles, cp.overlapRatio,
                 cp.exposedFillFrac, cp.idleFrac);
    if (!a.chips.empty())
        line += cell(" chips=%zu", a.chips.size());
    if (a.hasResilience)
        line += cell(" faults=%zu", a.resilience.faults +
                                        a.resilience.chipDownEvents);
    if (a.hasServingResilience) {
        std::size_t trips = 0;
        for (const auto &c : a.serving.chips)
            trips += c.trips;
        line += cell(" breaker_trips=%zu hedge_wins=%zu", trips,
                     a.serving.hedgeWins);
    }
    return line;
}

std::string
diffHeadline(const AnalysisDiff &d)
{
    return cell("DIFF aligned=%zu left_only=%zu right_only=%zu"
                " span_ratio_gmean=%.3f overlap_delta_mean=%+.3f"
                " boundedness_flips=%zu",
                d.aligned.size(), d.leftOnly.size(),
                d.rightOnly.size(), d.spanRatioGeoMean,
                d.overlapDeltaMean, d.boundednessFlips);
}

} // namespace cfconv::analyze
