#include "analyze/analysis.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <utility>

namespace cfconv::analyze {

namespace {

using Interval = std::pair<double, double>;

/** Merge (start, end) pairs into a sorted disjoint interval list. */
std::vector<Interval>
mergeIntervals(std::vector<Interval> spans)
{
    std::sort(spans.begin(), spans.end());
    std::vector<Interval> merged;
    for (const auto &s : spans) {
        if (s.second <= s.first)
            continue;
        if (!merged.empty() && s.first <= merged.back().second)
            merged.back().second =
                std::max(merged.back().second, s.second);
        else
            merged.push_back(s);
    }
    return merged;
}

double
totalLength(const std::vector<Interval> &merged)
{
    double total = 0.0;
    for (const auto &s : merged)
        total += s.second - s.first;
    return total;
}

/** Two-pointer intersection length of two disjoint sorted lists. */
double
intersectionLength(const std::vector<Interval> &a,
                   const std::vector<Interval> &b)
{
    double total = 0.0;
    size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
        const double lo = std::max(a[i].first, b[j].first);
        const double hi = std::min(a[i].second, b[j].second);
        if (hi > lo)
            total += hi - lo;
        if (a[i].second < b[j].second)
            ++i;
        else
            ++j;
    }
    return total;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) ==
               0;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.compare(0, prefix.size(), prefix) == 0;
}

std::vector<std::string>
splitWords(const std::string &s)
{
    std::vector<std::string> words;
    size_t pos = 0;
    while (pos < s.size()) {
        const size_t space = s.find(' ', pos);
        if (space == std::string::npos) {
            words.push_back(s.substr(pos));
            break;
        }
        if (space > pos)
            words.push_back(s.substr(pos, space - pos));
        pos = space + 1;
    }
    return words;
}

/** One sim row's spans and instants, gathered per tid. */
struct SimRow
{
    std::string label;
    std::vector<Interval> spans;
    std::vector<const TraceEvent *> spanEvents;
    std::vector<const TraceEvent *> instants;
};

/** Pre-sort/dedupe form of a timeline: both rows' raw spans. The
 *  serialized content orders same-key instances deterministically
 *  regardless of which pool thread recorded them. */
struct RawTimeline
{
    std::vector<Interval> fill;
    std::vector<Interval> compute;
    bool macStyle = false;

    std::string contentKey() const
    {
        std::string key;
        char buf[64];
        for (const auto &s : fill) {
            std::snprintf(buf, sizeof(buf), "f%.17g:%.17g;", s.first,
                          s.second);
            key += buf;
        }
        for (const auto &s : compute) {
            std::snprintf(buf, sizeof(buf), "c%.17g:%.17g;", s.first,
                          s.second);
            key += buf;
        }
        return key;
    }
};

TimelineAnalysis
analyzeTimeline(const std::string &key, const RawTimeline &raw)
{
    TimelineAnalysis t;
    t.key = key;
    t.signature = timelineSignature(key);
    t.phases = raw.macStyle ? "fill/mac" : "fill/compute";
    t.fillSpans = raw.fill.size();
    t.computeSpans = raw.compute.size();

    const auto words = splitWords(key);
    if (!words.empty() && words[0] == "gemm") {
        t.kind = "gemm";
        t.style = "gemm";
    } else if (words.size() >= 3 &&
               words[2].find("->") != std::string::npos) {
        t.kind = "conv";
        t.style = words[0];
    } else {
        t.kind = "other";
        t.style = words.empty() ? std::string() : words[0];
    }

    const auto fill = mergeIntervals(raw.fill);
    const auto compute = mergeIntervals(raw.compute);
    std::vector<Interval> all;
    all.reserve(raw.fill.size() + raw.compute.size());
    all.insert(all.end(), raw.fill.begin(), raw.fill.end());
    all.insert(all.end(), raw.compute.begin(), raw.compute.end());
    const auto busy = mergeIntervals(all);
    if (busy.empty())
        return t;

    t.fillCycles = totalLength(fill);
    t.computeCycles = totalLength(compute);
    t.overlapCycles = intersectionLength(fill, compute);
    t.exposedFillCycles = t.fillCycles - t.overlapCycles;
    t.spanCycles = busy.back().second - busy.front().first;
    t.idleCycles = t.spanCycles - totalLength(busy);

    if (t.fillCycles > 0.0)
        t.overlapRatio = t.overlapCycles / t.fillCycles;
    if (t.spanCycles > 0.0) {
        t.computeFrac = t.computeCycles / t.spanCycles;
        t.exposedFillFrac = t.exposedFillCycles / t.spanCycles;
        t.idleFrac = t.idleCycles / t.spanCycles;
        t.fillResidency = t.fillCycles / t.spanCycles;
        t.computeResidency = t.computeCycles / t.spanCycles;
    }
    t.fillBound = t.fillCycles > t.computeCycles;
    return t;
}

/** Parse "serve chipN (variant)" into its chip index and variant. */
void
parseChipLabel(const std::string &label, ChipOccupancy &chip)
{
    chip.track = label;
    const size_t idx = std::string("serve chip").size();
    size_t end = idx;
    while (end < label.size() && label[end] >= '0' && label[end] <= '9')
        ++end;
    if (end > idx)
        chip.chip = std::stoi(label.substr(idx, end - idx));
    const size_t open = label.find('(', end);
    const size_t close = label.rfind(')');
    if (open != std::string::npos && close != std::string::npos &&
        close > open)
        chip.variant = label.substr(open + 1, close - open - 1);
}

} // namespace

double
unionCycles(std::vector<Interval> spans)
{
    return totalLength(mergeIntervals(std::move(spans)));
}

std::string
timelineSignature(const std::string &key)
{
    const auto words = splitWords(key);
    if (words.size() >= 3 && words[0] != "gemm" &&
        words[1].find('x') != std::string::npos &&
        words[2].find("->") != std::string::npos)
        return words[1] + " " + words[2];
    return key;
}

TraceAnalysis
analyzeTrace(const TraceDocument &doc, const AnalyzeOptions &options)
{
    TraceAnalysis a;

    // ---- Gather simulated-cycle rows by tid, labelled from metadata.
    std::map<int, SimRow> rows;
    for (const auto &[key, label] : doc.trackNames)
        if (key.first == kSimPid)
            rows[key.second].label = label;
    for (const auto &e : doc.events) {
        if (!e.onSimClock())
            continue;
        auto &row = rows[e.tid];
        if (e.phase == TraceEvent::Phase::Complete) {
            row.spans.push_back({e.ts, e.end()});
            row.spanEvents.push_back(&e);
        } else if (e.phase == TraceEvent::Phase::Instant)
            row.instants.push_back(&e);
    }

    // ---- Classify rows: fill/compute pairs, serving chips, the rest.
    // Fill and compute rows pair by per-key allocation order: the
    // simulators allocate "<key> fill" immediately followed by
    // "<key> compute" (or " mac"), so the k-th fill tid and the k-th
    // compute tid under one key belong to the same simulated layer
    // even when several accelerator variants reuse the label.
    struct KeyRows
    {
        std::vector<const SimRow *> fill;
        std::vector<const SimRow *> compute;
        bool macStyle = false;
    };
    std::map<std::string, KeyRows> keyed;
    std::map<std::string, std::vector<const SimRow *>> chipRows;
    std::map<std::string, std::vector<const SimRow *>> genericRows;
    std::vector<const SimRow *> degradeRows;
    for (const auto &[tid, row] : rows) {
        (void)tid;
        if (endsWith(row.label, " fill"))
            keyed[row.label.substr(0, row.label.size() - 5)]
                .fill.push_back(&row);
        else if (endsWith(row.label, " compute"))
            keyed[row.label.substr(0, row.label.size() - 8)]
                .compute.push_back(&row);
        else if (endsWith(row.label, " mac")) {
            auto &k = keyed[row.label.substr(0, row.label.size() - 4)];
            k.compute.push_back(&row);
            k.macStyle = true;
        } else if (startsWith(row.label, "serve chip"))
            chipRows[row.label].push_back(&row);
        else if (row.label == "serve degradation")
            degradeRows.push_back(&row);
        else
            genericRows[row.label].push_back(&row);
    }

    // ---- Per-key: pair rows, order instances by content, collapse
    // exact duplicates (concurrent memo-cache misses replay identical
    // timelines; so do repeated runs of the same layer).
    for (const auto &[key, kr] : keyed) {
        const size_t n = std::max(kr.fill.size(), kr.compute.size());
        std::vector<RawTimeline> instances;
        instances.reserve(n);
        for (size_t i = 0; i < n; ++i) {
            RawTimeline raw;
            raw.macStyle = kr.macStyle;
            if (i < kr.fill.size()) {
                raw.fill = kr.fill[i]->spans;
                std::sort(raw.fill.begin(), raw.fill.end());
            }
            if (i < kr.compute.size()) {
                raw.compute = kr.compute[i]->spans;
                std::sort(raw.compute.begin(), raw.compute.end());
            }
            instances.push_back(std::move(raw));
        }
        std::sort(instances.begin(), instances.end(),
                  [](const RawTimeline &x, const RawTimeline &y) {
                      return x.contentKey() < y.contentKey();
                  });
        std::string last;
        int ordinal = 0;
        for (const auto &raw : instances) {
            const std::string content = raw.contentKey();
            if (!a.timelines.empty() && content == last &&
                a.timelines.back().key == key)
                continue; // duplicate replay of the same timeline
            last = content;
            TimelineAnalysis t = analyzeTimeline(key, raw);
            t.instance = ordinal++;
            a.timelines.push_back(std::move(t));
        }
    }

    // ---- Disambiguate colliding signatures deterministically: the
    // diff aligner needs signature -> timeline to be one-to-one.
    {
        std::map<std::string, int> seen;
        for (auto &t : a.timelines) {
            const int n = ++seen[t.signature];
            if (n > 1)
                t.signature += " #" + std::to_string(n);
        }
    }

    // ---- Run-level critical path over every timeline.
    auto &cp = a.criticalPath;
    for (const auto &t : a.timelines) {
        ++cp.timelines;
        cp.spanCycles += t.spanCycles;
        cp.computeCycles += t.computeCycles;
        cp.fillCycles += t.fillCycles;
        cp.overlapCycles += t.overlapCycles;
        cp.exposedFillCycles += t.exposedFillCycles;
        cp.idleCycles += t.idleCycles;
    }
    if (cp.fillCycles > 0.0)
        cp.overlapRatio = cp.overlapCycles / cp.fillCycles;
    if (cp.spanCycles > 0.0) {
        cp.computeFrac = cp.computeCycles / cp.spanCycles;
        cp.exposedFillFrac = cp.exposedFillCycles / cp.spanCycles;
        cp.idleFrac = cp.idleCycles / cp.spanCycles;
    }

    // ---- Serving chips. One occupancy row per track: a bench can
    // run several serving scenarios in one trace session, each
    // allocating fresh chip tracks that restart the tick axis, so
    // same-label tracks must never be merged. The k-th occurrence of
    // a label (tid allocation order — scenarios run serially) is
    // scenario k; the fleet-wide makespan is taken per scenario.
    std::map<int, double> runMakespan;
    std::map<std::string, int> labelRuns;
    std::vector<ChipOccupancy> chips;
    std::vector<ChipResilience> breakers;
    for (const auto &[label, group] : chipRows)
        for (const SimRow *row : group) {
            ChipOccupancy chip;
            parseChipLabel(label, chip);
            chip.run = labelRuns[label]++;
            chip.batches = row->spans.size();
            for (const TraceEvent *s : row->spanEvents) {
                auto it = s->args.find("batch");
                if (it != s->args.end())
                    chip.requests += it->second;
            }
            // Resilience instants ride on the same chip track:
            // breaker state changes and hedge-race outcomes. The row
            // only materializes when at least one event exists, so
            // stock serving traces contribute nothing here.
            ChipResilience res;
            res.track = chip.track;
            res.run = chip.run;
            res.chip = chip.chip;
            res.variant = chip.variant;
            for (const TraceEvent *i : row->instants) {
                if (i->name == "chip_down") {
                    ++chip.outages;
                    auto it = i->args.find("downtimeTicks");
                    if (it != i->args.end())
                        chip.downTicks += it->second;
                } else if (i->name == "breaker_open") {
                    ++res.trips;
                    auto it = i->args.find("openTicks");
                    if (it != i->args.end())
                        res.openTicks += it->second;
                    res.timeline.push_back({i->ts, "open"});
                } else if (i->name == "breaker_probe") {
                    ++res.probes;
                    res.timeline.push_back({i->ts, "probe"});
                } else if (i->name == "breaker_close") {
                    ++res.closes;
                    res.timeline.push_back({i->ts, "closed"});
                } else if (i->name == "hedge_win")
                    ++res.hedgeWins;
                else if (i->name == "hedge_loss")
                    ++res.hedgeLosses;
            }
            // Instants land in emission order (serial simulated
            // time); a stable sort by tick keeps same-tick emission
            // order while guarding against buffered reordering.
            std::stable_sort(res.timeline.begin(), res.timeline.end(),
                             [](const BreakerEvent &x,
                                const BreakerEvent &y) {
                                 return x.tick < y.tick;
                             });
            if (res.trips + res.probes + res.closes + res.hedgeWins +
                    res.hedgeLosses >
                0)
                breakers.push_back(std::move(res));
            chip.busyTicks = totalLength(mergeIntervals(row->spans));
            auto &makespan = runMakespan[chip.run];
            for (const auto &s : row->spans)
                makespan = std::max(makespan, s.second);
            a.resilience.chipDownEvents += chip.outages;
            chips.push_back(std::move(chip));
        }
    for (auto &chip : chips) {
        const double makespan = runMakespan[chip.run];
        chip.makespanTicks = makespan;
        chip.idleTicks = std::max(
            0.0, makespan - chip.busyTicks - chip.downTicks);
        if (makespan > 0.0)
            chip.occupancy = chip.busyTicks / makespan;
    }
    a.chips = std::move(chips);
    std::sort(a.chips.begin(), a.chips.end(),
              [](const ChipOccupancy &x, const ChipOccupancy &y) {
                  return std::tie(x.run, x.chip, x.track) <
                         std::tie(y.run, y.chip, y.track);
              });

    // ---- Serving resilience: breaker rows sorted like the chips,
    // plus degradation-step occupancy integrated from the "serve
    // degradation" track. Each degradation-enabled scenario allocates
    // a fresh instance of that track, so the k-th occurrence (tid
    // allocation order — scenarios run serially) is occupancy row k.
    std::sort(breakers.begin(), breakers.end(),
              [](const ChipResilience &x, const ChipResilience &y) {
                  return std::tie(x.run, x.chip, x.track) <
                         std::tie(y.run, y.chip, y.track);
              });
    for (const auto &res : breakers) {
        a.serving.hedgeWins += res.hedgeWins;
        a.serving.hedgeLosses += res.hedgeLosses;
    }
    a.serving.chips = std::move(breakers);
    {
        int run = 0;
        for (const SimRow *row : degradeRows) {
            DegradationOccupancy occ;
            occ.run = run++;
            // The track carries one "degrade_step" per state (the
            // initial step 0 included) and a closing "degrade_end" at
            // the scenario makespan; residency at a step is the gap
            // to the next instant.
            std::vector<std::pair<double, double>> steps; // tick, step
            double endTick = 0.0;
            bool closed = false;
            for (const TraceEvent *i : row->instants) {
                auto it = i->args.find("step");
                const double step =
                    it != i->args.end() ? it->second : 0.0;
                if (i->name == "degrade_step")
                    steps.push_back({i->ts, step});
                else if (i->name == "degrade_end") {
                    endTick = i->ts;
                    closed = true;
                }
            }
            std::stable_sort(steps.begin(), steps.end(),
                             [](const auto &x, const auto &y) {
                                 return x.first < y.first;
                             });
            occ.transitions = steps.size() > 1 ? steps.size() - 1 : 0;
            for (size_t i = 0; i < steps.size(); ++i) {
                const int step = std::min(
                    3, std::max(0, static_cast<int>(steps[i].second)));
                occ.maxStep = std::max(occ.maxStep, step);
                const double next = i + 1 < steps.size()
                    ? steps[i + 1].first
                    : (closed ? endTick : steps[i].first);
                if (next > steps[i].first)
                    occ.stepTicks[step] += next - steps[i].first;
            }
            a.serving.degradation.push_back(occ);
        }
    }
    a.hasServingResilience = a.serving.any();

    // ---- Everything else on the sim clock: functional-core rows,
    // chaos tracks, future emitters. Chaos instants feed the
    // resilience tally.
    for (const auto &[label, group] : genericRows) {
        GenericTrack track;
        track.label = label;
        std::vector<Interval> spans;
        double lo = 0.0, hi = 0.0;
        bool any = false;
        for (const SimRow *row : group) {
            track.spans += row->spans.size();
            track.instants += row->instants.size();
            for (const auto &s : row->spans) {
                spans.push_back(s);
                lo = any ? std::min(lo, s.first) : s.first;
                hi = any ? std::max(hi, s.second) : s.second;
                any = true;
            }
            if (startsWith(label, "resilience "))
                for (const TraceEvent *i : row->instants) {
                    if (startsWith(i->name, "fault "))
                        ++a.resilience.faults;
                    else if (startsWith(i->name, "failover "))
                        ++a.resilience.failovers;
                }
        }
        track.busyCycles = totalLength(mergeIntervals(std::move(spans)));
        track.spanCycles = any ? hi - lo : 0.0;
        a.otherTracks.push_back(std::move(track));
    }
    a.hasResilience = a.resilience.faults + a.resilience.failovers +
                          a.resilience.chipDownEvents >
                      0;

    // ---- Identities from the wall-clock runner spans. One span per
    // model run / per chip variant regardless of thread count, so
    // these sorted sets stay in the deterministic section.
    std::set<std::string> models, accelerators, algorithms, variants;
    for (const auto &e : doc.events) {
        if (e.pid != kWallPid || e.category != "runner")
            continue;
        if (e.phase == TraceEvent::Phase::Complete &&
            startsWith(e.name, "runModel ")) {
            const std::string rest = e.name.substr(9);
            const size_t on = rest.rfind(" on ");
            if (on != std::string::npos) {
                models.insert(rest.substr(0, on));
                accelerators.insert(rest.substr(on + 4));
            }
        }
        auto it = e.textArgs.find("algorithm");
        if (it != e.textArgs.end())
            algorithms.insert(it->second);
        it = e.textArgs.find("variant");
        if (it != e.textArgs.end())
            variants.insert(it->second);
    }
    for (const auto &chip : a.chips)
        if (!chip.variant.empty())
            variants.insert(chip.variant);
    a.models.assign(models.begin(), models.end());
    a.accelerators.assign(accelerators.begin(), accelerators.end());
    a.algorithms.assign(algorithms.begin(), algorithms.end());
    a.variants.assign(variants.begin(), variants.end());

    // ---- Wall-clock section (run-to-run varying; optional).
    if (options.includeWall) {
        a.hasWall = true;
        auto &w = a.wall;
        std::map<std::string, std::vector<Interval>> counterSamples;
        for (const auto &e : doc.events) {
            if (e.pid != kWallPid)
                continue;
            ++w.events;
            if (e.phase == TraceEvent::Phase::Complete &&
                e.category == "runner") {
                if (startsWith(e.name, "runModel "))
                    ++w.modelSpans;
                else if (e.name.find(" layer ") != std::string::npos) {
                    ++w.layerSpans;
                    w.layerWallUsTotal += e.dur;
                }
            } else if (e.phase == TraceEvent::Phase::Counter) {
                auto it = e.args.find("value");
                if (it != e.args.end())
                    counterSamples[e.category + "." + e.name].push_back(
                        {e.ts, it->second});
            } else if (e.phase == TraceEvent::Phase::Instant &&
                       e.category == "cache") {
                const size_t dot = e.name.rfind('.');
                if (dot != std::string::npos) {
                    const std::string what = e.name.substr(dot + 1);
                    auto &cache = w.caches[e.name.substr(0, dot)];
                    if (what == "hit")
                        cache.hits += 1.0;
                    else if (what == "miss")
                        cache.misses += 1.0;
                }
            }
        }
        for (auto &[name, samples] : counterSamples) {
            // Counter events land in per-thread buffers, so file
            // order is not time order: sort by timestamp before the
            // step-function integral.
            std::sort(samples.begin(), samples.end());
            CounterStats stats;
            stats.samples = samples.size();
            stats.min = samples.front().second;
            stats.max = samples.front().second;
            stats.last = samples.back().second;
            double integral = 0.0;
            for (size_t i = 0; i < samples.size(); ++i) {
                stats.min = std::min(stats.min, samples[i].second);
                stats.max = std::max(stats.max, samples[i].second);
                if (i + 1 < samples.size())
                    integral += samples[i].second *
                                (samples[i + 1].first -
                                 samples[i].first);
            }
            const double window =
                samples.back().first - samples.front().first;
            stats.timeWeightedMean = window > 0.0
                ? integral / window
                : samples.back().second;
            w.counters[name] = stats;
        }
    }
    return a;
}

} // namespace cfconv::analyze
