/**
 * @file
 * Typed event model over the Chrome-trace documents the recorder
 * (common/trace) writes: the read-back half the repo was missing.
 * parseTraceFile() loads a recorded trace through the common/json
 * parser into TraceEvent/TraceDocument values — duration, instant,
 * counter and metadata events, both clock domains (pid 1 wall clock,
 * pid 2 simulated cycles), per-(pid, tid) track names — so the offline
 * analytics (analyze/analysis.h) and diffs (analyze/diff.h) operate on
 * structured data instead of regexes over JSON text. Malformed
 * documents come back as INVALID_ARGUMENT Statuses naming what is
 * wrong and where, never as process aborts: a truncated trace must be
 * rejected, not crash the analyzer.
 */

#ifndef CFCONV_ANALYZE_TRACE_MODEL_H
#define CFCONV_ANALYZE_TRACE_MODEL_H

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace cfconv::analyze {

/** The two clock domains the recorder emits, by Chrome-trace pid. */
constexpr int kWallPid = 1;
constexpr int kSimPid = 2;

/** One parsed trace event (any phase the recorder writes). */
struct TraceEvent
{
    /** Chrome-trace phase, mirroring the recorder's emission set. */
    enum class Phase { Complete, Instant, Counter, Metadata };

    std::string name;
    std::string category;
    Phase phase = Phase::Complete;
    int pid = kWallPid;
    int tid = 0;
    double ts = 0.0;  ///< µs (wall) or cycles/ticks (sim)
    double dur = 0.0; ///< Complete events only
    /** Numeric args, sorted by key (std::map) for determinism. */
    std::map<std::string, double> args;
    /** String args (e.g. "algorithm", "variant" on runner spans). */
    std::map<std::string, std::string> textArgs;

    double end() const { return ts + dur; }
    bool onSimClock() const { return pid == kSimPid; }
};

/** One whole parsed trace. */
struct TraceDocument
{
    /** All non-metadata events, in file order. */
    std::vector<TraceEvent> events;
    /** thread_name metadata: (pid, tid) -> track label. Simulated
     *  rows (pid 2) carry the timeline labels the analyzer groups
     *  by, e.g. "conv 3x3 64->64 M=12544 fill". */
    std::map<std::pair<int, int>, std::string> trackNames;
    /** process_name metadata: pid -> clock-domain name. */
    std::map<int, std::string> processNames;

    /** Label of the simulated-cycles row @p tid ("" when unnamed). */
    const std::string &simTrackName(int tid) const;

    /** Events on pid @p pid, in file order (filtered copy). */
    std::vector<const TraceEvent *> eventsOnClock(int pid) const;
};

/** Parse @p text as one Chrome-trace document: a top-level object
 *  with a non-empty "traceEvents" array whose entries carry the
 *  recorder's fields. Unknown phases, missing required fields, and
 *  non-numeric timestamps are INVALID_ARGUMENT naming the event
 *  index. */
StatusOr<TraceDocument> parseTrace(const std::string &text);

/** Read and parse a trace file; NOT_FOUND when unreadable, parse
 *  errors carry the path as context. */
StatusOr<TraceDocument> parseTraceFile(const std::string &path);

} // namespace cfconv::analyze

#endif // CFCONV_ANALYZE_TRACE_MODEL_H
