#include "analyze/trace_model.h"

#include <fstream>
#include <sstream>

#include "common/json.h"

namespace cfconv::analyze {

namespace {

const std::string kEmpty;

StatusOr<TraceEvent::Phase>
parsePhase(const std::string &ph, size_t index)
{
    if (ph == "X")
        return TraceEvent::Phase::Complete;
    if (ph == "i")
        return TraceEvent::Phase::Instant;
    if (ph == "C")
        return TraceEvent::Phase::Counter;
    if (ph == "M")
        return TraceEvent::Phase::Metadata;
    return invalidArgumentError(
        "traceEvents[%zu]: unknown phase \"%s\" (the recorder emits "
        "X/i/C/M only)",
        index, ph.c_str());
}

/** The shared tree walk behind both parse entry points. */
StatusOr<TraceDocument>
parseTraceTree(const JsonValue &root)
{
    if (!root.isObject())
        return invalidArgumentError(
            "trace document: top level is not an object");
    const JsonValue *events = root.get("traceEvents");
    if (!events || !events->isArray())
        return invalidArgumentError(
            "trace document: no \"traceEvents\" array");
    if (events->items().empty())
        return invalidArgumentError(
            "trace document: \"traceEvents\" is empty");

    TraceDocument doc;
    doc.events.reserve(events->items().size());
    for (size_t i = 0; i < events->items().size(); ++i) {
        const JsonValue &e = events->items()[i];
        if (!e.isObject())
            return invalidArgumentError(
                "traceEvents[%zu]: not an object", i);
        const JsonValue *ph = e.get("ph");
        if (!ph || !ph->isString())
            return invalidArgumentError(
                "traceEvents[%zu]: missing \"ph\"", i);
        auto phase = parsePhase(ph->asString(), i);
        if (!phase.ok())
            return phase.status();

        TraceEvent event;
        event.phase = phase.value();
        event.name = e.stringOr("name", "");
        event.category = e.stringOr("cat", "");
        event.pid = static_cast<int>(e.numberOr("pid", 0));
        event.tid = static_cast<int>(e.numberOr("tid", 0));

        if (event.phase == TraceEvent::Phase::Metadata) {
            const JsonValue *args = e.get("args");
            const std::string label =
                args ? args->stringOr("name", "") : "";
            if (event.name == "thread_name")
                doc.trackNames[{event.pid, event.tid}] = label;
            else if (event.name == "process_name")
                doc.processNames[event.pid] = label;
            continue; // metadata carries no timestamp
        }

        const JsonValue *ts = e.get("ts");
        if (!ts || !ts->isNumber())
            return invalidArgumentError(
                "traceEvents[%zu] (\"%s\"): missing numeric \"ts\"", i,
                event.name.c_str());
        event.ts = ts->asNumber();
        if (event.phase == TraceEvent::Phase::Complete) {
            const JsonValue *dur = e.get("dur");
            if (!dur || !dur->isNumber())
                return invalidArgumentError(
                    "traceEvents[%zu] (\"%s\"): complete event "
                    "without numeric \"dur\"",
                    i, event.name.c_str());
            event.dur = dur->asNumber();
            if (event.dur < 0.0)
                return invalidArgumentError(
                    "traceEvents[%zu] (\"%s\"): negative duration", i,
                    event.name.c_str());
        }
        if (const JsonValue *args = e.get("args");
            args && args->isObject()) {
            for (const auto &[key, value] : args->members()) {
                if (value.isNumber())
                    event.args[key] = value.asNumber();
                else if (value.isString())
                    event.textArgs[key] = value.asString();
                else
                    return invalidArgumentError(
                        "traceEvents[%zu] (\"%s\"): arg \"%s\" is "
                        "neither number nor string",
                        i, event.name.c_str(), key.c_str());
            }
        }
        doc.events.push_back(std::move(event));
    }
    if (doc.events.empty())
        return invalidArgumentError(
            "trace document: only metadata events, nothing to analyze");
    return doc;
}

} // namespace

const std::string &
TraceDocument::simTrackName(int tid) const
{
    auto it = trackNames.find({kSimPid, tid});
    return it == trackNames.end() ? kEmpty : it->second;
}

std::vector<const TraceEvent *>
TraceDocument::eventsOnClock(int pid) const
{
    std::vector<const TraceEvent *> out;
    for (const auto &e : events)
        if (e.pid == pid)
            out.push_back(&e);
    return out;
}

StatusOr<TraceDocument>
parseTrace(const std::string &text)
{
    auto parsed = parseJson(text);
    if (!parsed.ok())
        return parsed.status().withContext("trace document");
    return parseTraceTree(parsed.value());
}

StatusOr<TraceDocument>
parseTraceFile(const std::string &path)
{
    auto parsed = parseJsonFile(path);
    if (!parsed.ok())
        return parsed.status();
    auto doc = parseTraceTree(parsed.value());
    if (!doc.ok())
        return doc.status().withContext("file " + path);
    return doc;
}

} // namespace cfconv::analyze
