#include "common/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace cfconv {

const JsonValue *
JsonValue::get(const std::string &key) const
{
    if (!isObject())
        return nullptr;
    auto it = object_.find(key);
    return it == object_.end() ? nullptr : &it->second;
}

double
JsonValue::numberOr(const std::string &key, double fallback) const
{
    const JsonValue *v = get(key);
    return (v != nullptr && v->isNumber()) ? v->asNumber() : fallback;
}

std::string
JsonValue::stringOr(const std::string &key,
                    const std::string &fallback) const
{
    const JsonValue *v = get(key);
    return (v != nullptr && v->isString()) ? v->asString() : fallback;
}

JsonValue
JsonValue::makeNull()
{
    return JsonValue{};
}

JsonValue
JsonValue::makeBool(bool v)
{
    JsonValue j;
    j.type_ = Type::Bool;
    j.bool_ = v;
    return j;
}

JsonValue
JsonValue::makeNumber(double v)
{
    JsonValue j;
    j.type_ = Type::Number;
    j.number_ = v;
    return j;
}

JsonValue
JsonValue::makeString(std::string v)
{
    JsonValue j;
    j.type_ = Type::String;
    j.string_ = std::move(v);
    return j;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> v)
{
    JsonValue j;
    j.type_ = Type::Array;
    j.array_ = std::move(v);
    return j;
}

JsonValue
JsonValue::makeObject(std::map<std::string, JsonValue> v)
{
    JsonValue j;
    j.type_ = Type::Object;
    j.object_ = std::move(v);
    return j;
}

namespace {

/** Recursive-descent parser over one immutable text buffer. Depth is
 *  capped so a pathological document cannot blow the stack. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    StatusOr<JsonValue>
    parse()
    {
        CFCONV_ASSIGN_OR_RETURN(JsonValue value, parseValue(0));
        skipWhitespace();
        if (pos_ != text_.size())
            return errorHere("trailing characters after document");
        return value;
    }

  private:
    static constexpr int kMaxDepth = 64;

    Status
    errorHere(const char *what) const
    {
        return invalidArgumentError("json: %s at offset %zu", what,
                                    pos_);
    }

    void
    skipWhitespace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    consumeLiteral(const char *lit)
    {
        const size_t n = std::char_traits<char>::length(lit);
        if (text_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    StatusOr<JsonValue>
    parseValue(int depth)
    {
        if (depth > kMaxDepth)
            return errorHere("nesting too deep");
        skipWhitespace();
        if (pos_ >= text_.size())
            return errorHere("unexpected end of input");
        const char c = text_[pos_];
        if (c == '{')
            return parseObject(depth);
        if (c == '[')
            return parseArray(depth);
        if (c == '"') {
            CFCONV_ASSIGN_OR_RETURN(std::string s, parseString());
            return JsonValue::makeString(std::move(s));
        }
        if (consumeLiteral("null"))
            return JsonValue::makeNull();
        if (consumeLiteral("true"))
            return JsonValue::makeBool(true);
        if (consumeLiteral("false"))
            return JsonValue::makeBool(false);
        if (c == '-' || (c >= '0' && c <= '9'))
            return parseNumber();
        return errorHere("unexpected character");
    }

    StatusOr<JsonValue>
    parseObject(int depth)
    {
        ++pos_; // '{'
        std::map<std::string, JsonValue> members;
        skipWhitespace();
        if (consume('}'))
            return JsonValue::makeObject(std::move(members));
        while (true) {
            skipWhitespace();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return errorHere("expected object key");
            CFCONV_ASSIGN_OR_RETURN(std::string key, parseString());
            skipWhitespace();
            if (!consume(':'))
                return errorHere("expected ':' after object key");
            CFCONV_ASSIGN_OR_RETURN(JsonValue value,
                                    parseValue(depth + 1));
            members[std::move(key)] = std::move(value);
            skipWhitespace();
            if (consume(','))
                continue;
            if (consume('}'))
                return JsonValue::makeObject(std::move(members));
            return errorHere("expected ',' or '}' in object");
        }
    }

    StatusOr<JsonValue>
    parseArray(int depth)
    {
        ++pos_; // '['
        std::vector<JsonValue> items;
        skipWhitespace();
        if (consume(']'))
            return JsonValue::makeArray(std::move(items));
        while (true) {
            CFCONV_ASSIGN_OR_RETURN(JsonValue value,
                                    parseValue(depth + 1));
            items.push_back(std::move(value));
            skipWhitespace();
            if (consume(','))
                continue;
            if (consume(']'))
                return JsonValue::makeArray(std::move(items));
            return errorHere("expected ',' or ']' in array");
        }
    }

    StatusOr<std::string>
    parseString()
    {
        ++pos_; // opening quote
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return out;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return errorHere("unescaped control character");
            if (c != '\\') {
                out += c;
                ++pos_;
                continue;
            }
            ++pos_; // backslash
            if (pos_ >= text_.size())
                return errorHere("dangling escape");
            const char esc = text_[pos_++];
            switch (esc) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                CFCONV_ASSIGN_OR_RETURN(unsigned code, parseHex4());
                appendUtf8(out, code);
                break;
            }
            default:
                --pos_;
                return errorHere("invalid escape");
            }
        }
        return errorHere("unterminated string");
    }

    StatusOr<unsigned>
    parseHex4()
    {
        if (pos_ + 4 > text_.size())
            return errorHere("truncated \\u escape");
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_ + static_cast<size_t>(i)];
            code <<= 4;
            if (c >= '0' && c <= '9')
                code |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                code |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                code |= static_cast<unsigned>(c - 'A' + 10);
            else
                return errorHere("bad hex digit in \\u escape");
        }
        pos_ += 4;
        return code;
    }

    /** Encode one BMP code point as UTF-8 (surrogate pairs are kept
     *  as-is; the writers never emit them). */
    static void
    appendUtf8(std::string &out, unsigned code)
    {
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
        } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
        }
    }

    StatusOr<JsonValue>
    parseNumber()
    {
        const size_t start = pos_;
        if (consume('-')) {}
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (consume('.'))
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        const std::string token = text_.substr(start, pos_ - start);
        char *end = nullptr;
        const double v = std::strtod(token.c_str(), &end);
        if (end == token.c_str() || *end != '\0') {
            pos_ = start;
            return errorHere("malformed number");
        }
        return JsonValue::makeNumber(v);
    }

    const std::string &text_;
    size_t pos_ = 0;
};

} // namespace

StatusOr<JsonValue>
parseJson(const std::string &text)
{
    return Parser(text).parse();
}

StatusOr<JsonValue>
parseJsonFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return notFoundError("json file '%s' not readable",
                             path.c_str());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto parsed = parseJson(buffer.str());
    if (!parsed.ok())
        return parsed.status().withContext("file " + path);
    return parsed;
}

} // namespace cfconv
