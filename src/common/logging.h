/**
 * @file
 * gem5-style status and error reporting: inform/warn for status, fatal for
 * user errors (clean exit), panic for internal invariant violations (abort).
 */

#ifndef CFCONV_COMMON_LOGGING_H
#define CFCONV_COMMON_LOGGING_H

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace cfconv {

/** Exception thrown by fatal() so callers/tests can intercept user errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Exception thrown by panic() on internal invariant violations. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

namespace detail {

std::string vformat(const char *fmt, std::va_list args);
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/**
 * Report a condition that is the user's fault (bad configuration, invalid
 * arguments). Throws FatalError; never returns.
 */
[[noreturn]] void fatalMsg(const std::string &msg);

/**
 * Report an internal simulator bug (a condition that should never happen
 * regardless of user input). Throws PanicError; never returns.
 */
[[noreturn]] void panicMsg(const std::string &msg);

/**
 * Verbosity threshold for the status channels. Messages at or above
 * the active level print; fatal/panic are exceptions, not prints, and
 * are never filtered. Initialized from the CFCONV_LOG_LEVEL
 * environment variable ("info", "warn", "error"/"quiet"/"silent";
 * default Info) — set CFCONV_LOG_LEVEL=warn in benches/CI to silence
 * inform() chatter while keeping warnings on.
 */
enum class LogLevel {
    Info = 0, ///< inform() and warn() print (default)
    Warn = 1, ///< warn() prints, inform() is silenced
    Error = 2 ///< both status channels are silenced
};

/** The active verbosity threshold (env-initialized on first use). */
LogLevel logLevel();

/** Override the verbosity threshold (takes precedence over the env). */
void setLogLevel(LogLevel level);

/** Parse a CFCONV_LOG_LEVEL value; @return false (and leave @p out
 *  untouched) when @p text names no known level. */
bool parseLogLevel(const char *text, LogLevel *out);

/** Print an informational status message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning about possibly-imprecise behaviour to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence inform()/warn() output (used by benches);
 *  equivalent to raising the level to Error, kept as a separate flag
 *  so callers can restore the previous level with setQuiet(false). */
void setQuiet(bool quiet);

/** printf-style fatal(). */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args... args)
{
    if constexpr (sizeof...(Args) == 0) {
        fatalMsg(std::string(fmt));
    } else {
        fatalMsg(detail::format(fmt, args...));
    }
}

/** printf-style panic(). */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args... args)
{
    if constexpr (sizeof...(Args) == 0) {
        panicMsg(std::string(fmt));
    } else {
        panicMsg(detail::format(fmt, args...));
    }
}

/** fatal() unless @p cond holds. */
#define CFCONV_FATAL_IF(cond, ...)                                          \
    do {                                                                    \
        if (cond)                                                           \
            ::cfconv::fatal(__VA_ARGS__);                                   \
    } while (0)

/** panic() unless @p cond holds; use for internal invariants. */
#define CFCONV_ASSERT(cond, ...)                                            \
    do {                                                                    \
        if (!(cond))                                                        \
            ::cfconv::panic("assertion failed: " #cond " " __VA_ARGS__);    \
    } while (0)

} // namespace cfconv

#endif // CFCONV_COMMON_LOGGING_H
