#include "common/logging.h"

#include <atomic>
#include <cstdarg>
#include <cstring>
#include <vector>

namespace cfconv {

namespace {

std::atomic<bool> quietFlag{false};

constexpr int kLevelUnset = -1;

/** Active level, or kLevelUnset until first use (then env-derived). */
std::atomic<int> levelValue{kLevelUnset};

int
envLevel()
{
    LogLevel level = LogLevel::Info;
    if (const char *env = std::getenv("CFCONV_LOG_LEVEL")) {
        if (!parseLogLevel(env, &level)) {
            std::fprintf(stderr,
                         "warn: CFCONV_LOG_LEVEL=\"%s\" is not "
                         "info/warn/error; using info\n",
                         env);
        }
    }
    return static_cast<int>(level);
}

bool
levelAllows(LogLevel at_least)
{
    if (quietFlag.load(std::memory_order_relaxed))
        return false;
    return static_cast<int>(logLevel()) <= static_cast<int>(at_least);
}

} // namespace

LogLevel
logLevel()
{
    int v = levelValue.load(std::memory_order_relaxed);
    if (v == kLevelUnset) {
        v = envLevel();
        int expected = kLevelUnset;
        // First caller wins; a concurrent setLogLevel() overrides.
        levelValue.compare_exchange_strong(expected, v);
        v = levelValue.load(std::memory_order_relaxed);
    }
    return static_cast<LogLevel>(v);
}

void
setLogLevel(LogLevel level)
{
    levelValue.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool
parseLogLevel(const char *text, LogLevel *out)
{
    if (!text)
        return false;
    if (std::strcmp(text, "info") == 0 || std::strcmp(text, "INFO") == 0) {
        *out = LogLevel::Info;
    } else if (std::strcmp(text, "warn") == 0 ||
               std::strcmp(text, "WARN") == 0) {
        *out = LogLevel::Warn;
    } else if (std::strcmp(text, "error") == 0 ||
               std::strcmp(text, "ERROR") == 0 ||
               std::strcmp(text, "quiet") == 0 ||
               std::strcmp(text, "silent") == 0) {
        *out = LogLevel::Error;
    } else {
        return false;
    }
    return true;
}

namespace detail {

std::string
vformat(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (len < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(len));
}

std::string
format(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = vformat(fmt, args);
    va_end(args);
    return s;
}

} // namespace detail

void
fatalMsg(const std::string &msg)
{
    throw FatalError(msg);
}

void
panicMsg(const std::string &msg)
{
    throw PanicError(msg);
}

void
inform(const char *fmt, ...)
{
    if (!levelAllows(LogLevel::Info))
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string s = detail::vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "info: %s\n", s.c_str());
}

void
warn(const char *fmt, ...)
{
    if (!levelAllows(LogLevel::Warn))
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string s = detail::vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", s.c_str());
}

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

} // namespace cfconv
