#include "common/logging.h"

#include <atomic>
#include <cstdarg>
#include <vector>

namespace cfconv {

namespace {

std::atomic<bool> quietFlag{false};

} // namespace

namespace detail {

std::string
vformat(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (len < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(len));
}

std::string
format(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = vformat(fmt, args);
    va_end(args);
    return s;
}

} // namespace detail

void
fatalMsg(const std::string &msg)
{
    throw FatalError(msg);
}

void
panicMsg(const std::string &msg)
{
    throw PanicError(msg);
}

void
inform(const char *fmt, ...)
{
    if (quietFlag.load(std::memory_order_relaxed))
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string s = detail::vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "info: %s\n", s.c_str());
}

void
warn(const char *fmt, ...)
{
    if (quietFlag.load(std::memory_order_relaxed))
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string s = detail::vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", s.c_str());
}

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

} // namespace cfconv
