/**
 * @file
 * Deterministic random number generation. Everything in cfconv that needs
 * randomness (synthetic tensors, measurement-noise oracles) goes through
 * this header so runs are exactly reproducible.
 */

#ifndef CFCONV_COMMON_RNG_H
#define CFCONV_COMMON_RNG_H

#include <cstddef>
#include <cstdint>

namespace cfconv {

/**
 * SplitMix64: tiny, high-quality, seedable PRNG. Used instead of
 * std::mt19937 so that sequences are stable across standard libraries.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state_(seed) {}

    /** @return the next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** @return a uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** @return a uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** @return a uniform integer in [0, n). @p n must be positive. */
    std::uint64_t
    below(std::uint64_t n)
    {
        return next() % n;
    }

  private:
    std::uint64_t state_;
};

/**
 * Stateless hash of a byte-free key sequence; used by the measurement
 * oracles to derive per-configuration deterministic "noise".
 */
constexpr std::uint64_t
hashCombine(std::uint64_t h, std::uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
}

/** FNV-1a over a NUL-terminated string; constexpr so fault-site names
 *  hash at compile time. */
constexpr std::uint64_t
fnv1a(const char *s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (; *s != '\0'; ++s) {
        h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(*s));
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** FNV-1a over an arbitrary byte range; used for memo-cache entry
 *  checksums and fault-injection keys. */
inline std::uint64_t
hashBytes(const void *data, std::size_t size)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= static_cast<std::uint64_t>(p[i]);
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace cfconv

#endif // CFCONV_COMMON_RNG_H
