#include "common/stats.h"

#include <cmath>

#include "common/logging.h"

namespace cfconv {

double
meanAbsPctError(const std::vector<double> &reference,
                const std::vector<double> &measured)
{
    CFCONV_FATAL_IF(reference.size() != measured.size(),
                    "meanAbsPctError: size mismatch (%zu vs %zu)",
                    reference.size(), measured.size());
    if (reference.empty())
        return 0.0;
    double total = 0.0;
    for (size_t i = 0; i < reference.size(); ++i) {
        CFCONV_FATAL_IF(reference[i] == 0.0,
                        "meanAbsPctError: zero reference at index %zu", i);
        total += std::abs(measured[i] - reference[i]) /
                 std::abs(reference[i]);
    }
    return total / static_cast<double>(reference.size()) * 100.0;
}

double
geoMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        CFCONV_FATAL_IF(v <= 0.0, "geoMean: non-positive value %f", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace cfconv
