#include "common/stats.h"

#include <cmath>

#include "common/logging.h"

namespace cfconv {

double
Scalar::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    const std::uint64_t target = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(p * static_cast<double>(count_))));
    std::uint64_t cumulative = underflow_;
    if (cumulative >= target)
        return 0.0;
    for (int i = 0; i < kNumBuckets; ++i) {
        cumulative += buckets_[static_cast<std::size_t>(i)];
        if (cumulative >= target) {
            const double exponent =
                kMinExp +
                (static_cast<double>(i) + 0.5) / kBucketsPerOctave;
            return std::exp2(exponent);
        }
    }
    return max_; // unreachable unless counters drift
}

double
meanAbsPctError(const std::vector<double> &reference,
                const std::vector<double> &measured)
{
    CFCONV_FATAL_IF(reference.size() != measured.size(),
                    "meanAbsPctError: size mismatch (%zu vs %zu)",
                    reference.size(), measured.size());
    if (reference.empty())
        return 0.0;
    double total = 0.0;
    for (size_t i = 0; i < reference.size(); ++i) {
        CFCONV_FATAL_IF(reference[i] == 0.0,
                        "meanAbsPctError: zero reference at index %zu", i);
        total += std::abs(measured[i] - reference[i]) /
                 std::abs(reference[i]);
    }
    return total / static_cast<double>(reference.size()) * 100.0;
}

double
geoMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        CFCONV_FATAL_IF(v <= 0.0, "geoMean: non-positive value %f", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace cfconv
