#include "common/atomic_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/metrics.h"
#include "common/rng.h"

namespace cfconv {

std::string
contentChecksum(const std::string &content)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : content) {
        h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
        h *= 0x100000001b3ULL;
    }
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

namespace {

bool
writeAndRename(const std::string &path, const std::string &content)
{
    // A fixed temp suffix keeps the write deterministic and idempotent;
    // concurrent writers of the same path are not a supported pattern
    // anywhere in cfconv.
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "could not write %s\n", tmp.c_str());
        return false;
    }
    const size_t n = std::fwrite(content.data(), 1, content.size(), f);
    bool ok = n == content.size();
    ok = std::fflush(f) == 0 && ok;
    ok = std::fclose(f) == 0 && ok;
    if (!ok) {
        std::fprintf(stderr, "short write to %s\n", tmp.c_str());
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::fprintf(stderr, "could not rename %s -> %s: %s\n", tmp.c_str(),
                     path.c_str(), std::strerror(errno));
        std::remove(tmp.c_str());
        return false;
    }
    MetricsRegistry::instance().add("persist.atomic_writes", 1.0);
    return true;
}

} // namespace

bool
atomicWriteFile(const std::string &path, const std::string &content)
{
    return writeAndRename(path, content);
}

bool
atomicWriteFileChecksummed(const std::string &path,
                           const std::string &content)
{
    std::string payload = content;
    payload += kChecksumTrailerPrefix;
    payload += contentChecksum(content);
    payload += '\n';
    return writeAndRename(path, payload);
}

StatusOr<std::string>
readFileVerified(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return notFoundError("no such file: %s", path.c_str());
    std::string content;
    char buf[4096];
    size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        content.append(buf, n);
    std::fclose(f);

    // Find a trailer on the last line, if any.
    const std::string prefix = kChecksumTrailerPrefix;
    size_t lineStart = content.rfind('\n', content.empty()
                                              ? std::string::npos
                                              : content.size() - 2);
    lineStart = lineStart == std::string::npos ? 0 : lineStart + 1;
    if (content.compare(lineStart, prefix.size(), prefix) != 0)
        return content; // legacy file without a trailer
    std::string line = content.substr(lineStart);
    if (!line.empty() && line.back() == '\n')
        line.pop_back();
    const std::string want = line.substr(prefix.size());
    const std::string body = content.substr(0, lineStart);
    const std::string got = contentChecksum(body);
    if (want != got)
        return dataLossError(
            "checksum mismatch in %s: trailer %s vs content %s (torn write?)",
            path.c_str(), want.c_str(), got.c_str());
    return body;
}

} // namespace cfconv
