/**
 * @file
 * Minimal JSON reader: the parsing counterpart of common/report's
 * JsonWriter. The tuned-config database (tune/tuned_db) and any other
 * persisted documents the tools write must be read back and validated
 * in-process, without a third-party dependency. Parses the full JSON
 * grammar (objects, arrays, strings with escapes, numbers, literals)
 * into an owning tree of JsonValue nodes; errors come back as
 * INVALID_ARGUMENT Statuses naming the byte offset, never as process
 * aborts — a corrupted database file must be rejected, not fatal.
 */

#ifndef CFCONV_COMMON_JSON_H
#define CFCONV_COMMON_JSON_H

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace cfconv {

/** One node of a parsed JSON document. */
class JsonValue
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    JsonValue() = default;

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Typed accessors; a type mismatch yields the neutral value
     *  (false / 0.0 / empty). Callers that must distinguish "absent"
     *  from "zero" check is*() first. */
    bool asBool() const { return isBool() && bool_; }
    double asNumber() const { return isNumber() ? number_ : 0.0; }
    const std::string &asString() const { return string_; }

    /** Array elements (empty unless isArray()). */
    const std::vector<JsonValue> &items() const { return array_; }

    /** Object members (empty unless isObject()). */
    const std::map<std::string, JsonValue> &members() const
    {
        return object_;
    }

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *get(const std::string &key) const;

    /** Convenience typed member reads with defaults. */
    double numberOr(const std::string &key, double fallback) const;
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;

    static JsonValue makeNull();
    static JsonValue makeBool(bool v);
    static JsonValue makeNumber(double v);
    static JsonValue makeString(std::string v);
    static JsonValue makeArray(std::vector<JsonValue> v);
    static JsonValue makeObject(std::map<std::string, JsonValue> v);

  private:
    Type type_ = Type::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::map<std::string, JsonValue> object_;
};

/**
 * Parse @p text as one JSON document. Trailing non-whitespace after
 * the top-level value, unterminated containers/strings, bad escapes,
 * and malformed numbers all return INVALID_ARGUMENT with the byte
 * offset of the offending character.
 */
StatusOr<JsonValue> parseJson(const std::string &text);

/** Read and parse a JSON file. NOT_FOUND when the file is missing or
 *  unreadable; parse errors carry the path as context. */
StatusOr<JsonValue> parseJsonFile(const std::string &path);

} // namespace cfconv

#endif // CFCONV_COMMON_JSON_H
