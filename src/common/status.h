/**
 * @file
 * Structured error propagation for the recoverable paths: Status (an
 * error code + message + context chain) and StatusOr<T> (a value or a
 * Status). The logging channel stays split by audience — fatal() for
 * unrecoverable user errors, panic() for simulator bugs — but the
 * runLayer/runModel/config-parsing paths return Status instead of
 * throwing, so a resilient caller (sim::ModelRunner retry/failover,
 * the chaos harness) can decide per error whether to retry, fail over
 * to another backend, or surface the failure. Transient codes
 * (DeadlineExceeded, Unavailable, DataLoss, ResourceExhausted) are the
 * ones worth retrying; InvalidArgument/Internal fail the same way on
 * every attempt and should fail fast.
 */

#ifndef CFCONV_COMMON_STATUS_H
#define CFCONV_COMMON_STATUS_H

#include <string>
#include <utility>

#include "common/logging.h"

namespace cfconv {

/** Error taxonomy, a deliberately small subset of the familiar
 *  absl/gRPC canonical codes. */
enum class StatusCode {
    kOk = 0,
    kInvalidArgument,   ///< caller passed nonsense (not retryable)
    kNotFound,          ///< named thing does not exist (not retryable)
    kDeadlineExceeded,  ///< step timed out (retryable)
    kDataLoss,          ///< corruption detected (retryable: recompute)
    kUnavailable,       ///< resource transiently down (retryable)
    kResourceExhausted, ///< capacity exceeded (retryable elsewhere)
    kInternal,          ///< invariant violation escaped (not retryable)
};

/** Stable uppercase name of @p code, e.g. "INVALID_ARGUMENT". */
const char *statusCodeName(StatusCode code);

/** Whether an error of this code may succeed on a later attempt or on
 *  another backend. The retry policy in sim::ModelRunner keys on it. */
bool isRetryable(StatusCode code);

/**
 * An operation outcome: kOk (no message) or an error code plus a
 * human-readable message. Context accumulates front-to-back as the
 * error bubbles up (withContext), so the final text reads like a call
 * chain: "runModel 'ResNet': layer conv2_x.3x3: step timed out".
 */
class Status
{
  public:
    /** Default: OK. */
    Status() = default;

    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {}

    bool ok() const { return code_ == StatusCode::kOk; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** A copy with "@p context: " prepended to the message (no-op on
     *  OK), for annotating an error as it crosses a layer boundary. */
    Status
    withContext(const std::string &context) const
    {
        if (ok())
            return *this;
        return Status(code_, context + ": " + message_);
    }

    /** "CODE_NAME: message", or "OK". */
    std::string
    toString() const
    {
        if (ok())
            return "OK";
        return std::string(statusCodeName(code_)) + ": " + message_;
    }

    bool operator==(const Status &other) const = default;

  private:
    StatusCode code_ = StatusCode::kOk;
    std::string message_;
};

/** The OK singleton, for symmetric return statements. */
inline Status
okStatus()
{
    return Status();
}

/** printf-style constructors for each error code. */
template <typename... Args>
Status
invalidArgumentError(const char *fmt, Args... args)
{
    if constexpr (sizeof...(Args) == 0)
        return Status(StatusCode::kInvalidArgument, fmt);
    else
        return Status(StatusCode::kInvalidArgument,
                      detail::format(fmt, args...));
}

template <typename... Args>
Status
notFoundError(const char *fmt, Args... args)
{
    if constexpr (sizeof...(Args) == 0)
        return Status(StatusCode::kNotFound, fmt);
    else
        return Status(StatusCode::kNotFound, detail::format(fmt, args...));
}

template <typename... Args>
Status
deadlineExceededError(const char *fmt, Args... args)
{
    if constexpr (sizeof...(Args) == 0)
        return Status(StatusCode::kDeadlineExceeded, fmt);
    else
        return Status(StatusCode::kDeadlineExceeded,
                      detail::format(fmt, args...));
}

template <typename... Args>
Status
dataLossError(const char *fmt, Args... args)
{
    if constexpr (sizeof...(Args) == 0)
        return Status(StatusCode::kDataLoss, fmt);
    else
        return Status(StatusCode::kDataLoss, detail::format(fmt, args...));
}

template <typename... Args>
Status
unavailableError(const char *fmt, Args... args)
{
    if constexpr (sizeof...(Args) == 0)
        return Status(StatusCode::kUnavailable, fmt);
    else
        return Status(StatusCode::kUnavailable,
                      detail::format(fmt, args...));
}

template <typename... Args>
Status
resourceExhaustedError(const char *fmt, Args... args)
{
    if constexpr (sizeof...(Args) == 0)
        return Status(StatusCode::kResourceExhausted, fmt);
    else
        return Status(StatusCode::kResourceExhausted,
                      detail::format(fmt, args...));
}

template <typename... Args>
Status
internalError(const char *fmt, Args... args)
{
    if constexpr (sizeof...(Args) == 0)
        return Status(StatusCode::kInternal, fmt);
    else
        return Status(StatusCode::kInternal, detail::format(fmt, args...));
}

/**
 * A T or the Status explaining why there is no T. value() on an error
 * is a programming bug and panics — callers must check ok() (or use
 * CFCONV_ASSIGN_OR_RETURN) first.
 */
template <typename T>
class StatusOr
{
  public:
    /** Implicit from an error Status (an OK status without a value is
     *  a contract violation and panics). */
    StatusOr(Status status) : status_(std::move(status)) // NOLINT
    {
        if (status_.ok())
            panic("StatusOr constructed from OK status without a value");
    }

    /** Implicit from a value. */
    StatusOr(T value) // NOLINT
        : status_(), value_(std::move(value)), hasValue_(true)
    {}

    bool ok() const { return hasValue_; }
    const Status &status() const { return status_; }

    const T &
    value() const &
    {
        requireValue();
        return value_;
    }

    T &
    value() &
    {
        requireValue();
        return value_;
    }

    T &&
    value() &&
    {
        requireValue();
        return std::move(value_);
    }

    const T &operator*() const & { return value(); }
    T &operator*() & { return value(); }
    const T *operator->() const { return &value(); }
    T *operator->() { return &value(); }

    /** The value, or @p fallback on error. */
    T
    valueOr(T fallback) const &
    {
        return hasValue_ ? value_ : std::move(fallback);
    }

  private:
    void
    requireValue() const
    {
        if (!hasValue_)
            panic("StatusOr::value() on error status: %s",
                  status_.toString().c_str());
    }

    Status status_;
    T value_{};
    bool hasValue_ = false;
};

#define CFCONV_STATUS_CAT2(a, b) a##b
#define CFCONV_STATUS_CAT(a, b) CFCONV_STATUS_CAT2(a, b)

/** Propagate a non-OK Status from a Status-returning expression. */
#define CFCONV_RETURN_IF_ERROR(expr)                                        \
    do {                                                                    \
        ::cfconv::Status cfconv_status_tmp = (expr);                        \
        if (!cfconv_status_tmp.ok())                                        \
            return cfconv_status_tmp;                                       \
    } while (0)

#define CFCONV_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr)                        \
    auto tmp = (expr);                                                      \
    if (!tmp.ok())                                                          \
        return tmp.status();                                                \
    lhs = std::move(tmp).value()

/** Evaluate a StatusOr expression; on error return its Status, else
 *  assign the value to @p lhs (which may include a declaration). */
#define CFCONV_ASSIGN_OR_RETURN(lhs, expr)                                  \
    CFCONV_ASSIGN_OR_RETURN_IMPL(                                           \
        CFCONV_STATUS_CAT(cfconv_statusor_, __COUNTER__), lhs, expr)

} // namespace cfconv

#endif // CFCONV_COMMON_STATUS_H
