/**
 * @file
 * Minimal streaming JSON writer for the structured run reports
 * (BENCH_*.json, the sim::RunRecord documents). Generalizes the
 * hand-rolled fprintf pattern the GEMM bench used: nesting and comma
 * placement are tracked by a container stack, strings are escaped, and
 * non-finite doubles are emitted as null (JSON has no NaN/Inf), which
 * is exactly what the report validators key on.
 */

#ifndef CFCONV_COMMON_REPORT_H
#define CFCONV_COMMON_REPORT_H

#include <cstdint>
#include <string>
#include <vector>

namespace cfconv {

/** Escape @p s for inclusion in a JSON string literal (no quotes). */
std::string jsonEscape(const std::string &s);

/**
 * Incremental JSON document builder. Usage:
 *
 *   JsonWriter w;
 *   w.beginObject();
 *   w.field("version", 1);
 *   w.key("layers"); w.beginArray(); ... w.endArray();
 *   w.endObject();
 *   writeFile(path, w.str());
 *
 * The writer indents two spaces per nesting level so the emitted
 * documents stay diffable and human-readable.
 */
class JsonWriter
{
  public:
    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit the key of the next object member. */
    void key(const std::string &name);

    void value(const std::string &v);
    void value(const char *v);
    void value(double v);
    void value(long long v);
    void value(std::uint64_t v);
    void value(bool v);
    void valueNull();

    /** key() + value() in one call. */
    template <typename T>
    void
    field(const std::string &name, const T &v)
    {
        key(name);
        value(v);
    }

    /** The finished document. All containers must be closed. */
    const std::string &str() const;

  private:
    void beginValue();
    void indent();

    struct Frame
    {
        bool isObject = false;
        bool hasItems = false;
    };

    std::string out_;
    std::vector<Frame> stack_;
    bool pendingKey_ = false;
};

/** Write @p content to @p path; @return false (with a stderr note) on
 *  I/O failure instead of aborting — report emission must never take
 *  down a bench run. */
bool writeFile(const std::string &path, const std::string &content);

} // namespace cfconv

#endif // CFCONV_COMMON_REPORT_H
