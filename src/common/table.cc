#include "common/table.h"

#include <algorithm>
#include <cstdarg>

#include "common/logging.h"

namespace cfconv {

void
Table::setHeader(std::vector<std::string> header)
{
    CFCONV_FATAL_IF(!rows_.empty(),
                    "Table::setHeader called after rows were added");
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    CFCONV_FATAL_IF(header_.empty(), "Table::addRow before setHeader");
    CFCONV_FATAL_IF(row.size() != header_.size(),
                    "Table row has %zu cells, header has %zu",
                    row.size(), header_.size());
    rows_.push_back(std::move(row));
}

void
Table::print(std::FILE *out) const
{
    std::vector<size_t> widths(header_.size(), 0);
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::fprintf(out, "\n== %s ==\n", title_.c_str());
    auto print_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            std::fprintf(out, "%c %-*s", c == 0 ? '|' : '|',
                         static_cast<int>(widths[c]), row[c].c_str());
            std::fprintf(out, " ");
        }
        std::fprintf(out, "|\n");
    };
    print_row(header_);
    size_t total = header_.size() * 3 + 1;
    for (size_t w : widths)
        total += w;
    std::string rule(total, '-');
    std::fprintf(out, "%s\n", rule.c_str());
    for (const auto &row : rows_)
        print_row(row);
    std::fflush(out);
}

std::string
Table::toCsv() const
{
    std::string out;
    auto append_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                out += ',';
            out += row[c];
        }
        out += '\n';
    };
    append_row(header_);
    for (const auto &row : rows_)
        append_row(row);
    return out;
}

std::string
cell(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = detail::vformat(fmt, args);
    va_end(args);
    return s;
}

} // namespace cfconv
