/**
 * @file
 * Minimal key=value configuration files for the simulators: lets
 * experiments live in checked-in .cfg files instead of recompiles.
 * Syntax: one `key = value` per line, `#` comments, blank lines
 * ignored. Unknown keys are detectable so configs fail loudly.
 */

#ifndef CFCONV_COMMON_CONFIG_H
#define CFCONV_COMMON_CONFIG_H

#include <map>
#include <set>
#include <string>

#include "common/status.h"

namespace cfconv {

/** A parsed key=value configuration. */
class Config
{
  public:
    Config() = default;

    /** Parse from file contents. The error names the offending line
     *  and key (INVALID_ARGUMENT). */
    static StatusOr<Config> tryFromString(const std::string &text);

    /** Parse from a file on disk; NOT_FOUND when unreadable, parse
     *  errors as tryFromString annotated with the path. */
    static StatusOr<Config> tryFromFile(const std::string &path);

    /** Parse from file contents; fatal on syntax errors. */
    static Config fromString(const std::string &text);

    /** Parse from a file on disk; fatal if unreadable. */
    static Config fromFile(const std::string &path);

    bool has(const std::string &key) const;

    /** Typed getters: return @p fallback when the key is absent,
     *  fatal when the value does not parse as the requested type. */
    long long getInt(const std::string &key, long long fallback) const;
    double getDouble(const std::string &key, double fallback) const;
    bool getBool(const std::string &key, bool fallback) const;
    std::string getString(const std::string &key,
                          const std::string &fallback) const;

    /** Recoverable typed getters: @p fallback when the key is absent,
     *  INVALID_ARGUMENT naming key and value when it does not parse.
     *  The fatal getters above are thin wrappers over these. */
    StatusOr<long long> tryGetInt(const std::string &key,
                                  long long fallback) const;
    StatusOr<double> tryGetDouble(const std::string &key,
                                  double fallback) const;
    StatusOr<bool> tryGetBool(const std::string &key,
                              bool fallback) const;

    /**
     * Keys present in the file but never read through a getter; call
     * after configuration to catch typos (`arary = 256`).
     */
    std::set<std::string> unusedKeys() const;

    size_t size() const { return values_.size(); }

  private:
    const std::string *find(const std::string &key) const;

    std::map<std::string, std::string> values_;
    mutable std::set<std::string> used_;
};

} // namespace cfconv

#endif // CFCONV_COMMON_CONFIG_H
