/**
 * @file
 * Crash-consistent file persistence. Writers that previously used
 * writeFile() could leave a torn file behind if the process died
 * mid-write; every durable artifact (tuned-config DB, RunRecord
 * documents) now goes through the helpers here instead.
 *
 *   - atomicWriteFile(): write the content to "<path>.tmp", flush, and
 *     rename() over the destination. Readers either see the old file or
 *     the complete new one, never a prefix.
 *   - atomicWriteFileChecksummed(): same, but appends a one-line FNV-1a
 *     checksum trailer so readers can detect torn or bit-flipped
 *     content that survived the rename (e.g. a crash between rename and
 *     fsync on a power cut, or manual truncation).
 *   - readFileVerified(): read a file written by either helper. A
 *     trailer, when present, is verified (DATA_LOSS on mismatch) and
 *     stripped; trailer-less files are accepted as legacy content so
 *     old artifacts keep loading.
 *
 * Callers that can regenerate the artifact should treat a DATA_LOSS
 * result as "discard and rebuild", and count the recovery in the
 * MetricsRegistry under "persist.recovered".
 */

#ifndef CFCONV_COMMON_ATOMIC_FILE_H
#define CFCONV_COMMON_ATOMIC_FILE_H

#include <string>

#include "common/status.h"

namespace cfconv {

/** Trailer prefix; a trailer line is "#cfconv-sum:fnv1a:<16 hex>\n". */
inline constexpr const char *kChecksumTrailerPrefix = "#cfconv-sum:fnv1a:";

/** @return the 16-hex-digit FNV-1a checksum of @p content. */
std::string contentChecksum(const std::string &content);

/**
 * Atomically replace @p path with @p content via write-temp + rename.
 * @return true on success; failures log to stderr and return false
 * (same non-fatal contract as writeFile()).
 */
bool atomicWriteFile(const std::string &path, const std::string &content);

/**
 * atomicWriteFile() plus a checksum trailer line appended after the
 * content so readFileVerified() can detect corruption.
 */
bool atomicWriteFileChecksummed(const std::string &path,
                                const std::string &content);

/**
 * Read @p path, verifying and stripping a checksum trailer when one is
 * present.
 *
 * @return the content without the trailer; NOT_FOUND when the file does
 * not exist; DATA_LOSS naming the path when the trailer does not match
 * the content (torn write, truncation, or bit rot).
 */
StatusOr<std::string> readFileVerified(const std::string &path);

} // namespace cfconv

#endif // CFCONV_COMMON_ATOMIC_FILE_H
