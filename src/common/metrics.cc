#include "common/metrics.h"

#include "common/report.h"

namespace cfconv {

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

void
MetricsRegistry::add(const std::string &name, double v)
{
    std::lock_guard<std::mutex> lock(mu_);
    group_.add(name, v);
}

void
MetricsRegistry::sample(const std::string &name, double v)
{
    std::lock_guard<std::mutex> lock(mu_);
    group_.sample(name, v);
}

StatGroup
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return group_;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    group_.reset();
}

void
emitStatGroupJson(JsonWriter &w, const StatGroup &group)
{
    w.key("counters");
    w.beginObject();
    for (const auto &[name, value] : group.counters())
        w.field(name, value);
    w.endObject();
    w.key("histograms");
    w.beginObject();
    for (const auto &[name, s] : group.scalars()) {
        w.key(name);
        w.beginObject();
        w.field("count", static_cast<std::uint64_t>(s.count()));
        w.field("mean", s.mean());
        w.field("min", s.min());
        w.field("max", s.max());
        w.field("p50", s.p50());
        w.field("p95", s.p95());
        w.field("p99", s.p99());
        w.field("p999", s.p999());
        w.endObject();
    }
    w.endObject();
}

std::string
metricsJson(const StatGroup &group)
{
    JsonWriter w;
    w.beginObject();
    w.field("schema", "cfconv.metrics");
    w.field("version", 1LL);
    emitStatGroupJson(w, group);
    w.endObject();
    return w.str() + "\n";
}

bool
writeMetricsJson(const std::string &path, const StatGroup &group)
{
    return writeFile(path, metricsJson(group));
}

} // namespace cfconv
