#include "common/metrics.h"

namespace cfconv {

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

void
MetricsRegistry::add(const std::string &name, double v)
{
    std::lock_guard<std::mutex> lock(mu_);
    group_.add(name, v);
}

void
MetricsRegistry::sample(const std::string &name, double v)
{
    std::lock_guard<std::mutex> lock(mu_);
    group_.sample(name, v);
}

StatGroup
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return group_;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    group_.reset();
}

} // namespace cfconv
