#include "common/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "common/report.h"

namespace cfconv::trace {

namespace detail {
std::atomic<bool> g_enabled{false};
} // namespace detail

namespace {

/** Chrome-trace process ids separating the two clock domains. */
constexpr int kWallPid = 1;
constexpr int kSimPid = 2;

/** One buffered trace event (any phase type). */
struct Event
{
    std::string name;
    const char *category = "";
    char phase = 'X'; ///< X complete, i instant, C counter
    int pid = kWallPid;
    int tid = 0;
    double ts = 0.0;  ///< us (wall) or cycles (sim)
    double dur = 0.0; ///< X events only
    Args args;
};

/**
 * Per-thread event buffer. Owned by the recorder and never freed while
 * the process lives, so the thread_local pointer into it stays valid
 * even across thread-pool restarts. The mutex is uncontended in steady
 * state (only the owning thread appends; the flusher takes it once).
 */
struct ThreadBuffer
{
    std::mutex mu;
    std::vector<Event> events;
    int tid = 0;
    std::string name;
};

class Recorder
{
  public:
    static Recorder &
    instance()
    {
        static Recorder recorder;
        return recorder;
    }

    ThreadBuffer &
    threadBuffer()
    {
        thread_local ThreadBuffer *tls = nullptr;
        if (!tls)
            tls = registerThread();
        return *tls;
    }

    double
    nowUs() const
    {
        const auto now = std::chrono::steady_clock::now();
        return std::chrono::duration<double, std::micro>(now - epoch_)
            .count();
    }

    void
    record(Event &&e)
    {
        ThreadBuffer &buf = threadBuffer();
        std::lock_guard<std::mutex> lock(buf.mu);
        buf.events.push_back(std::move(e));
    }

    void
    start(const std::string &path)
    {
        std::lock_guard<std::mutex> lock(mu_);
        dropEventsLocked();
        path_ = path;
        detail::g_enabled.store(true, std::memory_order_release);
        if (!atexitRegistered_) {
            atexitRegistered_ = true;
            std::atexit([] { trace::stop(); });
        }
    }

    bool
    stop()
    {
        std::lock_guard<std::mutex> lock(mu_);
        detail::g_enabled.store(false, std::memory_order_release);
        if (path_.empty())
            return true;
        const std::string doc = renderLocked();
        const std::string path = path_;
        path_.clear();
        dropEventsLocked();
        return writeFile(path, doc);
    }

    void
    reset()
    {
        std::lock_guard<std::mutex> lock(mu_);
        detail::g_enabled.store(false, std::memory_order_release);
        path_.clear();
        dropEventsLocked();
    }

    std::string
    path()
    {
        std::lock_guard<std::mutex> lock(mu_);
        return path_;
    }

    void
    setThreadName(const std::string &name)
    {
        ThreadBuffer &buf = threadBuffer();
        std::lock_guard<std::mutex> lock(buf.mu);
        buf.name = name;
    }

    int
    newSimTrack(std::string label)
    {
        std::lock_guard<std::mutex> lock(mu_);
        const int tid = nextSimTid_++;
        simTracks_.emplace_back(tid, std::move(label));
        return tid;
    }

    std::size_t
    bufferedEvents()
    {
        std::lock_guard<std::mutex> lock(mu_);
        std::size_t n = 0;
        for (const auto &buf : buffers_) {
            std::lock_guard<std::mutex> blk(buf->mu);
            n += buf->events.size();
        }
        return n;
    }

  private:
    Recorder() : epoch_(std::chrono::steady_clock::now()) {}

    ThreadBuffer *
    registerThread()
    {
        std::lock_guard<std::mutex> lock(mu_);
        buffers_.push_back(std::make_unique<ThreadBuffer>());
        ThreadBuffer *buf = buffers_.back().get();
        buf->tid = nextTid_++;
        return buf;
    }

    void
    dropEventsLocked()
    {
        for (const auto &buf : buffers_) {
            std::lock_guard<std::mutex> blk(buf->mu);
            buf->events.clear();
        }
        simTracks_.clear();
    }

    static void
    emitArgs(std::string &out, const Args &args)
    {
        out += "{";
        for (size_t i = 0; i < args.size(); ++i) {
            if (i)
                out += ", ";
            out += "\"" + jsonEscape(args[i].key) + "\": ";
            if (args[i].isText) {
                out += "\"" + jsonEscape(args[i].text) + "\"";
            } else {
                char num[40];
                std::snprintf(num, sizeof(num), "%.17g",
                              args[i].value);
                out += num;
            }
        }
        out += "}";
    }

    void
    emitEvent(std::string &out, const Event &e, bool &first) const
    {
        if (!first)
            out += ",\n";
        first = false;
        char buf[128];
        out += "  {\"name\": \"" + jsonEscape(e.name) + "\", \"cat\": \"";
        out += e.category;
        out += "\", \"ph\": \"";
        out += e.phase;
        std::snprintf(buf, sizeof(buf),
                      "\", \"pid\": %d, \"tid\": %d, \"ts\": %.3f",
                      e.pid, e.tid, e.ts);
        out += buf;
        if (e.phase == 'X') {
            std::snprintf(buf, sizeof(buf), ", \"dur\": %.3f", e.dur);
            out += buf;
        }
        if (e.phase == 'i')
            out += ", \"s\": \"t\"";
        if (!e.args.empty() || e.phase == 'C') {
            out += ", \"args\": ";
            emitArgs(out, e.args);
        }
        out += "}";
    }

    void
    emitMetadata(std::string &out, int pid, int tid, const char *what,
                 const std::string &name, bool &first) const
    {
        if (!first)
            out += ",\n";
        first = false;
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "  {\"name\": \"%s\", \"ph\": \"M\", \"pid\": %d, "
                      "\"tid\": %d, \"args\": {\"name\": \"",
                      what, pid, tid);
        out += buf;
        out += jsonEscape(name) + "\"}}";
    }

    std::string
    renderLocked() const
    {
        std::string out;
        out.reserve(1 << 16);
        out += "{\n\"traceEvents\": [\n";
        bool first = true;
        emitMetadata(out, kWallPid, 0, "process_name", "wall clock",
                     first);
        emitMetadata(out, kSimPid, 0, "process_name", "simulated cycles",
                     first);
        for (const auto &buf : buffers_) {
            std::lock_guard<std::mutex> blk(buf->mu);
            if (!buf->name.empty())
                emitMetadata(out, kWallPid, buf->tid, "thread_name",
                             buf->name, first);
            for (const Event &e : buf->events)
                emitEvent(out, e, first);
        }
        for (const auto &[tid, label] : simTracks_)
            emitMetadata(out, kSimPid, tid, "thread_name", label, first);
        out += "\n],\n\"displayTimeUnit\": \"ms\"\n}\n";
        return out;
    }

    std::mutex mu_;
    std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
    std::vector<std::pair<int, std::string>> simTracks_;
    std::string path_;
    int nextTid_ = 1;
    int nextSimTid_ = 1;
    bool atexitRegistered_ = false;
    const std::chrono::steady_clock::time_point epoch_;
};

/** Arms the recorder from CFCONV_TRACE before main() in every binary
 *  linking cfconv_common, so tests and examples trace without plumbing. */
[[maybe_unused]] const bool g_envArmed = startFromEnv();

} // namespace

void
start(const std::string &path)
{
    Recorder::instance().start(path);
}

bool
stop()
{
    return Recorder::instance().stop();
}

bool
startFromEnv()
{
    const char *env = std::getenv("CFCONV_TRACE");
    if (!env || env[0] == '\0')
        return false;
    start(env);
    return true;
}

std::string
outputPath()
{
    return Recorder::instance().path();
}

double
nowUs()
{
    return Recorder::instance().nowUs();
}

void
setThreadName(const std::string &name)
{
    Recorder::instance().setThreadName(name);
}

void
instant(const char *category, std::string name, Args args)
{
    if (!enabled())
        return;
    Recorder &r = Recorder::instance();
    Event e;
    e.name = std::move(name);
    e.category = category;
    e.phase = 'i';
    e.tid = r.threadBuffer().tid;
    e.ts = r.nowUs();
    e.args = std::move(args);
    r.record(std::move(e));
}

void
counter(const char *category, const char *name, double value)
{
    if (!enabled())
        return;
    Recorder &r = Recorder::instance();
    Event e;
    e.name = name;
    e.category = category;
    e.phase = 'C';
    e.tid = 0; // counters share one process-wide track per name
    e.ts = r.nowUs();
    e.args.push_back({"value", value});
    r.record(std::move(e));
}

void
completeSpan(const char *category, std::string name, double ts_us,
             double dur_us, Args args)
{
    if (!enabled())
        return;
    Recorder &r = Recorder::instance();
    Event e;
    e.name = std::move(name);
    e.category = category;
    e.phase = 'X';
    e.tid = r.threadBuffer().tid;
    e.ts = ts_us;
    e.dur = dur_us;
    e.args = std::move(args);
    r.record(std::move(e));
}

Scope::~Scope()
{
    if (startUs_ < 0.0 || !enabled())
        return;
    completeSpan(category_,
                 staticName_ ? std::string(staticName_)
                             : std::move(dynName_),
                 startUs_, nowUs() - startUs_, std::move(args_));
}

SimTrack
simTrack(std::string label)
{
    if (!enabled())
        return {};
    return {Recorder::instance().newSimTrack(std::move(label))};
}

void
simSpan(const SimTrack &track, const char *name,
        std::uint64_t start_cycles, std::uint64_t dur_cycles, Args args)
{
    if (!track.active() || dur_cycles == 0 || !enabled())
        return;
    Recorder &r = Recorder::instance();
    Event e;
    e.name = name;
    e.category = "sim";
    e.phase = 'X';
    e.pid = kSimPid;
    e.tid = track.tid;
    e.ts = static_cast<double>(start_cycles);
    e.dur = static_cast<double>(dur_cycles);
    e.args = std::move(args);
    r.record(std::move(e));
}

void
simInstant(const SimTrack &track, std::string name,
           std::uint64_t at_cycles, Args args)
{
    if (!track.active() || !enabled())
        return;
    Recorder &r = Recorder::instance();
    Event e;
    e.name = std::move(name);
    e.category = "sim";
    e.phase = 'i';
    e.pid = kSimPid;
    e.tid = track.tid;
    e.ts = static_cast<double>(at_cycles);
    e.args = std::move(args);
    r.record(std::move(e));
}

std::size_t
bufferedEventCountForTest()
{
    return Recorder::instance().bufferedEvents();
}

void
resetForTest()
{
    Recorder::instance().reset();
}

} // namespace cfconv::trace
