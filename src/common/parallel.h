/**
 * @file
 * Deterministic host-side parallel execution: a lazily-started
 * fixed-size thread pool and a chunked parallelFor primitive. Every
 * user hands each worker a disjoint output range, so results are
 * bit-exact regardless of the thread count; CFCONV_THREADS=1 (or
 * setThreads(1)) reproduces the fully serial execution path.
 */

#ifndef CFCONV_COMMON_PARALLEL_H
#define CFCONV_COMMON_PARALLEL_H

#include <functional>

#include "common/types.h"

namespace cfconv::parallel {

/**
 * Number of execution lanes parallelFor uses (>= 1). Initialized on
 * first use from the CFCONV_THREADS environment variable when set,
 * otherwise from std::thread::hardware_concurrency().
 */
Index threads();

/**
 * Override the lane count. @p n = 1 forces fully serial execution;
 * @p n = 0 restores the default (CFCONV_THREADS env or hardware
 * concurrency). Restarts the pool, so call it between parallel
 * regions, not from inside one.
 */
void setThreads(Index n);

/**
 * Run @p body over [begin, end) split into contiguous chunks of at
 * least @p grain indices, distributed over the pool. @p body receives
 * half-open sub-ranges [chunk_begin, chunk_end) that together cover
 * [begin, end) exactly once; it must only write state owned by its
 * range. The calling thread participates. Exceptions thrown by @p body
 * are captured and the first one is rethrown here after all chunks
 * retire. Nested calls (from inside a worker) run inline on the
 * calling worker, so kernels that use parallelFor can be freely
 * composed without oversubscription or deadlock.
 */
void parallelFor(Index begin, Index end, Index grain,
                 const std::function<void(Index, Index)> &body);

} // namespace cfconv::parallel

#endif // CFCONV_COMMON_PARALLEL_H
