/**
 * @file
 * Fundamental scalar types and small helpers shared by all cfconv modules.
 */

#ifndef CFCONV_COMMON_TYPES_H
#define CFCONV_COMMON_TYPES_H

#include <cstddef>
#include <cstdint>

namespace cfconv {

/** Cycle count type used by all timing models. */
using Cycles = std::uint64_t;

/** Byte count type for memory sizing and traffic accounting. */
using Bytes = std::uint64_t;

/** Generic 64-bit index for tensor/matrix coordinates. */
using Index = std::int64_t;

/** Floating-point operation count (multiply and add counted separately). */
using Flops = std::uint64_t;

/** Supported element data types for the functional and timing paths. */
enum class DataType {
    Int8,
    Fp16,
    Bf16,
    Fp32,
};

/** @return the storage size in bytes of one element of @p dt. */
constexpr Bytes
dataTypeSize(DataType dt)
{
    switch (dt) {
      case DataType::Int8:
        return 1;
      case DataType::Fp16:
      case DataType::Bf16:
        return 2;
      case DataType::Fp32:
        return 4;
    }
    return 0;
}

/** @return a printable name for @p dt. */
constexpr const char *
dataTypeName(DataType dt)
{
    switch (dt) {
      case DataType::Int8:
        return "int8";
      case DataType::Fp16:
        return "fp16";
      case DataType::Bf16:
        return "bf16";
      case DataType::Fp32:
        return "fp32";
    }
    return "unknown";
}

/** Integer ceiling division for non-negative values. */
template <typename T>
constexpr T
divCeil(T a, T b)
{
    return (a + b - 1) / b;
}

/** Round @p a up to the next multiple of @p b. */
template <typename T>
constexpr T
roundUp(T a, T b)
{
    return divCeil(a, b) * b;
}

} // namespace cfconv

#endif // CFCONV_COMMON_TYPES_H
