#include "common/status.h"

namespace cfconv {

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
    case StatusCode::kOk:
        return "OK";
    case StatusCode::kInvalidArgument:
        return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
        return "NOT_FOUND";
    case StatusCode::kDeadlineExceeded:
        return "DEADLINE_EXCEEDED";
    case StatusCode::kDataLoss:
        return "DATA_LOSS";
    case StatusCode::kUnavailable:
        return "UNAVAILABLE";
    case StatusCode::kResourceExhausted:
        return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal:
        return "INTERNAL";
    }
    return "UNKNOWN";
}

bool
isRetryable(StatusCode code)
{
    switch (code) {
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kDataLoss:
    case StatusCode::kUnavailable:
    case StatusCode::kResourceExhausted:
        return true;
    case StatusCode::kOk:
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kInternal:
        return false;
    }
    return false;
}

} // namespace cfconv
