#include "common/config.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace cfconv {

namespace {

std::string
strip(const std::string &s)
{
    const size_t begin = s.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    const size_t end = s.find_last_not_of(" \t\r");
    return s.substr(begin, end - begin + 1);
}

} // namespace

Config
Config::fromString(const std::string &text)
{
    Config config;
    std::istringstream in(text);
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        const std::string stripped = strip(line);
        if (stripped.empty())
            continue;
        const size_t eq = stripped.find('=');
        CFCONV_FATAL_IF(eq == std::string::npos,
                        "config line %d: expected 'key = value', got "
                        "'%s'", line_no, stripped.c_str());
        const std::string key = strip(stripped.substr(0, eq));
        const std::string value = strip(stripped.substr(eq + 1));
        CFCONV_FATAL_IF(key.empty(), "config line %d: empty key",
                        line_no);
        CFCONV_FATAL_IF(config.values_.count(key) > 0,
                        "config line %d: duplicate key '%s'", line_no,
                        key.c_str());
        config.values_[key] = value;
    }
    return config;
}

Config
Config::fromFile(const std::string &path)
{
    std::ifstream in(path);
    CFCONV_FATAL_IF(!in, "config: cannot open '%s'", path.c_str());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return fromString(buffer.str());
}

const std::string *
Config::find(const std::string &key) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return nullptr;
    used_.insert(key);
    return &it->second;
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) > 0;
}

long long
Config::getInt(const std::string &key, long long fallback) const
{
    const std::string *v = find(key);
    if (!v)
        return fallback;
    char *end = nullptr;
    const long long parsed = std::strtoll(v->c_str(), &end, 0);
    CFCONV_FATAL_IF(end == v->c_str() || *end != '\0',
                    "config: '%s = %s' is not an integer", key.c_str(),
                    v->c_str());
    return parsed;
}

double
Config::getDouble(const std::string &key, double fallback) const
{
    const std::string *v = find(key);
    if (!v)
        return fallback;
    char *end = nullptr;
    const double parsed = std::strtod(v->c_str(), &end);
    CFCONV_FATAL_IF(end == v->c_str() || *end != '\0',
                    "config: '%s = %s' is not a number", key.c_str(),
                    v->c_str());
    return parsed;
}

bool
Config::getBool(const std::string &key, bool fallback) const
{
    const std::string *v = find(key);
    if (!v)
        return fallback;
    if (*v == "true" || *v == "1" || *v == "yes")
        return true;
    if (*v == "false" || *v == "0" || *v == "no")
        return false;
    fatal("config: '%s = %s' is not a boolean", key.c_str(),
          v->c_str());
}

std::string
Config::getString(const std::string &key,
                  const std::string &fallback) const
{
    const std::string *v = find(key);
    return v ? *v : fallback;
}

std::set<std::string>
Config::unusedKeys() const
{
    std::set<std::string> unused;
    for (const auto &[key, value] : values_)
        if (used_.count(key) == 0)
            unused.insert(key);
    return unused;
}

} // namespace cfconv
