#include "common/config.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace cfconv {

namespace {

std::string
strip(const std::string &s)
{
    const size_t begin = s.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    const size_t end = s.find_last_not_of(" \t\r");
    return s.substr(begin, end - begin + 1);
}

} // namespace

StatusOr<Config>
Config::tryFromString(const std::string &text)
{
    Config config;
    std::istringstream in(text);
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        const std::string stripped = strip(line);
        if (stripped.empty())
            continue;
        const size_t eq = stripped.find('=');
        if (eq == std::string::npos)
            return invalidArgumentError(
                "config line %d: expected 'key = value', got '%s'",
                line_no, stripped.c_str());
        const std::string key = strip(stripped.substr(0, eq));
        const std::string value = strip(stripped.substr(eq + 1));
        if (key.empty())
            return invalidArgumentError("config line %d: empty key",
                                        line_no);
        if (config.values_.count(key) > 0)
            return invalidArgumentError(
                "config line %d: duplicate key '%s'", line_no,
                key.c_str());
        config.values_[key] = value;
    }
    return config;
}

StatusOr<Config>
Config::tryFromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return notFoundError("config: cannot open '%s'", path.c_str());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto parsed = tryFromString(buffer.str());
    if (!parsed.ok())
        return parsed.status().withContext(path);
    return parsed;
}

Config
Config::fromString(const std::string &text)
{
    auto parsed = tryFromString(text);
    if (!parsed.ok())
        fatal("%s", parsed.status().toString().c_str());
    return std::move(parsed).value();
}

Config
Config::fromFile(const std::string &path)
{
    auto parsed = tryFromFile(path);
    if (!parsed.ok())
        fatal("%s", parsed.status().toString().c_str());
    return std::move(parsed).value();
}

const std::string *
Config::find(const std::string &key) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return nullptr;
    used_.insert(key);
    return &it->second;
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) > 0;
}

StatusOr<long long>
Config::tryGetInt(const std::string &key, long long fallback) const
{
    const std::string *v = find(key);
    if (!v)
        return fallback;
    char *end = nullptr;
    const long long parsed = std::strtoll(v->c_str(), &end, 0);
    if (end == v->c_str() || *end != '\0')
        return invalidArgumentError(
            "config: '%s = %s' is not an integer", key.c_str(),
            v->c_str());
    return parsed;
}

StatusOr<double>
Config::tryGetDouble(const std::string &key, double fallback) const
{
    const std::string *v = find(key);
    if (!v)
        return fallback;
    char *end = nullptr;
    const double parsed = std::strtod(v->c_str(), &end);
    if (end == v->c_str() || *end != '\0')
        return invalidArgumentError("config: '%s = %s' is not a number",
                                    key.c_str(), v->c_str());
    return parsed;
}

StatusOr<bool>
Config::tryGetBool(const std::string &key, bool fallback) const
{
    const std::string *v = find(key);
    if (!v)
        return fallback;
    if (*v == "true" || *v == "1" || *v == "yes")
        return true;
    if (*v == "false" || *v == "0" || *v == "no")
        return false;
    return invalidArgumentError("config: '%s = %s' is not a boolean",
                                key.c_str(), v->c_str());
}

long long
Config::getInt(const std::string &key, long long fallback) const
{
    auto v = tryGetInt(key, fallback);
    if (!v.ok())
        fatal("%s", v.status().toString().c_str());
    return v.value();
}

double
Config::getDouble(const std::string &key, double fallback) const
{
    auto v = tryGetDouble(key, fallback);
    if (!v.ok())
        fatal("%s", v.status().toString().c_str());
    return v.value();
}

bool
Config::getBool(const std::string &key, bool fallback) const
{
    auto v = tryGetBool(key, fallback);
    if (!v.ok())
        fatal("%s", v.status().toString().c_str());
    return v.value();
}

std::string
Config::getString(const std::string &key,
                  const std::string &fallback) const
{
    const std::string *v = find(key);
    return v ? *v : fallback;
}

std::set<std::string>
Config::unusedKeys() const
{
    std::set<std::string> unused;
    for (const auto &[key, value] : values_)
        if (used_.count(key) == 0)
            unused.insert(key);
    return unused;
}

} // namespace cfconv
