#include "common/report.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace cfconv {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::indent()
{
    out_.append(2 * stack_.size(), ' ');
}

void
JsonWriter::beginValue()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return;
    }
    if (!stack_.empty()) {
        CFCONV_FATAL_IF(stack_.back().isObject,
                        "JsonWriter: object member needs a key()");
        if (stack_.back().hasItems)
            out_ += ',';
        out_ += '\n';
        stack_.back().hasItems = true;
        indent();
    }
}

void
JsonWriter::beginObject()
{
    beginValue();
    out_ += '{';
    stack_.push_back({true, false});
}

void
JsonWriter::endObject()
{
    CFCONV_FATAL_IF(stack_.empty() || !stack_.back().isObject,
                    "JsonWriter: endObject without beginObject");
    const bool had = stack_.back().hasItems;
    stack_.pop_back();
    if (had) {
        out_ += '\n';
        indent();
    }
    out_ += '}';
}

void
JsonWriter::beginArray()
{
    beginValue();
    out_ += '[';
    stack_.push_back({false, false});
}

void
JsonWriter::endArray()
{
    CFCONV_FATAL_IF(stack_.empty() || stack_.back().isObject,
                    "JsonWriter: endArray without beginArray");
    const bool had = stack_.back().hasItems;
    stack_.pop_back();
    if (had) {
        out_ += '\n';
        indent();
    }
    out_ += ']';
}

void
JsonWriter::key(const std::string &name)
{
    CFCONV_FATAL_IF(stack_.empty() || !stack_.back().isObject,
                    "JsonWriter: key() outside an object");
    CFCONV_FATAL_IF(pendingKey_, "JsonWriter: key() twice in a row");
    if (stack_.back().hasItems)
        out_ += ',';
    out_ += '\n';
    stack_.back().hasItems = true;
    indent();
    out_ += '"';
    out_ += jsonEscape(name);
    out_ += "\": ";
    pendingKey_ = true;
}

void
JsonWriter::value(const std::string &v)
{
    beginValue();
    out_ += '"';
    out_ += jsonEscape(v);
    out_ += '"';
}

void
JsonWriter::value(const char *v)
{
    value(std::string(v));
}

void
JsonWriter::value(double v)
{
    if (!std::isfinite(v)) {
        valueNull();
        return;
    }
    beginValue();
    char buf[40];
    // %.17g round-trips doubles; trim to a friendlier %.10g when that
    // already round-trips the value.
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back != v)
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ += buf;
}

void
JsonWriter::value(long long v)
{
    beginValue();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", v);
    out_ += buf;
}

void
JsonWriter::value(std::uint64_t v)
{
    beginValue();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    out_ += buf;
}

void
JsonWriter::value(bool v)
{
    beginValue();
    out_ += v ? "true" : "false";
}

void
JsonWriter::valueNull()
{
    beginValue();
    out_ += "null";
}

const std::string &
JsonWriter::str() const
{
    CFCONV_FATAL_IF(!stack_.empty(),
                    "JsonWriter: %zu container(s) still open",
                    stack_.size());
    return out_;
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "could not write %s\n", path.c_str());
        return false;
    }
    const size_t n = std::fwrite(content.data(), 1, content.size(), f);
    const bool ok = n == content.size() && std::fclose(f) == 0;
    if (!ok)
        std::fprintf(stderr, "short write to %s\n", path.c_str());
    return ok;
}

} // namespace cfconv
