/**
 * @file
 * Lightweight statistics collection: named scalar counters and simple
 * distributions, reported by simulators and the benchmark harnesses.
 */

#ifndef CFCONV_COMMON_STATS_H
#define CFCONV_COMMON_STATS_H

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cfconv {

/**
 * A running scalar statistic supporting count/sum/min/max/mean plus
 * approximate percentiles from a fixed-bucket log histogram: 8 buckets
 * per octave over [2^-34, 2^30), so any percentile is exact to within
 * half a bucket (2^(1/16), ~4.4% relative). Non-positive samples land
 * in a dedicated underflow bucket reported as 0. Memory is a fixed
 * 2 KB per Scalar — cheap enough to keep always on, so every existing
 * sample() call site gains percentiles for free.
 */
class Scalar
{
  public:
    void
    sample(double v)
    {
        if (count_ == 0) {
            min_ = max_ = v;
        } else {
            min_ = std::min(min_, v);
            max_ = std::max(max_, v);
        }
        sum_ += v;
        sumSq_ += v * v;
        ++count_;
        if (v > 0.0 && std::isfinite(v)) {
            const double pos = std::log2(v) * kBucketsPerOctave;
            const long idx = static_cast<long>(std::floor(pos)) -
                             kMinExp * kBucketsPerOctave;
            buckets_[static_cast<std::size_t>(std::clamp<long>(
                idx, 0, kNumBuckets - 1))] += 1;
        } else {
            ++underflow_;
        }
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    double
    mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

    double
    stddev() const
    {
        if (count_ < 2)
            return 0.0;
        double n = static_cast<double>(count_);
        double var = (sumSq_ - sum_ * sum_ / n) / (n - 1.0);
        return var > 0.0 ? std::sqrt(var) : 0.0;
    }

    /**
     * The @p p quantile (p in [0, 1]) from the log histogram: the
     * geometric center of the bucket holding the rank-ceil(p*count)
     * sample. 0 when empty or when the quantile falls among the
     * non-positive samples.
     */
    double percentile(double p) const;

    double p50() const { return percentile(0.50); }
    double p95() const { return percentile(0.95); }
    double p99() const { return percentile(0.99); }
    /** Serving tails live out past p99; the log histogram resolves
     *  p99.9 at the same ~4.4% relative error as every quantile. */
    double p999() const { return percentile(0.999); }

    void
    reset()
    {
        count_ = 0;
        sum_ = sumSq_ = min_ = max_ = 0.0;
        underflow_ = 0;
        buckets_.fill(0);
    }

  private:
    static constexpr int kBucketsPerOctave = 8;
    static constexpr int kMinExp = -34; ///< smallest binnable octave
    static constexpr int kMaxExp = 30;  ///< one past the largest octave
    static constexpr int kNumBuckets =
        (kMaxExp - kMinExp) * kBucketsPerOctave;

    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::uint64_t underflow_ = 0; ///< non-positive/non-finite samples
    std::array<std::uint32_t, kNumBuckets> buckets_{};
};

/** A named collection of scalar stats owned by a simulator component. */
class StatGroup
{
  public:
    /** Add @p v to the counter named @p name, creating it if absent. */
    void
    add(const std::string &name, double v)
    {
        counters_[name] += v;
    }

    /** Record one sample into the distribution named @p name. */
    void
    sample(const std::string &name, double v)
    {
        scalars_[name].sample(v);
    }

    double
    counter(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0.0 : it->second;
    }

    const Scalar &
    scalar(const std::string &name)
    {
        return scalars_[name];
    }

    const std::map<std::string, double> &counters() const
    {
        return counters_;
    }

    /** All sampled distributions, for report/stat-line emission. */
    const std::map<std::string, Scalar> &scalars() const
    {
        return scalars_;
    }

    void
    reset()
    {
        counters_.clear();
        scalars_.clear();
    }

  private:
    std::map<std::string, double> counters_;
    std::map<std::string, Scalar> scalars_;
};

/**
 * Compute the mean absolute percentage error between two equally-sized
 * series, as used by the paper's validation figures (Figs 13-15).
 */
double meanAbsPctError(const std::vector<double> &reference,
                       const std::vector<double> &measured);

/** Geometric mean of a positive series; returns 0 for an empty series. */
double geoMean(const std::vector<double> &values);

} // namespace cfconv

#endif // CFCONV_COMMON_STATS_H
