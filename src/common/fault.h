/**
 * @file
 * Deterministic fault injection: the chaos-testing counterpart of the
 * oracle layer's deterministic measurement noise. A seeded
 * FaultInjector arms named injection sites spread through the stack —
 * SRAM bank read errors, accelerator-step timeouts, memo-cache entry
 * corruption, thread-pool worker stalls — and every injection decision
 * is a pure function of (seed, site, scope, key), so the same spec
 * always yields the same fault schedule regardless of thread count or
 * scheduling. That purity is what makes chaos runs reproducible:
 * a RunRecord produced under a fixed fault seed is byte-identical
 * across runs and thread counts.
 *
 * Arming: the CFCONV_FAULTS environment variable (parsed before
 * main() in anything linking cfconv_common; a malformed spec exits
 * with a diagnostic) or the bench `faults=SPEC` argument. Disabled
 * path: one relaxed atomic load per site check, no allocation.
 *
 * Spec grammar (semicolon-separated `key=value` items):
 *
 *   seed=42; accel.step_timeout=0.3; cache.corrupt@layer_cache=0.5;
 *   max_attempts=4; backoff_us=100; backoff_mult=2; backoff_cap_us=5000;
 *   failover=gpu-v100,tpu-v2
 *
 * Site items name one of the known sites (optionally scoped with
 * `@scope`, e.g. a backend or cache name; the scoped rate overrides
 * the unscoped one) and set an injection probability in [0, 1]. The
 * policy items (max_attempts, backoff_*, failover) configure the
 * resilient sim::ModelRunner and ride in the same spec so one string
 * describes a whole chaos experiment. Unknown keys, bad rates, and
 * malformed values are structured Status errors naming the offender.
 */

#ifndef CFCONV_COMMON_FAULT_H
#define CFCONV_COMMON_FAULT_H

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace cfconv::fault {

/** The named injection sites. Each call site passes its constant. */
inline constexpr const char kSramBankRead[] = "sram.bank_read";
inline constexpr const char kAccelStepTimeout[] = "accel.step_timeout";
inline constexpr const char kCacheCorrupt[] = "cache.corrupt";
inline constexpr const char kPoolWorkerStall[] = "pool.worker_stall";
/** Whole-chip outage in the serving scheduler (serve/serving_sim):
 *  the dispatched batch is re-queued and the chip sits out a repair
 *  interval. Scope is the chip's accelerator variant name. */
inline constexpr const char kServeChipDown[] = "serve.chip_down";

/** Every site configure() accepts, in presentation order. */
const std::vector<std::string> &knownSites();

/** Retry/failover policy carried in the chaos spec (see grammar
 *  above); sim::ModelRunner reads it via FaultInjector::policy(). */
struct ResiliencePolicy
{
    /** Attempts per layer per backend (first try included). */
    Index maxAttempts = 3;
    /** Simulated backoff before the first retry. */
    double backoffSeconds = 100e-6;
    /** Exponential growth factor per further retry. */
    double backoffMultiplier = 2.0;
    /** Cap on a single backoff interval. */
    double maxBackoffSeconds = 10e-3;
    /** Backend names tried, in order, when a layer exhausts its
     *  attempts on the current backend. */
    std::vector<std::string> failover;
};

/**
 * Process-wide injector. All decision methods are safe to call from
 * pool workers; configure()/disarm() must happen between runs.
 */
class FaultInjector
{
  public:
    static FaultInjector &instance();

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /**
     * Replace the active configuration with @p spec (grammar above).
     * An empty spec disarms. @return a Status naming the offending
     * key/value on parse errors, in which case the previous
     * configuration is kept.
     */
    Status configure(const std::string &spec);

    /** Drop all rates, policy, and counters; disarm. */
    void disarm();

    /** Whether any site is armed (one relaxed atomic load — the whole
     *  cost of the disabled path at every call site). */
    bool
    armed() const
    {
        return armed_.load(std::memory_order_relaxed);
    }

    std::uint64_t seed() const;

    /** The effective injection probability of @p site under @p scope
     *  ("site@scope" entry if present, else the unscoped "site"). */
    double rate(const std::string &site, const std::string &scope) const;

    /**
     * Pure injection decision: same (seed, site, scope, key) always
     * answers the same, independent of call order or thread count.
     * Callers derive @p key from stable context (layer geometry +
     * attempt, cache key, column index) — never from wall time.
     */
    bool shouldInject(const char *site, const std::string &scope,
                      std::uint64_t key) const;

    /** shouldInject() plus bookkeeping: counts the injection here and
     *  in the MetricsRegistry ("fault.injected.<site>") and drops a
     *  wall-clock trace instant when the recorder is armed. */
    bool inject(const char *site, const std::string &scope,
                std::uint64_t key);

    /** Injections recorded by inject() for @p site since configure(). */
    std::uint64_t injectedCount(const std::string &site) const;

    /** The resilience policy parsed from the spec (defaults when the
     *  spec never mentioned the policy keys). */
    ResiliencePolicy policy() const;

  private:
    FaultInjector() = default;

    mutable std::mutex mu_;
    std::atomic<bool> armed_{false};
    std::uint64_t seed_ = 0;
    std::map<std::string, double> rates_; ///< "site" or "site@scope"
    std::map<std::string, std::uint64_t> injected_;
    ResiliencePolicy policy_;
};

/** Configure from CFCONV_FAULTS when set and non-empty. @return the
 *  parse status (OK when the variable is unset). */
Status configureFromEnv();

} // namespace cfconv::fault

#endif // CFCONV_COMMON_FAULT_H
