/**
 * @file
 * Generic process-wide memoization cache for simulator results. The
 * benches and model runners re-simulate identical layer shapes
 * constantly (repeated bottleneck blocks, validation grids, sweeps at
 * a fixed config); a result that is a pure function of its full-
 * fidelity textual key is paid for once. Shared-mutex protected, safe
 * under the common/parallel sweep runners; hit/miss counters are
 * exported through the common/stats StatGroup machinery. Each backend
 * instantiates one singleton (tpusim/layer_cache, gpusim/kernel_cache)
 * over its own result struct; all instances honor the same
 * CFCONV_LAYER_CACHE=0 kill switch (results are identical either way).
 */

#ifndef CFCONV_COMMON_MEMO_CACHE_H
#define CFCONV_COMMON_MEMO_CACHE_H

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/trace.h"

namespace cfconv {

/** Key-builder helpers shared by the backend cache-key functions.
 *  %.17g round-trips doubles, so distinct values get distinct keys. */
inline void
memoKeyAppendInt(std::string &key, long long v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld|", v);
    key += buf;
}

inline void
memoKeyAppendFloat(std::string &key, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g|", v);
    key += buf;
}

/**
 * String-keyed memo cache over one result type. Equal keys must imply
 * equal inputs (full-fidelity keys make hash collisions impossible to
 * observe), and the cached computation must be a pure function of the
 * key — under those contracts concurrent misses on the same key are
 * benign: both threads compute the identical value, last insert wins.
 *
 * @p stat_prefix names the counters in statsSnapshot(), e.g.
 * "layer_cache" gives "layer_cache.hits" / ".misses" / ".entries".
 */
template <typename Result>
class MemoCache
{
  public:
    explicit MemoCache(std::string stat_prefix)
        : statPrefix_(std::move(stat_prefix))
    {
        if (const char *env = std::getenv("CFCONV_LAYER_CACHE"))
            enabled_.store(env[0] != '0');
    }

    MemoCache(const MemoCache &) = delete;
    MemoCache &operator=(const MemoCache &) = delete;

    bool enabled() const { return enabled_.load(); }
    void setEnabled(bool on) { enabled_.store(on); }

    /**
     * Install the entry-checksum function (a stable field-by-field
     * hash of a Result — never raw struct bytes, padding is
     * indeterminate). Once set, every insert stores the entry's
     * checksum and every lookup re-verifies it: a mismatch — real
     * memory corruption, or the `cache.corrupt` fault site keyed on
     * this cache's stat prefix — evicts the entry and reports a miss,
     * so a corrupted result is recomputed instead of served. Call once
     * at construction, before the cache is shared across threads.
     */
    void setChecksumFn(std::function<std::uint64_t(const Result &)> fn)
    {
        checksumFn_ = std::move(fn);
    }

    /** @return true and fill @p out on a hit; count the lookup. A
     *  checksum mismatch counts as a detected corruption + a miss. */
    bool
    lookup(const std::string &key, Result *out)
    {
        bool corrupt = false;
        {
            std::shared_lock<std::shared_mutex> lock(mutex_);
            auto it = entries_.find(key);
            if (it != entries_.end()) {
                if (checksumFn_ &&
                    checksumFn_(it->second.value) !=
                        it->second.checksum) {
                    corrupt = true;
                } else {
                    *out = it->second.value;
                    ++hits_;
                    if (trace::enabled())
                        trace::instant("cache", statPrefix_ + ".hit");
                    return true;
                }
            }
        }
        if (corrupt)
            evictCorrupt(key);
        ++misses_;
        if (trace::enabled())
            trace::instant("cache", statPrefix_ + ".miss");
        return false;
    }

    /** Store @p result under @p key (last writer wins; results for a
     *  given key are identical by construction, so races are benign). */
    void
    insert(const std::string &key, const Result &result)
    {
        Entry entry{result, 0};
        if (checksumFn_) {
            entry.checksum = checksumFn_(entry.value);
            // The cache.corrupt fault site: flip the stored checksum
            // so the next lookup detects the entry as damaged. Keyed
            // on the cache key, so the schedule is deterministic.
            if (fault::FaultInjector::instance().inject(
                    fault::kCacheCorrupt, statPrefix_,
                    hashBytes(key.data(), key.size())))
                entry.checksum ^= 0xbad0bad0bad0bad0ULL;
        }
        std::unique_lock<std::shared_mutex> lock(mutex_);
        entries_[key] = std::move(entry);
    }

    /** Drop all entries and reset the counters. */
    void
    clear()
    {
        std::unique_lock<std::shared_mutex> lock(mutex_);
        entries_.clear();
        hits_.store(0);
        misses_.store(0);
        corruptionsDetected_.store(0);
    }

    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }

    /** Checksum mismatches detected (and healed by eviction) so far. */
    std::uint64_t
    corruptionsDetected() const
    {
        return corruptionsDetected_.load();
    }

    std::uint64_t
    entries() const
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        return entries_.size();
    }

    /** Hit fraction over all lookups so far (0 when none). */
    double
    hitRate() const
    {
        const std::uint64_t h = hits_.load(), m = misses_.load();
        return h + m == 0
            ? 0.0
            : static_cast<double>(h) / static_cast<double>(h + m);
    }

    /** Snapshot of the counters as a common/stats StatGroup. */
    StatGroup
    statsSnapshot() const
    {
        StatGroup g;
        g.add(statPrefix_ + ".hits", static_cast<double>(hits()));
        g.add(statPrefix_ + ".misses", static_cast<double>(misses()));
        g.add(statPrefix_ + ".entries", static_cast<double>(entries()));
        // Only reported once nonzero, so fault-free CACHE lines and
        // snapshots stay byte-identical to the pre-chaos goldens.
        if (corruptionsDetected() > 0)
            g.add(statPrefix_ + ".corruptions_detected",
                  static_cast<double>(corruptionsDetected()));
        return g;
    }

  private:
    struct Entry
    {
        Result value{};
        std::uint64_t checksum = 0;
    };

    /** Re-verify under the writer lock and drop the damaged entry;
     *  the caller then reports a miss, so the layer is recomputed. */
    void
    evictCorrupt(const std::string &key)
    {
        {
            std::unique_lock<std::shared_mutex> lock(mutex_);
            auto it = entries_.find(key);
            if (it == entries_.end() ||
                (checksumFn_ &&
                 checksumFn_(it->second.value) == it->second.checksum))
                return; // already healed by a concurrent re-insert
            entries_.erase(it);
        }
        ++corruptionsDetected_;
        MetricsRegistry::instance().add(
            "fault.detected." + statPrefix_ + ".corruption", 1.0);
        if (trace::enabled())
            trace::instant("fault", statPrefix_ + ".corruption_detected");
    }

    const std::string statPrefix_;
    std::function<std::uint64_t(const Result &)> checksumFn_;
    mutable std::shared_mutex mutex_;
    std::unordered_map<std::string, Entry> entries_;
    std::atomic<bool> enabled_{true};
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> corruptionsDetected_{0};
};

} // namespace cfconv

#endif // CFCONV_COMMON_MEMO_CACHE_H
