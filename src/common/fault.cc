#include "common/fault.h"

#include <cstdio>
#include <cstdlib>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/trace.h"

namespace cfconv::fault {

namespace {

std::string
strip(const std::string &s)
{
    const size_t begin = s.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    const size_t end = s.find_last_not_of(" \t\r");
    return s.substr(begin, end - begin + 1);
}

StatusOr<double>
parseDouble(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0')
        return invalidArgumentError("faults: '%s=%s' is not a number",
                                    key.c_str(), value.c_str());
    return parsed;
}

StatusOr<long long>
parseInt(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    const long long parsed = std::strtoll(value.c_str(), &end, 0);
    if (end == value.c_str() || *end != '\0')
        return invalidArgumentError("faults: '%s=%s' is not an integer",
                                    key.c_str(), value.c_str());
    return parsed;
}

std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> out;
    size_t begin = 0;
    while (begin <= text.size()) {
        const size_t end = text.find(sep, begin);
        if (end == std::string::npos) {
            out.push_back(text.substr(begin));
            break;
        }
        out.push_back(text.substr(begin, end - begin));
        begin = end + 1;
    }
    return out;
}

bool
isKnownSite(const std::string &name)
{
    for (const auto &site : knownSites())
        if (site == name)
            return true;
    return false;
}

/** Parsed form of one spec; swapped into the injector atomically so a
 *  failed configure() keeps the previous state. */
struct ParsedSpec
{
    std::uint64_t seed = 0;
    std::map<std::string, double> rates;
    ResiliencePolicy policy;
};

Status
parseSpec(const std::string &spec, ParsedSpec *out)
{
    for (const std::string &raw_item : split(spec, ';')) {
        const std::string item = strip(raw_item);
        if (item.empty())
            continue;
        const size_t eq = item.find('=');
        if (eq == std::string::npos)
            return invalidArgumentError(
                "faults: expected 'key=value', got '%s'", item.c_str());
        const std::string key = strip(item.substr(0, eq));
        const std::string value = strip(item.substr(eq + 1));
        if (key.empty())
            return invalidArgumentError("faults: empty key in '%s'",
                                        item.c_str());
        if (key == "seed") {
            CFCONV_ASSIGN_OR_RETURN(const long long seed,
                                    parseInt(key, value));
            out->seed = static_cast<std::uint64_t>(seed);
        } else if (key == "max_attempts") {
            CFCONV_ASSIGN_OR_RETURN(const long long n,
                                    parseInt(key, value));
            if (n < 1)
                return invalidArgumentError(
                    "faults: 'max_attempts=%s' must be >= 1",
                    value.c_str());
            out->policy.maxAttempts = static_cast<Index>(n);
        } else if (key == "backoff_us") {
            CFCONV_ASSIGN_OR_RETURN(const double us,
                                    parseDouble(key, value));
            if (us < 0.0)
                return invalidArgumentError(
                    "faults: 'backoff_us=%s' must be >= 0",
                    value.c_str());
            out->policy.backoffSeconds = us * 1e-6;
        } else if (key == "backoff_mult") {
            CFCONV_ASSIGN_OR_RETURN(const double mult,
                                    parseDouble(key, value));
            if (mult < 1.0)
                return invalidArgumentError(
                    "faults: 'backoff_mult=%s' must be >= 1",
                    value.c_str());
            out->policy.backoffMultiplier = mult;
        } else if (key == "backoff_cap_us") {
            CFCONV_ASSIGN_OR_RETURN(const double us,
                                    parseDouble(key, value));
            if (us < 0.0)
                return invalidArgumentError(
                    "faults: 'backoff_cap_us=%s' must be >= 0",
                    value.c_str());
            out->policy.maxBackoffSeconds = us * 1e-6;
        } else if (key == "failover") {
            for (const std::string &raw_name : split(value, ',')) {
                const std::string name = strip(raw_name);
                if (name.empty())
                    return invalidArgumentError(
                        "faults: empty backend name in 'failover=%s'",
                        value.c_str());
                out->policy.failover.push_back(name);
            }
        } else {
            // A site, optionally scoped: "site" or "site@scope".
            const size_t at = key.find('@');
            const std::string site =
                at == std::string::npos ? key : key.substr(0, at);
            if (!isKnownSite(site)) {
                std::string known;
                for (const auto &s : knownSites())
                    known += (known.empty() ? "" : ", ") + s;
                return invalidArgumentError(
                    "faults: unknown key '%s' (sites: %s; policy: "
                    "seed, max_attempts, backoff_us, backoff_mult, "
                    "backoff_cap_us, failover)",
                    key.c_str(), known.c_str());
            }
            if (at != std::string::npos &&
                at + 1 >= key.size())
                return invalidArgumentError(
                    "faults: empty scope in '%s'", key.c_str());
            CFCONV_ASSIGN_OR_RETURN(const double rate,
                                    parseDouble(key, value));
            if (rate < 0.0 || rate > 1.0)
                return invalidArgumentError(
                    "faults: rate '%s=%s' outside [0, 1]", key.c_str(),
                    value.c_str());
            out->rates[key] = rate;
        }
    }
    return okStatus();
}

} // namespace

const std::vector<std::string> &
knownSites()
{
    static const std::vector<std::string> sites = {
        kSramBankRead,
        kAccelStepTimeout,
        kCacheCorrupt,
        kPoolWorkerStall,
        kServeChipDown,
    };
    return sites;
}

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

Status
FaultInjector::configure(const std::string &spec)
{
    ParsedSpec parsed;
    CFCONV_RETURN_IF_ERROR(parseSpec(spec, &parsed));
    std::lock_guard<std::mutex> lock(mu_);
    seed_ = parsed.seed;
    rates_ = std::move(parsed.rates);
    policy_ = std::move(parsed.policy);
    injected_.clear();
    armed_.store(!rates_.empty(), std::memory_order_relaxed);
    return okStatus();
}

void
FaultInjector::disarm()
{
    std::lock_guard<std::mutex> lock(mu_);
    armed_.store(false, std::memory_order_relaxed);
    seed_ = 0;
    rates_.clear();
    injected_.clear();
    policy_ = ResiliencePolicy();
}

std::uint64_t
FaultInjector::seed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return seed_;
}

double
FaultInjector::rate(const std::string &site,
                    const std::string &scope) const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!scope.empty()) {
        auto it = rates_.find(site + "@" + scope);
        if (it != rates_.end())
            return it->second;
    }
    auto it = rates_.find(site);
    return it == rates_.end() ? 0.0 : it->second;
}

bool
FaultInjector::shouldInject(const char *site, const std::string &scope,
                            std::uint64_t key) const
{
    if (!armed())
        return false;
    const double p = rate(site, scope);
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    // Pure per-(seed, site, scope, key) draw: SplitMix64 of the mixed
    // hash, so decisions are independent of call order and threads.
    std::uint64_t h = hashCombine(seed(), fnv1a(site));
    h = hashCombine(h, hashBytes(scope.data(), scope.size()));
    h = hashCombine(h, key);
    return Rng(h).uniform() < p;
}

bool
FaultInjector::inject(const char *site, const std::string &scope,
                      std::uint64_t key)
{
    if (!shouldInject(site, scope, key))
        return false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++injected_[site];
    }
    MetricsRegistry::instance().add(std::string("fault.injected.") +
                                        site,
                                    1.0);
    if (trace::enabled())
        trace::instant("fault", std::string(site) +
                                    (scope.empty() ? "" : "@" + scope));
    return true;
}

std::uint64_t
FaultInjector::injectedCount(const std::string &site) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = injected_.find(site);
    return it == injected_.end() ? 0 : it->second;
}

ResiliencePolicy
FaultInjector::policy() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return policy_;
}

Status
configureFromEnv()
{
    const char *env = std::getenv("CFCONV_FAULTS");
    if (!env || env[0] == '\0')
        return okStatus();
    return FaultInjector::instance().configure(env);
}

namespace {

/** Arms the injector from CFCONV_FAULTS before main() in every binary
 *  linking cfconv_common; a malformed spec is a hard configuration
 *  error (exiting beats silently running an un-chaos'd experiment). */
bool
armFromEnv()
{
    const Status status = configureFromEnv();
    if (!status.ok()) {
        std::fprintf(stderr, "CFCONV_FAULTS: %s\n",
                     status.toString().c_str());
        std::exit(2);
    }
    return FaultInjector::instance().armed();
}

[[maybe_unused]] const bool g_envArmed = armFromEnv();

} // namespace

} // namespace cfconv::fault
