/**
 * @file
 * Plain-text table and CSV emission for the benchmark harnesses. Every
 * reproduced paper table/figure is printed through this so output has a
 * uniform, parseable shape.
 */

#ifndef CFCONV_COMMON_TABLE_H
#define CFCONV_COMMON_TABLE_H

#include <cstdio>
#include <string>
#include <vector>

namespace cfconv {

/** A simple column-aligned text table with an optional title. */
class Table
{
  public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    /** Set the column headers; must be called before addRow(). */
    void setHeader(std::vector<std::string> header);

    /** Append one row; the cell count must match the header. */
    void addRow(std::vector<std::string> row);

    /** Render the table to @p out (default stdout). */
    void print(std::FILE *out = stdout) const;

    /** Render the table as CSV (header row + data rows). */
    std::string toCsv() const;

    size_t rowCount() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** printf-style helper producing a std::string cell. */
std::string cell(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace cfconv

#endif // CFCONV_COMMON_TABLE_H
