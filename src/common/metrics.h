/**
 * @file
 * Process-wide metrics registry: named counters and latency
 * distributions (common/stats Scalar histograms, so p50/p95/p99 come
 * for free) aggregated across the whole run and exported into the v2
 * RunRecord JSON (sim/report) and the bench STAT lines. Where the
 * trace (common/trace) answers "what happened when", the registry
 * answers "how were the durations distributed" — the two views a
 * serving/batching layer needs side by side.
 *
 * Thread-safe via one mutex; intended for per-layer / per-task
 * granularity (thousands of samples), not per-element hot loops.
 */

#ifndef CFCONV_COMMON_METRICS_H
#define CFCONV_COMMON_METRICS_H

#include <mutex>
#include <string>

#include "common/stats.h"

namespace cfconv {

class MetricsRegistry
{
  public:
    static MetricsRegistry &instance();

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Add @p v to the counter named @p name. */
    void add(const std::string &name, double v);

    /** Record one sample into the histogram named @p name. */
    void sample(const std::string &name, double v);

    /** Copy of everything recorded so far. */
    StatGroup snapshot() const;

    /** Drop all counters and histograms (tests, repeated sweeps). */
    void reset();

  private:
    MetricsRegistry() = default;

    mutable std::mutex mu_;
    StatGroup group_;
};

} // namespace cfconv

#endif // CFCONV_COMMON_METRICS_H
