/**
 * @file
 * Process-wide metrics registry: named counters and latency
 * distributions (common/stats Scalar histograms, so p50/p95/p99 come
 * for free) aggregated across the whole run and exported into the v2
 * RunRecord JSON (sim/report) and the bench STAT lines. Where the
 * trace (common/trace) answers "what happened when", the registry
 * answers "how were the durations distributed" — the two views a
 * serving/batching layer needs side by side.
 *
 * Thread-safe via one mutex; intended for per-layer / per-task
 * granularity (thousands of samples), not per-element hot loops.
 */

#ifndef CFCONV_COMMON_METRICS_H
#define CFCONV_COMMON_METRICS_H

#include <mutex>
#include <string>

#include "common/stats.h"

namespace cfconv {

class JsonWriter;

class MetricsRegistry
{
  public:
    static MetricsRegistry &instance();

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Add @p v to the counter named @p name. */
    void add(const std::string &name, double v);

    /** Record one sample into the histogram named @p name. */
    void sample(const std::string &name, double v);

    /** Copy of everything recorded so far. */
    StatGroup snapshot() const;

    /** Drop all counters and histograms (tests, repeated sweeps). */
    void reset();

  private:
    MetricsRegistry() = default;

    mutable std::mutex mu_;
    StatGroup group_;
};

/**
 * Emit @p group as the two members "counters" and "histograms" into
 * the JSON object @p w is currently building — the exact shape of the
 * RunRecord document's "metrics" block (sim/report), hoisted here so
 * the standalone metrics dump and the report writer cannot drift.
 * Iteration is over std::map, so the emission is sorted and
 * deterministic.
 */
void emitStatGroupJson(JsonWriter &w, const StatGroup &group);

/** Render @p group as a standalone versioned document:
 *  {"schema": "cfconv.metrics", "version": 1, "counters": {...},
 *   "histograms": {...}}. */
std::string metricsJson(const StatGroup &group);

/** Write metricsJson() to @p path; @return false on I/O failure. */
bool writeMetricsJson(const std::string &path, const StatGroup &group);

} // namespace cfconv

#endif // CFCONV_COMMON_METRICS_H
