#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/logging.h"
#include "common/trace.h"

namespace cfconv::parallel {

namespace {

/** Depth of parallelFor frames on this thread; > 0 means run inline. */
thread_local int tls_parallel_depth = 0;

/** One parallelFor invocation shared between the submitter and workers. */
struct Job
{
    Index begin = 0;
    Index end = 0;
    Index chunk = 1;
    Index numChunks = 0;
    const std::function<void(Index, Index)> *body = nullptr;
    std::atomic<Index> nextChunk{0};
    std::atomic<Index> pendingChunks{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex errorMutex;
};

class ThreadPool
{
  public:
    static ThreadPool &
    instance()
    {
        static ThreadPool pool;
        return pool;
    }

    ~ThreadPool() { stopWorkers(); }

    Index
    threads()
    {
        std::lock_guard<std::mutex> lock(configMutex_);
        if (configured_ == 0)
            configured_ = defaultThreads();
        return configured_;
    }

    void
    setThreads(Index n)
    {
        CFCONV_FATAL_IF(n < 0, "parallel::setThreads: negative count");
        stopWorkers();
        std::lock_guard<std::mutex> lock(configMutex_);
        configured_ = n > 0 ? n : defaultThreads();
    }

    void
    run(Index begin, Index end, Index grain,
        const std::function<void(Index, Index)> &body)
    {
        const Index lanes = threads();
        const Index range = end - begin;
        if (tls_parallel_depth > 0 || lanes <= 1 || range <= grain) {
            ++tls_parallel_depth;
            try {
                body(begin, end);
            } catch (...) {
                --tls_parallel_depth;
                throw;
            }
            --tls_parallel_depth;
            return;
        }

        // Chunk so each lane gets a few chunks (mild load balancing)
        // without ever splitting below the caller's grain.
        Job job;
        job.begin = begin;
        job.end = end;
        job.chunk = std::max(grain, divCeil(range, lanes * 4));
        job.numChunks = divCeil(range, job.chunk);
        job.body = &body;
        job.pendingChunks.store(job.numChunks,
                                std::memory_order_relaxed);

        TRACE_SCOPE("pool", "parallelFor");
        TRACE_COUNTER("pool", "queue_depth", job.numChunks);

        std::unique_lock<std::mutex> submit(submitMutex_);
        ensureStarted(lanes);
        {
            std::lock_guard<std::mutex> lock(jobMutex_);
            job_ = &job;
            ++generation_;
        }
        wakeWorkers_.notify_all();

        // The submitting thread is one of the lanes.
        TRACE_COUNTER("pool", "active_workers",
                      activeLanes_.fetch_add(1,
                                             std::memory_order_relaxed) +
                          1);
        processChunks(job);
        TRACE_COUNTER("pool", "active_workers",
                      activeLanes_.fetch_sub(1,
                                             std::memory_order_relaxed) -
                          1);

        // Wait until every chunk retired AND every worker detached
        // from the job, so the stack-allocated Job cannot be touched
        // after this frame returns.
        std::unique_lock<std::mutex> lock(jobMutex_);
        jobDone_.wait(lock, [&] {
            return job.pendingChunks.load(std::memory_order_acquire) ==
                       0 &&
                   activeWorkers_ == 0;
        });
        job_ = nullptr;
        lock.unlock();

        if (job.error)
            std::rethrow_exception(job.error);
    }

  private:
    static Index
    defaultThreads()
    {
        if (const char *env = std::getenv("CFCONV_THREADS")) {
            const long v = std::strtol(env, nullptr, 10);
            if (v >= 1)
                return static_cast<Index>(v);
            warn("CFCONV_THREADS=\"%s\" is not a positive integer; "
                 "using hardware concurrency",
                 env);
        }
        const unsigned hw = std::thread::hardware_concurrency();
        return hw >= 1 ? static_cast<Index>(hw) : 1;
    }

    void
    ensureStarted(Index lanes)
    {
        // Pool workers are the lanes beyond the submitting thread.
        const size_t want = static_cast<size_t>(lanes - 1);
        if (workers_.size() == want)
            return;
        stopWorkersLocked();
        {
            std::lock_guard<std::mutex> lock(jobMutex_);
            stopping_ = false;
        }
        workers_.reserve(want);
        for (size_t i = 0; i < want; ++i) {
            workers_.emplace_back([this, i] {
                trace::setThreadName("worker-" + std::to_string(i + 1));
                workerLoop();
            });
        }
    }

    void
    stopWorkers()
    {
        std::lock_guard<std::mutex> submit(submitMutex_);
        stopWorkersLocked();
    }

    void
    stopWorkersLocked()
    {
        if (workers_.empty())
            return;
        {
            std::lock_guard<std::mutex> lock(jobMutex_);
            stopping_ = true;
            ++generation_;
        }
        wakeWorkers_.notify_all();
        for (auto &w : workers_)
            w.join();
        workers_.clear();
    }

    void
    workerLoop()
    {
        std::uint64_t seen = 0;
        for (;;) {
            Job *job = nullptr;
            {
                std::unique_lock<std::mutex> lock(jobMutex_);
                wakeWorkers_.wait(lock, [&] {
                    return stopping_ || generation_ != seen;
                });
                seen = generation_;
                if (stopping_)
                    return;
                job = job_;
                if (job)
                    ++activeWorkers_;
            }
            if (job) {
                TRACE_COUNTER("pool", "active_workers",
                              activeLanes_.fetch_add(
                                  1, std::memory_order_relaxed) +
                                  1);
                processChunks(*job);
                TRACE_COUNTER("pool", "active_workers",
                              activeLanes_.fetch_sub(
                                  1, std::memory_order_relaxed) -
                                  1);
                std::lock_guard<std::mutex> lock(jobMutex_);
                if (--activeWorkers_ == 0)
                    jobDone_.notify_all();
            }
        }
    }

    void
    processChunks(Job &job)
    {
        ++tls_parallel_depth;
        for (;;) {
            const Index c =
                job.nextChunk.fetch_add(1, std::memory_order_relaxed);
            if (c >= job.numChunks)
                break;
            const Index b = job.begin + c * job.chunk;
            const Index e = std::min(job.end, b + job.chunk);
            // Chaos site: a stalled worker. Purely a latency fault —
            // the chunk still runs, so results stay bit-exact; what
            // the stall exercises is the pool's load balancing and
            // the wall-clock tail the metrics/trace layers report.
            if (fault::FaultInjector::instance().inject(
                    fault::kPoolWorkerStall, "",
                    static_cast<std::uint64_t>(c)))
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
            trace::Scope chunkSpan("pool", "chunk");
            chunkSpan.arg("begin", static_cast<double>(b));
            chunkSpan.arg("end", static_cast<double>(e));
            TRACE_COUNTER(
                "pool", "queue_depth",
                std::max<Index>(0, job.numChunks -
                                       job.nextChunk.load(
                                           std::memory_order_relaxed)));
            if (!job.failed.load(std::memory_order_relaxed)) {
                try {
                    (*job.body)(b, e);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(job.errorMutex);
                    if (!job.error)
                        job.error = std::current_exception();
                    job.failed.store(true, std::memory_order_relaxed);
                }
            }
            if (job.pendingChunks.fetch_sub(
                    1, std::memory_order_acq_rel) == 1) {
                std::lock_guard<std::mutex> lock(jobMutex_);
                jobDone_.notify_all();
            }
        }
        --tls_parallel_depth;
    }

    std::mutex configMutex_;
    std::mutex submitMutex_; ///< serializes concurrent parallelFor calls
    std::mutex jobMutex_;    ///< guards job_/generation_/stopping_
    std::condition_variable wakeWorkers_;
    std::condition_variable jobDone_;
    std::vector<std::thread> workers_;
    Job *job_ = nullptr;
    std::atomic<Index> activeLanes_{0}; ///< lanes in processChunks (trace)
    Index activeWorkers_ = 0;
    std::uint64_t generation_ = 0;
    bool stopping_ = false;
    Index configured_ = 0; ///< 0 = not yet initialized
};

} // namespace

Index
threads()
{
    return ThreadPool::instance().threads();
}

void
setThreads(Index n)
{
    ThreadPool::instance().setThreads(n);
}

void
parallelFor(Index begin, Index end, Index grain,
            const std::function<void(Index, Index)> &body)
{
    CFCONV_FATAL_IF(grain < 1, "parallelFor: grain must be >= 1");
    if (begin >= end)
        return;
    ThreadPool::instance().run(begin, end, grain, body);
}

} // namespace cfconv::parallel
