/**
 * @file
 * Low-overhead, thread-safe trace recorder emitting Chrome trace-event
 * JSON (loadable in chrome://tracing and Perfetto). The paper's whole
 * point is characterizing *where* cycles go inside the implicit-im2col
 * pipeline; this recorder makes the same breakdown visible for our own
 * stack: scoped wall-clock duration events (TRACE_SCOPE), instant
 * events, counter tracks, and — the simulator-specific part — spans on
 * a second, virtual "simulated cycles" clock so TpuSim fill/compute
 * phases and GpuSim pipeline steps can be inspected on their own
 * timeline next to the host's.
 *
 * Two clock domains, kept apart by Chrome-trace process id:
 *   pid 1 "wall clock"        — ts in real microseconds since start
 *   pid 2 "simulated cycles"  — ts in simulated cycles (1 cycle renders
 *                               as 1 us; timelines start at 0 per layer)
 *
 * Cost model: tracing is OFF by default. Every recording entry point
 * first checks enabled() — a single relaxed atomic load — so the
 * disabled path costs one branch and allocates nothing. Events are
 * appended to per-thread buffers (one uncontended mutex each, taken
 * only while enabled) and flushed to the output file once, at stop()
 * or process exit. Compile with -DCFCONV_DISABLE_TRACING to remove the
 * macro call sites entirely.
 *
 * Activation: trace::start(path) (the bench `trace=FILE` argument) or
 * the CFCONV_TRACE=FILE environment variable, which arms the recorder
 * before main() in any binary linking cfconv_common.
 */

#ifndef CFCONV_COMMON_TRACE_H
#define CFCONV_COMMON_TRACE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace cfconv::trace {

/**
 * One named argument attached to an event ("args" in the trace-event
 * format). Numeric by default — the hot recording paths stay
 * allocation-light — with an optional string form for the
 * self-describing annotations the offline analyzer groups by
 * (algorithm / variant names). Events carrying only numeric args are
 * emitted byte-identically to the pre-string-arg recorder.
 */
struct Arg
{
    Arg(std::string k, double v) : key(std::move(k)), value(v) {}
    Arg(std::string k, std::string v)
        : key(std::move(k)), text(std::move(v)), isText(true)
    {}
    Arg(std::string k, const char *v)
        : key(std::move(k)), text(v), isText(true)
    {}

    std::string key;
    double value = 0.0;
    std::string text; ///< string payload when isText
    bool isText = false;
};

using Args = std::vector<Arg>;

namespace detail {
extern std::atomic<bool> g_enabled;
} // namespace detail

/** Whether the recorder is currently armed. One relaxed atomic load —
 *  cheap enough to guard every call site. */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/**
 * Arm the recorder and direct the flush to @p path. Restarting with a
 * new path drops any events recorded so far (each start() begins a
 * fresh trace). Registers an atexit flush so benches that simply
 * return from main() still write their file.
 */
void start(const std::string &path);

/** Disarm, gather all per-thread buffers, and write the JSON document
 *  to the start() path. Safe to call multiple times; only the first
 *  call after start() writes. @return false on I/O failure. */
bool stop();

/** Arm from the CFCONV_TRACE environment variable when set to a
 *  non-empty path. @return true when tracing was armed. */
bool startFromEnv();

/** The path the next stop() will write to (empty when never armed). */
std::string outputPath();

/** Microseconds on the wall clock since process start. */
double nowUs();

/** Name this thread's row in the trace (emitted as thread_name
 *  metadata). Cheap and always stored, so names survive a later
 *  start(). */
void setThreadName(const std::string &name);

/** Record a wall-clock instant event (a vertical tick). */
void instant(const char *category, std::string name, Args args = {});

/** Record a sample on the wall-clock counter track @p name. */
void counter(const char *category, const char *name, double value);

/** Record a complete wall-clock span [ts_us, ts_us + dur_us]. Scope is
 *  the usual way to produce these; this is for hand-built spans. */
void completeSpan(const char *category, std::string name, double ts_us,
                  double dur_us, Args args = {});

/**
 * RAII wall-clock duration span. Records the start time at
 * construction (when armed) and emits one complete event at
 * destruction. Use the TRACE_SCOPE* macros rather than naming the
 * object. Args attached via arg() ride along in the emitted event.
 */
class Scope
{
  public:
    /** Statically-named span; zero allocation when disabled. */
    Scope(const char *category, const char *name)
        : category_(category), staticName_(name)
    {
        if (enabled())
            startUs_ = nowUs();
    }

    /** Dynamically-named span. Callers should build @p name only when
     *  enabled() (see TRACE_SCOPE_DYN). */
    Scope(const char *category, std::string name)
        : category_(category), dynName_(std::move(name))
    {
        if (enabled())
            startUs_ = nowUs();
    }

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

    ~Scope();

    /** Attach a numeric argument to the event this scope will emit. */
    void
    arg(const char *key, double value)
    {
        if (startUs_ >= 0.0)
            args_.push_back({key, value});
    }

    /** Attach a string argument (e.g. an algorithm name) to the event
     *  this scope will emit. */
    void
    arg(const char *key, std::string value)
    {
        if (startUs_ >= 0.0)
            args_.push_back({key, std::move(value)});
    }

    /** Whether this scope captured a start time (recorder was armed). */
    bool active() const { return startUs_ >= 0.0; }

  private:
    const char *category_;
    const char *staticName_ = nullptr;
    std::string dynName_;
    double startUs_ = -1.0;
    Args args_;
};

/**
 * A row on the simulated-cycles clock. Allocated per simulated
 * timeline (one TPU layer, one GPU kernel); an inactive track (id 0,
 * returned when the recorder is disarmed) makes simSpan a no-op.
 */
struct SimTrack
{
    int tid = 0;
    bool active() const { return tid != 0; }
};

/** Allocate a simulated-cycles row named @p label. Returns an inactive
 *  track when the recorder is disarmed. */
SimTrack simTrack(std::string label);

/** Record the span [start_cycles, start_cycles + dur_cycles] on
 *  @p track. Zero-duration spans are dropped. */
void simSpan(const SimTrack &track, const char *name,
             std::uint64_t start_cycles, std::uint64_t dur_cycles,
             Args args = {});

/** Record an instant at @p at_cycles on @p track. Args (e.g. an
 *  outage's downtime) ride along for the offline analyzer. */
void simInstant(const SimTrack &track, std::string name,
                std::uint64_t at_cycles, Args args = {});

/** Number of events currently buffered (all threads). Test hook. */
std::size_t bufferedEventCountForTest();

/** Disarm, drop all buffered events and sim tracks, and clear the
 *  output path without writing anything. Test hook. */
void resetForTest();

} // namespace cfconv::trace

#define CFCONV_TRACE_CAT2(a, b) a##b
#define CFCONV_TRACE_CAT(a, b) CFCONV_TRACE_CAT2(a, b)

#ifndef CFCONV_DISABLE_TRACING

/** Scoped wall-clock span with a static name. */
#define TRACE_SCOPE(category, name)                                        \
    ::cfconv::trace::Scope CFCONV_TRACE_CAT(cfconv_trace_scope_,           \
                                            __COUNTER__)(category, name)

/** Scoped wall-clock span whose name expression is evaluated only when
 *  the recorder is armed (so formatting costs nothing when disabled). */
#define TRACE_SCOPE_DYN(category, name_expr)                               \
    ::cfconv::trace::Scope CFCONV_TRACE_CAT(cfconv_trace_scope_,           \
                                            __COUNTER__)(                  \
        category, ::cfconv::trace::enabled()                               \
                      ? std::string(name_expr)                             \
                      : std::string())

/** Wall-clock instant event with a static name. */
#define TRACE_INSTANT(category, name)                                      \
    do {                                                                   \
        if (::cfconv::trace::enabled())                                    \
            ::cfconv::trace::instant(category, name);                      \
    } while (0)

/** Wall-clock counter sample. */
#define TRACE_COUNTER(category, name, value)                               \
    do {                                                                   \
        if (::cfconv::trace::enabled())                                    \
            ::cfconv::trace::counter(category, name,                       \
                                     static_cast<double>(value));          \
    } while (0)

#else // CFCONV_DISABLE_TRACING

#define TRACE_SCOPE(category, name) ((void)0)
#define TRACE_SCOPE_DYN(category, name_expr) ((void)0)
#define TRACE_INSTANT(category, name) ((void)0)
#define TRACE_COUNTER(category, name, value) ((void)0)

#endif // CFCONV_DISABLE_TRACING

#endif // CFCONV_COMMON_TRACE_H
