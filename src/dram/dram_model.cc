#include "dram/dram_model.h"

#include <algorithm>

#include "common/logging.h"

namespace cfconv::dram {

DramConfig
DramConfig::hbm700()
{
    DramConfig c;
    c.channels = 8;
    c.banksPerChannel = 16;
    c.rowBytes = 1024;
    c.busBytesPerCycle = 64;
    c.tPrecharge = 16;
    c.tActivate = 14;
    c.tCas = 14;
    c.clockGhz = 1.37; // 8 ch * 64 B * 1.37 GHz ~= 701 GB/s
    return c;
}

DramConfig
DramConfig::hbm900()
{
    DramConfig c = hbm700();
    c.clockGhz = 1.76; // ~900 GB/s
    return c;
}

DramModel::DramModel(const DramConfig &config) : config_(config)
{
    CFCONV_FATAL_IF(config.channels < 1 || config.banksPerChannel < 1,
                    "DramModel: need at least one channel and bank");
    CFCONV_FATAL_IF(config.rowBytes == 0 || config.busBytesPerCycle == 0,
                    "DramModel: zero row or bus width");
}

Cycles
DramModel::service(const std::vector<Request> &requests)
{
    const Index n_banks = config_.channels * config_.banksPerChannel;
    std::vector<BankState> banks(static_cast<size_t>(n_banks));
    std::vector<Cycles> bus_free(static_cast<size_t>(config_.channels), 0);

    Cycles finish = 0;
    Bytes total_bytes = 0;
    Index hits = 0, accesses = 0;

    for (const auto &req : requests) {
        CFCONV_FATAL_IF(req.bytes == 0, "DramModel: zero-length request");
        // Split the request at row boundaries; each piece is one column
        // access to one bank.
        Bytes addr = req.addr;
        Bytes remaining = req.bytes;
        total_bytes += req.bytes;
        while (remaining > 0) {
            const Bytes row_off = addr % config_.rowBytes;
            const Bytes chunk =
                std::min(remaining, config_.rowBytes - row_off);

            // Address mapping: interleaved rotates consecutive rows
            // across banks (streams get bank parallelism); contiguous
            // gives each bank a fixed region (streams serialize on one
            // bank).
            const Bytes row_id = addr / config_.rowBytes;
            Index bank_idx, global_row;
            if (config_.mapping == AddressMapping::RowInterleaved) {
                bank_idx = static_cast<Index>(
                    row_id % static_cast<Bytes>(n_banks));
                global_row = static_cast<Index>(
                    row_id / static_cast<Bytes>(n_banks));
            } else {
                // Split the address space evenly across banks.
                const Bytes per_bank = std::max<Bytes>(
                    1, (16ULL << 30) / static_cast<Bytes>(n_banks) /
                           config_.rowBytes);
                bank_idx = static_cast<Index>(
                    std::min<Bytes>(row_id / per_bank,
                                    static_cast<Bytes>(n_banks - 1)));
                global_row =
                    static_cast<Index>(row_id % per_bank);
            }
            const Index chan = bank_idx % config_.channels;

            BankState &bank = banks[static_cast<size_t>(bank_idx)];
            // Activation and CAS proceed inside the bank and overlap
            // with other banks' data transfers; only the data beats
            // serialize on the channel bus.
            Cycles data_ready = bank.ready;
            if (config_.pagePolicy == PagePolicy::Closed) {
                // Auto-precharged: every access activates, none pays
                // an explicit precharge, and no row ever hits.
                data_ready += config_.tActivate;
            } else if (bank.openRow == global_row) {
                ++hits;
            } else {
                // Conflict: precharge the old row (if any), activate.
                if (bank.openRow >= 0)
                    data_ready += config_.tPrecharge;
                data_ready += config_.tActivate;
                bank.openRow = global_row;
            }
            data_ready += config_.tCas;
            ++accesses;

            const Cycles burst = std::max<Cycles>(
                2, divCeil<Bytes>(chunk, config_.busBytesPerCycle));
            const Cycles data_start =
                std::max(bus_free[static_cast<size_t>(chan)], data_ready);
            const Cycles done = data_start + burst;
            bank.ready = done;
            bus_free[static_cast<size_t>(chan)] = done;
            finish = std::max(finish, done);

            addr += chunk;
            remaining -= chunk;
        }
    }

    if (finish > 0) {
        const double secs = cyclesToSeconds(finish);
        lastGBps_ = static_cast<double>(total_bytes) / secs / 1e9;
    } else {
        lastGBps_ = 0.0;
    }
    lastRowHitRate_ = accesses > 0
        ? static_cast<double>(hits) / static_cast<double>(accesses)
        : 0.0;
    return finish;
}

Cycles
transferCycles(Bytes bytes, double gbps, double core_ghz,
               double efficiency)
{
    CFCONV_FATAL_IF(gbps <= 0.0 || core_ghz <= 0.0 || efficiency <= 0.0,
                    "transferCycles: non-positive rate");
    const double secs =
        static_cast<double>(bytes) / (gbps * 1e9 * efficiency);
    return static_cast<Cycles>(secs * core_ghz * 1e9 + 0.5);
}

} // namespace cfconv::dram
