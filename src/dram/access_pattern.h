/**
 * @file
 * DRAM access-stream builders: translate "fill the on-chip memory for
 * this tile" into the burst sequence the memory controller sees, for each
 * IFMap DRAM layout. Reproduces the CHW-vs-HWC contrast of Fig 7.
 */

#ifndef CFCONV_DRAM_ACCESS_PATTERN_H
#define CFCONV_DRAM_ACCESS_PATTERN_H

#include <vector>

#include "dram/dram_model.h"
#include "im2col/filter_decomp.h"
#include "tensor/conv_params.h"
#include "tensor/layout.h"

namespace cfconv::dram {

using im2col::FilterTile;
using tensor::ConvParams;
using tensor::Layout;

/**
 * Burst stream for loading the channel-first footprint of decomposed
 * tile @p tile from an IFMap stored in @p layout, for batch size
 * params.batch. Coalesces addresses that are contiguous in the layout.
 */
std::vector<Request> tileFillStream(const ConvParams &params,
                                    const FilterTile &tile,
                                    Layout layout);

/**
 * Burst stream for a channel-last style fill: the union of receptive
 * fields of the whole output tile, i.e. (virtually) the entire IFMap
 * region regardless of stride. This is what makes the channel-last
 * design stride-sensitive.
 */
std::vector<Request> fullInputStream(const ConvParams &params,
                                     Layout layout);

/** Sum of request lengths in @p stream. */
Bytes streamBytes(const std::vector<Request> &stream);

} // namespace cfconv::dram

#endif // CFCONV_DRAM_ACCESS_PATTERN_H
