/**
 * @file
 * Banked DRAM timing model (the DRAMSim3 stand-in). Models what the paper
 * needs from off-chip memory: a bandwidth envelope plus row-buffer
 * locality, so that HWC-layout tile fills (long contiguous bursts) beat
 * CHW-layout fills (many short, scattered bursts) exactly as in Fig 7.
 */

#ifndef CFCONV_DRAM_DRAM_MODEL_H
#define CFCONV_DRAM_DRAM_MODEL_H

#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace cfconv::dram {

/** Row-buffer management policy. */
enum class PagePolicy {
    Open,   ///< rows stay open; hits are cheap, conflicts pay
            ///< precharge + activate
    Closed, ///< auto-precharge after every access; every access pays
            ///< activate but never precharge
};

/** Physical address -> (channel, bank, row) mapping. */
enum class AddressMapping {
    RowInterleaved, ///< consecutive rows rotate across banks (streams
                    ///< get bank parallelism)
    BankContiguous, ///< each bank owns a contiguous address region
};

/** One read/write burst request. */
struct Request
{
    Bytes addr = 0;  ///< byte address
    Bytes bytes = 0; ///< transfer length
};

/** DRAM device/channel configuration. */
struct DramConfig
{
    Index channels = 4;        ///< independent channels
    Index banksPerChannel = 16;
    Bytes rowBytes = 2048;     ///< row-buffer size per bank
    Bytes busBytesPerCycle = 32; ///< per-channel data-bus width
    Cycles tPrecharge = 16;    ///< close an open row
    Cycles tActivate = 14;     ///< open a row
    Cycles tCas = 14;          ///< column access latency (first beat)
    double clockGhz = 1.37;    ///< DRAM command clock
    PagePolicy pagePolicy = PagePolicy::Open;
    AddressMapping mapping = AddressMapping::RowInterleaved;

    /** Worst-case row-switch penalty (precharge + activate). */
    Cycles rowMissPenalty() const { return tPrecharge + tActivate; }

    /** Peak bandwidth in GB/s across all channels. */
    double
    peakGBps() const
    {
        return static_cast<double>(channels) *
               static_cast<double>(busBytesPerCycle) * clockGhz;
    }

    /** An HBM2-like stack roughly matching TPU-v2's 700 GB/s (Tbl II). */
    static DramConfig hbm700();

    /** An HBM2 stack roughly matching V100's 900 GB/s. */
    static DramConfig hbm900();
};

/**
 * Sequential-issue banked DRAM model. Requests are serviced in order;
 * row misses stall only their bank, data transfers serialize on the
 * channel bus, and distinct channels proceed independently.
 */
class DramModel
{
  public:
    explicit DramModel(const DramConfig &config);

    /** Service @p requests starting at cycle 0; @return finish cycle. */
    Cycles service(const std::vector<Request> &requests);

    /** Convert DRAM cycles to seconds. */
    double
    cyclesToSeconds(Cycles cycles) const
    {
        return static_cast<double>(cycles) / (config_.clockGhz * 1e9);
    }

    /**
     * Effective bandwidth of the last service() call in GB/s (bytes
     * moved over wall-clock cycles).
     */
    double lastEffectiveGBps() const { return lastGBps_; }

    /** Fraction of requests that hit an open row in the last call. */
    double lastRowHitRate() const { return lastRowHitRate_; }

    const DramConfig &config() const { return config_; }

  private:
    struct BankState
    {
        Index openRow = -1;
        Cycles ready = 0;
    };

    DramConfig config_;
    double lastGBps_ = 0.0;
    double lastRowHitRate_ = 0.0;
};

/**
 * Closed-form fill latency in *accelerator-core* cycles for moving
 * @p bytes with a given efficiency: used by the tile-level schedulers
 * where running the full banked model per tile would be wasteful. The
 * efficiency factor comes from calibrating against DramModel on the
 * matching access pattern.
 */
Cycles transferCycles(Bytes bytes, double gbps, double core_ghz,
                      double efficiency);

} // namespace cfconv::dram

#endif // CFCONV_DRAM_DRAM_MODEL_H
