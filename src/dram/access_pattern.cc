#include "dram/access_pattern.h"

#include <algorithm>

#include "common/logging.h"

namespace cfconv::dram {

namespace {

/**
 * Byte address of logical IFMap element (n, c, h, w) for @p layout.
 * Dimension sizes come from @p params.
 */
Bytes
elemAddr(const ConvParams &params, Layout layout, Index n, Index c,
         Index h, Index w)
{
    const Index N = params.batch, C = params.inChannels;
    const Index H = params.inH, W = params.inW;
    Index linear = 0;
    switch (layout) {
      case Layout::NCHW:
        linear = ((n * C + c) * H + h) * W + w;
        break;
      case Layout::NHWC:
        linear = ((n * H + h) * W + w) * C + c;
        break;
      case Layout::HWCN:
        linear = ((h * W + w) * C + c) * N + n;
        break;
      case Layout::CHWN:
        linear = ((c * H + h) * W + w) * N + n;
        break;
    }
    return static_cast<Bytes>(linear) * dataTypeSize(params.dataType);
}

/**
 * Append [addr, addr+bytes) to @p stream, merging with the tail. Gaps
 * smaller than a DRAM transaction (32 B) are fetched over rather than
 * skipped, as a real memory controller would: this is exactly the
 * bandwidth waste a strided CHW gather pays.
 */
void
appendCoalesced(std::vector<Request> &stream, Bytes addr, Bytes bytes)
{
    constexpr Bytes transaction = 32;
    if (!stream.empty()) {
        Request &tail = stream.back();
        const Bytes tail_end = tail.addr + tail.bytes;
        if (addr >= tail.addr && addr <= tail_end + transaction) {
            tail.bytes = std::max(tail_end, addr + bytes) - tail.addr;
            return;
        }
    }
    stream.push_back({addr, bytes});
}

} // namespace

std::vector<Request>
tileFillStream(const ConvParams &params, const FilterTile &tile,
               Layout layout)
{
    const im2col::TileFootprint fp = im2col::tileFootprint(params, tile);
    const Bytes elem = dataTypeSize(params.dataType);
    std::vector<Request> stream;

    // Iterate the footprint in the layout's own storage order so
    // contiguous runs coalesce into long bursts.
    switch (layout) {
      case Layout::HWCN:
        // (h, w) positions; each position holds C*N contiguous bytes.
        for (Index h = fp.ihBegin; h < fp.ihEnd; h += fp.ihStep)
            for (Index w = fp.iwBegin; w < fp.iwEnd; w += fp.iwStep)
                appendCoalesced(stream, elemAddr(params, layout, 0, 0, h, w),
                                elem * static_cast<Bytes>(
                                    params.inChannels * params.batch));
        break;
      case Layout::NHWC:
        for (Index n = 0; n < params.batch; ++n)
            for (Index h = fp.ihBegin; h < fp.ihEnd; h += fp.ihStep)
                for (Index w = fp.iwBegin; w < fp.iwEnd; w += fp.iwStep)
                    appendCoalesced(
                        stream, elemAddr(params, layout, n, 0, h, w),
                        elem * static_cast<Bytes>(params.inChannels));
        break;
      case Layout::NCHW:
        for (Index n = 0; n < params.batch; ++n)
            for (Index c = 0; c < params.inChannels; ++c)
                for (Index h = fp.ihBegin; h < fp.ihEnd; h += fp.ihStep)
                    for (Index w = fp.iwBegin; w < fp.iwEnd;
                         w += fp.iwStep)
                        appendCoalesced(
                            stream, elemAddr(params, layout, n, c, h, w),
                            elem);
        break;
      case Layout::CHWN:
        for (Index c = 0; c < params.inChannels; ++c)
            for (Index h = fp.ihBegin; h < fp.ihEnd; h += fp.ihStep)
                for (Index w = fp.iwBegin; w < fp.iwEnd; w += fp.iwStep)
                    appendCoalesced(
                        stream, elemAddr(params, layout, 0, c, h, w),
                        elem * static_cast<Bytes>(params.batch));
        break;
    }
    return stream;
}

std::vector<Request>
fullInputStream(const ConvParams &params, Layout layout)
{
    const Bytes elem = dataTypeSize(params.dataType);
    std::vector<Request> stream;
    // The whole IFMap is contiguous in every layout; what differs is how
    // the stream interleaves with compute. Model it as row-sized bursts
    // in storage order.
    const Bytes total = params.inputBytes();
    Bytes row = 0;
    switch (layout) {
      case Layout::HWCN:
        row = elem * static_cast<Bytes>(params.inW * params.inChannels *
                                        params.batch);
        break;
      case Layout::NHWC:
        row = elem * static_cast<Bytes>(params.inW * params.inChannels);
        break;
      case Layout::NCHW:
      case Layout::CHWN:
        row = elem * static_cast<Bytes>(params.inW);
        break;
    }
    for (Bytes addr = 0; addr < total; addr += row)
        stream.push_back({addr, std::min(row, total - addr)});
    return stream;
}

Bytes
streamBytes(const std::vector<Request> &stream)
{
    Bytes total = 0;
    for (const auto &r : stream)
        total += r.bytes;
    return total;
}

} // namespace cfconv::dram
