/**
 * @file
 * TPU-v2 "hardware measurement" oracle: a stand-in for the cloud TPU-v2
 * runs the paper validates TPUSim against (Figs 13-15). It is an
 * independently-formulated analytical performance model (roofline with
 * pass-quantization efficiency and invocation overheads) perturbed by
 * deterministic per-configuration noise, so validation errors are small
 * but honest. See DESIGN.md for the substitution rationale.
 */

#ifndef CFCONV_ORACLE_TPU_ORACLE_H
#define CFCONV_ORACLE_TPU_ORACLE_H

#include "tensor/conv_params.h"

namespace cfconv::oracle {

using tensor::ConvParams;

/** Tunable parameters of the oracle's analytical model. */
struct TpuOracleConfig
{
    Index arrayRows = 128;
    Index arrayCols = 128;
    double clockGhz = 0.7;
    double memGBps = 700.0;
    double memUtil = 0.85;
    /** Per-pass pipeline overhead in cycles (fill + drain + issue). */
    double passOverheadCycles = 280.0;
    /** Fixed per-invocation overhead in seconds. */
    double invokeOverheadSec = 2.0e-6;
    /** Peak relative measurement noise (uniform, deterministic). */
    double noiseAmplitude = 0.06;
    std::uint64_t noiseSeed = 0x7f1e2d3c4b5a6978ULL;
};

/** The measurement oracle. */
class TpuOracle
{
  public:
    explicit TpuOracle(const TpuOracleConfig &config = {});

    /** "Measured" seconds for a GEMM of the given dimensions. */
    double gemmSeconds(Index m, Index k, Index n) const;

    /**
     * "Measured" seconds for a convolution executed with the TPU's
     * inferred strategy (multi-tile = MIN(rows/C_I, W_F)).
     */
    double convSeconds(const ConvParams &params) const;

    /** Effective TFLOPS derived from convSeconds(). */
    double convTflops(const ConvParams &params) const;

    const TpuOracleConfig &config() const { return config_; }

  private:
    double noise(std::uint64_t key) const;

    TpuOracleConfig config_;
};

} // namespace cfconv::oracle

#endif // CFCONV_ORACLE_TPU_ORACLE_H
