/**
 * @file
 * V100/cuDNN "measurement" oracle: stands in for the paper's measured
 * cuDNN numbers (Figs 2a, 4a, 17, 18). Wraps the GPU simulator's
 * channel-last implicit kernel with vendor-grade compute efficiency and
 * deterministic measurement noise.
 */

#ifndef CFCONV_ORACLE_GPU_ORACLE_H
#define CFCONV_ORACLE_GPU_ORACLE_H

#include "gpusim/gpu_sim.h"

namespace cfconv::oracle {

using tensor::ConvParams;

/** cuDNN measurement stand-in. */
class GpuOracle
{
  public:
    explicit GpuOracle(const gpusim::GpuConfig &config =
                           gpusim::GpuConfig::v100(),
                       double noise_amplitude = 0.02,
                       std::uint64_t noise_seed = 0x2b67c9d1e5a38f04ULL);

    /** "Measured" cuDNN implicit-GEMM convolution seconds. */
    double convSeconds(const ConvParams &params) const;

    /** "Measured" cuDNN explicit-im2col convolution seconds. */
    double convExplicitSeconds(const ConvParams &params) const;

    /** "Measured" explicit im2col transformation seconds alone. */
    double transformSeconds(const ConvParams &params) const;

    /** "Measured" cuBLAS-like GEMM seconds. */
    double gemmSeconds(Index m, Index k, Index n) const;

    /** Effective TFLOPS of the implicit kernel. */
    double convTflops(const ConvParams &params) const;

    const gpusim::GpuSim &sim() const { return sim_; }

  private:
    double noise(std::uint64_t key) const;

    gpusim::GpuSim sim_;
    double noiseAmplitude_;
    std::uint64_t noiseSeed_;
};

} // namespace cfconv::oracle

#endif // CFCONV_ORACLE_GPU_ORACLE_H
