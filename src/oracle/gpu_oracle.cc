#include "oracle/gpu_oracle.h"

#include "common/rng.h"

namespace cfconv::oracle {

namespace {

std::uint64_t
convKey(const ConvParams &p)
{
    std::uint64_t key = hashCombine(
        static_cast<std::uint64_t>(p.inChannels),
        static_cast<std::uint64_t>(p.inH * 131 + p.inW));
    key = hashCombine(key, static_cast<std::uint64_t>(
                               p.outChannels * 977 + p.kernelH * 31 +
                               p.kernelW));
    key = hashCombine(key, static_cast<std::uint64_t>(p.strideH * 17 +
                                                      p.batch));
    return key;
}

} // namespace

GpuOracle::GpuOracle(const gpusim::GpuConfig &config,
                     double noise_amplitude, std::uint64_t noise_seed)
    : sim_(config), noiseAmplitude_(noise_amplitude),
      noiseSeed_(noise_seed)
{
}

double
GpuOracle::noise(std::uint64_t key) const
{
    // SplitMix64 finalizer: full avalanche (see TpuOracle::noise).
    std::uint64_t z = key ^ noiseSeed_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    const double u =
        static_cast<double>(z >> 11) * 0x1.0p-53 * 2.0 - 1.0;
    return 1.0 + noiseAmplitude_ * u;
}

double
GpuOracle::convSeconds(const ConvParams &params) const
{
    gpusim::GpuRunOptions options;
    options.algorithm = gpusim::GpuAlgorithm::ImplicitChannelLast;
    options.vendorTuned = true;
    return sim_.runConv(params, options).seconds * noise(convKey(params));
}

double
GpuOracle::convExplicitSeconds(const ConvParams &params) const
{
    gpusim::GpuRunOptions options;
    options.algorithm = gpusim::GpuAlgorithm::ExplicitIm2col;
    options.vendorTuned = true;
    return sim_.runConv(params, options).seconds *
           noise(hashCombine(convKey(params), 2));
}

double
GpuOracle::transformSeconds(const ConvParams &params) const
{
    return sim_.explicitTransformSeconds(params) *
           noise(hashCombine(convKey(params), 3));
}

double
GpuOracle::gemmSeconds(Index m, Index k, Index n) const
{
    const std::uint64_t key = hashCombine(
        hashCombine(static_cast<std::uint64_t>(m),
                    static_cast<std::uint64_t>(k)),
        static_cast<std::uint64_t>(n));
    return sim_.runGemm(m, k, n, true).seconds * noise(key);
}

double
GpuOracle::convTflops(const ConvParams &params) const
{
    return static_cast<double>(params.flops()) / convSeconds(params) /
           1e12;
}

} // namespace cfconv::oracle
