#include "oracle/tpu_oracle.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"
#include "im2col/filter_decomp.h"
#include "im2col/multi_tile.h"

namespace cfconv::oracle {

TpuOracle::TpuOracle(const TpuOracleConfig &config) : config_(config)
{
    CFCONV_FATAL_IF(config.arrayRows < 1 || config.arrayCols < 1,
                    "TpuOracle: bad array dimensions");
}

double
TpuOracle::noise(std::uint64_t key) const
{
    // SplitMix64 finalizer: full avalanche so near-identical keys
    // (layers differing in one field) get independent noise.
    std::uint64_t z = key ^ config_.noiseSeed;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    const double u =
        static_cast<double>(z >> 11) * 0x1.0p-53 * 2.0 - 1.0;
    return 1.0 + config_.noiseAmplitude * u;
}

double
TpuOracle::gemmSeconds(Index m, Index k, Index n) const
{
    CFCONV_FATAL_IF(m < 1 || k < 1 || n < 1,
                    "TpuOracle: non-positive GEMM dims");
    const double passes =
        static_cast<double>(divCeil(k, config_.arrayRows)) *
        static_cast<double>(divCeil(n, config_.arrayCols));
    const double cycles =
        passes * (static_cast<double>(m) + config_.passOverheadCycles);
    const double compute = cycles / (config_.clockGhz * 1e9);

    const double bytes =
        2.0 * (static_cast<double>(m) * static_cast<double>(k) +
               static_cast<double>(k) * static_cast<double>(n) +
               static_cast<double>(m) * static_cast<double>(n));
    const double mem = bytes / (config_.memGBps * 1e9 * config_.memUtil);

    const std::uint64_t key = hashCombine(
        hashCombine(static_cast<std::uint64_t>(m),
                    static_cast<std::uint64_t>(k)),
        static_cast<std::uint64_t>(n));
    return (std::max(compute, mem) + config_.invokeOverheadSec) *
           noise(key);
}

double
TpuOracle::convSeconds(const ConvParams &params) const
{
    params.validate();
    const Index m = params.gemmM();
    const Index rows = config_.arrayRows;
    const Bytes elem = dataTypeSize(params.dataType);

    double k_passes;
    Index multi_tile = 1;
    if (params.inChannels <= rows) {
        multi_tile = im2col::tpuMultiTileParam(rows, params);
        k_passes = static_cast<double>(
            divCeil(params.kernelH * params.kernelW, multi_tile));
    } else {
        k_passes =
            static_cast<double>(params.kernelH * params.kernelW) *
            static_cast<double>(divCeil(params.inChannels, rows));
    }
    const double passes =
        k_passes * static_cast<double>(
                       divCeil(params.gemmN(), config_.arrayCols));
    const double cycles =
        passes * (static_cast<double>(m) + config_.passOverheadCycles);
    const double compute = cycles / (config_.clockGhz * 1e9);

    // Memory: activations stay in the TPU's 32 MB unified memory when
    // they fit (only weights stream); otherwise the tile operands
    // stream per pass (~the lowered-matrix volume) and the OFMap is
    // written back.
    const Bytes union_bytes = im2col::inputUnionBytes(params);
    double traffic = static_cast<double>(params.filterBytes());
    if (union_bytes * 2 > 32ULL * 1024 * 1024) {
        traffic += static_cast<double>(m) *
                       static_cast<double>(params.gemmK()) *
                       static_cast<double>(elem) +
                   static_cast<double>(params.outputBytes());
    }
    const double mem =
        traffic / (config_.memGBps * 1e9 * config_.memUtil);

    std::uint64_t key = hashCombine(
        static_cast<std::uint64_t>(params.inChannels),
        static_cast<std::uint64_t>(params.inH * 131 + params.inW));
    key = hashCombine(key, static_cast<std::uint64_t>(
                               params.outChannels * 977 +
                               params.kernelH * 31 + params.kernelW));
    key = hashCombine(key, static_cast<std::uint64_t>(
                               params.strideH * 17 + params.batch));
    return (std::max(compute, mem) + config_.invokeOverheadSec) *
           noise(key);
}

double
TpuOracle::convTflops(const ConvParams &params) const
{
    return static_cast<double>(params.flops()) / convSeconds(params) /
           1e12;
}

} // namespace cfconv::oracle
