/**
 * @file
 * The named accelerator-variant zoo: a data-driven registry of
 * declarative parameter records that generalizes the old hard-coded
 * makeAccelerator name table. Each variant is one VariantSpec — a
 * backend tag plus the fully-resolved simulator config and run
 * options — so adding a design point (array-size sweep, buffer/word
 * variant, algorithm baseline) is one record, not a new factory
 * branch. The registry is the single source of truth for accelerator
 * names: sim::makeAccelerator / sim::tryMakeAccelerator /
 * sim::knownAccelerators (declared in sim/accelerator.h) are DEFINED
 * here and resolve through it, so the dispatch and the name list can
 * never drift, and the tuner (tune/autotuner) and the tuned-config
 * database (tune/tuned_db) validate against the same zoo the benches
 * instantiate. The four stock names ("tpu-v2", "tpu-v3ish",
 * "gpu-v100", "gpu-v100-cudnn") are registered first with specs
 * byte-identical to their pre-registry constructions.
 */

#ifndef CFCONV_TUNE_VARIANT_REGISTRY_H
#define CFCONV_TUNE_VARIANT_REGISTRY_H

#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "gpusim/gpu_config.h"
#include "gpusim/gpu_sim.h"
#include "sim/accelerator.h"
#include "tpusim/tpu_config.h"
#include "tpusim/tpu_sim.h"

namespace cfconv::tune {

/** Which simulator family a variant instantiates. */
enum class Backend { Tpu, Gpu };

/** Stable lowercase family name: "tpu" or "gpu". The tuned-config
 *  database keys entries on it. */
const char *backendFamilyName(Backend backend);

/**
 * Declarative record for one named accelerator instance. Only the
 * fields of the tagged backend are meaningful; the other family's
 * config rides along at its default so the record stays a plain
 * value type (copyable, comparable field-by-field in tests).
 */
struct VariantSpec
{
    std::string name;
    Backend backend = Backend::Tpu;
    /** One-line provenance shown by tooling ("v2 core, 256x256
     *  array"). Not part of any cache or database key. */
    std::string description;

    tpusim::TpuConfig tpuConfig = tpusim::TpuConfig::tpuV2();
    tpusim::TpuRunOptions tpuOptions{};

    gpusim::GpuConfig gpuConfig = gpusim::GpuConfig::v100();
    gpusim::GpuRunOptions gpuOptions{};
};

/** Instantiate the accelerator a spec describes (adapter construction
 *  only; never fails for a well-formed spec). */
std::unique_ptr<sim::Accelerator> makeFromSpec(const VariantSpec &spec);

/**
 * Process-wide name -> VariantSpec table. Construction registers the
 * built-in zoo (registerBuiltinVariants); tests and tools may add
 * further variants at runtime. Reads after startup are lock-cheap;
 * records live in a deque so find() pointers stay valid across
 * add() calls.
 */
class VariantRegistry
{
  public:
    static VariantRegistry &instance();

    /** Register @p spec. INVALID_ARGUMENT on an empty or duplicate
     *  name (the zoo is append-only; redefining a name would silently
     *  change what persisted tuned-config entries mean). */
    Status add(VariantSpec spec);

    /** Lookup; nullptr when unknown. The pointer stays valid for the
     *  registry's lifetime. */
    const VariantSpec *find(const std::string &name) const;

    bool contains(const std::string &name) const;

    /** Instantiate a registered variant. NOT_FOUND (listing all valid
     *  names) when unknown — the message the failover chain and CLI
     *  tools surface to users. */
    StatusOr<std::unique_ptr<sim::Accelerator>>
    make(const std::string &name) const;

    /** All names in registration order (stock four first — the
     *  presentation order knownAccelerators() promises). */
    std::vector<std::string> names() const;

    /** Names of one backend family only, registration order. */
    std::vector<std::string> names(Backend family) const;

    size_t size() const;

  private:
    VariantRegistry();

    mutable std::mutex mutex_;
    std::deque<VariantSpec> variants_;
    std::unordered_map<std::string, const VariantSpec *> index_;
};

/** Register the built-in zoo into @p registry: the four stock
 *  configurations, the TPU design-space sweeps (array size, word
 *  size, MXU count, on-chip capacity, algorithm/layout baselines),
 *  the GPU kernel/efficiency variants, and the autotuner grid
 *  points. Called once by VariantRegistry::instance(). */
void registerBuiltinVariants(VariantRegistry &registry);

} // namespace cfconv::tune

#endif // CFCONV_TUNE_VARIANT_REGISTRY_H
