#include "tune/variant_registry.h"

#include <utility>

#include "common/logging.h"
#include "sim/gpu_accelerator.h"
#include "sim/tpu_accelerator.h"

namespace cfconv::tune {

const char *
backendFamilyName(Backend backend)
{
    return backend == Backend::Tpu ? "tpu" : "gpu";
}

std::unique_ptr<sim::Accelerator>
makeFromSpec(const VariantSpec &spec)
{
    if (spec.backend == Backend::Tpu)
        return std::make_unique<sim::TpuAccelerator>(
            spec.name, spec.tpuConfig, spec.tpuOptions);
    return std::make_unique<sim::GpuAccelerator>(
        spec.name, spec.gpuConfig, spec.gpuOptions);
}

VariantRegistry &
VariantRegistry::instance()
{
    static VariantRegistry *registry = new VariantRegistry();
    return *registry;
}

VariantRegistry::VariantRegistry()
{
    registerBuiltinVariants(*this);
}

Status
VariantRegistry::add(VariantSpec spec)
{
    if (spec.name.empty())
        return invalidArgumentError(
            "variant registry: empty variant name");
    std::lock_guard<std::mutex> lock(mutex_);
    if (index_.count(spec.name) > 0)
        return invalidArgumentError(
            "variant registry: duplicate variant '%s'",
            spec.name.c_str());
    variants_.push_back(std::move(spec));
    index_[variants_.back().name] = &variants_.back();
    return okStatus();
}

const VariantSpec *
VariantRegistry::find(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(name);
    return it == index_.end() ? nullptr : it->second;
}

bool
VariantRegistry::contains(const std::string &name) const
{
    return find(name) != nullptr;
}

StatusOr<std::unique_ptr<sim::Accelerator>>
VariantRegistry::make(const std::string &name) const
{
    const VariantSpec *spec = find(name);
    if (spec != nullptr)
        return makeFromSpec(*spec);
    std::string known;
    for (const auto &k : names())
        known += (known.empty() ? "" : ", ") + k;
    return notFoundError("unknown accelerator '%s' (known: %s)",
                         name.c_str(), known.c_str());
}

std::vector<std::string>
VariantRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(variants_.size());
    for (const auto &spec : variants_)
        out.push_back(spec.name);
    return out;
}

std::vector<std::string>
VariantRegistry::names(Backend family) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    for (const auto &spec : variants_)
        if (spec.backend == family)
            out.push_back(spec.name);
    return out;
}

size_t
VariantRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return variants_.size();
}

namespace {

/** Build one TPU variant from the v2 base plus a config mutation. */
template <typename ConfigFn>
VariantSpec
tpuVariant(const char *name, const char *description, ConfigFn mutate,
           tpusim::TpuRunOptions options = {})
{
    VariantSpec spec;
    spec.name = name;
    spec.backend = Backend::Tpu;
    spec.description = description;
    mutate(spec.tpuConfig);
    spec.tpuOptions = options;
    return spec;
}

/** Build one GPU variant from the stock V100 config plus run options. */
VariantSpec
gpuVariant(const char *name, const char *description,
           gpusim::GpuRunOptions options = {})
{
    VariantSpec spec;
    spec.name = name;
    spec.backend = Backend::Gpu;
    spec.description = description;
    spec.gpuOptions = options;
    return spec;
}

/** The v2 core with a square @p array and one vector memory per PE
 *  row (total on-chip capacity unchanged — the Fig 16a sweep). */
void
setArray(tpusim::TpuConfig &c, Index array)
{
    c.array.rows = c.array.cols = array;
    c.vectorMemories = array;
}

} // namespace

void
registerBuiltinVariants(VariantRegistry &registry)
{
    const auto addOrDie = [&registry](VariantSpec spec) {
        const Status status = registry.add(std::move(spec));
        CFCONV_FATAL_IF(!status.ok(), "builtin zoo: %s",
                        status.toString().c_str());
    };
    const auto identity = [](tpusim::TpuConfig &) {};

    // ---- The four stock configurations, first and in the historical
    // presentation order. Their specs must stay byte-identical to the
    // pre-registry makeAccelerator branches (tests/tune enforces it).
    addOrDie(tpuVariant("tpu-v2", "Table II core: 128x128 @ 700 MHz, "
                        "32 MB, HBM 700 GB/s", identity));
    {
        VariantSpec spec;
        spec.name = "tpu-v3ish";
        spec.backend = Backend::Tpu;
        spec.description = "v2 core + second MXU, 940 MHz, HBM 900 "
                           "GB/s (the Fig 16b insight)";
        spec.tpuConfig = tpusim::TpuConfig::tpuV3ish();
        addOrDie(std::move(spec));
    }
    addOrDie(gpuVariant("gpu-v100", "paper V100 + our channel-first "
                        "implicit kernel"));
    {
        gpusim::GpuRunOptions cudnn;
        cudnn.algorithm = gpusim::GpuAlgorithm::ImplicitChannelLast;
        cudnn.vendorTuned = true;
        addOrDie(gpuVariant("gpu-v100-cudnn", "vendor-tuned implicit "
                            "channel-last baseline (cuDNN-like)",
                            cudnn));
    }

    // ---- TPU array-size sweep (Fig 16a): square array, one vector
    // memory per row, 32 MB total capacity held constant.
    for (const auto &[array, name, desc] :
         {std::tuple<Index, const char *, const char *>
              {32, "tpu-v2-32x32", "v2 core, 32x32 array"},
          {64, "tpu-v2-64x64", "v2 core, 64x64 array"},
          {256, "tpu-v2-256x256", "v2 core, 256x256 array"},
          {512, "tpu-v2-512x512", "v2 core, 512x512 array"}}) {
        const Index a = array;
        addOrDie(tpuVariant(name, desc, [a](tpusim::TpuConfig &c) {
            setArray(c, a);
        }));
    }

    // ---- TPU vector-memory word-size sweep (Fig 16b; word 8 is the
    // stock "tpu-v2").
    for (const auto &[word, name] :
         {std::pair<Index, const char *>{1, "tpu-v2-word1"},
          {2, "tpu-v2-word2"},
          {4, "tpu-v2-word4"},
          {16, "tpu-v2-word16"},
          {32, "tpu-v2-word32"}}) {
        const Index w = word;
        addOrDie(tpuVariant(name, "v2 core, vector-memory word-size "
                            "variant", [w](tpusim::TpuConfig &c) {
            c.wordElems = w;
        }));
    }

    // ---- Second matrix unit on the v2 clock (the Fig 16b follow-on
    // grid: spend idle word-8 port bandwidth on a second MXU).
    for (const auto &[word, name] :
         {std::pair<Index, const char *>{1, "tpu-v2-word1-2mxu"},
          {2, "tpu-v2-word2-2mxu"},
          {8, "tpu-v2-2mxu"}}) {
        const Index w = word;
        addOrDie(tpuVariant(name, "v2 core + second MXU (v2 clock and "
                            "HBM)", [w](tpusim::TpuConfig &c) {
            c.wordElems = w;
            c.mxus = 2;
        }));
    }

    // ---- On-chip capacity variants.
    addOrDie(tpuVariant("tpu-v2-16mb", "v2 core, 16 MB on-chip",
                        [](tpusim::TpuConfig &c) {
                            c.onChipBytes = 16ULL * 1024 * 1024;
                        }));
    addOrDie(tpuVariant("tpu-v2-64mb", "v2 core, 64 MB on-chip",
                        [](tpusim::TpuConfig &c) {
                            c.onChipBytes = 64ULL * 1024 * 1024;
                        }));

    // ---- TPU algorithm/layout baselines (the paper's comparative
    // axes as named, reproducible accelerators).
    {
        tpusim::TpuRunOptions options;
        options.algorithm = tpusim::ConvAlgorithm::ChannelLast;
        addOrDie(tpuVariant("tpu-v2-chlast", "v2 core running the "
                            "Lym-style implicit channel-last "
                            "algorithm", identity, options));
    }
    {
        tpusim::TpuRunOptions options;
        options.algorithm = tpusim::ConvAlgorithm::Explicit;
        addOrDie(tpuVariant("tpu-v2-explicit", "v2 core running "
                            "explicit im2col (GEMM part only; the "
                            "transform is host-estimated)", identity,
                            options));
    }
    {
        tpusim::TpuRunOptions options;
        options.dramLayout = tensor::Layout::NCHW;
        addOrDie(tpuVariant("tpu-v2-nchw", "v2 core with the IFMap in "
                            "NCHW DRAM layout (Fig 7 ablation)",
                            identity, options));
    }
    {
        tpusim::TpuRunOptions options;
        options.spaceToDepthFirstLayer = true;
        addOrDie(tpuVariant("tpu-v2-s2d", "v2 core with space-to-depth "
                            "rewriting of shallow stride-2k stem "
                            "layers", identity, options));
    }

    // ---- Autotuner grid corners not covered by a presentation name
    // above (array x word cross products; see tune/autotuner).
    for (const auto &[array, word, name] :
         {std::tuple<Index, Index, const char *>
              {64, 4, "tpu-v2-a64-w4"},
          {64, 16, "tpu-v2-a64-w16"},
          {256, 4, "tpu-v2-a256-w4"},
          {256, 16, "tpu-v2-a256-w16"}}) {
        const Index a = array, w = word;
        addOrDie(tpuVariant(name, "v2 core, autotuner grid point",
                            [a, w](tpusim::TpuConfig &c) {
                                setArray(c, a);
                                c.wordElems = w;
                            }));
    }

    // ---- GPU kernel/efficiency variants.
    {
        gpusim::GpuRunOptions options;
        options.algorithm = gpusim::GpuAlgorithm::ImplicitChannelLast;
        addOrDie(gpuVariant("gpu-v100-chlast", "V100 implicit "
                            "channel-last kernel at stock efficiency",
                            options));
    }
    {
        gpusim::GpuRunOptions options;
        options.algorithm = gpusim::GpuAlgorithm::ExplicitIm2col;
        addOrDie(gpuVariant("gpu-v100-explicit", "V100 explicit "
                            "im2col: transform kernel + GEMM",
                            options));
    }
    {
        gpusim::GpuRunOptions options;
        options.interTileReuse = false;
        addOrDie(gpuVariant("gpu-v100-noreuse", "V100 channel-first "
                            "kernel without the Sec. V inter-tile "
                            "reuse reordering", options));
    }
    {
        gpusim::GpuRunOptions options;
        options.vendorTuned = true;
        addOrDie(gpuVariant("gpu-v100-tuned", "V100 channel-first "
                            "kernel at vendor-grade compute "
                            "efficiency", options));
    }
    {
        gpusim::GpuRunOptions options;
        options.algorithm = gpusim::GpuAlgorithm::ExplicitIm2col;
        options.vendorTuned = true;
        addOrDie(gpuVariant("gpu-v100-explicit-tuned", "V100 explicit "
                            "im2col at vendor-grade compute "
                            "efficiency", options));
    }

    // ---- Algorithm-zoo variants (DESIGN §14): the indirect-conv and
    // SMM-Conv lowerings crossed with the autotuner's array x word
    // grid, so the third "algo" knob axis (tune/autotuner's
    // tpuKnobSpace) has a registered variant at every grid point.
    for (const auto &[algo, suffix, what] :
         {std::tuple<tpusim::ConvAlgorithm, const char *, const char *>
              {tpusim::ConvAlgorithm::Indirect, "indirect",
               "indirect-conv (pointer-table) lowering"},
          {tpusim::ConvAlgorithm::Smm, "smm",
           "SMM-Conv (shifted-block) lowering"}}) {
        tpusim::TpuRunOptions options;
        options.algorithm = algo;
        for (const auto &[array, word, stem] :
             {std::tuple<Index, Index, const char *>
                  {64, 4, "tpu-v2-a64-w4"},
              {64, 8, "tpu-v2-64x64"},
              {64, 16, "tpu-v2-a64-w16"},
              {128, 4, "tpu-v2-word4"},
              {128, 8, "tpu-v2"},
              {128, 16, "tpu-v2-word16"},
              {256, 4, "tpu-v2-a256-w4"},
              {256, 8, "tpu-v2-256x256"},
              {256, 16, "tpu-v2-a256-w16"}}) {
            const Index a = array, w = word;
            const std::string name =
                std::string(stem) + "-" + suffix;
            const std::string desc =
                std::string(stem) + " core running the " + what;
            addOrDie(tpuVariant(name.c_str(), desc.c_str(),
                                [a, w](tpusim::TpuConfig &c) {
                                    setArray(c, a);
                                    c.wordElems = w;
                                }, options));
        }
    }
    {
        gpusim::GpuRunOptions options;
        options.algorithm = gpusim::GpuAlgorithm::Indirect;
        addOrDie(gpuVariant("gpu-v100-indirect", "V100 indirect-conv "
                            "(pointer-table) kernel at stock "
                            "efficiency", options));
        options.vendorTuned = true;
        addOrDie(gpuVariant("gpu-v100-indirect-tuned", "V100 "
                            "indirect-conv kernel at vendor-grade "
                            "compute efficiency", options));
    }
    {
        gpusim::GpuRunOptions options;
        options.algorithm = gpusim::GpuAlgorithm::Smm;
        addOrDie(gpuVariant("gpu-v100-smm", "V100 SMM-Conv "
                            "(shifted-block) kernel at stock "
                            "efficiency", options));
        options.vendorTuned = true;
        addOrDie(gpuVariant("gpu-v100-smm-tuned", "V100 SMM-Conv "
                            "kernel at vendor-grade compute "
                            "efficiency", options));
    }
}

} // namespace cfconv::tune

// ---------------------------------------------------------------------
// The sim/accelerator.h factory surface. Defined here — not in
// sim/accelerator.cc — so the name table and the dispatch both derive
// from the variant registry and cannot drift apart.

namespace cfconv::sim {

StatusOr<std::unique_ptr<Accelerator>>
tryMakeAccelerator(const std::string &name)
{
    return tune::VariantRegistry::instance().make(name);
}

std::unique_ptr<Accelerator>
makeAccelerator(const std::string &name)
{
    auto made = tryMakeAccelerator(name);
    if (!made.ok())
        fatal("%s", made.status().toString().c_str());
    return std::move(made).value();
}

std::vector<std::string>
knownAccelerators()
{
    return tune::VariantRegistry::instance().names();
}

} // namespace cfconv::sim
