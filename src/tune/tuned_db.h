/**
 * @file
 * Persistent tuned-config database: the autotuner's memory across
 * processes. One TunedEntry records, for a canonical layer geometry on
 * one backend family, which registered variant the search chose and
 * what it measured — so a repeat run looks the answer up instead of
 * re-searching (bench_autotune's second run performs zero search
 * evaluations). The JSON document is written deterministically
 * (entries sorted by key) via common/report's JsonWriter and read back
 * with common/json; the loader is schema-versioned and validates every
 * entry against the live VariantRegistry and conv::Algorithm registry,
 * rejecting stale records (unknown variant, baseline, or algorithm
 * names, non-positive timings) instead of letting a renamed zoo
 * silently redirect tuned choices.
 */

#ifndef CFCONV_TUNE_TUNED_DB_H
#define CFCONV_TUNE_TUNED_DB_H

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "tune/variant_registry.h"

namespace cfconv::tune {

/** One persisted tuning decision for one layer geometry. */
struct TunedEntry
{
    /** Backend family the search ran over ("tpu" / "gpu"). A geometry
     *  is tuned per family — the same layer may pick different
     *  variants on different hardware. */
    std::string family;
    /** Canonical conv::Algorithm name of the baseline's lowering
     *  ("channel-first", "indirect", ...). Part of the key: a geometry
     *  is tuned per (family, algorithm) context, so searches anchored
     *  to different baselines never overwrite each other. */
    std::string algorithm;
    /** Canonical layer geometry: ConvParams::toString() of the full
     *  layer, the same string LayerRecord.geometry carries. */
    std::string geometry;
    Index groups = 1;
    /** Winning variant (must name a registered variant at load time). */
    std::string variant;
    /** Baseline variant the search was asked to beat (validated the
     *  same way; a DB entry is only meaningful relative to it). */
    std::string baseline;
    double tunedSeconds = 0.0;    ///< winner's per-instance seconds
    double baselineSeconds = 0.0; ///< baseline's per-instance seconds
    /** Candidate evaluations the original search spent (cache misses
     *  only; 0 never occurs for a fresh search). */
    Index evaluations = 0;
    /** Search mode that produced the entry: "exhaustive" / "greedy". */
    std::string mode;
};

/** What a loadFile() call accepted and what it refused. */
struct DbLoadStats
{
    Index loaded = 0;   ///< entries accepted into the database
    Index rejected = 0; ///< stale/invalid entries skipped (warned)
    bool fresh = false; ///< loadOrRecover(): no file existed yet
    /** loadOrRecover(): the file was torn/corrupt and has been
     *  discarded; the caller should re-search and re-save. */
    bool recovered = false;
};

/**
 * In-memory map of tuned entries keyed by (family, algorithm,
 * geometry, groups), with deterministic JSON persistence. Not thread-safe: the tuner
 * queries it from the orchestrating thread only, never from inside a
 * parallel search region.
 */
class TunedConfigDb
{
  public:
    /** Bumped when the JSON layout changes incompatibly; the loader
     *  refuses other versions rather than guessing. v2 added the
     *  per-entry "algorithm" key component (the algorithm zoo). */
    static constexpr long long kSchemaVersion = 2;
    static constexpr const char *kSchemaName = "cfconv.tuned_db";

    /** Insert or replace the entry for @p entry's key. */
    void upsert(TunedEntry entry);

    /** Lookup; nullptr on a miss. Valid until the next mutation. */
    const TunedEntry *find(const std::string &family,
                           const std::string &algorithm,
                           const std::string &geometry,
                           Index groups) const;

    size_t size() const { return entries_.size(); }

    /** All entries in key order (the persisted order). */
    std::vector<TunedEntry> entries() const;

    /** The full database as a deterministic JSON document. */
    std::string toJson() const;

    /** toJson() to @p path via atomic write-temp + rename with a
     *  checksum trailer (common/atomic_file), so a crash mid-save can
     *  never leave a torn database behind. False on I/O failure
     *  (stderr note). */
    bool saveFile(const std::string &path) const;

    /**
     * Merge the document at @p path into this database, validating
     * each entry against @p registry. Structural problems (missing
     * file, parse error, wrong schema name or version) fail the whole
     * load; per-entry problems (unknown variant/baseline, empty
     * geometry, non-positive seconds) reject just that entry with a
     * warning and are counted in DbLoadStats::rejected.
     */
    StatusOr<DbLoadStats> loadFile(const std::string &path,
                                   const VariantRegistry &registry);

    /**
     * Crash-consistent load: like loadFile(), but never fails the
     * caller. A missing file returns stats with fresh=true; a torn or
     * structurally invalid file (checksum mismatch, parse error, wrong
     * schema) is deleted, counted under the "persist.recovered"
     * metric, warned to stderr, and reported with recovered=true so
     * the caller re-searches and re-saves a clean database.
     */
    DbLoadStats loadOrRecover(const std::string &path,
                              const VariantRegistry &registry);

    void clear() { entries_.clear(); }

  private:
    static std::string key(const std::string &family,
                           const std::string &algorithm,
                           const std::string &geometry, Index groups);

    std::map<std::string, TunedEntry> entries_;
};

} // namespace cfconv::tune

#endif // CFCONV_TUNE_TUNED_DB_H
