#include "tune/autotuner.h"

#include <limits>
#include <utility>

#include "common/memo_cache.h"
#include "common/parallel.h"
#include "conv/algorithm.h"

namespace cfconv::tune {

const char *
searchModeName(SearchMode mode)
{
    return mode == SearchMode::Exhaustive ? "exhaustive" : "greedy";
}

StatusOr<SearchMode>
parseSearchMode(const std::string &name)
{
    if (name == "exhaustive")
        return SearchMode::Exhaustive;
    if (name == "greedy")
        return SearchMode::Greedy;
    return invalidArgumentError(
        "unknown search mode '%s' (known: exhaustive, greedy)",
        name.c_str());
}

size_t
KnobSpace::flatIndex(const std::vector<Index> &point) const
{
    size_t flat = 0;
    for (size_t i = 0; i < axes.size(); ++i)
        flat = flat * axes[i].levels.size()
            + static_cast<size_t>(point[i]);
    return flat;
}

std::vector<Index>
KnobSpace::pointOf(size_t flat) const
{
    std::vector<Index> point(axes.size(), 0);
    for (size_t i = axes.size(); i-- > 0;) {
        const size_t n = axes[i].levels.size();
        point[i] = static_cast<Index>(flat % n);
        flat /= n;
    }
    return point;
}

const std::string &
KnobSpace::variantAt(const std::vector<Index> &point) const
{
    return variants[flatIndex(point)];
}

StatusOr<std::vector<Index>>
KnobSpace::pointOfVariant(const std::string &name) const
{
    for (size_t flat = 0; flat < variants.size(); ++flat)
        if (variants[flat] == name)
            return pointOf(flat);
    return notFoundError(
        "variant '%s' is not a point of this knob space",
        name.c_str());
}

KnobSpace
tpuKnobSpace()
{
    KnobSpace space;
    space.family = Backend::Tpu;
    space.axes = {{"array", {"64", "128", "256"}},
                  {"word", {"4", "8", "16"}},
                  {"algo", {"chfirst", "indirect", "smm"}}};
    space.variants = {
        // array 64
        "tpu-v2-a64-w4", "tpu-v2-a64-w4-indirect", "tpu-v2-a64-w4-smm",
        "tpu-v2-64x64", "tpu-v2-64x64-indirect", "tpu-v2-64x64-smm",
        "tpu-v2-a64-w16", "tpu-v2-a64-w16-indirect",
        "tpu-v2-a64-w16-smm",
        // array 128
        "tpu-v2-word4", "tpu-v2-word4-indirect", "tpu-v2-word4-smm",
        "tpu-v2", "tpu-v2-indirect", "tpu-v2-smm",
        "tpu-v2-word16", "tpu-v2-word16-indirect", "tpu-v2-word16-smm",
        // array 256
        "tpu-v2-a256-w4", "tpu-v2-a256-w4-indirect",
        "tpu-v2-a256-w4-smm",
        "tpu-v2-256x256", "tpu-v2-256x256-indirect",
        "tpu-v2-256x256-smm",
        "tpu-v2-a256-w16", "tpu-v2-a256-w16-indirect",
        "tpu-v2-a256-w16-smm",
    };
    return space;
}

KnobSpace
gpuKnobSpace()
{
    KnobSpace space;
    space.family = Backend::Gpu;
    space.axes = {{"kernel",
                   {"chfirst", "chlast", "explicit", "indirect",
                    "smm"}},
                  {"effort", {"stock", "vendor"}}};
    space.variants = {
        "gpu-v100",          "gpu-v100-tuned",
        "gpu-v100-chlast",   "gpu-v100-cudnn",
        "gpu-v100-explicit", "gpu-v100-explicit-tuned",
        "gpu-v100-indirect", "gpu-v100-indirect-tuned",
        "gpu-v100-smm",      "gpu-v100-smm-tuned",
    };
    return space;
}

namespace {

/** Process-wide memo of candidate evaluations, shared by every
 *  Autotuner instance (keys carry the variant name, so spaces cannot
 *  collide). Counters surface as "tune_cache.*". */
MemoCache<double> &
tuneCache()
{
    static MemoCache<double> *cache = new MemoCache<double>("tune_cache");
    return *cache;
}

std::string
evalKey(const std::string &variant, const tensor::ConvParams &params,
        Index groups)
{
    std::string key = "tune|" + variant + "|" + params.toString() + "|";
    memoKeyAppendInt(key, groups);
    return key;
}

} // namespace

StatusOr<std::unique_ptr<Autotuner>>
Autotuner::create(KnobSpace space, const VariantRegistry &registry)
{
    size_t expected = space.axes.empty() ? 0 : 1;
    for (const auto &axis : space.axes)
        expected *= axis.levels.size();
    if (expected == 0 || space.variants.size() != expected)
        return invalidArgumentError(
            "knob space: %zu variants for %zu grid points",
            space.variants.size(), expected);
    std::unique_ptr<Autotuner> tuner(new Autotuner(std::move(space)));
    tuner->candidates_.reserve(tuner->space_.points());
    for (const std::string &name : tuner->space_.variants) {
        const VariantSpec *spec = registry.find(name);
        if (spec == nullptr)
            return notFoundError(
                "knob space names unregistered variant '%s'",
                name.c_str());
        if (spec->backend != tuner->space_.family)
            return invalidArgumentError(
                "knob space variant '%s' is not a %s variant",
                name.c_str(),
                backendFamilyName(tuner->space_.family));
        tuner->candidates_.push_back(makeFromSpec(*spec));
    }
    return tuner;
}

Autotuner::Autotuner(KnobSpace space) : space_(std::move(space)) {}

StatGroup
Autotuner::cacheStats()
{
    return tuneCache().statsSnapshot();
}

double
Autotuner::evaluate(size_t flat, const tensor::ConvParams &params,
                    Index groups,
                    std::atomic<Index> &evaluations) const
{
    // Candidates whose algorithm rejects the layer (e.g. SMM-Conv on a
    // strided layer) score +infinity: never chosen, never simulated,
    // never cached. The check is cheap and deterministic, so every
    // thread count sees the same effective grid.
    if (const conv::Algorithm *algo = candidates_[flat]->algorithm())
        if (!algo->supports(params, groups).ok())
            return std::numeric_limits<double>::infinity();
    MemoCache<double> &cache = tuneCache();
    const std::string key =
        evalKey(space_.variants[flat], params, groups);
    double seconds = 0.0;
    if (cache.enabled() && cache.lookup(key, &seconds))
        return seconds;
    sim::RunOptions options;
    options.groups = groups;
    seconds = candidates_[flat]->runLayer(params, options).seconds;
    ++evaluations;
    if (cache.enabled())
        cache.insert(key, seconds);
    return seconds;
}

size_t
Autotuner::searchExhaustive(const tensor::ConvParams &params,
                            Index groups,
                            std::atomic<Index> &evaluations) const
{
    std::vector<double> seconds(space_.points(), 0.0);
    parallel::parallelFor(
        0, static_cast<Index>(space_.points()), 1,
        [&](Index begin, Index end) {
            for (Index i = begin; i < end; ++i)
                seconds[static_cast<size_t>(i)] =
                    evaluate(static_cast<size_t>(i), params, groups,
                             evaluations);
        });
    // Ascending scan with strict improvement: ties resolve to the
    // lowest flat index regardless of thread count.
    size_t best = 0;
    for (size_t i = 1; i < seconds.size(); ++i)
        if (seconds[i] < seconds[best])
            best = i;
    return best;
}

size_t
Autotuner::searchGreedy(size_t start, const tensor::ConvParams &params,
                        Index groups,
                        std::atomic<Index> &evaluations) const
{
    size_t current = start;
    std::atomic<Index> &evals = evaluations;
    double currentSeconds = evaluate(current, params, groups, evals);
    while (true) {
        // Candidate moves: one step along each axis in each direction.
        std::vector<size_t> moves;
        const std::vector<Index> point = space_.pointOf(current);
        for (size_t axis = 0; axis < space_.axes.size(); ++axis) {
            for (const int delta : {-1, +1}) {
                const Index level = point[axis] + delta;
                if (level < 0
                    || level >= static_cast<Index>(
                           space_.axes[axis].levels.size()))
                    continue;
                std::vector<Index> next = point;
                next[axis] = level;
                moves.push_back(space_.flatIndex(next));
            }
        }
        std::vector<double> seconds(moves.size(), 0.0);
        parallel::parallelFor(
            0, static_cast<Index>(moves.size()), 1,
            [&](Index begin, Index end) {
                for (Index i = begin; i < end; ++i)
                    seconds[static_cast<size_t>(i)] =
                        evaluate(moves[static_cast<size_t>(i)], params,
                                 groups, evals);
            });
        // Steepest descent with plateau walking: a move is acceptable
        // when strictly faster, or equally fast at a lower flat index
        // (time ties are common — e.g. the word axis on DRAM-bound
        // layers — and walking them keeps greedy's tie-break
        // consistent with exhaustive's lowest-flat-index rule). Every
        // move strictly decreases (seconds, flat index)
        // lexicographically, so the walk terminates.
        size_t bestMove = moves.size();
        for (size_t i = 0; i < moves.size(); ++i) {
            const bool acceptable = seconds[i] < currentSeconds
                || (seconds[i] == currentSeconds && moves[i] < current);
            const bool better = acceptable
                && (bestMove == moves.size()
                    || seconds[i] < seconds[bestMove]
                    || (seconds[i] == seconds[bestMove]
                        && moves[i] < moves[bestMove]));
            if (better)
                bestMove = i;
        }
        if (bestMove == moves.size())
            return current;
        current = moves[bestMove];
        currentSeconds = seconds[bestMove];
    }
}

StatusOr<LayerTuneChoice>
Autotuner::tuneLayer(const models::ConvLayerSpec &layer,
                     const TuneOptions &options)
{
    CFCONV_ASSIGN_OR_RETURN(const std::vector<Index> basePoint,
                            space_.pointOfVariant(options.baseline));
    sim::RunOptions runOptions;
    runOptions.groups = layer.groups;
    CFCONV_RETURN_IF_ERROR(
        sim::validateLayerParams(layer.params, runOptions)
            .withContext("tuning layer " + layer.name));

    LayerTuneChoice choice;
    choice.layerName = layer.name;
    choice.geometry = layer.params.toString();
    choice.groups = layer.groups;
    choice.count = layer.count;

    const char *family = backendFamilyName(space_.family);
    const size_t base = space_.flatIndex(basePoint);
    // DB entries are keyed per (family, algorithm, geometry): the
    // algorithm context is the baseline accelerator's lowering, so
    // searches anchored to different algorithms stay distinct.
    const conv::Algorithm *baseAlgo = candidates_[base]->algorithm();
    const std::string algoName =
        baseAlgo != nullptr ? baseAlgo->name() : "channel-first";
    if (options.db != nullptr) {
        const TunedEntry *hit = options.db->find(
            family, algoName, choice.geometry, choice.groups);
        // Honor the entry only when it answers this exact question:
        // same baseline, and a winner this space can instantiate.
        if (hit != nullptr && hit->baseline == options.baseline
            && space_.pointOfVariant(hit->variant).ok()) {
            choice.variant = hit->variant;
            choice.tunedSeconds = hit->tunedSeconds;
            choice.baselineSeconds = hit->baselineSeconds;
            choice.fromDb = true;
            return choice;
        }
    }

    std::atomic<Index> evaluations{0};
    const size_t best = options.mode == SearchMode::Exhaustive
        ? searchExhaustive(layer.params, layer.groups, evaluations)
        : searchGreedy(base, layer.params, layer.groups, evaluations);
    choice.variant = space_.variants[best];
    choice.tunedSeconds =
        evaluate(best, layer.params, layer.groups, evaluations);
    choice.baselineSeconds =
        evaluate(base, layer.params, layer.groups, evaluations);
    choice.evaluations = evaluations.load();

    if (options.db != nullptr) {
        TunedEntry entry;
        entry.family = family;
        entry.algorithm = algoName;
        entry.geometry = choice.geometry;
        entry.groups = choice.groups;
        entry.variant = choice.variant;
        entry.baseline = options.baseline;
        entry.tunedSeconds = choice.tunedSeconds;
        entry.baselineSeconds = choice.baselineSeconds;
        entry.evaluations = choice.evaluations;
        entry.mode = searchModeName(options.mode);
        options.db->upsert(std::move(entry));
    }
    return choice;
}

StatusOr<ModelTuneResult>
Autotuner::tuneModel(const models::ModelSpec &model,
                     const TuneOptions &options)
{
    ModelTuneResult result;
    result.model = model.name;
    result.baseline = options.baseline;
    result.mode = options.mode;
    for (const models::ConvLayerSpec &layer : model.layers) {
        CFCONV_ASSIGN_OR_RETURN(LayerTuneChoice choice,
                                tuneLayer(layer, options));
        const double reps = static_cast<double>(choice.count);
        result.baselineSeconds += choice.baselineSeconds * reps;
        result.tunedSeconds += choice.tunedSeconds * reps;
        result.evaluations += choice.evaluations;
        if (choice.fromDb)
            ++result.dbHits;
        result.layers.push_back(std::move(choice));
    }
    return result;
}

} // namespace cfconv::tune
