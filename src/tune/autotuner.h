/**
 * @file
 * Design-space autotuner over the variant zoo. The paper's Sec. VI/VII
 * message is that the best (array size, buffer word, kernel choice)
 * shifts per layer shape; this component makes that actionable: given
 * a layer (or a whole model-zoo network), search a small structured
 * knob space — each point a *named registered variant*, so every tuned
 * choice is reproducible by name — and report the winner against a
 * named baseline. Exhaustive mode visits every grid point; greedy mode
 * hill-climbs axis neighbors from the baseline point (cheaper on big
 * grids, exact on unimodal ones), walking time-tied plateaus toward
 * lower flat indices so its tie-break matches exhaustive's. Candidate simulations run in
 * parallel via common/parallel and are memoized process-wide via
 * common/memo_cache, and an optional TunedConfigDb turns repeat runs
 * into pure lookups (zero search evaluations).
 */

#ifndef CFCONV_TUNE_AUTOTUNER_H
#define CFCONV_TUNE_AUTOTUNER_H

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/types.h"
#include "models/model_zoo.h"
#include "tune/tuned_db.h"
#include "tune/variant_registry.h"

namespace cfconv::tune {

/** How the tuner walks the knob space. */
enum class SearchMode { Exhaustive, Greedy };

/** Stable lowercase mode name: "exhaustive" / "greedy". */
const char *searchModeName(SearchMode mode);

/** Parse a mode name; INVALID_ARGUMENT listing the valid spellings. */
StatusOr<SearchMode> parseSearchMode(const std::string &name);

/**
 * A structured grid over registered variants: named axes with level
 * labels, plus a row-major table mapping each grid point to the
 * variant name that realizes it. Points are coordinate vectors (one
 * index per axis); the flat index is the row-major linearization.
 */
struct KnobSpace
{
    struct Axis
    {
        std::string name;                ///< e.g. "array", "word"
        std::vector<std::string> levels; ///< e.g. {"64","128","256"}
    };

    Backend family = Backend::Tpu;
    std::vector<Axis> axes;
    /** Variant name per flat grid point, row-major over the axes.
     *  Size must equal the product of the axis level counts. */
    std::vector<std::string> variants;

    size_t points() const { return variants.size(); }
    size_t flatIndex(const std::vector<Index> &point) const;
    std::vector<Index> pointOf(size_t flat) const;
    const std::string &variantAt(const std::vector<Index> &point) const;
    /** Grid point of a variant name; NOT_FOUND when the name is not a
     *  point of this space. */
    StatusOr<std::vector<Index>>
    pointOfVariant(const std::string &name) const;
};

/** The built-in TPU grid: array size {64,128,256} x vector-memory
 *  word {4,8,16} x algorithm {chfirst,indirect,smm}; "tpu-v2" is the
 *  (128, 8, chfirst) point. */
KnobSpace tpuKnobSpace();

/** The built-in GPU grid: kernel {channel-first, channel-last,
 *  explicit-im2col, indirect, smm} x tuning effort {stock, vendor};
 *  "gpu-v100" is the (channel-first, stock) point. */
KnobSpace gpuKnobSpace();

/** One tuner invocation's knobs. */
struct TuneOptions
{
    SearchMode mode = SearchMode::Exhaustive;
    /** Named baseline variant; must be a point of the search space.
     *  Greedy starts here, and every win is reported relative to it. */
    std::string baseline;
    /** Optional persistent database: consulted before searching (a hit
     *  is returned with zero evaluations) and updated with every fresh
     *  search result. Not owned. */
    TunedConfigDb *db = nullptr;
};

/** The tuner's verdict for one layer. */
struct LayerTuneChoice
{
    std::string layerName;
    std::string geometry; ///< canonical ConvParams::toString()
    Index groups = 1;
    Index count = 1;      ///< repetitions in the source model
    std::string variant;  ///< winning registered variant
    double tunedSeconds = 0.0;    ///< winner, one instance
    double baselineSeconds = 0.0; ///< baseline, one instance
    /** Fresh candidate simulations this choice cost (0 on a DB hit or
     *  when every candidate was already memoized in-process). */
    Index evaluations = 0;
    bool fromDb = false; ///< answered from the TunedConfigDb

    double speedup() const
    {
        return tunedSeconds > 0.0 ? baselineSeconds / tunedSeconds
                                  : 0.0;
    }
};

/** Aggregate verdict for one model. */
struct ModelTuneResult
{
    std::string model;
    std::string baseline;
    SearchMode mode = SearchMode::Exhaustive;
    std::vector<LayerTuneChoice> layers;
    double baselineSeconds = 0.0; ///< sum incl. layer repetitions
    double tunedSeconds = 0.0;    ///< sum incl. layer repetitions
    Index evaluations = 0;        ///< fresh simulations across layers
    Index dbHits = 0;             ///< layers answered from the DB

    double speedup() const
    {
        return tunedSeconds > 0.0 ? baselineSeconds / tunedSeconds
                                  : 0.0;
    }
};

/**
 * The searcher. Construction (via create) resolves every grid point
 * against the registry once and instantiates the accelerators, so the
 * per-layer search loop is allocation-light and any zoo mismatch is a
 * construction-time Status, not a mid-search fatal.
 */
class Autotuner
{
  public:
    /** Validate @p space against @p registry (every grid point must
     *  name a registered variant of the space's family) and build the
     *  candidate accelerators. */
    static StatusOr<std::unique_ptr<Autotuner>>
    create(KnobSpace space,
           const VariantRegistry &registry = VariantRegistry::instance());

    const KnobSpace &space() const { return space_; }

    /** Tune one layer. INVALID_ARGUMENT for a bad baseline or layer
     *  geometry; otherwise always yields a choice (worst case the
     *  baseline itself). */
    StatusOr<LayerTuneChoice>
    tuneLayer(const models::ConvLayerSpec &layer,
              const TuneOptions &options);

    /** Tune every layer of @p model and aggregate. */
    StatusOr<ModelTuneResult> tuneModel(const models::ModelSpec &model,
                                        const TuneOptions &options);

    /** Snapshot of the process-wide tune-cache counters. */
    static StatGroup cacheStats();

  private:
    explicit Autotuner(KnobSpace space);

    /** Memoized candidate evaluation: seconds of one instance of
     *  (params, groups) on grid point @p flat. Thread-safe; bumps
     *  @p evaluations on a fresh simulation. Candidates whose
     *  algorithm rejects the layer score +infinity without being
     *  simulated, counted, or cached. */
    double evaluate(size_t flat, const tensor::ConvParams &params,
                    Index groups,
                    std::atomic<Index> &evaluations) const;

    size_t searchExhaustive(const tensor::ConvParams &params,
                            Index groups,
                            std::atomic<Index> &evaluations) const;
    size_t searchGreedy(size_t start, const tensor::ConvParams &params,
                        Index groups,
                        std::atomic<Index> &evaluations) const;

    KnobSpace space_;
    std::vector<std::unique_ptr<sim::Accelerator>> candidates_;
};

} // namespace cfconv::tune

#endif // CFCONV_TUNE_AUTOTUNER_H
