#include "tune/tuned_db.h"

#include <cstdio>
#include <utility>

#include "common/atomic_file.h"
#include "common/json.h"
#include "common/metrics.h"
#include "common/report.h"
#include "conv/algorithm.h"

namespace cfconv::tune {

std::string
TunedConfigDb::key(const std::string &family,
                   const std::string &algorithm,
                   const std::string &geometry, Index groups)
{
    return family + "|" + algorithm + "|" + geometry + "|g"
        + std::to_string(groups);
}

void
TunedConfigDb::upsert(TunedEntry entry)
{
    std::string k = key(entry.family, entry.algorithm, entry.geometry,
                        entry.groups);
    entries_[std::move(k)] = std::move(entry);
}

const TunedEntry *
TunedConfigDb::find(const std::string &family,
                    const std::string &algorithm,
                    const std::string &geometry, Index groups) const
{
    auto it = entries_.find(key(family, algorithm, geometry, groups));
    return it == entries_.end() ? nullptr : &it->second;
}

std::vector<TunedEntry>
TunedConfigDb::entries() const
{
    std::vector<TunedEntry> out;
    out.reserve(entries_.size());
    for (const auto &[k, entry] : entries_)
        out.push_back(entry);
    return out;
}

std::string
TunedConfigDb::toJson() const
{
    JsonWriter w;
    w.beginObject();
    w.field("schema", kSchemaName);
    w.field("version", kSchemaVersion);
    w.key("entries");
    w.beginArray();
    for (const auto &[k, e] : entries_) {
        w.beginObject();
        w.field("family", e.family);
        w.field("algorithm", e.algorithm);
        w.field("geometry", e.geometry);
        w.field("groups", static_cast<long long>(e.groups));
        w.field("variant", e.variant);
        w.field("baseline", e.baseline);
        w.field("tuned_seconds", e.tunedSeconds);
        w.field("baseline_seconds", e.baselineSeconds);
        w.field("evaluations", static_cast<long long>(e.evaluations));
        w.field("mode", e.mode);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

bool
TunedConfigDb::saveFile(const std::string &path) const
{
    return atomicWriteFileChecksummed(path, toJson() + "\n");
}

namespace {

/** Per-entry validity: the reason the entry is stale/invalid, or
 *  nullptr when it can be trusted against the live registry. */
const char *
entryProblem(const TunedEntry &e, const VariantRegistry &registry)
{
    if (e.family != "tpu" && e.family != "gpu")
        return "unknown backend family";
    if (conv::findAlgorithm(e.algorithm) == nullptr)
        return "unknown algorithm";
    if (e.geometry.empty())
        return "empty geometry";
    if (e.groups < 1)
        return "non-positive groups";
    if (!registry.contains(e.variant))
        return "variant not in the live registry";
    if (!registry.contains(e.baseline))
        return "baseline not in the live registry";
    if (!(e.tunedSeconds > 0.0) || !(e.baselineSeconds > 0.0))
        return "non-positive seconds";
    return nullptr;
}

} // namespace

StatusOr<DbLoadStats>
TunedConfigDb::loadFile(const std::string &path,
                        const VariantRegistry &registry)
{
    CFCONV_ASSIGN_OR_RETURN(std::string text, readFileVerified(path));
    CFCONV_ASSIGN_OR_RETURN(JsonValue doc, parseJson(text));
    if (!doc.isObject())
        return invalidArgumentError(
            "tuned db '%s': document is not an object", path.c_str());
    const std::string schema = doc.stringOr("schema", "");
    if (schema != kSchemaName)
        return invalidArgumentError(
            "tuned db '%s': schema '%s', expected '%s'", path.c_str(),
            schema.c_str(), kSchemaName);
    const long long version =
        static_cast<long long>(doc.numberOr("version", 0));
    if (version != kSchemaVersion)
        return invalidArgumentError(
            "tuned db '%s': schema version %lld, expected %lld",
            path.c_str(), version, kSchemaVersion);
    const JsonValue *entries = doc.get("entries");
    if (entries == nullptr || !entries->isArray())
        return invalidArgumentError(
            "tuned db '%s': missing 'entries' array", path.c_str());

    DbLoadStats stats;
    for (const JsonValue &item : entries->items()) {
        if (!item.isObject()) {
            ++stats.rejected;
            std::fprintf(stderr,
                         "# tuned db %s: skipping non-object entry\n",
                         path.c_str());
            continue;
        }
        TunedEntry e;
        e.family = item.stringOr("family", "");
        e.algorithm = item.stringOr("algorithm", "");
        e.geometry = item.stringOr("geometry", "");
        e.groups = static_cast<Index>(item.numberOr("groups", 1));
        e.variant = item.stringOr("variant", "");
        e.baseline = item.stringOr("baseline", "");
        e.tunedSeconds = item.numberOr("tuned_seconds", 0.0);
        e.baselineSeconds = item.numberOr("baseline_seconds", 0.0);
        e.evaluations =
            static_cast<Index>(item.numberOr("evaluations", 0));
        e.mode = item.stringOr("mode", "");
        if (const char *problem = entryProblem(e, registry)) {
            ++stats.rejected;
            std::fprintf(
                stderr,
                "# tuned db %s: rejecting entry '%s' (%s): %s\n",
                path.c_str(), e.geometry.c_str(), e.variant.c_str(),
                problem);
            continue;
        }
        upsert(std::move(e));
        ++stats.loaded;
    }
    return stats;
}

DbLoadStats
TunedConfigDb::loadOrRecover(const std::string &path,
                             const VariantRegistry &registry)
{
    auto loaded = loadFile(path, registry);
    if (loaded.ok())
        return *loaded;
    DbLoadStats stats;
    if (loaded.status().code() == StatusCode::kNotFound) {
        stats.fresh = true;
        return stats;
    }
    // Torn or structurally invalid: discard the file so the next save
    // starts clean, and surface the recovery in the metrics.
    std::fprintf(stderr, "# tuned db %s: %s — discarding and rebuilding\n",
                 path.c_str(), loaded.status().message().c_str());
    std::remove(path.c_str());
    MetricsRegistry::instance().add("persist.recovered", 1.0);
    stats.recovered = true;
    return stats;
}

} // namespace cfconv::tune
