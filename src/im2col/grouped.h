/**
 * @file
 * Grouped and depthwise convolution via the channel-first algorithm.
 * A grouped convolution is G independent convolutions over channel
 * slices; each slice reuses the whole existing machinery. Depthwise
 * convolution (G = C_I) is the stress case for the paper's design:
 * each decomposed 1x1 "conv" occupies a single systolic row, which the
 * multi-tile optimization can only partially recover — an honest
 * limitation this module characterizes.
 */

#ifndef CFCONV_IM2COL_GROUPED_H
#define CFCONV_IM2COL_GROUPED_H

#include "im2col/implicit_conv.h"
#include "tensor/conv_params.h"
#include "tensor/tensor.h"

namespace cfconv::im2col {

/** Geometry of one grouped convolution. */
struct GroupedConvParams
{
    ConvParams base; ///< full-layer geometry (C_I, C_O of all groups)
    Index groups = 1;

    /** Per-group geometry: C_I/G in, C_O/G out. */
    ConvParams groupParams() const;

    /** Validate divisibility and the underlying geometry. */
    void validate() const;

    /** Total MAC FLOPs: 2 * M * (K/G) * N. */
    Flops flops() const;
};

/** Direct grouped convolution reference. */
tensor::Tensor convGroupedDirect(const GroupedConvParams &params,
                                 const tensor::Tensor &input,
                                 const tensor::Tensor &filter);

/**
 * Grouped convolution via the channel-first implicit engine, one group
 * slice at a time. @p filter has dims (C_O, C_I/G, H_F, W_F).
 */
tensor::Tensor convGroupedImplicit(const GroupedConvParams &params,
                                   const tensor::Tensor &input,
                                   const tensor::Tensor &filter,
                                   const ImplicitConvOptions &options =
                                       {});

/**
 * Systolic-row occupancy of one grouped pass under the TPU strategy:
 * min(1, T * (C_I/G) / rows). Depthwise layers expose the
 * under-utilization the multi-tile optimization fights.
 */
double groupedRowOccupancy(const GroupedConvParams &params,
                           Index array_rows);

} // namespace cfconv::im2col

#endif // CFCONV_IM2COL_GROUPED_H
