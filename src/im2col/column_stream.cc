#include "im2col/column_stream.h"

#include "common/logging.h"
#include "tensor/im2col_explicit.h"

namespace cfconv::im2col {

ColumnStream::ColumnStream(const tensor::ConvParams &params)
    : params_(params)
{
    params_.validate();
}

Index
ColumnStream::length() const
{
    return params_.gemmM() * params_.kernelH * params_.kernelW;
}

ColumnRef
ColumnStream::at(Index t) const
{
    CFCONV_FATAL_IF(t < 0 || t >= length(),
                    "ColumnStream: cycle %lld out of range",
                    static_cast<long long>(t));
    const Index taps = params_.kernelH * params_.kernelW;
    ColumnRef ref;
    ref.m = t / taps;
    const Index tap = t % taps;
    ref.r = tap / params_.kernelW;
    ref.s = tap % params_.kernelW;
    const tensor::RowCoord rc = tensor::rowCoord(params_, ref.m);
    ref.ih = rc.oh * params_.strideH - params_.padH +
             ref.r * params_.dilationH;
    ref.iw = rc.ow * params_.strideW - params_.padW +
             ref.s * params_.dilationW;
    ref.padding = ref.ih < 0 || ref.ih >= params_.inH || ref.iw < 0 ||
                  ref.iw >= params_.inW;
    return ref;
}

Index
ColumnStream::readCount(Index ih, Index iw) const
{
    CFCONV_FATAL_IF(ih < 0 || ih >= params_.inH || iw < 0 ||
                    iw >= params_.inW,
                    "ColumnStream: pixel out of range");
    Index count = 0;
    for (Index r = 0; r < params_.kernelH; ++r) {
        const Index num = ih + params_.padH - r * params_.dilationH;
        if (num < 0 || num % params_.strideH != 0)
            continue;
        const Index oh = num / params_.strideH;
        if (oh >= params_.outH())
            continue;
        for (Index s = 0; s < params_.kernelW; ++s) {
            const Index numw =
                iw + params_.padW - s * params_.dilationW;
            if (numw < 0 || numw % params_.strideW != 0)
                continue;
            const Index ow = numw / params_.strideW;
            if (ow >= params_.outW())
                continue;
            ++count;
        }
    }
    return count * params_.batch;
}

} // namespace cfconv::im2col
