#include "im2col/lowered_view.h"

namespace cfconv::im2col {

InputCoord
LoweredView::coordAt(Index m, Index k) const
{
    const RowCoord rc = tensor::rowCoord(params_, m);
    const ColCoord cc = tensor::colCoord(params_, order_, k);
    InputCoord ic;
    ic.n = rc.n;
    ic.ci = cc.ci;
    ic.ih = rc.oh * params_.strideH - params_.padH +
            cc.r * params_.dilationH;
    ic.iw = rc.ow * params_.strideW - params_.padW +
            cc.s * params_.dilationW;
    return ic;
}

Matrix
LoweredView::materialize(const Tensor &input) const
{
    Matrix out(rows(), cols());
    for (Index m = 0; m < rows(); ++m)
        for (Index k = 0; k < cols(); ++k)
            out.at(m, k) = valueAt(input, m, k);
    return out;
}

double
LoweredView::duplicationFactor() const
{
    // Count non-padding lowered cells, then divide by the number of input
    // elements. Count per (oh, r) x (ow, s) validity independently; the
    // batch and channel dimensions scale both numerator and denominator.
    Index valid = 0;
    for (Index oh = 0; oh < params_.outH(); ++oh) {
        for (Index r = 0; r < params_.kernelH; ++r) {
            const Index ih = oh * params_.strideH - params_.padH +
                             r * params_.dilationH;
            if (ih < 0 || ih >= params_.inH)
                continue;
            for (Index ow = 0; ow < params_.outW(); ++ow) {
                for (Index s = 0; s < params_.kernelW; ++s) {
                    const Index iw = ow * params_.strideW - params_.padW +
                                     s * params_.dilationW;
                    if (iw >= 0 && iw < params_.inW)
                        ++valid;
                }
            }
        }
    }
    return static_cast<double>(valid) /
           static_cast<double>(params_.inH * params_.inW);
}

Index
LoweredView::permuteColumnTo(ColumnOrder target, Index k) const
{
    const ColCoord cc = tensor::colCoord(params_, order_, k);
    return tensor::colIndex(params_, target, cc.r, cc.s, cc.ci);
}

} // namespace cfconv::im2col
