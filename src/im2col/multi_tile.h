/**
 * @file
 * Multi-tile computation (Sec. IV-B): merge several decomposed 1x1-conv
 * tiles into one weight-stationary load so small input-channel counts do
 * not leave systolic-array rows idle. Correct by GEMM associativity; costs
 * IFMap duplication in vector memory.
 */

#ifndef CFCONV_IM2COL_MULTI_TILE_H
#define CFCONV_IM2COL_MULTI_TILE_H

#include <vector>

#include "im2col/filter_decomp.h"

namespace cfconv::im2col {

/** A group of decomposed tiles computed in one weight-stationary pass. */
struct TileGroup
{
    std::vector<FilterTile> tiles;

    /** Merged GEMM depth: |tiles| * C_I. */
    Index
    mergedK(const ConvParams &params) const
    {
        return static_cast<Index>(tiles.size()) * params.inChannels;
    }
};

/** A full multi-tile execution plan for one convolution layer. */
struct MultiTilePlan
{
    Index tilesPerGroup = 1; ///< the multi-tile parameter T
    std::vector<TileGroup> groups;

    /**
     * On-chip IFMap duplication factor: how many copies of each input
     * element the vector memories hold, averaged over groups (Fig 14a's
     * workspace growth).
     */
    double duplicationFactor(const ConvParams &params) const;

    /**
     * Total vector-memory IFMap workspace in elements for the largest
     * group (each tile in a group stores its own operand copy).
     */
    Index peakWorkspaceElems(const ConvParams &params) const;
};

/**
 * The multi-tile parameter the paper infers the TPU uses:
 * T = MIN(array_rows / C_I, W_F), floored at 1 (Sec. VII-A, Fig 14b).
 */
Index tpuMultiTileParam(Index array_rows, const ConvParams &params);

/**
 * Build a plan grouping the row-major decomposed-tile sequence into
 * consecutive groups of (at most) @p tiles_per_group.
 */
MultiTilePlan planMultiTile(const ConvParams &params,
                            Index tiles_per_group);

/**
 * Build the merged lowered operand for @p group: an M x (T*C_I) matrix
 * whose column blocks are the per-tile operands, side by side.
 */
Matrix groupOperand(const ConvParams &params, const Tensor &input,
                    const TileGroup &group);

/** Build the merged (T*C_I) x C_O weight matrix for @p group. */
Matrix groupWeights(const ConvParams &params, const Tensor &filter,
                    const TileGroup &group);

} // namespace cfconv::im2col

#endif // CFCONV_IM2COL_MULTI_TILE_H
