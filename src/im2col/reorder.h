/**
 * @file
 * Inter-tile reuse (Sec. V): reorder the decomposed-filter execution
 * sequence so consecutive tiles share on-chip IFMap data, cutting DRAM
 * refill traffic for memory-bound layers (Fig 18b).
 */

#ifndef CFCONV_IM2COL_REORDER_H
#define CFCONV_IM2COL_REORDER_H

#include <vector>

#include "im2col/filter_decomp.h"

namespace cfconv::im2col {

/** Tile execution-order policies. */
enum class TileOrder {
    Naive,        ///< row-major <r, s> order as tiles appear on the filter
    ReuseGreedy,  ///< greedy chain maximizing consecutive-tile overlap
};

/** @return printable name of @p order. */
constexpr const char *
tileOrderName(TileOrder order)
{
    return order == TileOrder::Naive ? "naive" : "reuse-greedy";
}

/** Produce the tile sequence for @p policy. */
std::vector<FilterTile> orderTiles(const ConvParams &params,
                                   TileOrder policy);

/**
 * Average footprint overlap between consecutive tiles of @p sequence in
 * [0, 1]; higher means more on-chip data survives between tile fills.
 */
double sequenceReuseFraction(const ConvParams &params,
                             const std::vector<FilterTile> &sequence);

/**
 * DRAM elements that must be (re)loaded to execute @p sequence assuming
 * the on-chip buffer retains exactly the previous tile's footprint: the
 * first tile loads its full footprint, each later tile loads only the
 * non-overlapping part.
 */
Index sequenceFillElems(const ConvParams &params,
                        const std::vector<FilterTile> &sequence);

} // namespace cfconv::im2col

#endif // CFCONV_IM2COL_REORDER_H
