#include "im2col/grouped.h"

#include <algorithm>

#include "common/logging.h"
#include "im2col/multi_tile.h"
#include "tensor/conv_ref.h"

namespace cfconv::im2col {

ConvParams
GroupedConvParams::groupParams() const
{
    ConvParams p = base;
    p.inChannels = base.inChannels / groups;
    p.outChannels = base.outChannels / groups;
    return p;
}

void
GroupedConvParams::validate() const
{
    base.validate();
    CFCONV_FATAL_IF(groups < 1, "grouped conv: groups must be >= 1");
    CFCONV_FATAL_IF(base.inChannels % groups != 0 ||
                    base.outChannels % groups != 0,
                    "grouped conv: channels (%lld in, %lld out) not "
                    "divisible by %lld groups",
                    static_cast<long long>(base.inChannels),
                    static_cast<long long>(base.outChannels),
                    static_cast<long long>(groups));
    groupParams().validate();
}

Flops
GroupedConvParams::flops() const
{
    return base.flops() / static_cast<Flops>(groups);
}

namespace {

/** Copy channel slice [c0, c0+len) of @p src into a fresh tensor. */
tensor::Tensor
sliceChannels(const tensor::Tensor &src, Index c0, Index len)
{
    tensor::Tensor out(src.n(), len, src.h(), src.w());
    for (Index n = 0; n < src.n(); ++n)
        for (Index c = 0; c < len; ++c)
            for (Index h = 0; h < src.h(); ++h)
                for (Index w = 0; w < src.w(); ++w)
                    out.at(n, c, h, w) = src.at(n, c0 + c, h, w);
    return out;
}

/** Copy filter slice for output channels [co0, co0+len). */
tensor::Tensor
sliceFilters(const tensor::Tensor &filter, Index co0, Index len)
{
    tensor::Tensor out(len, filter.c(), filter.h(), filter.w());
    for (Index co = 0; co < len; ++co)
        for (Index ci = 0; ci < filter.c(); ++ci)
            for (Index h = 0; h < filter.h(); ++h)
                for (Index w = 0; w < filter.w(); ++w)
                    out.at(co, ci, h, w) = filter.at(co0 + co, ci, h, w);
    return out;
}

void
checkFilter(const GroupedConvParams &params,
            const tensor::Tensor &filter)
{
    const ConvParams g = params.groupParams();
    CFCONV_FATAL_IF(filter.n() != params.base.outChannels ||
                    filter.c() != g.inChannels ||
                    filter.h() != params.base.kernelH ||
                    filter.w() != params.base.kernelW,
                    "grouped conv: filter dims must be (C_O, C_I/G, "
                    "H_F, W_F)");
}

template <typename GroupConv>
tensor::Tensor
runGroups(const GroupedConvParams &params, const tensor::Tensor &input,
          const tensor::Tensor &filter, GroupConv &&group_conv)
{
    params.validate();
    checkFilter(params, filter);
    const ConvParams g = params.groupParams();

    tensor::Tensor out(params.base.batch, params.base.outChannels,
                       params.base.outH(), params.base.outW());
    for (Index grp = 0; grp < params.groups; ++grp) {
        const tensor::Tensor in_slice =
            sliceChannels(input, grp * g.inChannels, g.inChannels);
        const tensor::Tensor f_slice =
            sliceFilters(filter, grp * g.outChannels, g.outChannels);
        const tensor::Tensor sub = group_conv(g, in_slice, f_slice);
        for (Index n = 0; n < sub.n(); ++n)
            for (Index c = 0; c < sub.c(); ++c)
                for (Index h = 0; h < sub.h(); ++h)
                    for (Index w = 0; w < sub.w(); ++w)
                        out.at(n, grp * g.outChannels + c, h, w) =
                            sub.at(n, c, h, w);
    }
    return out;
}

} // namespace

tensor::Tensor
convGroupedDirect(const GroupedConvParams &params,
                  const tensor::Tensor &input,
                  const tensor::Tensor &filter)
{
    return runGroups(params, input, filter,
                     [](const ConvParams &g, const tensor::Tensor &in,
                        const tensor::Tensor &f) {
                         return tensor::convDirect(g, in, f);
                     });
}

tensor::Tensor
convGroupedImplicit(const GroupedConvParams &params,
                    const tensor::Tensor &input,
                    const tensor::Tensor &filter,
                    const ImplicitConvOptions &options)
{
    return runGroups(params, input, filter,
                     [&options](const ConvParams &g,
                                const tensor::Tensor &in,
                                const tensor::Tensor &f) {
                         return convImplicit(g, in, f, options);
                     });
}

double
groupedRowOccupancy(const GroupedConvParams &params, Index array_rows)
{
    params.validate();
    const ConvParams g = params.groupParams();
    const Index t = tpuMultiTileParam(array_rows, g);
    return std::min(1.0, static_cast<double>(t * g.inChannels) /
                             static_cast<double>(array_rows));
}

} // namespace cfconv::im2col
