#include "im2col/filter_decomp.h"

#include <algorithm>

#include "common/logging.h"
#include "common/parallel.h"
#include "tensor/im2col_explicit.h"

namespace cfconv::im2col {

bool
TileFootprint::contains(Index ih, Index iw) const
{
    if (ih < ihBegin || ih >= ihEnd || iw < iwBegin || iw >= iwEnd)
        return false;
    return (ih - ihBegin) % ihStep == 0 && (iw - iwBegin) % iwStep == 0;
}

std::vector<FilterTile>
decomposeFilter(const ConvParams &params)
{
    params.validate();
    std::vector<FilterTile> tiles;
    tiles.reserve(static_cast<size_t>(params.kernelH * params.kernelW));
    for (Index r = 0; r < params.kernelH; ++r)
        for (Index s = 0; s < params.kernelW; ++s)
            tiles.push_back({r, s});
    return tiles;
}

TileFootprint
tileFootprint(const ConvParams &params, const FilterTile &tile)
{
    CFCONV_FATAL_IF(tile.r < 0 || tile.r >= params.kernelH ||
                    tile.s < 0 || tile.s >= params.kernelW,
                    "tileFootprint: tile <%lld,%lld> outside filter",
                    static_cast<long long>(tile.r),
                    static_cast<long long>(tile.s));

    // Input coordinate for output (oh, ow):
    //   ih = oh * strideH - padH + r * dilationH.
    // Clip oh to the range where ih falls inside [0, inH), then convert
    // back to input coordinates.
    const Index off_h = tile.r * params.dilationH - params.padH;
    const Index off_w = tile.s * params.dilationW - params.padW;

    auto clip = [](Index off, Index stride, Index out_dim, Index in_dim,
                   Index &begin, Index &end) {
        // smallest o with o*stride + off >= 0
        Index o_lo = off >= 0 ? 0 : divCeil(-off, stride);
        // largest o with o*stride + off < in_dim
        Index o_hi = (in_dim - 1 - off) >= 0
                         ? std::min(out_dim - 1, (in_dim - 1 - off) / stride)
                         : -1;
        if (o_lo > o_hi) {
            begin = end = 0;
            return;
        }
        begin = o_lo * stride + off;
        end = o_hi * stride + off + 1;
    };

    TileFootprint fp;
    fp.ihStep = params.strideH;
    fp.iwStep = params.strideW;
    clip(off_h, params.strideH, params.outH(), params.inH, fp.ihBegin,
         fp.ihEnd);
    clip(off_w, params.strideW, params.outW(), params.inW, fp.iwBegin,
         fp.iwEnd);
    return fp;
}

Index
tileFillElems(const ConvParams &params, const FilterTile &tile)
{
    const TileFootprint fp = tileFootprint(params, tile);
    return fp.positions() * params.inChannels * params.batch;
}

double
tileOverlap(const ConvParams &params, const FilterTile &a,
            const FilterTile &b)
{
    const TileFootprint fa = tileFootprint(params, a);
    const TileFootprint fb = tileFootprint(params, b);
    const Index pa = fa.positions();
    const Index pb = fb.positions();
    if (pa == 0 || pb == 0)
        return 0.0;

    // Footprints are arithmetic lattices with the same steps; intersect
    // the begin offsets. They only intersect when the begins are congruent
    // modulo the step.
    auto axis_overlap = [](Index a_begin, Index a_end, Index b_begin,
                           Index b_end, Index step) -> Index {
        if ((a_begin - b_begin) % step != 0)
            return 0;
        const Index lo = std::max(a_begin, b_begin);
        const Index hi = std::min(a_end, b_end);
        return hi > lo ? (hi - lo - 1) / step + 1 : 0;
    };

    const Index rows = axis_overlap(fa.ihBegin, fa.ihEnd, fb.ihBegin,
                                    fb.ihEnd, fa.ihStep);
    const Index cols = axis_overlap(fa.iwBegin, fa.iwEnd, fb.iwBegin,
                                    fb.iwEnd, fa.iwStep);
    const Index common = rows * cols;
    return static_cast<double>(common) /
           static_cast<double>(std::min(pa, pb));
}

Index
inputUnionPositions(const ConvParams &params)
{
    std::vector<bool> h_used(static_cast<size_t>(params.inH), false);
    std::vector<bool> w_used(static_cast<size_t>(params.inW), false);
    for (Index r = 0; r < params.kernelH; ++r)
        for (Index oh = 0; oh < params.outH(); ++oh) {
            const Index ih = oh * params.strideH - params.padH +
                             r * params.dilationH;
            if (ih >= 0 && ih < params.inH)
                h_used[static_cast<size_t>(ih)] = true;
        }
    for (Index s = 0; s < params.kernelW; ++s)
        for (Index ow = 0; ow < params.outW(); ++ow) {
            const Index iw = ow * params.strideW - params.padW +
                             s * params.dilationW;
            if (iw >= 0 && iw < params.inW)
                w_used[static_cast<size_t>(iw)] = true;
        }
    const Index h_cnt = std::count(h_used.begin(), h_used.end(), true);
    const Index w_cnt = std::count(w_used.begin(), w_used.end(), true);
    return h_cnt * w_cnt;
}

Bytes
inputUnionBytes(const ConvParams &params)
{
    return static_cast<Bytes>(inputUnionPositions(params)) *
           static_cast<Bytes>(params.inChannels * params.batch) *
           dataTypeSize(params.dataType);
}

Matrix
tileOperand(const ConvParams &params, const Tensor &input,
            const FilterTile &tile)
{
    Matrix a(params.gemmM(), params.inChannels);
    // Row blocks are (batch, output-row) slices; writes are disjoint.
    // Rows go through a raw pointer: this operand build feeds the
    // micro-kernel GEMM directly, so per-element checked access was a
    // measurable fraction of each decomposed 1x1 conv.
    parallel::parallelFor(0, a.rows(), 64, [&](Index m0, Index m1) {
        for (Index m = m0; m < m1; ++m) {
            const tensor::RowCoord rc = tensor::rowCoord(params, m);
            const Index ih = rc.oh * params.strideH - params.padH +
                             tile.r * params.dilationH;
            const Index iw = rc.ow * params.strideW - params.padW +
                             tile.s * params.dilationW;
            float *row = a.data() + m * params.inChannels;
            for (Index ci = 0; ci < params.inChannels; ++ci)
                row[ci] = input.atPadded(rc.n, ci, ih, iw);
        }
    });
    return a;
}

Matrix
tileWeights(const ConvParams &params, const Tensor &filter,
            const FilterTile &tile)
{
    Matrix b(params.inChannels, params.outChannels);
    for (Index ci = 0; ci < params.inChannels; ++ci)
        for (Index co = 0; co < params.outChannels; ++co)
            b.at(ci, co) = filter.at(co, ci, tile.r, tile.s);
    return b;
}

} // namespace cfconv::im2col
