/**
 * @file
 * Virtual lowered-matrix view: the implicit counterpart of explicit
 * im2col. The lowered feature matrix never exists in memory; this view
 * computes any cell, and the DRAM/SRAM coordinates behind it, on demand.
 * This is the heart of "implicit" lowering (Sec. III-A).
 */

#ifndef CFCONV_IM2COL_LOWERED_VIEW_H
#define CFCONV_IM2COL_LOWERED_VIEW_H

#include <optional>

#include "tensor/conv_params.h"
#include "tensor/im2col_explicit.h"
#include "tensor/layout.h"
#include "tensor/tensor.h"

namespace cfconv::im2col {

using tensor::ColCoord;
using tensor::ColumnOrder;
using tensor::ConvParams;
using tensor::Matrix;
using tensor::RowCoord;
using tensor::Tensor;

/** Logical input coordinate referenced by one lowered-matrix cell. */
struct InputCoord
{
    Index n;  ///< batch index
    Index ci; ///< input channel
    Index ih; ///< input row; may be outside [0, H_I) in the pad region
    Index iw; ///< input col; may be outside [0, W_I) in the pad region

    /** @return true when the coordinate lies in the zero-padding halo. */
    bool
    isPadding(const ConvParams &p) const
    {
        return ih < 0 || ih >= p.inH || iw < 0 || iw >= p.inW;
    }
};

/**
 * A read-only view of the lowered feature matrix for a convolution, with
 * a selectable column order. Never materializes the matrix.
 */
class LoweredView
{
  public:
    LoweredView(const ConvParams &params, ColumnOrder order)
        : params_(params), order_(order)
    {
        params_.validate();
    }

    const ConvParams &params() const { return params_; }
    ColumnOrder order() const { return order_; }

    Index rows() const { return params_.gemmM(); }
    Index cols() const { return params_.gemmK(); }

    /** The input coordinate behind lowered cell (m, k). */
    InputCoord coordAt(Index m, Index k) const;

    /** The value of lowered cell (m, k), reading @p input with padding. */
    float
    valueAt(const Tensor &input, Index m, Index k) const
    {
        const InputCoord c = coordAt(m, k);
        return input.atPadded(c.n, c.ci, c.ih, c.iw);
    }

    /**
     * Materialize the view (tests / explicit baseline only). Identical to
     * tensor::im2colLower by construction.
     */
    Matrix materialize(const Tensor &input) const;

    /**
     * How many lowered cells reference each non-padding input element, on
     * average; this is the duplication factor of explicit im2col
     * (up to H_F * W_F, Table I).
     */
    double duplicationFactor() const;

    /**
     * Map a lowered column to the equivalent column under the other
     * column order (the permutation of Fig 6 that makes both orders
     * GEMM-equivalent).
     */
    Index permuteColumnTo(ColumnOrder target, Index k) const;

  private:
    ConvParams params_;
    ColumnOrder order_;
};

} // namespace cfconv::im2col

#endif // CFCONV_IM2COL_LOWERED_VIEW_H
