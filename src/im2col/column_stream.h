/**
 * @file
 * The SRAM column stream of the basic channel-first scheme (Sec.
 * III-A, Fig 5): sliding-window-major enumeration of the C_I-deep
 * columns fed to the GEMM engine, one column per cycle ("in the first
 * 9 cycles, columns 1A, 1B, 1C, 2A, ... are read out"). This is the
 * address-generation contract the TPU mapping implements; the
 * decomposed-tile schedule of Sec. III-B is a reordering of the same
 * stream.
 */

#ifndef CFCONV_IM2COL_COLUMN_STREAM_H
#define CFCONV_IM2COL_COLUMN_STREAM_H

#include "tensor/conv_params.h"
#include "tensor/tensor.h"

namespace cfconv::im2col {

/** One streamed column: which window, which tap, which input pixel. */
struct ColumnRef
{
    Index m;        ///< output position (lowered-matrix row)
    Index r, s;     ///< filter tap
    Index ih, iw;   ///< input pixel (may lie in the padding halo)
    bool padding;   ///< true when (ih, iw) is outside the input
};

/**
 * Window-major column stream: cycle t = m * (H_F * W_F) + (r * W_F + s)
 * reads the column at tap <r, s> of window m.
 */
class ColumnStream
{
  public:
    explicit ColumnStream(const tensor::ConvParams &params);

    /** Total columns = M * H_F * W_F (one GEMM cycle each). */
    Index length() const;

    /** The column streamed at cycle @p t. */
    ColumnRef at(Index t) const;

    /**
     * How many times the stream reads input pixel (@p ih, @p iw): its
     * receptive-field multiplicity (e.g. "all the 1C elements are read
     * three times" in Fig 5's walkthrough).
     */
    Index readCount(Index ih, Index iw) const;

    const tensor::ConvParams &params() const { return params_; }

  private:
    tensor::ConvParams params_;
};

} // namespace cfconv::im2col

#endif // CFCONV_IM2COL_COLUMN_STREAM_H
