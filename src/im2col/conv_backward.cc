#include "im2col/conv_backward.h"

#include "common/logging.h"
#include "tensor/gemm.h"
#include "tensor/im2col_explicit.h"

namespace cfconv::im2col {

namespace {

void
checkGradOut(const ConvParams &params, const tensor::Tensor &grad_out)
{
    CFCONV_FATAL_IF(grad_out.n() != params.batch ||
                    grad_out.c() != params.outChannels ||
                    grad_out.h() != params.outH() ||
                    grad_out.w() != params.outW(),
                    "conv backward: grad_out dims do not match params "
                    "(%s)", params.toString().c_str());
}

} // namespace

tensor::Tensor
convBackwardDataDirect(const ConvParams &params,
                       const tensor::Tensor &grad_out,
                       const tensor::Tensor &filter)
{
    params.validate();
    checkGradOut(params, grad_out);
    tensor::Tensor grad_in(params.batch, params.inChannels, params.inH,
                           params.inW);
    for (Index n = 0; n < params.batch; ++n) {
        for (Index co = 0; co < params.outChannels; ++co) {
            for (Index oh = 0; oh < params.outH(); ++oh) {
                for (Index ow = 0; ow < params.outW(); ++ow) {
                    const float g = grad_out.at(n, co, oh, ow);
                    for (Index ci = 0; ci < params.inChannels; ++ci) {
                        for (Index r = 0; r < params.kernelH; ++r) {
                            const Index ih = oh * params.strideH -
                                params.padH + r * params.dilationH;
                            if (ih < 0 || ih >= params.inH)
                                continue;
                            for (Index s = 0; s < params.kernelW; ++s) {
                                const Index iw = ow * params.strideW -
                                    params.padW + s * params.dilationW;
                                if (iw < 0 || iw >= params.inW)
                                    continue;
                                grad_in.at(n, ci, ih, iw) +=
                                    g * filter.at(co, ci, r, s);
                            }
                        }
                    }
                }
            }
        }
    }
    return grad_in;
}

tensor::Tensor
convBackwardFilterDirect(const ConvParams &params,
                         const tensor::Tensor &input,
                         const tensor::Tensor &grad_out)
{
    params.validate();
    checkGradOut(params, grad_out);
    tensor::Tensor grad_w(params.outChannels, params.inChannels,
                          params.kernelH, params.kernelW);
    for (Index co = 0; co < params.outChannels; ++co) {
        for (Index ci = 0; ci < params.inChannels; ++ci) {
            for (Index r = 0; r < params.kernelH; ++r) {
                for (Index s = 0; s < params.kernelW; ++s) {
                    float acc = 0.0f;
                    for (Index n = 0; n < params.batch; ++n) {
                        for (Index oh = 0; oh < params.outH(); ++oh) {
                            const Index ih = oh * params.strideH -
                                params.padH + r * params.dilationH;
                            for (Index ow = 0; ow < params.outW();
                                 ++ow) {
                                const Index iw = ow * params.strideW -
                                    params.padW + s * params.dilationW;
                                acc += input.atPadded(n, ci, ih, iw) *
                                       grad_out.at(n, co, oh, ow);
                            }
                        }
                    }
                    grad_w.at(co, ci, r, s) = acc;
                }
            }
        }
    }
    return grad_w;
}

tensor::Tensor
convBackwardDataImplicit(const ConvParams &params,
                         const tensor::Tensor &grad_out,
                         const tensor::Tensor &filter)
{
    params.validate();
    checkGradOut(params, grad_out);

    // Flatten dY to the (M x C_O) GEMM operand once.
    tensor::Matrix dy(params.gemmM(), params.gemmN());
    for (Index m = 0; m < dy.rows(); ++m) {
        const tensor::RowCoord rc = tensor::rowCoord(params, m);
        for (Index co = 0; co < params.outChannels; ++co)
            dy.at(m, co) = grad_out.at(rc.n, co, rc.oh, rc.ow);
    }

    tensor::Tensor grad_in(params.batch, params.inChannels, params.inH,
                           params.inW);
    for (const FilterTile &tile : decomposeFilter(params)) {
        // W[r,s]^T: C_O x C_I.
        tensor::Matrix wt(params.outChannels, params.inChannels);
        for (Index co = 0; co < params.outChannels; ++co)
            for (Index ci = 0; ci < params.inChannels; ++ci)
                wt.at(co, ci) = filter.at(co, ci, tile.r, tile.s);

        tensor::Matrix dx_tile(params.gemmM(), params.inChannels);
        tensor::gemm(dy, wt, dx_tile);

        // Scatter: the row m of this tile's operand came from input
        // position (oh*s - p + r*d, ow*s - p + s_f*d); gradients flow
        // back to exactly that element (padding rows fall off).
        for (Index m = 0; m < dx_tile.rows(); ++m) {
            const tensor::RowCoord rc = tensor::rowCoord(params, m);
            const Index ih = rc.oh * params.strideH - params.padH +
                             tile.r * params.dilationH;
            const Index iw = rc.ow * params.strideW - params.padW +
                             tile.s * params.dilationW;
            if (ih < 0 || ih >= params.inH || iw < 0 ||
                iw >= params.inW)
                continue;
            for (Index ci = 0; ci < params.inChannels; ++ci)
                grad_in.at(rc.n, ci, ih, iw) += dx_tile.at(m, ci);
        }
    }
    return grad_in;
}

tensor::Tensor
convBackwardFilterImplicit(const ConvParams &params,
                           const tensor::Tensor &input,
                           const tensor::Tensor &grad_out)
{
    params.validate();
    checkGradOut(params, grad_out);

    tensor::Matrix dy(params.gemmM(), params.gemmN());
    for (Index m = 0; m < dy.rows(); ++m) {
        const tensor::RowCoord rc = tensor::rowCoord(params, m);
        for (Index co = 0; co < params.outChannels; ++co)
            dy.at(m, co) = grad_out.at(rc.n, co, rc.oh, rc.ow);
    }

    tensor::Tensor grad_w(params.outChannels, params.inChannels,
                          params.kernelH, params.kernelW);
    for (const FilterTile &tile : decomposeFilter(params)) {
        const tensor::Matrix a = tileOperand(params, input, tile);
        // dW[r,s] = A^T * dY: (C_I x M) * (M x C_O).
        tensor::Matrix dw(params.inChannels, params.outChannels);
        for (Index ci = 0; ci < params.inChannels; ++ci)
            for (Index m = 0; m < a.rows(); ++m) {
                const float av = a.at(m, ci);
                if (av == 0.0f)
                    continue;
                for (Index co = 0; co < params.outChannels; ++co)
                    dw.at(ci, co) += av * dy.at(m, co);
            }
        for (Index co = 0; co < params.outChannels; ++co)
            for (Index ci = 0; ci < params.inChannels; ++ci)
                grad_w.at(co, ci, tile.r, tile.s) = dw.at(ci, co);
    }
    return grad_w;
}

} // namespace cfconv::im2col
