#include "im2col/sparse.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "tensor/gemm.h"
#include "tensor/im2col_explicit.h"

namespace cfconv::im2col {

tensor::Tensor
pruneFilter(const tensor::Tensor &filter, float threshold)
{
    CFCONV_FATAL_IF(threshold < 0.0f,
                    "pruneFilter: negative threshold");
    tensor::Tensor out = filter;
    for (Index i = 0; i < out.size(); ++i)
        if (std::abs(out.data()[i]) < threshold)
            out.data()[i] = 0.0f;
    return out;
}

tensor::Tensor
pruneFilterTiles(const ConvParams &params, const tensor::Tensor &filter,
                 double fraction)
{
    CFCONV_FATAL_IF(fraction < 0.0 || fraction > 1.0,
                    "pruneFilterTiles: fraction must be in [0, 1]");
    const auto tiles = decomposeFilter(params);
    std::vector<std::pair<double, size_t>> mass;
    mass.reserve(tiles.size());
    for (size_t i = 0; i < tiles.size(); ++i) {
        double l1 = 0.0;
        for (Index co = 0; co < params.outChannels; ++co)
            for (Index ci = 0; ci < params.inChannels; ++ci)
                l1 += std::abs(filter.at(co, ci, tiles[i].r,
                                         tiles[i].s));
        mass.push_back({l1, i});
    }
    std::sort(mass.begin(), mass.end());

    const size_t to_prune = static_cast<size_t>(
        fraction * static_cast<double>(tiles.size()) + 0.5);
    tensor::Tensor out = filter;
    for (size_t i = 0; i < to_prune && i < mass.size(); ++i) {
        const FilterTile &t = tiles[mass[i].second];
        for (Index co = 0; co < params.outChannels; ++co)
            for (Index ci = 0; ci < params.inChannels; ++ci)
                out.at(co, ci, t.r, t.s) = 0.0f;
    }
    return out;
}

SparsityReport
analyzeSparsity(const ConvParams &params, const tensor::Tensor &filter,
                float zero_threshold)
{
    params.validate();
    SparsityReport report;
    Index total_nonzeros = 0;
    for (const auto &tile : decomposeFilter(params)) {
        TileSparsity ts;
        ts.tile = tile;
        for (Index co = 0; co < params.outChannels; ++co)
            for (Index ci = 0; ci < params.inChannels; ++ci)
                if (std::abs(filter.at(co, ci, tile.r, tile.s)) >
                    zero_threshold)
                    ++ts.nonzeros;
        ts.density =
            static_cast<double>(ts.nonzeros) /
            static_cast<double>(params.inChannels * params.outChannels);
        if (ts.nonzeros == 0)
            ++report.skippableTiles;
        total_nonzeros += ts.nonzeros;
        report.tiles.push_back(ts);
    }
    report.overallDensity =
        static_cast<double>(total_nonzeros) /
        static_cast<double>(params.filterElems());
    return report;
}

tensor::Tensor
convImplicitSparse(const ConvParams &params, const tensor::Tensor &input,
                   const tensor::Tensor &filter, Index *skipped)
{
    params.validate();
    const SparsityReport report = analyzeSparsity(params, filter);

    tensor::Matrix acc(params.gemmM(), params.gemmN());
    acc.fill(0.0f);
    Index skipped_local = 0;
    for (const auto &ts : report.tiles) {
        if (ts.nonzeros == 0) {
            ++skipped_local; // neither fill nor GEMM happens
            continue;
        }
        const tensor::Matrix a = tileOperand(params, input, ts.tile);
        const tensor::Matrix b = tileWeights(params, filter, ts.tile);
        tensor::gemmAccumulate(a, b, acc);
    }
    if (skipped)
        *skipped = skipped_local;
    return tensor::foldOutput(params, acc);
}

} // namespace cfconv::im2col
