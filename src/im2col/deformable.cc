#include "im2col/deformable.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "tensor/gemm.h"
#include "tensor/im2col_explicit.h"

namespace cfconv::im2col {

DeformableOffsets
DeformableOffsets::zeros(const ConvParams &params)
{
    const Index taps = params.kernelH * params.kernelW;
    return {tensor::Tensor(params.batch, taps, params.outH(),
                           params.outW()),
            tensor::Tensor(params.batch, taps, params.outH(),
                           params.outW())};
}

DeformableOffsets
DeformableOffsets::random(const ConvParams &params, std::uint64_t seed,
                          double scale)
{
    DeformableOffsets o = zeros(params);
    Rng rng(seed);
    for (Index i = 0; i < o.offsetY.size(); ++i) {
        o.offsetY.data()[i] =
            static_cast<float>(rng.uniform(-scale, scale));
        o.offsetX.data()[i] =
            static_cast<float>(rng.uniform(-scale, scale));
    }
    return o;
}

void
DeformableOffsets::validate(const ConvParams &params) const
{
    const Index taps = params.kernelH * params.kernelW;
    CFCONV_FATAL_IF(offsetY.n() != params.batch ||
                    offsetY.c() != taps ||
                    offsetY.h() != params.outH() ||
                    offsetY.w() != params.outW(),
                    "deformable: offsetY dims do not match params");
    CFCONV_FATAL_IF(!offsetX.sameDims(offsetY),
                    "deformable: offsetX/offsetY dims differ");
}

float
bilinearSample(const tensor::Tensor &input, Index n, Index ci, double y,
               double x)
{
    const double fy = std::floor(y);
    const double fx = std::floor(x);
    const Index y0 = static_cast<Index>(fy);
    const Index x0 = static_cast<Index>(fx);
    const float wy = static_cast<float>(y - fy);
    const float wx = static_cast<float>(x - fx);

    const float v00 = input.atPadded(n, ci, y0, x0);
    const float v01 = input.atPadded(n, ci, y0, x0 + 1);
    const float v10 = input.atPadded(n, ci, y0 + 1, x0);
    const float v11 = input.atPadded(n, ci, y0 + 1, x0 + 1);
    return v00 * (1 - wy) * (1 - wx) + v01 * (1 - wy) * wx +
           v10 * wy * (1 - wx) + v11 * wy * wx;
}

tensor::Tensor
convDeformableDirect(const ConvParams &params,
                     const tensor::Tensor &input,
                     const DeformableOffsets &offsets,
                     const tensor::Tensor &filter)
{
    params.validate();
    offsets.validate(params);
    tensor::Tensor out(params.batch, params.outChannels, params.outH(),
                       params.outW());
    for (Index n = 0; n < params.batch; ++n) {
        for (Index co = 0; co < params.outChannels; ++co) {
            for (Index oh = 0; oh < params.outH(); ++oh) {
                for (Index ow = 0; ow < params.outW(); ++ow) {
                    float acc = 0.0f;
                    for (Index r = 0; r < params.kernelH; ++r) {
                        for (Index s = 0; s < params.kernelW; ++s) {
                            const Index tap = r * params.kernelW + s;
                            const double y =
                                static_cast<double>(
                                    oh * params.strideH - params.padH +
                                    r * params.dilationH) +
                                offsets.offsetY.at(n, tap, oh, ow);
                            const double x =
                                static_cast<double>(
                                    ow * params.strideW - params.padW +
                                    s * params.dilationW) +
                                offsets.offsetX.at(n, tap, oh, ow);
                            for (Index ci = 0; ci < params.inChannels;
                                 ++ci) {
                                acc += bilinearSample(input, n, ci, y,
                                                      x) *
                                       filter.at(co, ci, r, s);
                            }
                        }
                    }
                    out.at(n, co, oh, ow) = acc;
                }
            }
        }
    }
    return out;
}

tensor::Tensor
convDeformableImplicit(const ConvParams &params,
                       const tensor::Tensor &input,
                       const DeformableOffsets &offsets,
                       const tensor::Tensor &filter)
{
    params.validate();
    offsets.validate(params);

    tensor::Matrix acc(params.gemmM(), params.gemmN());
    acc.fill(0.0f);
    for (const FilterTile &tile : decomposeFilter(params)) {
        const Index tap = tile.r * params.kernelW + tile.s;
        // Offset-gathered tile operand: same shape as the rigid case,
        // different addresses -- exactly the paper's point that the
        // decomposed schedule only changes the address generation.
        tensor::Matrix a(params.gemmM(), params.inChannels);
        for (Index m = 0; m < a.rows(); ++m) {
            const tensor::RowCoord rc = tensor::rowCoord(params, m);
            const double y =
                static_cast<double>(rc.oh * params.strideH -
                                    params.padH +
                                    tile.r * params.dilationH) +
                offsets.offsetY.at(rc.n, tap, rc.oh, rc.ow);
            const double x =
                static_cast<double>(rc.ow * params.strideW -
                                    params.padW +
                                    tile.s * params.dilationW) +
                offsets.offsetX.at(rc.n, tap, rc.oh, rc.ow);
            for (Index ci = 0; ci < params.inChannels; ++ci)
                a.at(m, ci) = bilinearSample(input, rc.n, ci, y, x);
        }
        const tensor::Matrix b = tileWeights(params, filter, tile);
        tensor::gemmAccumulate(a, b, acc);
    }
    return tensor::foldOutput(params, acc);
}

Index
deformableTileFillBound(const ConvParams &params, const FilterTile &tile)
{
    return 4 * tileFillElems(params, tile);
}

} // namespace cfconv::im2col
