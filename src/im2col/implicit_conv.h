/**
 * @file
 * Functional implicit channel-first convolution engine: executes a
 * convolution exactly as the paper's algorithm schedules it — decomposed
 * 1x1-conv tiles, optional multi-tile merging, optional reuse ordering —
 * without ever materializing the lowered matrix. Its results are proven
 * bit-identical to direct convolution by the test suite.
 */

#ifndef CFCONV_IM2COL_IMPLICIT_CONV_H
#define CFCONV_IM2COL_IMPLICIT_CONV_H

#include "im2col/multi_tile.h"
#include "im2col/reorder.h"
#include "tensor/conv_ref.h"

namespace cfconv::im2col {

/** Execution statistics the functional engine collects along the way. */
struct ImplicitConvStats
{
    Index tileGemms = 0;        ///< number of (merged) GEMM passes
    Index fillElems = 0;        ///< input elements brought "on chip"
    Index peakWorkspace = 0;    ///< peak merged-operand elements
    Flops macFlops = 0;         ///< multiply-accumulate FLOPs executed
};

/** Knobs of the implicit engine. */
struct ImplicitConvOptions
{
    Index tilesPerGroup = 1;            ///< multi-tile parameter T
    TileOrder order = TileOrder::Naive; ///< tile execution order
};

/**
 * Channel-first implicit convolution. Functionally equivalent to
 * tensor::convDirect for every legal ConvParams (incl. stride, padding,
 * dilation). @p stats, when non-null, receives execution statistics.
 */
tensor::Tensor convImplicit(const ConvParams &params,
                            const tensor::Tensor &input,
                            const tensor::Tensor &filter,
                            const ImplicitConvOptions &options = {},
                            ImplicitConvStats *stats = nullptr);

/**
 * Convenience: implicit convolution with the TPU's inferred multi-tile
 * strategy for a given systolic-array height.
 */
tensor::Tensor convImplicitTpuStrategy(const ConvParams &params,
                                       const tensor::Tensor &input,
                                       const tensor::Tensor &filter,
                                       Index array_rows,
                                       ImplicitConvStats *stats = nullptr);

} // namespace cfconv::im2col

#endif // CFCONV_IM2COL_IMPLICIT_CONV_H
