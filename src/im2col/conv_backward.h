/**
 * @file
 * Training-mode convolution: backward-data and backward-filter passes
 * executed with the same channel-first filter decomposition the paper
 * uses for the forward pass. TPU-v2/v3 are training chips (Sec. IV-C),
 * so the decomposed formulation must cover all three convolution
 * passes; this header provides the two gradients plus plain reference
 * implementations the tests check against.
 *
 * Both gradients reduce to per-tile GEMMs on the forward pass's
 * operands:
 *  - backward-filter: dW[r,s] = A_tile(r,s)^T * dY     (C_I x C_O)
 *  - backward-data:   dX += scatter_tile(r,s)(dY * W[r,s]^T)
 * so they inherit the forward pass's stride/padding/dilation handling
 * and its zero-materialization property.
 */

#ifndef CFCONV_IM2COL_CONV_BACKWARD_H
#define CFCONV_IM2COL_CONV_BACKWARD_H

#include "im2col/filter_decomp.h"
#include "tensor/conv_params.h"
#include "tensor/tensor.h"

namespace cfconv::im2col {

/**
 * Reference gradient w.r.t. the input, computed by direct loops.
 * @p grad_out has OFMap dims (N, C_O, H_O, W_O); @return IFMap dims.
 */
tensor::Tensor convBackwardDataDirect(const ConvParams &params,
                                      const tensor::Tensor &grad_out,
                                      const tensor::Tensor &filter);

/**
 * Reference gradient w.r.t. the filter, computed by direct loops.
 * @return filter dims (C_O, C_I, H_F, W_F).
 */
tensor::Tensor convBackwardFilterDirect(const ConvParams &params,
                                        const tensor::Tensor &input,
                                        const tensor::Tensor &grad_out);

/**
 * Channel-first implicit backward-data: iterates decomposed tiles,
 * computing dY (M x C_O) times W[r,s]^T (C_O x C_I) and scattering the
 * M x C_I product back to the input positions of tile <r, s>.
 */
tensor::Tensor convBackwardDataImplicit(const ConvParams &params,
                                        const tensor::Tensor &grad_out,
                                        const tensor::Tensor &filter);

/**
 * Channel-first implicit backward-filter: for each decomposed tile the
 * gradient slice is the GEMM A_tile^T (C_I x M) times dY (M x C_O);
 * tiles are independent, so no accumulation hazards exist.
 */
tensor::Tensor convBackwardFilterImplicit(const ConvParams &params,
                                          const tensor::Tensor &input,
                                          const tensor::Tensor &grad_out);

} // namespace cfconv::im2col

#endif // CFCONV_IM2COL_CONV_BACKWARD_H
