#include "im2col/reorder.h"

#include <algorithm>

#include "common/logging.h"

namespace cfconv::im2col {

std::vector<FilterTile>
orderTiles(const ConvParams &params, TileOrder policy)
{
    std::vector<FilterTile> tiles = decomposeFilter(params);
    if (policy == TileOrder::Naive || tiles.size() <= 2)
        return tiles;

    // Greedy chain: start from <0,0>; repeatedly pick the unvisited tile
    // with the largest footprint overlap with the current one (ties break
    // on row-major order for determinism).
    std::vector<FilterTile> ordered;
    ordered.reserve(tiles.size());
    std::vector<bool> used(tiles.size(), false);
    size_t cur = 0;
    used[0] = true;
    ordered.push_back(tiles[0]);
    for (size_t step = 1; step < tiles.size(); ++step) {
        double best_overlap = -1.0;
        size_t best = 0;
        for (size_t i = 0; i < tiles.size(); ++i) {
            if (used[i])
                continue;
            const double ov = tileOverlap(params, tiles[cur], tiles[i]);
            if (ov > best_overlap) {
                best_overlap = ov;
                best = i;
            }
        }
        used[best] = true;
        ordered.push_back(tiles[best]);
        cur = best;
    }
    return ordered;
}

double
sequenceReuseFraction(const ConvParams &params,
                      const std::vector<FilterTile> &sequence)
{
    if (sequence.size() < 2)
        return 0.0;
    double total = 0.0;
    for (size_t i = 1; i < sequence.size(); ++i)
        total += tileOverlap(params, sequence[i - 1], sequence[i]);
    return total / static_cast<double>(sequence.size() - 1);
}

Index
sequenceFillElems(const ConvParams &params,
                  const std::vector<FilterTile> &sequence)
{
    CFCONV_FATAL_IF(sequence.empty(), "sequenceFillElems: empty sequence");
    Index total = tileFillElems(params, sequence.front());
    for (size_t i = 1; i < sequence.size(); ++i) {
        const Index fill = tileFillElems(params, sequence[i]);
        const double ov =
            tileOverlap(params, sequence[i - 1], sequence[i]);
        const Index prev = tileFillElems(params, sequence[i - 1]);
        // Overlap is reported relative to the smaller footprint; convert
        // to absolute shared elements.
        const Index shared = static_cast<Index>(
            ov * static_cast<double>(std::min(fill, prev)));
        total += fill - shared;
    }
    return total;
}

} // namespace cfconv::im2col
