/**
 * @file
 * Deformable convolution (Dai et al., ICCV'17) under the channel-first
 * decomposition. The paper lists deformable CONV among the variants
 * that existing implicit im2col handles poorly (Sec. II-C); with
 * filter decomposition each decomposed tap simply becomes an
 * offset-gathered 1x1 convolution, so the same per-tile GEMM schedule
 * applies. Samples are bilinear, matching the original operator.
 */

#ifndef CFCONV_IM2COL_DEFORMABLE_H
#define CFCONV_IM2COL_DEFORMABLE_H

#include "im2col/filter_decomp.h"
#include "tensor/conv_params.h"
#include "tensor/tensor.h"

namespace cfconv::im2col {

/**
 * Per-output-position sampling offsets. offsetY/offsetX have dims
 * (N, H_F * W_F, H_O, W_O): one (dy, dx) pair per filter tap per
 * output position, added to the tap's regular sampling location.
 */
struct DeformableOffsets
{
    tensor::Tensor offsetY;
    tensor::Tensor offsetX;

    /** Zero offsets (degenerates to regular convolution). */
    static DeformableOffsets zeros(const ConvParams &params);

    /** Deterministic pseudo-random offsets in [-scale, scale). */
    static DeformableOffsets random(const ConvParams &params,
                                    std::uint64_t seed, double scale);

    void validate(const ConvParams &params) const;
};

/**
 * Bilinearly sample @p input at fractional position (@p y, @p x) of
 * batch @p n, channel @p ci; out-of-range taps read zero padding.
 */
float bilinearSample(const tensor::Tensor &input, Index n, Index ci,
                     double y, double x);

/** Direct (loop-nest) deformable convolution reference. */
tensor::Tensor convDeformableDirect(const ConvParams &params,
                                    const tensor::Tensor &input,
                                    const DeformableOffsets &offsets,
                                    const tensor::Tensor &filter);

/**
 * Channel-first implicit deformable convolution: per decomposed tile,
 * gather the offset-sampled (M x C_I) operand and accumulate the
 * 1x1-conv GEMM, exactly like the rigid case.
 */
tensor::Tensor convDeformableImplicit(const ConvParams &params,
                                      const tensor::Tensor &input,
                                      const DeformableOffsets &offsets,
                                      const tensor::Tensor &filter);

/**
 * Worst-case input elements a deformable tile fill must gather: each
 * bilinear sample touches up to 4 pixels, so the footprint is bounded
 * by 4x the rigid tile fill.
 */
Index deformableTileFillBound(const ConvParams &params,
                              const FilterTile &tile);

} // namespace cfconv::im2col

#endif // CFCONV_IM2COL_DEFORMABLE_H
