/**
 * @file
 * Tile-level weight sparsity on the channel-first schedule — the
 * future-work direction the paper closes with (Sec. VIII: "we believe
 * our work can encourage future study for designing sparse CNN
 * accelerators based on the described channel-first implicit im2col").
 *
 * Filter decomposition makes one sparsity granularity natural: an
 * entire decomposed tap <r, s> whose C_I x C_O weight slice is zero
 * contributes nothing and its whole GEMM pass — and its SRAM fill —
 * can be skipped with no hardware support beyond the address
 * generator. This module prunes filters, analyzes per-tile occupancy,
 * executes the sparse schedule, and estimates the TPU-pass savings.
 */

#ifndef CFCONV_IM2COL_SPARSE_H
#define CFCONV_IM2COL_SPARSE_H

#include <vector>

#include "im2col/filter_decomp.h"
#include "tensor/conv_params.h"
#include "tensor/tensor.h"

namespace cfconv::im2col {

/** Per-tile weight occupancy of a filter. */
struct TileSparsity
{
    FilterTile tile;
    Index nonzeros = 0;     ///< non-zero weights in the C_I x C_O slice
    double density = 0.0;   ///< nonzeros / (C_I * C_O)
};

/** Sparsity analysis of a whole filter under the decomposition. */
struct SparsityReport
{
    std::vector<TileSparsity> tiles; ///< row-major <r, s>
    Index skippableTiles = 0;        ///< tiles with zero weights
    double overallDensity = 0.0;     ///< nonzeros / total weights

    /** Fraction of decomposed GEMM passes the schedule can skip. */
    double
    passSavings() const
    {
        return tiles.empty()
            ? 0.0
            : static_cast<double>(skippableTiles) /
                  static_cast<double>(tiles.size());
    }
};

/**
 * Magnitude-prune @p filter: zero every weight with |w| < threshold.
 * @return the pruned copy.
 */
tensor::Tensor pruneFilter(const tensor::Tensor &filter,
                           float threshold);

/**
 * Zero entire decomposed taps whose slice L1 mass is in the lowest
 * @p fraction of taps — structured (tile-wise) pruning matched to the
 * channel-first granularity.
 */
tensor::Tensor pruneFilterTiles(const ConvParams &params,
                                const tensor::Tensor &filter,
                                double fraction);

/** Analyze per-tile occupancy of @p filter. */
SparsityReport analyzeSparsity(const ConvParams &params,
                               const tensor::Tensor &filter,
                               float zero_threshold = 0.0f);

/**
 * Channel-first implicit convolution that skips all-zero decomposed
 * tiles. Exact on the pruned filter. @p skipped, when non-null,
 * receives the number of skipped tile GEMMs.
 */
tensor::Tensor convImplicitSparse(const ConvParams &params,
                                  const tensor::Tensor &input,
                                  const tensor::Tensor &filter,
                                  Index *skipped = nullptr);

} // namespace cfconv::im2col

#endif // CFCONV_IM2COL_SPARSE_H
