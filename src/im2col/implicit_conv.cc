#include "im2col/implicit_conv.h"

#include <algorithm>

#include "tensor/gemm.h"
#include "tensor/im2col_explicit.h"

namespace cfconv::im2col {

tensor::Tensor
convImplicit(const ConvParams &params, const tensor::Tensor &input,
             const tensor::Tensor &filter,
             const ImplicitConvOptions &options, ImplicitConvStats *stats)
{
    params.validate();
    CFCONV_FATAL_IF(options.tilesPerGroup < 1,
                    "convImplicit: tilesPerGroup must be >= 1");

    // Order the tiles, then group consecutive runs for multi-tile.
    const std::vector<FilterTile> sequence =
        orderTiles(params, options.order);
    MultiTilePlan plan;
    plan.tilesPerGroup = options.tilesPerGroup;
    TileGroup cur;
    for (const auto &t : sequence) {
        cur.tiles.push_back(t);
        if (static_cast<Index>(cur.tiles.size()) == options.tilesPerGroup) {
            plan.groups.push_back(std::move(cur));
            cur = TileGroup{};
        }
    }
    if (!cur.tiles.empty())
        plan.groups.push_back(std::move(cur));

    ImplicitConvStats local;
    tensor::Matrix acc(params.gemmM(), params.gemmN());

    // The group loop stays serial (accumulation order is part of the
    // bit-exactness contract); parallelism and SIMD come from the
    // row-parallel operand build and the micro-kernel GEMM underneath,
    // where each worker owns a disjoint (batch, output-row) slice of
    // the M dimension and accumulates its rows in the serial tile
    // order (see tensor/microkernel.h for the determinism contract).
    for (const auto &group : plan.groups) {
        const tensor::Matrix a = groupOperand(params, input, group);
        const tensor::Matrix b = groupWeights(params, filter, group);
        tensor::gemmAccumulate(a, b, acc);

        ++local.tileGemms;
        for (const auto &t : group.tiles)
            local.fillElems += tileFillElems(params, t);
        local.peakWorkspace =
            std::max(local.peakWorkspace, a.rows() * a.cols());
        local.macFlops += 2ULL * static_cast<Flops>(a.rows()) *
                          static_cast<Flops>(a.cols()) *
                          static_cast<Flops>(b.cols());
    }

    if (stats)
        *stats = local;
    return tensor::foldOutput(params, acc);
}

tensor::Tensor
convImplicitTpuStrategy(const ConvParams &params,
                        const tensor::Tensor &input,
                        const tensor::Tensor &filter, Index array_rows,
                        ImplicitConvStats *stats)
{
    ImplicitConvOptions options;
    options.tilesPerGroup = tpuMultiTileParam(array_rows, params);
    return convImplicit(params, input, filter, options, stats);
}

} // namespace cfconv::im2col
