#include "im2col/multi_tile.h"

#include <algorithm>

#include "common/logging.h"
#include "common/parallel.h"

namespace cfconv::im2col {

double
MultiTilePlan::duplicationFactor(const ConvParams &params) const
{
    (void)params;
    if (groups.empty())
        return 0.0;
    // Each tile in a group carries its own operand copy, so the on-chip
    // duplication of a group equals its tile count.
    double total = 0.0;
    size_t tiles = 0;
    for (const auto &g : groups) {
        total += static_cast<double>(g.tiles.size()) *
                 static_cast<double>(g.tiles.size());
        tiles += g.tiles.size();
    }
    return total / static_cast<double>(tiles);
}

Index
MultiTilePlan::peakWorkspaceElems(const ConvParams &params) const
{
    Index peak = 0;
    for (const auto &g : groups) {
        Index ws = 0;
        for (const auto &t : g.tiles)
            ws += tileFillElems(params, t);
        peak = std::max(peak, ws);
    }
    return peak;
}

Index
tpuMultiTileParam(Index array_rows, const ConvParams &params)
{
    CFCONV_FATAL_IF(array_rows < 1, "tpuMultiTileParam: bad array size");
    const Index by_channels =
        std::max<Index>(1, array_rows / params.inChannels);
    return std::max<Index>(1, std::min(by_channels, params.kernelW));
}

MultiTilePlan
planMultiTile(const ConvParams &params, Index tiles_per_group)
{
    CFCONV_FATAL_IF(tiles_per_group < 1,
                    "planMultiTile: tiles_per_group must be >= 1");
    MultiTilePlan plan;
    plan.tilesPerGroup = tiles_per_group;
    const std::vector<FilterTile> tiles = decomposeFilter(params);
    TileGroup cur;
    for (const auto &t : tiles) {
        cur.tiles.push_back(t);
        if (static_cast<Index>(cur.tiles.size()) == tiles_per_group) {
            plan.groups.push_back(std::move(cur));
            cur = TileGroup{};
        }
    }
    if (!cur.tiles.empty())
        plan.groups.push_back(std::move(cur));
    return plan;
}

Matrix
groupOperand(const ConvParams &params, const Tensor &input,
             const TileGroup &group)
{
    CFCONV_FATAL_IF(group.tiles.empty(), "groupOperand: empty group");
    Matrix merged(params.gemmM(), group.mergedK(params));
    Index col0 = 0;
    for (const auto &t : group.tiles) {
        const Matrix a = tileOperand(params, input, t);
        parallel::parallelFor(
            0, merged.rows(), 64, [&](Index m0, Index m1) {
                for (Index m = m0; m < m1; ++m)
                    for (Index ci = 0; ci < params.inChannels; ++ci)
                        merged.at(m, col0 + ci) = a.at(m, ci);
            });
        col0 += params.inChannels;
    }
    return merged;
}

Matrix
groupWeights(const ConvParams &params, const Tensor &filter,
             const TileGroup &group)
{
    CFCONV_FATAL_IF(group.tiles.empty(), "groupWeights: empty group");
    Matrix merged(group.mergedK(params), params.outChannels);
    Index row0 = 0;
    for (const auto &t : group.tiles) {
        const Matrix b = tileWeights(params, filter, t);
        for (Index ci = 0; ci < params.inChannels; ++ci)
            for (Index co = 0; co < params.outChannels; ++co)
                merged.at(row0 + ci, co) = b.at(ci, co);
        row0 += params.inChannels;
    }
    return merged;
}

} // namespace cfconv::im2col
