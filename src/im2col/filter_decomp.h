/**
 * @file
 * Filter decomposition: view an H_F x W_F x C_I filter as H_F * W_F
 * independent 1x1 convolutions whose partial sums accumulate into the
 * OFMap (Sec. III-B, Fig 8). The decomposed tiles are the scheduling unit
 * of the channel-first algorithm on both the TPU and the GPU.
 */

#ifndef CFCONV_IM2COL_FILTER_DECOMP_H
#define CFCONV_IM2COL_FILTER_DECOMP_H

#include <vector>

#include "tensor/conv_params.h"
#include "tensor/tensor.h"

namespace cfconv::im2col {

using tensor::ConvParams;
using tensor::Matrix;
using tensor::Tensor;

/**
 * One decomposed filter position <r, s> (0-based). The associated 1x1
 * convolution multiplies the C_I-deep input column at offset
 * (r * dilation, s * dilation) with the C_I x C_O weight slice.
 */
struct FilterTile
{
    Index r; ///< filter row, 0 <= r < H_F
    Index s; ///< filter col, 0 <= s < W_F

    bool operator==(const FilterTile &other) const = default;
};

/**
 * The rectangle of input pixels a decomposed tile touches (per channel,
 * per batch), clipped to the real (non-padding) input area.
 */
struct TileFootprint
{
    Index ihBegin, ihEnd; ///< input rows touched: [ihBegin, ihEnd)
    Index ihStep;         ///< row step (= strideH)
    Index iwBegin, iwEnd; ///< input cols touched: [iwBegin, iwEnd)
    Index iwStep;         ///< col step (= strideW)

    /** Number of (ih, iw) positions in the footprint. */
    Index
    positions() const
    {
        const Index rows =
            ihEnd > ihBegin ? (ihEnd - ihBegin - 1) / ihStep + 1 : 0;
        const Index cols =
            iwEnd > iwBegin ? (iwEnd - iwBegin - 1) / iwStep + 1 : 0;
        return rows * cols;
    }

    bool contains(Index ih, Index iw) const;
};

/** Enumerate all H_F * W_F decomposed tiles in row-major <r, s> order. */
std::vector<FilterTile> decomposeFilter(const ConvParams &params);

/**
 * The input-pixel footprint of @p tile under @p params (valid, i.e.
 * non-padding, positions only).
 */
TileFootprint tileFootprint(const ConvParams &params,
                            const FilterTile &tile);

/**
 * Number of input elements (pixels x channels x batch) a tile fill must
 * bring on chip for the channel-first algorithm. Shrinks with stride^2 --
 * the key to stride insensitivity (Fig 8b).
 */
Index tileFillElems(const ConvParams &params, const FilterTile &tile);

/**
 * Fraction of input positions shared by the footprints of two tiles in
 * [0, 1] (relative to the smaller footprint). Drives the inter-tile
 * reuse optimization (Sec. V).
 */
double tileOverlap(const ConvParams &params, const FilterTile &a,
                   const FilterTile &b);

/**
 * Number of distinct (ih, iw) input positions referenced by the whole
 * layer (the union of all tiles' footprints). The channel-last fill and
 * the on-chip-residency checks are sized by this.
 */
Index inputUnionPositions(const ConvParams &params);

/** inputUnionPositions() scaled to bytes (channels x batch x dtype). */
Bytes inputUnionBytes(const ConvParams &params);

/**
 * The per-tile lowered operand: an (M = N*H_O*W_O) x C_I matrix whose row
 * m holds the input column under tile <r, s> for output position m. Rows
 * whose source lies in the padding halo are zero.
 */
Matrix tileOperand(const ConvParams &params, const Tensor &input,
                   const FilterTile &tile);

/** The C_I x C_O weight slice of @p tile. */
Matrix tileWeights(const ConvParams &params, const Tensor &filter,
                   const FilterTile &tile);

} // namespace cfconv::im2col

#endif // CFCONV_IM2COL_FILTER_DECOMP_H
