/**
 * @file
 * Convolution-layer shape zoo for the seven CNNs the paper benchmarks
 * (Sec. VI): AlexNet, DenseNet-121, GoogleNet, ResNet-50, VGG16, YOLOv2,
 * and ZFNet, at ImageNet-scale input resolutions. The experiments consume
 * layer shapes only; no pixel data is involved.
 */

#ifndef CFCONV_MODELS_MODEL_ZOO_H
#define CFCONV_MODELS_MODEL_ZOO_H

#include <string>
#include <vector>

#include "tensor/conv_params.h"

namespace cfconv::models {

using tensor::ConvParams;

/** One (possibly repeated) convolution layer of a CNN. */
struct ConvLayerSpec
{
    std::string name;  ///< layer name, e.g. "conv2_x.3x3"
    ConvParams params; ///< layer geometry (full C_I/C_O of all groups)
    Index count = 1;   ///< how many times the shape occurs in the model
    Index groups = 1;  ///< grouped convolution factor (C_I for depthwise)

    /** Geometry of one group slice (params itself when groups == 1). */
    ConvParams sliceParams() const;

    /** MAC FLOPs of one instance, accounting for grouping. */
    Flops flops() const;
};

/** A named collection of convolution layers. */
struct ModelSpec
{
    std::string name;
    std::vector<ConvLayerSpec> layers;

    /** Total conv FLOPs (counting repetitions). */
    Flops totalFlops() const;
    /** Total IFMap bytes across layers (counting repetitions). */
    Bytes totalInputBytes() const;
    /** Total explicit-im2col lowered-matrix bytes across layers. */
    Bytes totalLoweredBytes() const;
    /** Number of layer instances (counting repetitions). */
    Index layerInstances() const;
};

ModelSpec alexnet(Index batch);
ModelSpec mobilenetv1(Index batch);
ModelSpec zfnet(Index batch);
ModelSpec vgg16(Index batch);
ModelSpec resnet50(Index batch);
ModelSpec googlenet(Index batch);
ModelSpec densenet121(Index batch);
ModelSpec yolov2(Index batch);

/** All seven models at @p batch, in the paper's presentation order. */
std::vector<ModelSpec> allModels(Index batch);

/**
 * The "representative ResNet layers (W_I, C_I, C_O, W_F)" of Fig 4 /
 * Fig 18, with the stride left at 1 for the caller to vary.
 */
std::vector<ConvLayerSpec> resnetRepresentativeLayers(Index batch);

/**
 * All strided (stride > 1) conv layers across the zoo, for the Fig 18a
 * strided-convolution study.
 */
std::vector<ConvLayerSpec> stridedLayers(Index batch);

/**
 * Data-parallel batch split across @p cores: every layer keeps its
 * geometry but runs the per-core batch slice MAX(1, ceil(B / cores))
 * — weights are broadcast, activations stay core-local, so one core's
 * slice time is the board's time. Hoisted out of the TPU-only
 * TpuSim::runModelMultiCore so the multi-chip scheduler (src/serve)
 * and the compatibility wrapper share one slicing rule. A batch
 * smaller than the core count leaves cores idle (batch 1 gains
 * nothing), which is the honest behaviour of batch splitting.
 * Fatal when @p cores < 1.
 */
ModelSpec splitBatchAcrossCores(const ModelSpec &model, Index cores);

/**
 * Tensor-parallel output-channel split across @p shards: layers with
 * groups == 1 compute the C_O slice MAX(1, ceil(C_O / shards)) per
 * chip (IFMap broadcast, Megatron-style column parallelism); grouped
 * layers are left intact — their channel slices are already narrow,
 * and splitting them again would break group divisibility. Used by
 * the serving scheduler's model-parallel sharding of large layers.
 * Fatal when @p shards < 1.
 */
ModelSpec splitChannelsAcrossChips(const ModelSpec &model, Index shards);

} // namespace cfconv::models

#endif // CFCONV_MODELS_MODEL_ZOO_H
