#include "models/model_zoo.h"

#include <algorithm>

#include "common/logging.h"

namespace cfconv::models {

namespace {

/** Shorthand for appending one (count-repeated) square conv layer. */
void
add(ModelSpec &m, const std::string &name, Index batch, Index ci,
    Index hw, Index co, Index k, Index s = 1, Index p = 0,
    Index count = 1)
{
    ConvLayerSpec layer;
    layer.name = name;
    layer.params = tensor::makeConv(batch, ci, hw, co, k, s, p);
    layer.count = count;
    m.layers.push_back(std::move(layer));
}

} // namespace

ConvParams
ConvLayerSpec::sliceParams() const
{
    ConvParams p = params;
    p.inChannels = params.inChannels / groups;
    p.outChannels = params.outChannels / groups;
    return p;
}

Flops
ConvLayerSpec::flops() const
{
    return params.flops() / static_cast<Flops>(groups);
}

Flops
ModelSpec::totalFlops() const
{
    Flops total = 0;
    for (const auto &l : layers)
        total += l.flops() * static_cast<Flops>(l.count);
    return total;
}

Bytes
ModelSpec::totalInputBytes() const
{
    Bytes total = 0;
    for (const auto &l : layers)
        total += l.params.inputBytes() * static_cast<Bytes>(l.count);
    return total;
}

Bytes
ModelSpec::totalLoweredBytes() const
{
    Bytes total = 0;
    for (const auto &l : layers)
        total += l.params.loweredBytes() * static_cast<Bytes>(l.count);
    return total;
}

Index
ModelSpec::layerInstances() const
{
    Index total = 0;
    for (const auto &l : layers)
        total += l.count;
    return total;
}

ModelSpec
alexnet(Index batch)
{
    ModelSpec m{"AlexNet", {}};
    add(m, "conv1", batch, 3, 227, 96, 11, 4, 0);
    add(m, "conv2", batch, 96, 27, 256, 5, 1, 2);
    add(m, "conv3", batch, 256, 13, 384, 3, 1, 1);
    add(m, "conv4", batch, 384, 13, 384, 3, 1, 1);
    add(m, "conv5", batch, 384, 13, 256, 3, 1, 1);
    return m;
}

ModelSpec
mobilenetv1(Index batch)
{
    // MobileNetV1 (1.0x, 224): alternating depthwise 3x3 and
    // pointwise 1x1 blocks. Depthwise layers carry groups = C_I.
    ModelSpec m{"MobileNet", {}};
    add(m, "conv1", batch, 3, 224, 32, 3, 2, 1);
    struct Block { Index ci, hw, co, stride, count; };
    const Block blocks[] = {
        {32, 112, 64, 1, 1},   {64, 112, 128, 2, 1},
        {128, 56, 128, 1, 1},  {128, 56, 256, 2, 1},
        {256, 28, 256, 1, 1},  {256, 28, 512, 2, 1},
        {512, 14, 512, 1, 5},  {512, 14, 1024, 2, 1},
        {1024, 7, 1024, 1, 1},
    };
    int idx = 0;
    for (const Block &b : blocks) {
        const std::string base = "dw" + std::to_string(++idx);
        ConvLayerSpec dw;
        dw.name = base + ".3x3dw";
        dw.params = tensor::makeConv(batch, b.ci, b.hw, b.ci, 3,
                                     b.stride, 1);
        dw.groups = b.ci;
        dw.count = b.count;
        m.layers.push_back(std::move(dw));
        const Index hw_out = b.stride == 1 ? b.hw : b.hw / b.stride;
        add(m, base + ".1x1", batch, b.ci, hw_out, b.co, 1, 1, 0,
            b.count);
    }
    return m;
}

ModelSpec
zfnet(Index batch)
{
    ModelSpec m{"ZFNet", {}};
    add(m, "conv1", batch, 3, 224, 96, 7, 2, 1);
    add(m, "conv2", batch, 96, 55, 256, 5, 2, 0);
    add(m, "conv3", batch, 256, 13, 384, 3, 1, 1);
    add(m, "conv4", batch, 384, 13, 384, 3, 1, 1);
    add(m, "conv5", batch, 384, 13, 256, 3, 1, 1);
    return m;
}

ModelSpec
vgg16(Index batch)
{
    ModelSpec m{"VGG16", {}};
    add(m, "conv1_1", batch, 3, 224, 64, 3, 1, 1);
    add(m, "conv1_2", batch, 64, 224, 64, 3, 1, 1);
    add(m, "conv2_1", batch, 64, 112, 128, 3, 1, 1);
    add(m, "conv2_2", batch, 128, 112, 128, 3, 1, 1);
    add(m, "conv3_1", batch, 128, 56, 256, 3, 1, 1);
    add(m, "conv3_2", batch, 256, 56, 256, 3, 1, 1, 2);
    add(m, "conv4_1", batch, 256, 28, 512, 3, 1, 1);
    add(m, "conv4_2", batch, 512, 28, 512, 3, 1, 1, 2);
    add(m, "conv5_x", batch, 512, 14, 512, 3, 1, 1, 3);
    return m;
}

ModelSpec
resnet50(Index batch)
{
    ModelSpec m{"ResNet", {}};
    add(m, "conv1", batch, 3, 224, 64, 7, 2, 3);

    // Bottleneck stages: (in, mid, out, spatial, blocks). The first
    // block of stages 3-5 downsamples with a strided 3x3 and a strided
    // 1x1 projection.
    struct Stage { Index in, mid, out, hw, blocks, stride; };
    const Stage stages[] = {
        {64, 64, 256, 56, 3, 1},
        {256, 128, 512, 56, 4, 2},
        {512, 256, 1024, 28, 6, 2},
        {1024, 512, 2048, 14, 3, 2},
    };
    int idx = 2;
    for (const Stage &st : stages) {
        const std::string base = "conv" + std::to_string(idx) + "_";
        const Index hw_out = st.stride == 1 ? st.hw : st.hw / st.stride;
        // First block (with projection).
        add(m, base + "b1.1x1a", batch, st.in, st.hw, st.mid, 1, 1, 0);
        add(m, base + "b1.3x3", batch, st.mid, st.hw, st.mid, 3,
            st.stride, 1);
        add(m, base + "b1.1x1b", batch, st.mid, hw_out, st.out, 1, 1, 0);
        add(m, base + "b1.proj", batch, st.in, st.hw, st.out, 1,
            st.stride, 0);
        // Remaining blocks.
        if (st.blocks > 1) {
            add(m, base + "bN.1x1a", batch, st.out, hw_out, st.mid, 1, 1,
                0, st.blocks - 1);
            add(m, base + "bN.3x3", batch, st.mid, hw_out, st.mid, 3, 1,
                1, st.blocks - 1);
            add(m, base + "bN.1x1b", batch, st.mid, hw_out, st.out, 1, 1,
                0, st.blocks - 1);
        }
        ++idx;
    }
    return m;
}

ModelSpec
googlenet(Index batch)
{
    ModelSpec m{"GoogleNet", {}};
    add(m, "conv1", batch, 3, 224, 64, 7, 2, 3);
    add(m, "conv2.red", batch, 64, 56, 64, 1, 1, 0);
    add(m, "conv2", batch, 64, 56, 192, 3, 1, 1);

    struct Inception
    {
        const char *name;
        Index in, hw, b1, b3r, b3, b5r, b5, pp;
    };
    const Inception blocks[] = {
        {"3a", 192, 28, 64, 96, 128, 16, 32, 32},
        {"3b", 256, 28, 128, 128, 192, 32, 96, 64},
        {"4a", 480, 14, 192, 96, 208, 16, 48, 64},
        {"4b", 512, 14, 160, 112, 224, 24, 64, 64},
        {"4c", 512, 14, 128, 128, 256, 24, 64, 64},
        {"4d", 512, 14, 112, 144, 288, 32, 64, 64},
        {"4e", 528, 14, 256, 160, 320, 32, 128, 128},
        {"5a", 832, 7, 256, 160, 320, 32, 128, 128},
        {"5b", 832, 7, 384, 192, 384, 48, 128, 128},
    };
    for (const auto &b : blocks) {
        const std::string base = std::string("inc") + b.name + ".";
        add(m, base + "1x1", batch, b.in, b.hw, b.b1, 1, 1, 0);
        add(m, base + "3x3r", batch, b.in, b.hw, b.b3r, 1, 1, 0);
        add(m, base + "3x3", batch, b.b3r, b.hw, b.b3, 3, 1, 1);
        add(m, base + "5x5r", batch, b.in, b.hw, b.b5r, 1, 1, 0);
        add(m, base + "5x5", batch, b.b5r, b.hw, b.b5, 5, 1, 2);
        add(m, base + "pool", batch, b.in, b.hw, b.pp, 1, 1, 0);
    }
    return m;
}

ModelSpec
densenet121(Index batch)
{
    ModelSpec m{"DenseNet", {}};
    add(m, "conv1", batch, 3, 224, 64, 7, 2, 3);

    const Index growth = 32;
    const Index block_layers[] = {6, 12, 24, 16};
    const Index spatial[] = {56, 28, 14, 7};
    Index channels = 64;
    for (int b = 0; b < 4; ++b) {
        const Index hw = spatial[b];
        for (Index j = 0; j < block_layers[b]; ++j) {
            const std::string base = "dense" + std::to_string(b + 1) +
                                     "." + std::to_string(j + 1);
            add(m, base + ".1x1", batch, channels, hw, 4 * growth, 1, 1,
                0);
            add(m, base + ".3x3", batch, 4 * growth, hw, growth, 3, 1, 1);
            channels += growth;
        }
        if (b < 3) {
            // Transition: 1x1 halving channels (followed by 2x2 pool).
            add(m, "trans" + std::to_string(b + 1), batch, channels, hw,
                channels / 2, 1, 1, 0);
            channels /= 2;
        }
    }
    return m;
}

ModelSpec
yolov2(Index batch)
{
    ModelSpec m{"YOLO", {}};
    add(m, "conv1", batch, 3, 416, 32, 3, 1, 1);
    add(m, "conv2", batch, 32, 208, 64, 3, 1, 1);
    add(m, "conv3", batch, 64, 104, 128, 3, 1, 1);
    add(m, "conv4", batch, 128, 104, 64, 1, 1, 0);
    add(m, "conv5", batch, 64, 104, 128, 3, 1, 1);
    add(m, "conv6", batch, 128, 52, 256, 3, 1, 1);
    add(m, "conv7", batch, 256, 52, 128, 1, 1, 0);
    add(m, "conv8", batch, 128, 52, 256, 3, 1, 1);
    add(m, "conv9", batch, 256, 26, 512, 3, 1, 1);
    add(m, "conv10", batch, 512, 26, 256, 1, 1, 0);
    add(m, "conv11", batch, 256, 26, 512, 3, 1, 1);
    add(m, "conv12", batch, 512, 26, 256, 1, 1, 0);
    add(m, "conv13", batch, 256, 26, 512, 3, 1, 1);
    add(m, "conv14", batch, 512, 13, 1024, 3, 1, 1);
    add(m, "conv15", batch, 1024, 13, 512, 1, 1, 0);
    add(m, "conv16", batch, 512, 13, 1024, 3, 1, 1);
    add(m, "conv17", batch, 1024, 13, 512, 1, 1, 0);
    add(m, "conv18", batch, 512, 13, 1024, 3, 1, 1);
    add(m, "conv19", batch, 1024, 13, 1024, 3, 1, 1);
    add(m, "conv20", batch, 1024, 13, 1024, 3, 1, 1);
    add(m, "conv21.pass", batch, 512, 26, 64, 1, 1, 0);
    add(m, "conv22", batch, 1280, 13, 1024, 3, 1, 1);
    add(m, "conv23", batch, 1024, 13, 425, 1, 1, 0);
    return m;
}

std::vector<ModelSpec>
allModels(Index batch)
{
    return {alexnet(batch),  densenet121(batch), googlenet(batch),
            resnet50(batch), vgg16(batch),       yolov2(batch),
            zfnet(batch)};
}

std::vector<ConvLayerSpec>
resnetRepresentativeLayers(Index batch)
{
    // Named by the paper's (W_I, C_I, C_O, W_F) convention.
    std::vector<ConvLayerSpec> layers;
    auto mk = [&](Index hw, Index ci, Index co, Index k) {
        ConvLayerSpec l;
        l.name = std::to_string(hw) + "," + std::to_string(ci) + "," +
                 std::to_string(co) + "," + std::to_string(k);
        l.params = tensor::makeConv(batch, ci, hw, co, k, 1, k / 2);
        layers.push_back(std::move(l));
    };
    mk(56, 64, 64, 3);
    mk(56, 128, 128, 3);
    mk(28, 128, 128, 3);
    mk(28, 256, 256, 3);
    mk(14, 256, 256, 3);
    mk(14, 512, 512, 3);
    return layers;
}

ModelSpec
splitBatchAcrossCores(const ModelSpec &model, Index cores)
{
    CFCONV_FATAL_IF(cores < 1,
                    "splitBatchAcrossCores: cores must be >= 1");
    ModelSpec sliced = model;
    for (auto &layer : sliced.layers) {
        layer.params.batch = std::max<Index>(
            1, divCeil(layer.params.batch, cores));
    }
    return sliced;
}

ModelSpec
splitChannelsAcrossChips(const ModelSpec &model, Index shards)
{
    CFCONV_FATAL_IF(shards < 1,
                    "splitChannelsAcrossChips: shards must be >= 1");
    ModelSpec sharded = model;
    for (auto &layer : sharded.layers) {
        if (layer.groups != 1)
            continue;
        layer.params.outChannels = std::max<Index>(
            1, divCeil(layer.params.outChannels, shards));
    }
    return sharded;
}

std::vector<ConvLayerSpec>
stridedLayers(Index batch)
{
    std::vector<ConvLayerSpec> out;
    for (const auto &model : allModels(batch)) {
        for (const auto &layer : model.layers) {
            if (layer.params.strideH > 1) {
                ConvLayerSpec l = layer;
                l.name = model.name + "." + layer.name;
                l.count = 1;
                out.push_back(std::move(l));
            }
        }
    }
    return out;
}

} // namespace cfconv::models
