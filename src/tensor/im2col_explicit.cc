#include "tensor/im2col_explicit.h"

#include "common/parallel.h"
#include "tensor/conv_ref.h"
#include "tensor/gemm.h"

namespace cfconv::tensor {

RowCoord
rowCoord(const ConvParams &params, Index m)
{
    const Index wo = params.outW();
    const Index ho = params.outH();
    CFCONV_ASSERT(m >= 0 && m < params.gemmM(), "(row out of range)");
    RowCoord rc;
    rc.ow = m % wo;
    rc.oh = (m / wo) % ho;
    rc.n = m / (wo * ho);
    return rc;
}

ColCoord
colCoord(const ConvParams &params, ColumnOrder order, Index k)
{
    CFCONV_ASSERT(k >= 0 && k < params.gemmK(), "(col out of range)");
    ColCoord cc;
    if (order == ColumnOrder::ChannelLast) {
        cc.s = k % params.kernelW;
        cc.r = (k / params.kernelW) % params.kernelH;
        cc.ci = k / (params.kernelW * params.kernelH);
    } else {
        cc.ci = k % params.inChannels;
        const Index pos = k / params.inChannels;
        cc.s = pos % params.kernelW;
        cc.r = pos / params.kernelW;
    }
    return cc;
}

Index
colIndex(const ConvParams &params, ColumnOrder order, Index r, Index s,
         Index ci)
{
    if (order == ColumnOrder::ChannelLast)
        return (ci * params.kernelH + r) * params.kernelW + s;
    return (r * params.kernelW + s) * params.inChannels + ci;
}

float
loweredElement(const ConvParams &params, ColumnOrder order,
               const Tensor &input, Index m, Index k)
{
    const RowCoord rc = rowCoord(params, m);
    const ColCoord cc = colCoord(params, order, k);
    const Index ih = rc.oh * params.strideH - params.padH +
                     cc.r * params.dilationH;
    const Index iw = rc.ow * params.strideW - params.padW +
                     cc.s * params.dilationW;
    return input.atPadded(rc.n, cc.ci, ih, iw);
}

Matrix
im2colLower(const ConvParams &params, const Tensor &input,
            ColumnOrder order)
{
    params.validate();
    Matrix lowered(params.gemmM(), params.gemmK());
    // Column coordinates depend only on k; compute them once instead
    // of per element (the lowering feeds the micro-kernel GEMM, so the
    // relayout itself is now a visible fraction of conv time).
    std::vector<ColCoord> cols(static_cast<size_t>(lowered.cols()));
    for (Index k = 0; k < lowered.cols(); ++k)
        cols[static_cast<size_t>(k)] = colCoord(params, order, k);
    // Each worker fills a disjoint block of output positions (rows).
    parallel::parallelFor(
        0, lowered.rows(), 64, [&](Index m0, Index m1) {
            for (Index m = m0; m < m1; ++m) {
                const RowCoord rc = rowCoord(params, m);
                float *row = lowered.data() + m * lowered.cols();
                for (Index k = 0; k < lowered.cols(); ++k) {
                    const ColCoord &cc = cols[static_cast<size_t>(k)];
                    const Index ih = rc.oh * params.strideH -
                        params.padH + cc.r * params.dilationH;
                    const Index iw = rc.ow * params.strideW -
                        params.padW + cc.s * params.dilationW;
                    row[k] = input.atPadded(rc.n, cc.ci, ih, iw);
                }
            }
        });
    return lowered;
}

Matrix
flattenFilter(const ConvParams &params, const Tensor &filter,
              ColumnOrder order)
{
    CFCONV_FATAL_IF(filter.n() != params.outChannels ||
                    filter.c() != params.inChannels ||
                    filter.h() != params.kernelH ||
                    filter.w() != params.kernelW,
                    "flattenFilter: filter dims do not match params");
    Matrix flat(params.gemmK(), params.gemmN());
    for (Index k = 0; k < flat.rows(); ++k) {
        const ColCoord cc = colCoord(params, order, k);
        for (Index co = 0; co < params.outChannels; ++co)
            flat.at(k, co) = filter.at(co, cc.ci, cc.r, cc.s);
    }
    return flat;
}

Tensor
foldOutput(const ConvParams &params, const Matrix &gemm_out)
{
    CFCONV_FATAL_IF(gemm_out.rows() != params.gemmM() ||
                    gemm_out.cols() != params.gemmN(),
                    "foldOutput: GEMM output shape mismatch");
    Tensor out(params.batch, params.outChannels, params.outH(),
               params.outW(), Layout::NCHW);
    // Distinct GEMM rows map to distinct (n, oh, ow) positions, so row
    // blocks write disjoint output elements.
    parallel::parallelFor(
        0, gemm_out.rows(), 64, [&](Index m0, Index m1) {
            for (Index m = m0; m < m1; ++m) {
                const RowCoord rc = rowCoord(params, m);
                for (Index co = 0; co < params.outChannels; ++co)
                    out.at(rc.n, co, rc.oh, rc.ow) = gemm_out.at(m, co);
            }
        });
    return out;
}

Tensor
col2im(const ConvParams &params, const Matrix &lowered, ColumnOrder order)
{
    CFCONV_FATAL_IF(lowered.rows() != params.gemmM() ||
                    lowered.cols() != params.gemmK(),
                    "col2im: lowered matrix shape mismatch");
    Tensor folded = makeInput(params);
    for (Index m = 0; m < lowered.rows(); ++m) {
        const RowCoord rc = rowCoord(params, m);
        for (Index k = 0; k < lowered.cols(); ++k) {
            const ColCoord cc = colCoord(params, order, k);
            const Index ih = rc.oh * params.strideH - params.padH +
                             cc.r * params.dilationH;
            const Index iw = rc.ow * params.strideW - params.padW +
                             cc.s * params.dilationW;
            if (ih < 0 || ih >= params.inH || iw < 0 || iw >= params.inW)
                continue; // padding region: values fall off the tensor
            folded.at(rc.n, cc.ci, ih, iw) += lowered.at(m, k);
        }
    }
    return folded;
}

Tensor
convExplicitIm2col(const ConvParams &params, const Tensor &input,
                   const Tensor &filter, ColumnOrder order)
{
    const Matrix lowered = im2colLower(params, input, order);
    const Matrix flat = flattenFilter(params, filter, order);
    Matrix out(params.gemmM(), params.gemmN());
    gemm(lowered, flat, out);
    return foldOutput(params, out);
}

} // namespace cfconv::tensor
