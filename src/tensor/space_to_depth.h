/**
 * @file
 * Space-to-depth / depth-to-space transforms. Production TPU stacks
 * rewrite shallow first layers (C_I = 3) with space-to-depth so the
 * channel-first algorithm sees a channel count that fills more systolic
 * rows (the fragmentation discussed in EXPERIMENTS.md for Fig 2b). The
 * functional transforms here are exact and invertible; the parameter
 * rewrite states how a strided conv maps onto the transformed input.
 */

#ifndef CFCONV_TENSOR_SPACE_TO_DEPTH_H
#define CFCONV_TENSOR_SPACE_TO_DEPTH_H

#include "tensor/conv_params.h"
#include "tensor/tensor.h"

namespace cfconv::tensor {

/**
 * Rearrange (N, C, H, W) into (N, C*b*b, H/b, W/b): each b x b spatial
 * block becomes b*b channels. H and W must be divisible by @p block.
 * Channel order: c_out = (dy * b + dx) * C + c.
 */
Tensor spaceToDepth(const Tensor &input, Index block);

/** Exact inverse of spaceToDepth(). */
Tensor depthToSpace(const Tensor &input, Index block);

/**
 * The geometry an (evenly divisible) convolution takes after a
 * space-to-depth(@p block) rewrite of its input: stride and input
 * shrink by b, channels grow by b*b, and the kernel covers
 * ceil over the blocked grid. Requires stride % block == 0 and no
 * dilation. FLOPs are preserved up to kernel-edge rounding.
 */
ConvParams spaceToDepthParams(const ConvParams &params, Index block);

} // namespace cfconv::tensor

#endif // CFCONV_TENSOR_SPACE_TO_DEPTH_H
