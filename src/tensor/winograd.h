/**
 * @file
 * Winograd F(2x2, 3x3) convolution — the classical alternative to
 * im2col for 3x3/stride-1 layers. Included as the contrast case: it
 * cuts multiplications 2.25x but replaces the single big GEMM with
 * per-tile 4x4 transforms whose data flow does not map onto a
 * weight-stationary systolic array, which is exactly why GEMM-based
 * accelerators lower through im2col instead (the trade-off the paper's
 * Sec. II takes as given).
 */

#ifndef CFCONV_TENSOR_WINOGRAD_H
#define CFCONV_TENSOR_WINOGRAD_H

#include "tensor/conv_params.h"
#include "tensor/tensor.h"

namespace cfconv::tensor {

/** Multiplication counts for the Winograd-vs-direct comparison. */
struct WinogradCost
{
    Flops directMuls = 0;   ///< 9 per output element (times C_I, C_O)
    Flops winogradMuls = 0; ///< 16 per 2x2 output tile element-wise
    double
    reduction() const
    {
        return winogradMuls
            ? static_cast<double>(directMuls) /
                  static_cast<double>(winogradMuls)
            : 0.0;
    }
};

/** @return true when @p params is in F(2x2, 3x3)'s domain:
 *  3x3 kernel, stride 1, dilation 1. */
bool winogradApplicable(const ConvParams &params);

/**
 * Winograd F(2x2, 3x3) convolution. Requires winogradApplicable();
 * output geometry follows @p params (padding handled by the padded
 * input reads). Exact up to floating-point reassociation.
 */
Tensor convWinograd(const ConvParams &params, const Tensor &input,
                    const Tensor &filter);

/** Element-wise multiplication counts of both algorithms. */
WinogradCost winogradCost(const ConvParams &params);

} // namespace cfconv::tensor

#endif // CFCONV_TENSOR_WINOGRAD_H
