/**
 * @file
 * Explicit im2col: materialize the lowered feature matrix (Fig 1), in
 * either column order (Fig 6), flatten filters to match, and fold GEMM
 * output back into an OFMap. This is the baseline algorithm whose memory
 * and performance overheads motivate the paper (Sec. II-B), and the
 * functional reference for the virtual lowered views in src/im2col.
 */

#ifndef CFCONV_TENSOR_IM2COL_EXPLICIT_H
#define CFCONV_TENSOR_IM2COL_EXPLICIT_H

#include "tensor/conv_params.h"
#include "tensor/layout.h"
#include "tensor/tensor.h"

namespace cfconv::tensor {

/**
 * Decompose a lowered-matrix row index m into (batch n, output row oh,
 * output column ow): m = ((n * H_O) + oh) * W_O + ow.
 */
struct RowCoord
{
    Index n, oh, ow;
};

RowCoord rowCoord(const ConvParams &params, Index m);

/**
 * Decompose a lowered-matrix column index k into (filter row r, filter
 * col s, input channel ci) according to @p order:
 *  - ChannelLast:  k = (ci * H_F + r) * W_F + s
 *  - ChannelFirst: k = (r * W_F + s) * C_I + ci
 */
struct ColCoord
{
    Index r, s, ci;
};

ColCoord colCoord(const ConvParams &params, ColumnOrder order, Index k);

/** Inverse of colCoord(). */
Index colIndex(const ConvParams &params, ColumnOrder order, Index r,
               Index s, Index ci);

/**
 * The (possibly padded) input element referenced by lowered-matrix cell
 * (m, k); honors stride, padding, and dilation.
 */
float loweredElement(const ConvParams &params, ColumnOrder order,
                     const Tensor &input, Index m, Index k);

/**
 * Materialize the full lowered feature matrix:
 * (M = N*H_O*W_O) x (K = H_F*W_F*C_I). This is the explicit im2col
 * transformation whose workspace is params.loweredBytes().
 */
Matrix im2colLower(const ConvParams &params, const Tensor &input,
                   ColumnOrder order);

/**
 * Flatten the (C_O, C_I, H_F, W_F) filter tensor into the K x C_O matrix
 * whose row order matches @p order, so that lowered * flattened = OFMap.
 */
Matrix flattenFilter(const ConvParams &params, const Tensor &filter,
                     ColumnOrder order);

/**
 * Reshape a GEMM output (M x C_O) into the (N, C_O, H_O, W_O) OFMap.
 */
Tensor foldOutput(const ConvParams &params, const Matrix &gemm_out);

/**
 * col2im: scatter-accumulate a lowered matrix back into input geometry.
 * Each input element receives the sum of all lowered cells that reference
 * it (its receptive-field multiplicity). Used by tests and useful for
 * convolution backward-data.
 */
Tensor col2im(const ConvParams &params, const Matrix &lowered,
              ColumnOrder order);

/** Convolution by explicit lowering + GEMM + fold; functional baseline. */
Tensor convExplicitIm2col(const ConvParams &params, const Tensor &input,
                          const Tensor &filter, ColumnOrder order);

} // namespace cfconv::tensor

#endif // CFCONV_TENSOR_IM2COL_EXPLICIT_H
