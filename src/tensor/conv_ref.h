/**
 * @file
 * Direct (sliding-window) convolution reference implementation. The golden
 * semantics every lowering scheme must match.
 */

#ifndef CFCONV_TENSOR_CONV_REF_H
#define CFCONV_TENSOR_CONV_REF_H

#include "tensor/conv_params.h"
#include "tensor/tensor.h"

namespace cfconv::tensor {

/**
 * Direct convolution. @p input has dims (N, C_I, H_I, W_I), @p filter has
 * dims (C_O, C_I, H_F, W_F) (N slot carries C_O). Returns the OFMap with
 * dims (N, C_O, H_O, W_O) in NCHW layout. Honors stride, padding, and
 * dilation from @p params.
 */
Tensor convDirect(const ConvParams &params, const Tensor &input,
                  const Tensor &filter);

/** Allocate an input tensor with dimensions demanded by @p params. */
Tensor makeInput(const ConvParams &params,
                 Layout layout = Layout::NCHW);

/** Allocate a filter tensor (C_O, C_I, H_F, W_F) for @p params. */
Tensor makeFilter(const ConvParams &params);

} // namespace cfconv::tensor

#endif // CFCONV_TENSOR_CONV_REF_H
