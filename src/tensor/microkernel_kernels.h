/**
 * @file
 * Internal contract between the micro-kernel driver (microkernel.cc)
 * and the AVX2 translation unit (microkernel_avx2.cc, the only TU in
 * the tree built with -mavx2 -mfma). Not installed; do not include
 * outside src/tensor.
 *
 * Panel-kernel contract: compute the full kMicroRows x kMicroCols tile
 *
 *     C[i][j] (+)= sum_p a_panel[p * MR + i] * b_panel[p * NR + j]
 *
 * for p in [0, kc). `a_panel` is an MR-interleaved A micro-panel and
 * `b_panel` an NR-interleaved B micro-panel, both contiguous and
 * zero-padded by the packer; `c` is the row-major output tile with
 * leading dimension `ldc`. When `load_c` is false the accumulators
 * start from zero (overwrite); when true they are seeded from C.
 * Kernels must accumulate in ascending p order so that, per backend,
 * results are independent of blocking and thread count.
 */

#ifndef CFCONV_TENSOR_MICROKERNEL_KERNELS_H
#define CFCONV_TENSOR_MICROKERNEL_KERNELS_H

#include "common/types.h"

namespace cfconv::tensor::detail {

/** @return whether the AVX2 TU was compiled with real intrinsics. */
bool avx2CompiledIn();

/** AVX2+FMA 8x8 panel kernel (see file comment for the contract). */
void gemmPanelAvx2(Index kc, const float *a_panel, const float *b_panel,
                   float *c, Index ldc, bool load_c);

/** AVX2+FMA contiguous dot product (8-wide FMA, left-to-right tail). */
float dotAvx2(const float *x, const float *y, Index n);

/** AVX2 dst[i] += src[i]. */
void addIntoAvx2(float *dst, const float *src, Index n);

/** AVX2+FMA dst[i] += scale * src[i]. */
void axpyIntoAvx2(float *dst, const float *src, float scale, Index n);

} // namespace cfconv::tensor::detail

#endif // CFCONV_TENSOR_MICROKERNEL_KERNELS_H
