#include "tensor/conv_ref.h"

#include "common/parallel.h"

namespace cfconv::tensor {

Tensor
convDirect(const ConvParams &params, const Tensor &input,
           const Tensor &filter)
{
    params.validate();
    CFCONV_FATAL_IF(input.n() != params.batch ||
                    input.c() != params.inChannels ||
                    input.h() != params.inH || input.w() != params.inW,
                    "convDirect: input dims do not match params (%s)",
                    params.toString().c_str());
    CFCONV_FATAL_IF(filter.n() != params.outChannels ||
                    filter.c() != params.inChannels ||
                    filter.h() != params.kernelH ||
                    filter.w() != params.kernelW,
                    "convDirect: filter dims do not match params (%s)",
                    params.toString().c_str());

    const Index ho = params.outH(), wo = params.outW();
    Tensor out(params.batch, params.outChannels, ho, wo, Layout::NCHW);

    // Parallel over (batch, output-channel) slices: each worker owns a
    // disjoint set of output planes, and the per-output accumulation
    // order is unchanged, so results are bit-exact vs the serial path.
    parallel::parallelFor(
        0, params.batch * params.outChannels, 1,
        [&](Index plane0, Index plane1) {
            for (Index plane = plane0; plane < plane1; ++plane) {
                const Index n = plane / params.outChannels;
                const Index co = plane % params.outChannels;
                for (Index oh = 0; oh < ho; ++oh) {
                    for (Index ow = 0; ow < wo; ++ow) {
                        float acc = 0.0f;
                        for (Index ci = 0; ci < params.inChannels;
                             ++ci) {
                            for (Index r = 0; r < params.kernelH; ++r) {
                                const Index ih = oh * params.strideH -
                                    params.padH + r * params.dilationH;
                                for (Index s = 0; s < params.kernelW;
                                     ++s) {
                                    const Index iw =
                                        ow * params.strideW -
                                        params.padW +
                                        s * params.dilationW;
                                    acc +=
                                        input.atPadded(n, ci, ih, iw) *
                                        filter.at(co, ci, r, s);
                                }
                            }
                        }
                        out.at(n, co, oh, ow) = acc;
                    }
                }
            }
        });
    return out;
}

Tensor
makeInput(const ConvParams &params, Layout layout)
{
    return Tensor(params.batch, params.inChannels, params.inH,
                  params.inW, layout);
}

Tensor
makeFilter(const ConvParams &params)
{
    return Tensor(params.outChannels, params.inChannels, params.kernelH,
                  params.kernelW, Layout::NCHW);
}

} // namespace cfconv::tensor
