#include "tensor/conv_ref.h"

#include <algorithm>

#include "common/parallel.h"
#include "tensor/microkernel.h"

namespace cfconv::tensor {

namespace {

/**
 * Vectorized NCHW plane: for stride-1 rows the ow loop is a SAXPY over
 * a contiguous input span, dispatched to the active micro-kernel
 * backend. Accumulation per output element stays in the reference
 * (ci, r, s) order, so the only difference from the scalar plane is
 * FMA/vector rounding.
 */
void
convPlaneFast(const ConvParams &params, const Tensor &input,
              const Tensor &filter, Tensor &out, Index n, Index co)
{
    const Index ho = params.outH(), wo = params.outW();
    float *out_plane = out.data() + out.offsetOf(n, co, 0, 0);
    for (Index ci = 0; ci < params.inChannels; ++ci) {
        for (Index r = 0; r < params.kernelH; ++r) {
            const Index off_h = r * params.dilationH - params.padH;
            for (Index oh = 0; oh < ho; ++oh) {
                const Index ih = oh * params.strideH + off_h;
                if (ih < 0 || ih >= params.inH)
                    continue;
                const float *in_row =
                    input.data() + input.offsetOf(n, ci, ih, 0);
                float *out_row = out_plane + oh * wo;
                for (Index s = 0; s < params.kernelW; ++s) {
                    const float f = filter.at(co, ci, r, s);
                    const Index off_w =
                        s * params.dilationW - params.padW;
                    if (params.strideW == 1) {
                        const Index ow_lo = std::max<Index>(0, -off_w);
                        const Index ow_hi = std::min(
                            wo - 1, params.inW - 1 - off_w);
                        if (ow_lo > ow_hi)
                            continue;
                        vectorAxpyInto(out_row + ow_lo,
                                       in_row + ow_lo + off_w, f,
                                       ow_hi - ow_lo + 1);
                    } else {
                        for (Index ow = 0; ow < wo; ++ow) {
                            const Index iw =
                                ow * params.strideW + off_w;
                            if (iw >= 0 && iw < params.inW)
                                out_row[ow] += f * in_row[iw];
                        }
                    }
                }
            }
        }
    }
}

/** The seed's per-element plane loop; scalar-backend reference. */
void
convPlaneScalar(const ConvParams &params, const Tensor &input,
                const Tensor &filter, Tensor &out, Index n, Index co)
{
    const Index ho = params.outH(), wo = params.outW();
    for (Index oh = 0; oh < ho; ++oh) {
        for (Index ow = 0; ow < wo; ++ow) {
            float acc = 0.0f;
            for (Index ci = 0; ci < params.inChannels; ++ci) {
                for (Index r = 0; r < params.kernelH; ++r) {
                    const Index ih = oh * params.strideH -
                        params.padH + r * params.dilationH;
                    for (Index s = 0; s < params.kernelW; ++s) {
                        const Index iw = ow * params.strideW -
                            params.padW + s * params.dilationW;
                        acc += input.atPadded(n, ci, ih, iw) *
                               filter.at(co, ci, r, s);
                    }
                }
            }
            out.at(n, co, oh, ow) = acc;
        }
    }
}

} // namespace

Tensor
convDirect(const ConvParams &params, const Tensor &input,
           const Tensor &filter)
{
    params.validate();
    CFCONV_FATAL_IF(input.n() != params.batch ||
                    input.c() != params.inChannels ||
                    input.h() != params.inH || input.w() != params.inW,
                    "convDirect: input dims do not match params (%s)",
                    params.toString().c_str());
    CFCONV_FATAL_IF(filter.n() != params.outChannels ||
                    filter.c() != params.inChannels ||
                    filter.h() != params.kernelH ||
                    filter.w() != params.kernelW,
                    "convDirect: filter dims do not match params (%s)",
                    params.toString().c_str());

    Tensor out(params.batch, params.outChannels, params.outH(),
               params.outW(), Layout::NCHW);

    // The fast plane needs contiguous NCHW rows; CFCONV_KERNEL=scalar
    // keeps the seed's per-element loop as the golden reference.
    const bool fast =
        activeKernelBackend() != KernelBackend::Scalar &&
        input.layout() == Layout::NCHW &&
        filter.layout() == Layout::NCHW;

    // Parallel over (batch, output-channel) slices: each worker owns a
    // disjoint set of output planes, and the per-output accumulation
    // order is unchanged, so results are bit-exact vs the serial path.
    parallel::parallelFor(
        0, params.batch * params.outChannels, 1,
        [&](Index plane0, Index plane1) {
            for (Index plane = plane0; plane < plane1; ++plane) {
                const Index n = plane / params.outChannels;
                const Index co = plane % params.outChannels;
                if (fast)
                    convPlaneFast(params, input, filter, out, n, co);
                else
                    convPlaneScalar(params, input, filter, out, n, co);
            }
        });
    return out;
}

Tensor
makeInput(const ConvParams &params, Layout layout)
{
    return Tensor(params.batch, params.inChannels, params.inH,
                  params.inW, layout);
}

Tensor
makeFilter(const ConvParams &params)
{
    return Tensor(params.outChannels, params.inChannels, params.kernelH,
                  params.kernelW, Layout::NCHW);
}

} // namespace cfconv::tensor
