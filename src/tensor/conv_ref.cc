#include "tensor/conv_ref.h"

namespace cfconv::tensor {

Tensor
convDirect(const ConvParams &params, const Tensor &input,
           const Tensor &filter)
{
    params.validate();
    CFCONV_FATAL_IF(input.n() != params.batch ||
                    input.c() != params.inChannels ||
                    input.h() != params.inH || input.w() != params.inW,
                    "convDirect: input dims do not match params (%s)",
                    params.toString().c_str());
    CFCONV_FATAL_IF(filter.n() != params.outChannels ||
                    filter.c() != params.inChannels ||
                    filter.h() != params.kernelH ||
                    filter.w() != params.kernelW,
                    "convDirect: filter dims do not match params (%s)",
                    params.toString().c_str());

    const Index ho = params.outH(), wo = params.outW();
    Tensor out(params.batch, params.outChannels, ho, wo, Layout::NCHW);

    for (Index n = 0; n < params.batch; ++n) {
        for (Index co = 0; co < params.outChannels; ++co) {
            for (Index oh = 0; oh < ho; ++oh) {
                for (Index ow = 0; ow < wo; ++ow) {
                    float acc = 0.0f;
                    for (Index ci = 0; ci < params.inChannels; ++ci) {
                        for (Index r = 0; r < params.kernelH; ++r) {
                            const Index ih = oh * params.strideH -
                                params.padH + r * params.dilationH;
                            for (Index s = 0; s < params.kernelW; ++s) {
                                const Index iw = ow * params.strideW -
                                    params.padW + s * params.dilationW;
                                acc += input.atPadded(n, ci, ih, iw) *
                                       filter.at(co, ci, r, s);
                            }
                        }
                    }
                    out.at(n, co, oh, ow) = acc;
                }
            }
        }
    }
    return out;
}

Tensor
makeInput(const ConvParams &params, Layout layout)
{
    return Tensor(params.batch, params.inChannels, params.inH,
                  params.inW, layout);
}

Tensor
makeFilter(const ConvParams &params)
{
    return Tensor(params.outChannels, params.inChannels, params.kernelH,
                  params.kernelW, Layout::NCHW);
}

} // namespace cfconv::tensor
