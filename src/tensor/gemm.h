/**
 * @file
 * Reference and blocked GEMM over the Matrix type. These are the golden
 * functional kernels the implicit engines are checked against.
 */

#ifndef CFCONV_TENSOR_GEMM_H
#define CFCONV_TENSOR_GEMM_H

#include "common/types.h"
#include "tensor/tensor.h"

namespace cfconv::tensor {

/** C = A(MxK) * B(KxN). Overwrites @p c. */
void gemm(const Matrix &a, const Matrix &b, Matrix &c);

/** C += A(MxK) * B(KxN). */
void gemmAccumulate(const Matrix &a, const Matrix &b, Matrix &c);

/**
 * Cache-blocked GEMM with configurable tile sizes. Functionally identical
 * to gemm(); exists so tests can check that tiling (the basis of every
 * timing model here) is value-preserving.
 */
void gemmBlocked(const Matrix &a, const Matrix &b, Matrix &c,
                 Index tile_m, Index tile_n, Index tile_k);

} // namespace cfconv::tensor

#endif // CFCONV_TENSOR_GEMM_H
