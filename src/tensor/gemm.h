/**
 * @file
 * Reference and blocked GEMM over the Matrix type. These are the golden
 * functional kernels the implicit engines are checked against. All
 * entry points run on the runtime-dispatched micro-kernel subsystem
 * (tensor/microkernel.h); set CFCONV_KERNEL=scalar to reproduce the
 * seed's scalar loop bit-exactly.
 *
 * IEEE note: the reference path never skips zero A operands by default,
 * so 0 * NaN/Inf contributions from B propagate as IEEE requires. The
 * historical sparse-friendly skip is available via
 * GemmOptions::allowZeroSkip (scalar backend only).
 */

#ifndef CFCONV_TENSOR_GEMM_H
#define CFCONV_TENSOR_GEMM_H

#include "common/types.h"
#include "tensor/microkernel.h"
#include "tensor/tensor.h"

namespace cfconv::tensor {

/**
 * C = A(MxK) * B(KxN). Overwrites @p c. Only @p options.allowZeroSkip
 * is consulted; the accumulate/blocking fields are fixed internally.
 */
void gemm(const Matrix &a, const Matrix &b, Matrix &c,
          const GemmOptions &options = {});

/** C += A(MxK) * B(KxN). */
void gemmAccumulate(const Matrix &a, const Matrix &b, Matrix &c,
                    const GemmOptions &options = {});

/**
 * Cache-blocked GEMM with configurable tile sizes. Functionally
 * identical to gemm(); exists so tests can check that tiling (the basis
 * of every timing model here) is value-preserving. @p tile_k drives the
 * packed backends' K-block depth; the scalar backend walks the seed's
 * three-level tile loop with all three sizes.
 */
void gemmBlocked(const Matrix &a, const Matrix &b, Matrix &c,
                 Index tile_m, Index tile_n, Index tile_k,
                 const GemmOptions &options = {});

} // namespace cfconv::tensor

#endif // CFCONV_TENSOR_GEMM_H
