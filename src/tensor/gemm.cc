#include "tensor/gemm.h"

#include <algorithm>

#include "common/parallel.h"

namespace cfconv::tensor {

namespace {

/** Minimum output rows per parallel chunk; small GEMMs stay serial. */
constexpr Index kRowGrain = 16;

void
checkShapes(const Matrix &a, const Matrix &b, const Matrix &c)
{
    CFCONV_FATAL_IF(a.cols() != b.rows(),
                    "gemm: inner dimension mismatch (%lld vs %lld)",
                    static_cast<long long>(a.cols()),
                    static_cast<long long>(b.rows()));
    CFCONV_FATAL_IF(c.rows() != a.rows() || c.cols() != b.cols(),
                    "gemm: output shape mismatch");
}

} // namespace

void
gemm(const Matrix &a, const Matrix &b, Matrix &c)
{
    c.fill(0.0f);
    gemmAccumulate(a, b, c);
}

void
gemmAccumulate(const Matrix &a, const Matrix &b, Matrix &c)
{
    checkShapes(a, b, c);
    const Index m = a.rows(), k = a.cols(), n = b.cols();
    const float *adata = a.data();
    const float *bdata = b.data();
    float *cdata = c.data();
    // Workers own disjoint row blocks of C; the per-row accumulation
    // order is identical to the serial loop, so results are bit-exact
    // at any thread count.
    parallel::parallelFor(0, m, kRowGrain, [&](Index i0, Index i1) {
        for (Index i = i0; i < i1; ++i) {
            const float *arow = adata + i * k;
            float *crow = cdata + i * n;
            for (Index p = 0; p < k; ++p) {
                const float av = arow[p];
                if (av == 0.0f)
                    continue;
                const float *brow = bdata + p * n;
                for (Index j = 0; j < n; ++j)
                    crow[j] += av * brow[j];
            }
        }
    });
}

void
gemmBlocked(const Matrix &a, const Matrix &b, Matrix &c,
            Index tile_m, Index tile_n, Index tile_k)
{
    checkShapes(a, b, c);
    CFCONV_FATAL_IF(tile_m < 1 || tile_n < 1 || tile_k < 1,
                    "gemmBlocked: non-positive tile size");
    c.fill(0.0f);
    const Index m = a.rows(), k = a.cols(), n = b.cols();
    const float *adata = a.data();
    const float *bdata = b.data();
    float *cdata = c.data();
    // Parallel over row blocks (each owns its rows of C); the j0/p0
    // tile walk inside a block matches the serial ordering exactly.
    const Index m_blocks = divCeil(m, tile_m);
    parallel::parallelFor(0, m_blocks, 1, [&](Index blk0, Index blk1) {
        for (Index blk = blk0; blk < blk1; ++blk) {
            const Index i0 = blk * tile_m;
            const Index i1 = std::min(i0 + tile_m, m);
            for (Index j0 = 0; j0 < n; j0 += tile_n) {
                for (Index p0 = 0; p0 < k; p0 += tile_k) {
                    const Index j1 = std::min(j0 + tile_n, n);
                    const Index p1 = std::min(p0 + tile_k, k);
                    for (Index i = i0; i < i1; ++i) {
                        const float *arow = adata + i * k;
                        float *crow = cdata + i * n;
                        for (Index p = p0; p < p1; ++p) {
                            // Same zero-skip as gemmAccumulate: the
                            // two reference paths stay consistent and
                            // sparse operands cost nothing.
                            const float av = arow[p];
                            if (av == 0.0f)
                                continue;
                            const float *brow = bdata + p * n;
                            for (Index j = j0; j < j1; ++j)
                                crow[j] += av * brow[j];
                        }
                    }
                }
            }
        }
    });
}

} // namespace cfconv::tensor
