#include "tensor/gemm.h"

#include <algorithm>

namespace cfconv::tensor {

namespace {

void
checkShapes(const Matrix &a, const Matrix &b, const Matrix &c)
{
    CFCONV_FATAL_IF(a.cols() != b.rows(),
                    "gemm: inner dimension mismatch (%lld vs %lld)",
                    static_cast<long long>(a.cols()),
                    static_cast<long long>(b.rows()));
    CFCONV_FATAL_IF(c.rows() != a.rows() || c.cols() != b.cols(),
                    "gemm: output shape mismatch");
}

} // namespace

void
gemm(const Matrix &a, const Matrix &b, Matrix &c)
{
    c.fill(0.0f);
    gemmAccumulate(a, b, c);
}

void
gemmAccumulate(const Matrix &a, const Matrix &b, Matrix &c)
{
    checkShapes(a, b, c);
    const Index m = a.rows(), k = a.cols(), n = b.cols();
    for (Index i = 0; i < m; ++i) {
        for (Index p = 0; p < k; ++p) {
            const float av = a.at(i, p);
            if (av == 0.0f)
                continue;
            for (Index j = 0; j < n; ++j)
                c.at(i, j) += av * b.at(p, j);
        }
    }
}

void
gemmBlocked(const Matrix &a, const Matrix &b, Matrix &c,
            Index tile_m, Index tile_n, Index tile_k)
{
    checkShapes(a, b, c);
    CFCONV_FATAL_IF(tile_m < 1 || tile_n < 1 || tile_k < 1,
                    "gemmBlocked: non-positive tile size");
    c.fill(0.0f);
    const Index m = a.rows(), k = a.cols(), n = b.cols();
    for (Index i0 = 0; i0 < m; i0 += tile_m) {
        for (Index j0 = 0; j0 < n; j0 += tile_n) {
            for (Index p0 = 0; p0 < k; p0 += tile_k) {
                const Index i1 = std::min(i0 + tile_m, m);
                const Index j1 = std::min(j0 + tile_n, n);
                const Index p1 = std::min(p0 + tile_k, k);
                for (Index i = i0; i < i1; ++i)
                    for (Index p = p0; p < p1; ++p)
                        for (Index j = j0; j < j1; ++j)
                            c.at(i, j) += a.at(i, p) * b.at(p, j);
            }
        }
    }
}

} // namespace cfconv::tensor
