#include "tensor/gemm.h"

#include "tensor/microkernel.h"

namespace cfconv::tensor {

namespace {

void
checkShapes(const Matrix &a, const Matrix &b, const Matrix &c)
{
    CFCONV_FATAL_IF(a.cols() != b.rows(),
                    "gemm: inner dimension mismatch (%lld vs %lld)",
                    static_cast<long long>(a.cols()),
                    static_cast<long long>(b.rows()));
    CFCONV_FATAL_IF(c.rows() != a.rows() || c.cols() != b.cols(),
                    "gemm: output shape mismatch");
}

} // namespace

void
gemm(const Matrix &a, const Matrix &b, Matrix &c,
     const GemmOptions &options)
{
    checkShapes(a, b, c);
    GemmOptions opts = options;
    opts.accumulate = false;
    opts.kcOverride = 0;
    microkernelGemm(a.rows(), b.cols(), a.cols(), a.data(), a.cols(),
                    b.data(), b.cols(), c.data(), c.cols(), opts);
}

void
gemmAccumulate(const Matrix &a, const Matrix &b, Matrix &c,
               const GemmOptions &options)
{
    checkShapes(a, b, c);
    GemmOptions opts = options;
    opts.accumulate = true;
    opts.kcOverride = 0;
    microkernelGemm(a.rows(), b.cols(), a.cols(), a.data(), a.cols(),
                    b.data(), b.cols(), c.data(), c.cols(), opts);
}

void
gemmBlocked(const Matrix &a, const Matrix &b, Matrix &c, Index tile_m,
            Index tile_n, Index tile_k, const GemmOptions &options)
{
    checkShapes(a, b, c);
    GemmOptions opts = options;
    opts.accumulate = false;
    microkernelGemmBlocked(a.rows(), b.cols(), a.cols(), a.data(),
                           a.cols(), b.data(), b.cols(), c.data(),
                           c.cols(), tile_m, tile_n, tile_k, opts);
}

} // namespace cfconv::tensor
