/**
 * @file
 * Memory layouts for 4-D activation tensors. The paper's algorithm hinges
 * on the distinction between the conventional CHW-major layouts and the
 * channel-first HWC/HWCN layouts (Sec. III, Fig 5-7).
 */

#ifndef CFCONV_TENSOR_LAYOUT_H
#define CFCONV_TENSOR_LAYOUT_H

namespace cfconv::tensor {

/**
 * Storage order of a logical (N, C, H, W) tensor, innermost dimension
 * last in the name (e.g., NHWC has C contiguous).
 */
enum class Layout {
    NCHW, ///< Conventional "CHW" framework layout.
    NHWC, ///< Channel-first "HWC" layout used by the proposed algorithm.
    HWCN, ///< TPU vector-memory layout: batch innermost (Sec. IV-A).
    CHWN, ///< Channel-major with batch innermost (for comparison).
};

/** @return a printable name for @p layout. */
constexpr const char *
layoutName(Layout layout)
{
    switch (layout) {
      case Layout::NCHW:
        return "NCHW";
      case Layout::NHWC:
        return "NHWC";
      case Layout::HWCN:
        return "HWCN";
      case Layout::CHWN:
        return "CHWN";
    }
    return "unknown";
}

/**
 * Column order of the lowered (im2col) matrix's K = HF*WF*CI dimension
 * (Fig 6). ChannelLast expands C_I -> H_F -> W_F (a full sliding window
 * per channel, the conventional order); ChannelFirst expands
 * H_F -> W_F -> C_I (all channels of one filter position contiguously,
 * the paper's proposal).
 */
enum class ColumnOrder {
    ChannelLast,
    ChannelFirst,
};

/** @return a printable name for @p order. */
constexpr const char *
columnOrderName(ColumnOrder order)
{
    return order == ColumnOrder::ChannelLast ? "channel-last"
                                             : "channel-first";
}

} // namespace cfconv::tensor

#endif // CFCONV_TENSOR_LAYOUT_H
