#include "tensor/winograd.h"

#include <array>

#include "common/logging.h"

namespace cfconv::tensor {

namespace {

using Mat4 = std::array<std::array<float, 4>, 4>;

/** V = B^T d B for the 4x4 data tile d. */
Mat4
transformData(const Mat4 &d)
{
    // B^T = [1  0 -1  0; 0  1  1  0; 0 -1  1  0; 0  1  0 -1]
    Mat4 t{}; // B^T d
    for (int j = 0; j < 4; ++j) {
        t[0][j] = d[0][j] - d[2][j];
        t[1][j] = d[1][j] + d[2][j];
        t[2][j] = d[2][j] - d[1][j];
        t[3][j] = d[1][j] - d[3][j];
    }
    Mat4 v{}; // (B^T d) B
    for (int i = 0; i < 4; ++i) {
        v[i][0] = t[i][0] - t[i][2];
        v[i][1] = t[i][1] + t[i][2];
        v[i][2] = t[i][2] - t[i][1];
        v[i][3] = t[i][1] - t[i][3];
    }
    return v;
}

/** U = G g G^T for the 3x3 filter tap g. */
Mat4
transformFilter(const std::array<std::array<float, 3>, 3> &g)
{
    // G = [1 0 0; .5 .5 .5; .5 -.5 .5; 0 0 1]
    std::array<std::array<float, 3>, 4> t{};
    for (int j = 0; j < 3; ++j) {
        t[0][j] = g[0][j];
        t[1][j] = 0.5f * (g[0][j] + g[1][j] + g[2][j]);
        t[2][j] = 0.5f * (g[0][j] - g[1][j] + g[2][j]);
        t[3][j] = g[2][j];
    }
    Mat4 u{};
    for (int i = 0; i < 4; ++i) {
        u[i][0] = t[i][0];
        u[i][1] = 0.5f * (t[i][0] + t[i][1] + t[i][2]);
        u[i][2] = 0.5f * (t[i][0] - t[i][1] + t[i][2]);
        u[i][3] = t[i][2];
    }
    return u;
}

/** Y = A^T m A: fold the 4x4 element-wise product to the 2x2 output. */
std::array<std::array<float, 2>, 2>
transformOutput(const Mat4 &m)
{
    // A^T = [1 1 1 0; 0 1 -1 -1]
    std::array<std::array<float, 4>, 2> t{};
    for (int j = 0; j < 4; ++j) {
        t[0][j] = m[0][j] + m[1][j] + m[2][j];
        t[1][j] = m[1][j] - m[2][j] - m[3][j];
    }
    std::array<std::array<float, 2>, 2> y{};
    for (int i = 0; i < 2; ++i) {
        y[i][0] = t[i][0] + t[i][1] + t[i][2];
        y[i][1] = t[i][1] - t[i][2] - t[i][3];
    }
    return y;
}

} // namespace

bool
winogradApplicable(const ConvParams &params)
{
    return params.kernelH == 3 && params.kernelW == 3 &&
           params.strideH == 1 && params.strideW == 1 &&
           params.dilationH == 1 && params.dilationW == 1;
}

Tensor
convWinograd(const ConvParams &params, const Tensor &input,
             const Tensor &filter)
{
    params.validate();
    CFCONV_FATAL_IF(!winogradApplicable(params),
                    "convWinograd: F(2x2, 3x3) needs a 3x3 stride-1 "
                    "undilated kernel (%s)", params.toString().c_str());

    const Index ho = params.outH(), wo = params.outW();
    Tensor out(params.batch, params.outChannels, ho, wo);

    // Pre-transform every filter tap once: U[co][ci] is 4x4.
    std::vector<Mat4> u(static_cast<size_t>(params.outChannels *
                                            params.inChannels));
    for (Index co = 0; co < params.outChannels; ++co) {
        for (Index ci = 0; ci < params.inChannels; ++ci) {
            std::array<std::array<float, 3>, 3> g{};
            for (int r = 0; r < 3; ++r)
                for (int s = 0; s < 3; ++s)
                    g[static_cast<size_t>(r)][static_cast<size_t>(s)] =
                        filter.at(co, ci, r, s);
            u[static_cast<size_t>(co * params.inChannels + ci)] =
                transformFilter(g);
        }
    }

    for (Index n = 0; n < params.batch; ++n) {
        for (Index oh0 = 0; oh0 < ho; oh0 += 2) {
            for (Index ow0 = 0; ow0 < wo; ow0 += 2) {
                // Transform the 4x4 data tile per input channel once.
                std::vector<Mat4> v(
                    static_cast<size_t>(params.inChannels));
                for (Index ci = 0; ci < params.inChannels; ++ci) {
                    Mat4 d{};
                    for (int r = 0; r < 4; ++r)
                        for (int s = 0; s < 4; ++s)
                            d[static_cast<size_t>(r)]
                             [static_cast<size_t>(s)] = input.atPadded(
                                 n, ci, oh0 - params.padH + r,
                                 ow0 - params.padW + s);
                    v[static_cast<size_t>(ci)] = transformData(d);
                }
                for (Index co = 0; co < params.outChannels; ++co) {
                    Mat4 m{};
                    for (Index ci = 0; ci < params.inChannels; ++ci) {
                        const Mat4 &uu = u[static_cast<size_t>(
                            co * params.inChannels + ci)];
                        const Mat4 &vv = v[static_cast<size_t>(ci)];
                        for (int i = 0; i < 4; ++i)
                            for (int j = 0; j < 4; ++j)
                                m[static_cast<size_t>(i)]
                                 [static_cast<size_t>(j)] +=
                                    uu[static_cast<size_t>(i)]
                                      [static_cast<size_t>(j)] *
                                    vv[static_cast<size_t>(i)]
                                      [static_cast<size_t>(j)];
                    }
                    const auto y = transformOutput(m);
                    for (int i = 0; i < 2; ++i)
                        for (int j = 0; j < 2; ++j)
                            if (oh0 + i < ho && ow0 + j < wo)
                                out.at(n, co, oh0 + i, ow0 + j) =
                                    y[static_cast<size_t>(i)]
                                     [static_cast<size_t>(j)];
                }
            }
        }
    }
    return out;
}

WinogradCost
winogradCost(const ConvParams &params)
{
    CFCONV_FATAL_IF(!winogradApplicable(params),
                    "winogradCost: outside F(2x2, 3x3)'s domain");
    WinogradCost cost;
    const Flops tiles =
        static_cast<Flops>(params.batch) *
        static_cast<Flops>(divCeil(params.outH(), Index{2})) *
        static_cast<Flops>(divCeil(params.outW(), Index{2}));
    // Element-wise stage only (the transforms are adds + cheap scales).
    cost.winogradMuls = tiles * 16ULL *
                        static_cast<Flops>(params.inChannels) *
                        static_cast<Flops>(params.outChannels);
    cost.directMuls = static_cast<Flops>(params.outputElems()) * 9ULL *
                      static_cast<Flops>(params.inChannels);
    return cost;
}

} // namespace cfconv::tensor
