#include "tensor/microkernel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/parallel.h"
#include "tensor/microkernel_kernels.h"

namespace cfconv::tensor {

namespace {

constexpr Index MR = kMicroRows;
constexpr Index NR = kMicroCols;

/** Minimum output rows per parallel chunk; small GEMMs stay serial. */
constexpr Index kRowGrain = 16;

/** Below this many MACs the pool dispatch overhead dominates. */
constexpr Index kSerialMacThreshold = 1 << 15;

bool
cpuHasAvx2Fma()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_cpu_init();
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
    return false;
#endif
}

/** Resolve the startup backend: env override first, then CPUID. */
KernelBackend
resolveBackend()
{
    const char *env = std::getenv("CFCONV_KERNEL");
    const KernelBackend best = kernelBackendAvailable(KernelBackend::Avx2)
                                   ? KernelBackend::Avx2
                                   : KernelBackend::Generic;
    if (env != nullptr && env[0] != '\0') {
        std::string want(env);
        KernelBackend requested;
        if (want == "scalar") {
            requested = KernelBackend::Scalar;
        } else if (want == "generic") {
            requested = KernelBackend::Generic;
        } else if (want == "avx2") {
            requested = KernelBackend::Avx2;
        } else {
            fatal("CFCONV_KERNEL=%s is not a kernel backend (supported: "
                  "avx2, generic, scalar)",
                  env);
        }
        if (!kernelBackendAvailable(requested)) {
            warn("CFCONV_KERNEL=%s unavailable on this build/CPU; using "
                 "%s",
                 env, kernelBackendName(best));
            return best;
        }
        inform("gemm micro-kernel backend: %s (CFCONV_KERNEL override)",
               kernelBackendName(requested));
        return requested;
    }
    inform("gemm micro-kernel backend: %s (runtime CPU dispatch)",
           kernelBackendName(best));
    return best;
}

/** Active backend; -1 until first resolution. */
std::atomic<int> g_active{-1};
std::once_flag g_resolve_once;

using PanelKernel = void (*)(Index kc, const float *a_panel,
                             const float *b_panel, float *c, Index ldc,
                             bool load_c);

/**
 * Plain-C twin of the AVX2 panel kernel: same packed operands, same
 * ascending-p accumulation order, fixed 8-wide inner loop the compiler
 * can vectorize without any ISA-specific flags.
 */
void
gemmPanelGeneric(Index kc, const float *a_panel, const float *b_panel,
                 float *c, Index ldc, bool load_c)
{
    float acc[MR][NR];
    if (load_c) {
        for (Index i = 0; i < MR; ++i)
            for (Index j = 0; j < NR; ++j)
                acc[i][j] = c[i * ldc + j];
    } else {
        for (Index i = 0; i < MR; ++i)
            for (Index j = 0; j < NR; ++j)
                acc[i][j] = 0.0f;
    }
    for (Index p = 0; p < kc; ++p) {
        const float *a = a_panel + p * MR;
        const float *b = b_panel + p * NR;
        for (Index i = 0; i < MR; ++i) {
            const float av = a[i];
            for (Index j = 0; j < NR; ++j)
                acc[i][j] += av * b[j];
        }
    }
    for (Index i = 0; i < MR; ++i)
        for (Index j = 0; j < NR; ++j)
            c[i * ldc + j] = acc[i][j];
}

/**
 * The seed's reference loop, kept verbatim as the scalar backend:
 * row-parallel, strictly ascending (p, j) per row, with the historical
 * zero-skip now gated behind options.allowZeroSkip.
 */
void
scalarGemm(Index m, Index n, Index k, const float *a, Index lda,
           const float *b, Index ldb, float *c, Index ldc,
           const GemmOptions &options)
{
    parallel::parallelFor(0, m, kRowGrain, [&](Index i0, Index i1) {
        for (Index i = i0; i < i1; ++i) {
            const float *arow = a + i * lda;
            float *crow = c + i * ldc;
            if (!options.accumulate)
                std::fill(crow, crow + n, 0.0f);
            for (Index p = 0; p < k; ++p) {
                const float av = arow[p];
                if (options.allowZeroSkip && av == 0.0f)
                    continue;
                const float *brow = b + p * ldb;
                for (Index j = 0; j < n; ++j)
                    crow[j] += av * brow[j];
            }
        }
    });
}

/**
 * The seed's blocked reference loop (scalar backend of
 * microkernelGemmBlocked): parallel over row blocks, serial j0/p0 tile
 * walk inside each block, exactly the historical ordering.
 */
void
scalarGemmBlocked(Index m, Index n, Index k, const float *a, Index lda,
                  const float *b, Index ldb, float *c, Index ldc,
                  Index tile_m, Index tile_n, Index tile_k,
                  const GemmOptions &options)
{
    const Index m_blocks = divCeil(m, tile_m);
    parallel::parallelFor(0, m_blocks, 1, [&](Index blk0, Index blk1) {
        for (Index blk = blk0; blk < blk1; ++blk) {
            const Index i0 = blk * tile_m;
            const Index i1 = std::min(i0 + tile_m, m);
            for (Index i = i0; i < i1; ++i)
                std::fill(c + i * ldc, c + i * ldc + n, 0.0f);
            for (Index j0 = 0; j0 < n; j0 += tile_n) {
                for (Index p0 = 0; p0 < k; p0 += tile_k) {
                    const Index j1 = std::min(j0 + tile_n, n);
                    const Index p1 = std::min(p0 + tile_k, k);
                    for (Index i = i0; i < i1; ++i) {
                        const float *arow = a + i * lda;
                        float *crow = c + i * ldc;
                        for (Index p = p0; p < p1; ++p) {
                            const float av = arow[p];
                            if (options.allowZeroSkip && av == 0.0f)
                                continue;
                            const float *brow = b + p * ldb;
                            for (Index j = j0; j < j1; ++j)
                                crow[j] += av * brow[j];
                        }
                    }
                }
            }
        }
    });
}

PanelKernel
panelKernelFor(KernelBackend backend)
{
    return backend == KernelBackend::Avx2 ? detail::gemmPanelAvx2
                                          : gemmPanelGeneric;
}

/**
 * Cache-blocked packed GEMM driver shared by the avx2 and generic
 * backends. B is packed once into NR-column panels per KC block (pure
 * relayout, so parallel packing is trivially deterministic); each
 * worker owns disjoint MR-row blocks of C, packs the matching A
 * micro-panel thread-locally, and walks the KC panels in serial order,
 * so per-element accumulation is identical at any thread count.
 */
void
packedGemm(Index m, Index n, Index k, const float *a, Index lda,
           const float *b, Index ldb, float *c, Index ldc,
           const GemmOptions &options, PanelKernel kernel)
{
    const Index kc_max =
        options.kcOverride > 0 ? options.kcOverride : kPanelK;
    const Index n_strips = divCeil(n, NR);
    const Index packed_n = n_strips * NR;

    // Panel-major B packing: the KC block starting at row p0 occupies
    // [p0 * packed_n, (p0 + kc) * packed_n); within it, column strip s
    // is a contiguous kc x NR micro-panel (zero-padded past column n).
    std::vector<float> b_pack(static_cast<size_t>(packed_n * k));
    const bool serial = 2 * m * n * k < kSerialMacThreshold;
    auto packStrips = [&](Index s0, Index s1) {
        for (Index s = s0; s < s1; ++s) {
            for (Index p0 = 0; p0 < k; p0 += kc_max) {
                const Index kc = std::min(kc_max, k - p0);
                float *dst =
                    b_pack.data() + p0 * packed_n + s * kc * NR;
                for (Index p = 0; p < kc; ++p) {
                    const float *brow = b + (p0 + p) * ldb + s * NR;
                    const Index valid = std::min(NR, n - s * NR);
                    for (Index jj = 0; jj < valid; ++jj)
                        dst[p * NR + jj] = brow[jj];
                    for (Index jj = valid; jj < NR; ++jj)
                        dst[p * NR + jj] = 0.0f;
                }
            }
        }
    };

    const Index m_blocks = divCeil(m, MR);
    auto computeBlocks = [&](Index ib0, Index ib1) {
        static thread_local std::vector<float> a_pack;
        a_pack.resize(static_cast<size_t>(kc_max * MR));
        float c_tmp[MR * NR];
        for (Index ib = ib0; ib < ib1; ++ib) {
            const Index i0 = ib * MR;
            const Index mr = std::min(MR, m - i0);
            for (Index p0 = 0; p0 < k; p0 += kc_max) {
                const Index kc = std::min(kc_max, k - p0);
                for (Index p = 0; p < kc; ++p) {
                    const float *acol = a + i0 * lda + (p0 + p);
                    for (Index ii = 0; ii < MR; ++ii)
                        a_pack[static_cast<size_t>(p * MR + ii)] =
                            ii < mr ? acol[ii * lda] : 0.0f;
                }
                const bool load_c = options.accumulate || p0 > 0;
                for (Index s = 0; s < n_strips; ++s) {
                    const Index j0 = s * NR;
                    const Index nr = std::min(NR, n - j0);
                    const float *bp =
                        b_pack.data() + p0 * packed_n + s * kc * NR;
                    float *cp = c + i0 * ldc + j0;
                    if (mr == MR && nr == NR) {
                        kernel(kc, a_pack.data(), bp, cp, ldc, load_c);
                        continue;
                    }
                    // Edge tile: stage the valid C region in a full
                    // 8x8 scratch tile. The scratch round-trips fp32
                    // values exactly, so edge outputs see the same op
                    // sequence as interior ones.
                    if (load_c) {
                        std::memset(c_tmp, 0, sizeof(c_tmp));
                        for (Index ii = 0; ii < mr; ++ii)
                            for (Index jj = 0; jj < nr; ++jj)
                                c_tmp[ii * NR + jj] = cp[ii * ldc + jj];
                    }
                    kernel(kc, a_pack.data(), bp, c_tmp, NR, load_c);
                    for (Index ii = 0; ii < mr; ++ii)
                        for (Index jj = 0; jj < nr; ++jj)
                            cp[ii * ldc + jj] = c_tmp[ii * NR + jj];
                }
            }
        }
    };

    if (serial) {
        packStrips(0, n_strips);
        computeBlocks(0, m_blocks);
    } else {
        parallel::parallelFor(0, n_strips, 4, packStrips);
        parallel::parallelFor(0, m_blocks, 2, computeBlocks);
    }
}

/** Zero (overwrite mode) or preserve C when K == 0: no products exist. */
void
handleEmptyK(Index m, Index n, float *c, Index ldc,
             const GemmOptions &options)
{
    if (options.accumulate)
        return;
    for (Index i = 0; i < m; ++i)
        std::fill(c + i * ldc, c + i * ldc + n, 0.0f);
}

} // namespace

const char *
kernelBackendName(KernelBackend backend)
{
    switch (backend) {
      case KernelBackend::Scalar:
        return "scalar";
      case KernelBackend::Generic:
        return "generic";
      case KernelBackend::Avx2:
        return "avx2";
    }
    return "unknown";
}

bool
kernelBackendAvailable(KernelBackend backend)
{
    if (backend == KernelBackend::Avx2)
        return detail::avx2CompiledIn() && cpuHasAvx2Fma();
    return true;
}

KernelBackend
activeKernelBackend()
{
    std::call_once(g_resolve_once, [] {
        g_active.store(static_cast<int>(resolveBackend()),
                       std::memory_order_relaxed);
    });
    return static_cast<KernelBackend>(
        g_active.load(std::memory_order_relaxed));
}

const char *
activeKernelBackendName()
{
    return kernelBackendName(activeKernelBackend());
}

void
setKernelBackend(KernelBackend backend)
{
    CFCONV_FATAL_IF(!kernelBackendAvailable(backend),
                    "setKernelBackend: %s backend unavailable on this "
                    "build/CPU",
                    kernelBackendName(backend));
    activeKernelBackend(); // force the one-time resolution/log first
    g_active.store(static_cast<int>(backend), std::memory_order_relaxed);
}

void
resetKernelBackend()
{
    activeKernelBackend();
    const char *env = std::getenv("CFCONV_KERNEL");
    KernelBackend def = kernelBackendAvailable(KernelBackend::Avx2)
                            ? KernelBackend::Avx2
                            : KernelBackend::Generic;
    if (env != nullptr && env[0] != '\0') {
        const std::string want(env);
        if (want == "scalar")
            def = KernelBackend::Scalar;
        else if (want == "generic")
            def = KernelBackend::Generic;
        // avx2/invalid: keep the CPUID default resolved above
    }
    g_active.store(static_cast<int>(def), std::memory_order_relaxed);
}

void
microkernelGemm(Index m, Index n, Index k, const float *a, Index lda,
                const float *b, Index ldb, float *c, Index ldc,
                const GemmOptions &options)
{
    if (m <= 0 || n <= 0)
        return;
    if (k <= 0) {
        handleEmptyK(m, n, c, ldc, options);
        return;
    }
    const KernelBackend backend = activeKernelBackend();
    if (backend == KernelBackend::Scalar) {
        scalarGemm(m, n, k, a, lda, b, ldb, c, ldc, options);
        return;
    }
    packedGemm(m, n, k, a, lda, b, ldb, c, ldc, options,
               panelKernelFor(backend));
}

void
microkernelGemmBlocked(Index m, Index n, Index k, const float *a,
                       Index lda, const float *b, Index ldb, float *c,
                       Index ldc, Index tile_m, Index tile_n,
                       Index tile_k, const GemmOptions &options)
{
    CFCONV_FATAL_IF(tile_m < 1 || tile_n < 1 || tile_k < 1,
                    "gemmBlocked: non-positive tile size");
    if (m <= 0 || n <= 0)
        return;
    if (k <= 0) {
        handleEmptyK(m, n, c, ldc, options);
        return;
    }
    const KernelBackend backend = activeKernelBackend();
    if (backend == KernelBackend::Scalar) {
        scalarGemmBlocked(m, n, k, a, lda, b, ldb, c, ldc, tile_m,
                          tile_n, tile_k, options);
        return;
    }
    GemmOptions opts = options;
    opts.kcOverride = tile_k;
    opts.accumulate = false;
    packedGemm(m, n, k, a, lda, b, ldb, c, ldc, opts,
               panelKernelFor(backend));
}

float
dotProduct(const float *x, const float *y, Index n)
{
    const KernelBackend backend = activeKernelBackend();
    if (backend == KernelBackend::Avx2)
        return detail::dotAvx2(x, y, n);
    if (backend == KernelBackend::Generic) {
        // Eight independent partial sums (vectorizable without
        // reassociation license), combined in a fixed pairwise order.
        float lane[8] = {0, 0, 0, 0, 0, 0, 0, 0};
        Index i = 0;
        for (; i + 8 <= n; i += 8)
            for (Index l = 0; l < 8; ++l)
                lane[l] += x[i + l] * y[i + l];
        float sum = ((lane[0] + lane[4]) + (lane[2] + lane[6])) +
                    ((lane[1] + lane[5]) + (lane[3] + lane[7]));
        for (; i < n; ++i)
            sum += x[i] * y[i];
        return sum;
    }
    float sum = 0.0f;
    for (Index i = 0; i < n; ++i)
        sum += x[i] * y[i];
    return sum;
}

void
vectorAddInto(float *dst, const float *src, Index n)
{
    if (activeKernelBackend() == KernelBackend::Avx2) {
        detail::addIntoAvx2(dst, src, n);
        return;
    }
    for (Index i = 0; i < n; ++i)
        dst[i] += src[i];
}

void
vectorAxpyInto(float *dst, const float *src, float scale, Index n)
{
    if (activeKernelBackend() == KernelBackend::Avx2) {
        detail::axpyIntoAvx2(dst, src, scale, n);
        return;
    }
    for (Index i = 0; i < n; ++i)
        dst[i] += scale * src[i];
}

} // namespace cfconv::tensor
