#include "tensor/conv_params.h"

#include "common/logging.h"

namespace cfconv::tensor {

void
ConvParams::validate() const
{
    CFCONV_FATAL_IF(batch < 1, "conv: batch %lld < 1",
                    static_cast<long long>(batch));
    CFCONV_FATAL_IF(inChannels < 1 || outChannels < 1,
                    "conv: channels must be positive (C_I=%lld C_O=%lld)",
                    static_cast<long long>(inChannels),
                    static_cast<long long>(outChannels));
    CFCONV_FATAL_IF(inH < 1 || inW < 1, "conv: input %lldx%lld invalid",
                    static_cast<long long>(inH),
                    static_cast<long long>(inW));
    CFCONV_FATAL_IF(kernelH < 1 || kernelW < 1,
                    "conv: kernel %lldx%lld invalid",
                    static_cast<long long>(kernelH),
                    static_cast<long long>(kernelW));
    CFCONV_FATAL_IF(strideH < 1 || strideW < 1,
                    "conv: stride %lldx%lld invalid",
                    static_cast<long long>(strideH),
                    static_cast<long long>(strideW));
    CFCONV_FATAL_IF(dilationH < 1 || dilationW < 1,
                    "conv: dilation %lldx%lld invalid",
                    static_cast<long long>(dilationH),
                    static_cast<long long>(dilationW));
    CFCONV_FATAL_IF(padH < 0 || padW < 0, "conv: negative padding");
    CFCONV_FATAL_IF(inH + 2 * padH < effKernelH() ||
                    inW + 2 * padW < effKernelW(),
                    "conv: kernel does not fit padded input (%s)",
                    toString().c_str());
}

std::string
ConvParams::toString() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "N%lld C%lld %lldx%lld k%lldx%lld s%lld p%lld d%lld "
                  "-> C%lld %lldx%lld",
                  static_cast<long long>(batch),
                  static_cast<long long>(inChannels),
                  static_cast<long long>(inH),
                  static_cast<long long>(inW),
                  static_cast<long long>(kernelH),
                  static_cast<long long>(kernelW),
                  static_cast<long long>(strideH),
                  static_cast<long long>(padH),
                  static_cast<long long>(dilationH),
                  static_cast<long long>(outChannels),
                  static_cast<long long>(outH()),
                  static_cast<long long>(outW()));
    return buf;
}

ConvParams
makeConvRect(Index batch, Index in_channels, Index in_h, Index in_w,
             Index out_channels, Index kernel_h, Index kernel_w,
             Index stride_h, Index stride_w, Index pad_h, Index pad_w,
             Index dilation_h, Index dilation_w)
{
    ConvParams p;
    p.batch = batch;
    p.inChannels = in_channels;
    p.inH = in_h;
    p.inW = in_w;
    p.outChannels = out_channels;
    p.kernelH = kernel_h;
    p.kernelW = kernel_w;
    p.strideH = stride_h;
    p.strideW = stride_w;
    p.padH = pad_h;
    p.padW = pad_w;
    p.dilationH = dilation_h;
    p.dilationW = dilation_w;
    p.validate();
    return p;
}

ConvParams
makeConv(Index batch, Index in_channels, Index in_hw, Index out_channels,
         Index kernel, Index stride, Index pad, Index dilation)
{
    ConvParams p;
    p.batch = batch;
    p.inChannels = in_channels;
    p.inH = p.inW = in_hw;
    p.outChannels = out_channels;
    p.kernelH = p.kernelW = kernel;
    p.strideH = p.strideW = stride;
    p.padH = p.padW = pad;
    p.dilationH = p.dilationW = dilation;
    p.validate();
    return p;
}

} // namespace cfconv::tensor
