/**
 * @file
 * Non-GEMM network layers: pooling, batch normalization (inference),
 * and ReLU. The paper cites exactly these as the reason the TPU skews
 * address generation instead of the data layout (Sec. IV-A) — the
 * vector unit must be able to consume activations unskewed. These
 * functional implementations complete the layer set needed to run a
 * whole CNN through the library.
 */

#ifndef CFCONV_TENSOR_NN_OPS_H
#define CFCONV_TENSOR_NN_OPS_H

#include <vector>

#include "tensor/tensor.h"

namespace cfconv::tensor {

/** Pooling window geometry. */
struct PoolParams
{
    Index kernelH = 2;
    Index kernelW = 2;
    Index strideH = 2;
    Index strideW = 2;
    Index padH = 0;
    Index padW = 0;

    Index outH(Index in_h) const;
    Index outW(Index in_w) const;
    void validate() const;
};

/** Max pooling; padding cells never win (treated as -inf). */
Tensor maxPool2d(const Tensor &input, const PoolParams &params);

/**
 * Average pooling; the divisor counts only in-bounds cells
 * (count_include_pad = false).
 */
Tensor avgPool2d(const Tensor &input, const PoolParams &params);

/** Per-channel inference-time batch normalization + optional affine. */
struct BatchNormParams
{
    std::vector<float> mean;     ///< per-channel running mean
    std::vector<float> variance; ///< per-channel running variance
    std::vector<float> gamma;    ///< scale (empty = 1)
    std::vector<float> beta;     ///< shift (empty = 0)
    float epsilon = 1e-5f;
};

Tensor batchNorm(const Tensor &input, const BatchNormParams &params);

/** Element-wise max(x, 0). */
Tensor relu(const Tensor &input);

/** Element-wise sum of two same-shaped tensors (residual adds). */
Tensor add(const Tensor &a, const Tensor &b);

} // namespace cfconv::tensor

#endif // CFCONV_TENSOR_NN_OPS_H
