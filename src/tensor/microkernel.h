/**
 * @file
 * SIMD micro-kernel GEMM subsystem: runtime-dispatched, register-tiled
 * inner kernels with cache-blocked operand packing. This is the single
 * hot loop under every functional GEMM in the repo; gemm.h's reference
 * entry points and the simulator functional cores all route here.
 *
 * Kernel hierarchy (see DESIGN.md "Micro-kernel GEMM"):
 *
 *   dispatch  — one backend is resolved at first use from CPUID, with a
 *               CFCONV_KERNEL=avx2|generic|scalar env override;
 *   packing   — A is packed into MR-row panels and B into NR-column
 *               panels per KC-deep cache block so the inner kernel only
 *               ever streams contiguous memory;
 *   kernel    — an MR x NR register-tiled FMA micro-kernel (AVX2+FMA
 *               intrinsics, a plain-C vectorizable 8-wide kernel, or
 *               the historical scalar triple loop).
 *
 * Determinism contract: within a fixed backend, every entry point is
 * bit-exact at any thread count (workers own disjoint row blocks of C
 * and the per-element accumulation order is thread-independent).
 * Different backends may differ by FMA/association rounding and are
 * only required to agree to a documented ULP tolerance.
 */

#ifndef CFCONV_TENSOR_MICROKERNEL_H
#define CFCONV_TENSOR_MICROKERNEL_H

#include "common/types.h"

namespace cfconv::tensor {

/** Register tile height (rows of A per micro-panel). */
constexpr Index kMicroRows = 8;
/** Register tile width (columns of B per micro-panel). */
constexpr Index kMicroCols = 8;
/** Default K-dimension cache-block depth for operand packing. */
constexpr Index kPanelK = 256;

/** The available inner-kernel implementations, slowest first. */
enum class KernelBackend {
    Scalar,  ///< the seed's triple loop; reproduces seed results bit-exactly
    Generic, ///< plain-C 8-wide kernel over packed panels (auto-vectorized)
    Avx2,    ///< AVX2+FMA intrinsics over packed panels
};

/** @return a printable lowercase name ("scalar", "generic", "avx2"). */
const char *kernelBackendName(KernelBackend backend);

/**
 * @return whether @p backend can run on this build/CPU (scalar and
 * generic always can; avx2 needs both the compiled-in TU and CPUID
 * support for AVX2 and FMA).
 */
bool kernelBackendAvailable(KernelBackend backend);

/**
 * The backend all GEMM entry points currently use. Resolved once on
 * first call: CFCONV_KERNEL=avx2|generic|scalar when set (falling back
 * with a warning if the requested backend is unavailable), otherwise
 * the best backend CPUID reports. The selection is logged once.
 */
KernelBackend activeKernelBackend();

/** Printable name of activeKernelBackend(); for bench WALL lines. */
const char *activeKernelBackendName();

/**
 * Force @p backend for subsequent GEMM calls (tests and benches).
 * Fatal if the backend is unavailable on this build/CPU.
 */
void setKernelBackend(KernelBackend backend);

/** Undo setKernelBackend(): back to the env/CPUID resolution. */
void resetKernelBackend();

/**
 * Options for the raw micro-kernel GEMM driver. The gemm.h wrappers
 * fix `accumulate`; callers there only ever choose `allowZeroSkip`.
 */
struct GemmOptions
{
    /** C += A*B instead of C = A*B. */
    bool accumulate = false;

    /**
     * Permit skipping k-terms whose A operand is exactly 0.0f. Off by
     * default: skipping drops 0 * NaN/Inf contributions, so a skipping
     * "reference" GEMM silently diverges from IEEE semantics on
     * non-finite B operands. Only the scalar backend inspects operand
     * values; the packed backends never skip and are IEEE-correct
     * regardless of this flag.
     */
    bool allowZeroSkip = false;

    /**
     * Override the K cache-block depth (kPanelK when 0). Value-
     * preserving within a backend for any positive value: partial
     * products round-trip through C in fp32 exactly, so K-blocking
     * never changes results.
     */
    Index kcOverride = 0;
};

/**
 * C (row-major, leading dimension @p ldc) = or += A (m x k, leading
 * dimension @p lda) * B (k x n, leading dimension @p ldb) using the
 * active backend. This is the raw driver under gemm()/gemmAccumulate();
 * use those unless operating on borrowed buffers (the simulators'
 * staged shared-memory chunks do).
 */
void microkernelGemm(Index m, Index n, Index k, const float *a,
                     Index lda, const float *b, Index ldb, float *c,
                     Index ldc, const GemmOptions &options = {});

/**
 * gemmBlocked()'s engine: honors @p tile_k as the packing depth so the
 * tile sweep genuinely exercises K-blocking. @p tile_m / @p tile_n are
 * validated but do not affect values (packing geometry is fixed by the
 * backend); under the scalar backend the historical three-level tiled
 * loop runs with exactly the seed's tile walk.
 */
void microkernelGemmBlocked(Index m, Index n, Index k, const float *a,
                            Index lda, const float *b, Index ldb,
                            float *c, Index ldc, Index tile_m,
                            Index tile_n, Index tile_k,
                            const GemmOptions &options = {});

/**
 * Dot product of two contiguous float spans using the active backend's
 * vector width (fixed, thread-independent accumulation order). The
 * scalar backend accumulates strictly left-to-right.
 */
float dotProduct(const float *x, const float *y, Index n);

/** dst[i] += src[i] over @p n contiguous floats, vectorized. */
void vectorAddInto(float *dst, const float *src, Index n);

/** dst[i] += scale * src[i] over @p n contiguous floats (SAXPY). */
void vectorAxpyInto(float *dst, const float *src, float scale, Index n);

} // namespace cfconv::tensor

#endif // CFCONV_TENSOR_MICROKERNEL_H
