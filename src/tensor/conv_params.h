/**
 * @file
 * Convolution layer descriptor: geometry, striding, padding, dilation,
 * output-shape and cost computation. This is the workload unit consumed by
 * every simulator and benchmark in cfconv.
 */

#ifndef CFCONV_TENSOR_CONV_PARAMS_H
#define CFCONV_TENSOR_CONV_PARAMS_H

#include <string>

#include "common/types.h"

namespace cfconv::tensor {

/**
 * Parameters of a 2-D convolution. All dimensions are logical; the data
 * layout is chosen separately. Supports strided, padded, and dilated
 * convolution (the CONV variants of Sec. II-C / III-B).
 */
struct ConvParams
{
    Index batch = 1;       ///< N
    Index inChannels = 1;  ///< C_I
    Index inH = 1;         ///< H_I
    Index inW = 1;         ///< W_I
    Index outChannels = 1; ///< C_O
    Index kernelH = 1;     ///< H_F
    Index kernelW = 1;     ///< W_F
    Index strideH = 1;
    Index strideW = 1;
    Index padH = 0;
    Index padW = 0;
    Index dilationH = 1;
    Index dilationW = 1;
    DataType dataType = DataType::Fp16;

    /** Effective kernel extent in H after dilation. */
    Index effKernelH() const { return dilationH * (kernelH - 1) + 1; }
    /** Effective kernel extent in W after dilation. */
    Index effKernelW() const { return dilationW * (kernelW - 1) + 1; }

    /** Output feature map height H_O. */
    Index
    outH() const
    {
        return (inH + 2 * padH - effKernelH()) / strideH + 1;
    }

    /** Output feature map width W_O. */
    Index
    outW() const
    {
        return (inW + 2 * padW - effKernelW()) / strideW + 1;
    }

    /** Rows of the lowered feature matrix: M = N * H_O * W_O. */
    Index gemmM() const { return batch * outH() * outW(); }
    /** Depth of the lowered GEMM: K = H_F * W_F * C_I. */
    Index gemmK() const { return kernelH * kernelW * inChannels; }
    /** Columns of the lowered GEMM: C_O. */
    Index gemmN() const { return outChannels; }

    /** Element count of the IFMap. */
    Index inputElems() const { return batch * inChannels * inH * inW; }
    /** Element count of the OFMap. */
    Index
    outputElems() const
    {
        return batch * outChannels * outH() * outW();
    }
    /** Element count of the filter tensor. */
    Index
    filterElems() const
    {
        return outChannels * inChannels * kernelH * kernelW;
    }
    /** Element count of the materialized lowered feature matrix. */
    Index loweredElems() const { return gemmM() * gemmK(); }

    /** IFMap size in bytes at the configured data type. */
    Bytes
    inputBytes() const
    {
        return static_cast<Bytes>(inputElems()) * dataTypeSize(dataType);
    }
    /** OFMap size in bytes. */
    Bytes
    outputBytes() const
    {
        return static_cast<Bytes>(outputElems()) * dataTypeSize(dataType);
    }
    /** Filter size in bytes. */
    Bytes
    filterBytes() const
    {
        return static_cast<Bytes>(filterElems()) * dataTypeSize(dataType);
    }
    /** Materialized lowered-matrix workspace in bytes (explicit im2col). */
    Bytes
    loweredBytes() const
    {
        return static_cast<Bytes>(loweredElems()) * dataTypeSize(dataType);
    }

    /** Total multiply-accumulate FLOPs (2 per MAC). */
    Flops
    flops() const
    {
        return 2ULL * static_cast<Flops>(gemmM()) *
               static_cast<Flops>(gemmK()) * static_cast<Flops>(gemmN());
    }

    /** @return true when this layer is plain 1x1 / stride 1 / no pad. */
    bool
    isPointwise() const
    {
        return kernelH == 1 && kernelW == 1 && strideH == 1 &&
               strideW == 1 && padH == 0 && padW == 0;
    }

    /** Validate geometry; calls fatal() on nonsense configurations. */
    void validate() const;

    /** Short printable description, e.g. "64x56x56 k3 s2 p1 -> 128". */
    std::string toString() const;

    bool operator==(const ConvParams &other) const = default;
};

/** Convenience builder for square-geometry layers used all over tests. */
ConvParams makeConv(Index batch, Index in_channels, Index in_hw,
                    Index out_channels, Index kernel, Index stride = 1,
                    Index pad = 0, Index dilation = 1);

/**
 * Fully general builder: rectangular inputs/kernels and independent
 * per-axis stride/pad/dilation.
 */
ConvParams makeConvRect(Index batch, Index in_channels, Index in_h,
                        Index in_w, Index out_channels, Index kernel_h,
                        Index kernel_w, Index stride_h, Index stride_w,
                        Index pad_h, Index pad_w, Index dilation_h = 1,
                        Index dilation_w = 1);

} // namespace cfconv::tensor

#endif // CFCONV_TENSOR_CONV_PARAMS_H
