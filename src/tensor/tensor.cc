#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>

namespace cfconv::tensor {

Tensor::Tensor(Index n, Index c, Index h, Index w, Layout layout)
    : n_(n), c_(c), h_(h), w_(w), layout_(layout),
      data_(static_cast<size_t>(n * c * h * w), 0.0f)
{
    CFCONV_FATAL_IF(n < 1 || c < 1 || h < 1 || w < 1,
                    "Tensor: non-positive dimension");
}

Index
Tensor::offsetOf(Index n, Index c, Index h, Index w) const
{
    switch (layout_) {
      case Layout::NCHW:
        return ((n * c_ + c) * h_ + h) * w_ + w;
      case Layout::NHWC:
        return ((n * h_ + h) * w_ + w) * c_ + c;
      case Layout::HWCN:
        return ((h * w_ + w) * c_ + c) * n_ + n;
      case Layout::CHWN:
        return ((c * h_ + h) * w_ + w) * n_ + n;
    }
    panic("Tensor: unknown layout");
}

void
Tensor::fillRandom(std::uint64_t seed)
{
    Rng rng(seed);
    for (auto &v : data_)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
}

void
Tensor::fillRamp()
{
    // Position-dependent value independent of the physical layout, so two
    // tensors with different layouts compare equal logically.
    for (Index n = 0; n < n_; ++n) {
        for (Index c = 0; c < c_; ++c) {
            for (Index h = 0; h < h_; ++h) {
                for (Index w = 0; w < w_; ++w) {
                    float v = static_cast<float>(
                        ((n * 7 + c) * 13 + h) * 17 + w) * 0.01f;
                    at(n, c, h, w) = v;
                }
            }
        }
    }
}

void
Tensor::fill(float v)
{
    std::fill(data_.begin(), data_.end(), v);
}

Tensor
Tensor::toLayout(Layout target) const
{
    Tensor out(n_, c_, h_, w_, target);
    for (Index n = 0; n < n_; ++n)
        for (Index c = 0; c < c_; ++c)
            for (Index h = 0; h < h_; ++h)
                for (Index w = 0; w < w_; ++w)
                    out.at(n, c, h, w) = at(n, c, h, w);
    return out;
}

float
Tensor::maxAbsDiff(const Tensor &other) const
{
    CFCONV_FATAL_IF(!sameDims(other),
                    "Tensor::maxAbsDiff: dimension mismatch");
    float max_diff = 0.0f;
    for (Index n = 0; n < n_; ++n)
        for (Index c = 0; c < c_; ++c)
            for (Index h = 0; h < h_; ++h)
                for (Index w = 0; w < w_; ++w)
                    max_diff = std::max(
                        max_diff,
                        std::abs(at(n, c, h, w) - other.at(n, c, h, w)));
    return max_diff;
}

bool
Tensor::sameDims(const Tensor &other) const
{
    return n_ == other.n_ && c_ == other.c_ && h_ == other.h_ &&
           w_ == other.w_;
}

void
Matrix::fillRandom(std::uint64_t seed)
{
    Rng rng(seed);
    for (auto &v : data_)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
}

void
Matrix::fill(float v)
{
    std::fill(data_.begin(), data_.end(), v);
}

float
Matrix::maxAbsDiff(const Matrix &other) const
{
    CFCONV_FATAL_IF(rows_ != other.rows_ || cols_ != other.cols_,
                    "Matrix::maxAbsDiff: dimension mismatch");
    float max_diff = 0.0f;
    for (size_t i = 0; i < data_.size(); ++i)
        max_diff = std::max(max_diff,
                            std::abs(data_[i] - other.data_[i]));
    return max_diff;
}

} // namespace cfconv::tensor
