/**
 * @file
 * A minimal 4-D dense tensor over float with a configurable physical
 * layout. Functional correctness paths (reference convolution, explicit
 * im2col, the implicit engine) all operate on this type.
 */

#ifndef CFCONV_TENSOR_TENSOR_H
#define CFCONV_TENSOR_TENSOR_H

#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/types.h"
#include "tensor/layout.h"

namespace cfconv::tensor {

/**
 * Dense logical (N, C, H, W) tensor stored in one of the four supported
 * physical layouts. Elements are float regardless of the simulated
 * DataType (the timing models account for storage width separately).
 */
class Tensor
{
  public:
    /** Construct a zero-filled tensor. */
    Tensor(Index n, Index c, Index h, Index w,
           Layout layout = Layout::NCHW);

    Index n() const { return n_; }
    Index c() const { return c_; }
    Index h() const { return h_; }
    Index w() const { return w_; }
    Layout layout() const { return layout_; }
    Index size() const { return static_cast<Index>(data_.size()); }

    /** Linear offset of logical element (n, c, h, w) in the buffer. */
    Index offsetOf(Index n, Index c, Index h, Index w) const;

    float
    at(Index n, Index c, Index h, Index w) const
    {
        return data_[checkedOffset(n, c, h, w)];
    }

    float &
    at(Index n, Index c, Index h, Index w)
    {
        return data_[checkedOffset(n, c, h, w)];
    }

    /**
     * Read with zero padding: out-of-range (h, w) coordinates return 0,
     * matching the semantics of a padded convolution input.
     */
    float
    atPadded(Index n, Index c, Index h, Index w) const
    {
        if (h < 0 || h >= h_ || w < 0 || w >= w_)
            return 0.0f;
        return at(n, c, h, w);
    }

    const float *data() const { return data_.data(); }
    float *data() { return data_.data(); }

    /** Fill with deterministic pseudo-random values in [-1, 1). */
    void fillRandom(std::uint64_t seed);

    /** Fill with a position-dependent ramp (useful for layout tests). */
    void fillRamp();

    void fill(float v);

    /** Deep-copy into @p target layout, preserving logical content. */
    Tensor toLayout(Layout target) const;

    /** Max absolute element-wise difference to @p other (same dims). */
    float maxAbsDiff(const Tensor &other) const;

    bool sameDims(const Tensor &other) const;

  private:
    Index
    checkedOffset(Index n, Index c, Index h, Index w) const
    {
        CFCONV_ASSERT(n >= 0 && n < n_ && c >= 0 && c < c_ &&
                      h >= 0 && h < h_ && w >= 0 && w < w_,
                      "(tensor index out of range)");
        return offsetOf(n, c, h, w);
    }

    Index n_, c_, h_, w_;
    Layout layout_;
    std::vector<float> data_;
};

/**
 * A dense row-major matrix used for GEMM operands and lowered feature
 * matrices.
 */
class Matrix
{
  public:
    Matrix(Index rows, Index cols)
        : rows_(rows), cols_(cols),
          data_(static_cast<size_t>(rows * cols), 0.0f)
    {
        CFCONV_FATAL_IF(rows < 0 || cols < 0,
                        "Matrix: negative dimensions");
    }

    Index rows() const { return rows_; }
    Index cols() const { return cols_; }

    float
    at(Index r, Index c) const
    {
        CFCONV_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                      "(matrix index out of range)");
        return data_[static_cast<size_t>(r * cols_ + c)];
    }

    float &
    at(Index r, Index c)
    {
        CFCONV_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                      "(matrix index out of range)");
        return data_[static_cast<size_t>(r * cols_ + c)];
    }

    const float *data() const { return data_.data(); }
    float *data() { return data_.data(); }

    void fillRandom(std::uint64_t seed);
    void fill(float v);

    /** Max absolute element-wise difference to @p other (same dims). */
    float maxAbsDiff(const Matrix &other) const;

  private:
    Index rows_, cols_;
    std::vector<float> data_;
};

} // namespace cfconv::tensor

#endif // CFCONV_TENSOR_TENSOR_H
