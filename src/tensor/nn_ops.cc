#include "tensor/nn_ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace cfconv::tensor {

Index
PoolParams::outH(Index in_h) const
{
    return (in_h + 2 * padH - kernelH) / strideH + 1;
}

Index
PoolParams::outW(Index in_w) const
{
    return (in_w + 2 * padW - kernelW) / strideW + 1;
}

void
PoolParams::validate() const
{
    CFCONV_FATAL_IF(kernelH < 1 || kernelW < 1,
                    "pool: non-positive kernel");
    CFCONV_FATAL_IF(strideH < 1 || strideW < 1,
                    "pool: non-positive stride");
    CFCONV_FATAL_IF(padH < 0 || padW < 0, "pool: negative padding");
    CFCONV_FATAL_IF(padH >= kernelH || padW >= kernelW,
                    "pool: padding must be smaller than the kernel");
}

namespace {

template <typename Reduce>
Tensor
pool2d(const Tensor &input, const PoolParams &p, Reduce &&reduce)
{
    p.validate();
    const Index ho = p.outH(input.h()), wo = p.outW(input.w());
    CFCONV_FATAL_IF(ho < 1 || wo < 1, "pool: window exceeds input");
    Tensor out(input.n(), input.c(), ho, wo, input.layout());
    for (Index n = 0; n < input.n(); ++n)
        for (Index c = 0; c < input.c(); ++c)
            for (Index oh = 0; oh < ho; ++oh)
                for (Index ow = 0; ow < wo; ++ow)
                    out.at(n, c, oh, ow) =
                        reduce(input, n, c, oh * p.strideH - p.padH,
                               ow * p.strideW - p.padW);
    return out;
}

} // namespace

Tensor
maxPool2d(const Tensor &input, const PoolParams &params)
{
    return pool2d(input, params,
                  [&params](const Tensor &in, Index n, Index c,
                            Index h0, Index w0) {
                      float best = -std::numeric_limits<float>::max();
                      for (Index r = 0; r < params.kernelH; ++r)
                          for (Index s = 0; s < params.kernelW; ++s) {
                              const Index h = h0 + r, w = w0 + s;
                              if (h < 0 || h >= in.h() || w < 0 ||
                                  w >= in.w())
                                  continue;
                              best = std::max(best, in.at(n, c, h, w));
                          }
                      return best;
                  });
}

Tensor
avgPool2d(const Tensor &input, const PoolParams &params)
{
    return pool2d(input, params,
                  [&params](const Tensor &in, Index n, Index c,
                            Index h0, Index w0) {
                      float sum = 0.0f;
                      Index count = 0;
                      for (Index r = 0; r < params.kernelH; ++r)
                          for (Index s = 0; s < params.kernelW; ++s) {
                              const Index h = h0 + r, w = w0 + s;
                              if (h < 0 || h >= in.h() || w < 0 ||
                                  w >= in.w())
                                  continue;
                              sum += in.at(n, c, h, w);
                              ++count;
                          }
                      return count ? sum / static_cast<float>(count)
                                   : 0.0f;
                  });
}

Tensor
batchNorm(const Tensor &input, const BatchNormParams &params)
{
    const size_t channels = static_cast<size_t>(input.c());
    CFCONV_FATAL_IF(params.mean.size() != channels ||
                    params.variance.size() != channels,
                    "batchNorm: mean/variance must have one entry per "
                    "channel");
    CFCONV_FATAL_IF(!params.gamma.empty() &&
                    params.gamma.size() != channels,
                    "batchNorm: gamma size mismatch");
    CFCONV_FATAL_IF(!params.beta.empty() &&
                    params.beta.size() != channels,
                    "batchNorm: beta size mismatch");

    Tensor out(input.n(), input.c(), input.h(), input.w(),
               input.layout());
    for (Index c = 0; c < input.c(); ++c) {
        const float inv_std = 1.0f /
            std::sqrt(params.variance[static_cast<size_t>(c)] +
                      params.epsilon);
        const float g = params.gamma.empty()
            ? 1.0f : params.gamma[static_cast<size_t>(c)];
        const float b = params.beta.empty()
            ? 0.0f : params.beta[static_cast<size_t>(c)];
        const float m = params.mean[static_cast<size_t>(c)];
        for (Index n = 0; n < input.n(); ++n)
            for (Index h = 0; h < input.h(); ++h)
                for (Index w = 0; w < input.w(); ++w)
                    out.at(n, c, h, w) =
                        (input.at(n, c, h, w) - m) * inv_std * g + b;
    }
    return out;
}

Tensor
relu(const Tensor &input)
{
    Tensor out(input.n(), input.c(), input.h(), input.w(),
               input.layout());
    for (Index i = 0; i < input.size(); ++i)
        out.data()[i] = std::max(0.0f, input.data()[i]);
    return out;
}

Tensor
add(const Tensor &a, const Tensor &b)
{
    CFCONV_FATAL_IF(!a.sameDims(b), "add: dimension mismatch");
    Tensor out(a.n(), a.c(), a.h(), a.w(), a.layout());
    for (Index n = 0; n < a.n(); ++n)
        for (Index c = 0; c < a.c(); ++c)
            for (Index h = 0; h < a.h(); ++h)
                for (Index w = 0; w < a.w(); ++w)
                    out.at(n, c, h, w) =
                        a.at(n, c, h, w) + b.at(n, c, h, w);
    return out;
}

} // namespace cfconv::tensor
