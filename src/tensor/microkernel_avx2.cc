/**
 * @file
 * AVX2+FMA inner kernels. This is the only translation unit built with
 * -mavx2 -mfma (via CFCONV_ENABLE_AVX2); nothing here runs unless
 * runtime CPUID dispatch confirmed the instruction sets, so the rest of
 * the library stays baseline-x86-64 clean. When the build option is
 * off (or the compiler lacks the flags) the same symbols compile to
 * panicking stubs behind avx2CompiledIn() == false.
 */

#include "tensor/microkernel_kernels.h"

#include "common/logging.h"

#if defined(CFCONV_AVX2_BUILD)

#include <immintrin.h>

namespace cfconv::tensor::detail {

bool
avx2CompiledIn()
{
    return true;
}

void
gemmPanelAvx2(Index kc, const float *a_panel, const float *b_panel,
              float *c, Index ldc, bool load_c)
{
    // One ymm accumulator per output row; with the B row vector and the
    // broadcast lane this uses 10 of the 16 ymm registers.
    __m256 c0, c1, c2, c3, c4, c5, c6, c7;
    if (load_c) {
        c0 = _mm256_loadu_ps(c + 0 * ldc);
        c1 = _mm256_loadu_ps(c + 1 * ldc);
        c2 = _mm256_loadu_ps(c + 2 * ldc);
        c3 = _mm256_loadu_ps(c + 3 * ldc);
        c4 = _mm256_loadu_ps(c + 4 * ldc);
        c5 = _mm256_loadu_ps(c + 5 * ldc);
        c6 = _mm256_loadu_ps(c + 6 * ldc);
        c7 = _mm256_loadu_ps(c + 7 * ldc);
    } else {
        c0 = c1 = c2 = c3 = c4 = c5 = c6 = c7 = _mm256_setzero_ps();
    }
    for (Index p = 0; p < kc; ++p) {
        const __m256 b = _mm256_loadu_ps(b_panel + p * 8);
        const float *a = a_panel + p * 8;
        c0 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 0), b, c0);
        c1 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 1), b, c1);
        c2 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 2), b, c2);
        c3 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 3), b, c3);
        c4 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 4), b, c4);
        c5 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 5), b, c5);
        c6 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 6), b, c6);
        c7 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 7), b, c7);
    }
    _mm256_storeu_ps(c + 0 * ldc, c0);
    _mm256_storeu_ps(c + 1 * ldc, c1);
    _mm256_storeu_ps(c + 2 * ldc, c2);
    _mm256_storeu_ps(c + 3 * ldc, c3);
    _mm256_storeu_ps(c + 4 * ldc, c4);
    _mm256_storeu_ps(c + 5 * ldc, c5);
    _mm256_storeu_ps(c + 6 * ldc, c6);
    _mm256_storeu_ps(c + 7 * ldc, c7);
}

float
dotAvx2(const float *x, const float *y, Index n)
{
    __m256 acc = _mm256_setzero_ps();
    Index i = 0;
    for (; i + 8 <= n; i += 8)
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(x + i),
                              _mm256_loadu_ps(y + i), acc);
    // Fixed-order horizontal sum: (lo + hi), then pairwise within the
    // 128-bit lane, so the reduction order never varies run to run.
    __m128 lo = _mm256_castps256_ps128(acc);
    __m128 hi = _mm256_extractf128_ps(acc, 1);
    __m128 s = _mm_add_ps(lo, hi);
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
    float sum = _mm_cvtss_f32(s);
    for (; i < n; ++i)
        sum += x[i] * y[i];
    return sum;
}

void
addIntoAvx2(float *dst, const float *src, Index n)
{
    Index i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(dst + i,
                         _mm256_add_ps(_mm256_loadu_ps(dst + i),
                                       _mm256_loadu_ps(src + i)));
    for (; i < n; ++i)
        dst[i] += src[i];
}

void
axpyIntoAvx2(float *dst, const float *src, float scale, Index n)
{
    const __m256 v = _mm256_set1_ps(scale);
    Index i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(dst + i,
                         _mm256_fmadd_ps(v, _mm256_loadu_ps(src + i),
                                         _mm256_loadu_ps(dst + i)));
    for (; i < n; ++i)
        dst[i] += scale * src[i];
}

} // namespace cfconv::tensor::detail

#else // !CFCONV_AVX2_BUILD

namespace cfconv::tensor::detail {

bool
avx2CompiledIn()
{
    return false;
}

// Dispatch never routes here when avx2CompiledIn() is false; reaching a
// stub is an internal invariant violation, not a user error.

void
gemmPanelAvx2(Index, const float *, const float *, float *, Index, bool)
{
    panic("AVX2 kernel called but not compiled in");
}

float
dotAvx2(const float *, const float *, Index)
{
    panic("AVX2 kernel called but not compiled in");
}

void
addIntoAvx2(float *, const float *, Index)
{
    panic("AVX2 kernel called but not compiled in");
}

void
axpyIntoAvx2(float *, const float *, float, Index)
{
    panic("AVX2 kernel called but not compiled in");
}

} // namespace cfconv::tensor::detail

#endif // CFCONV_AVX2_BUILD
