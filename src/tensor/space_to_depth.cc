#include "tensor/space_to_depth.h"

#include "common/logging.h"

namespace cfconv::tensor {

Tensor
spaceToDepth(const Tensor &input, Index block)
{
    CFCONV_FATAL_IF(block < 1, "spaceToDepth: block must be >= 1");
    CFCONV_FATAL_IF(input.h() % block != 0 || input.w() % block != 0,
                    "spaceToDepth: %lldx%lld not divisible by block "
                    "%lld",
                    static_cast<long long>(input.h()),
                    static_cast<long long>(input.w()),
                    static_cast<long long>(block));
    Tensor out(input.n(), input.c() * block * block, input.h() / block,
               input.w() / block, input.layout());
    for (Index n = 0; n < input.n(); ++n)
        for (Index c = 0; c < input.c(); ++c)
            for (Index h = 0; h < input.h(); ++h)
                for (Index w = 0; w < input.w(); ++w) {
                    const Index dy = h % block, dx = w % block;
                    const Index c_out =
                        (dy * block + dx) * input.c() + c;
                    out.at(n, c_out, h / block, w / block) =
                        input.at(n, c, h, w);
                }
    return out;
}

Tensor
depthToSpace(const Tensor &input, Index block)
{
    CFCONV_FATAL_IF(block < 1, "depthToSpace: block must be >= 1");
    CFCONV_FATAL_IF(input.c() % (block * block) != 0,
                    "depthToSpace: channels %lld not divisible by "
                    "block^2",
                    static_cast<long long>(input.c()));
    const Index c_base = input.c() / (block * block);
    Tensor out(input.n(), c_base, input.h() * block, input.w() * block,
               input.layout());
    for (Index n = 0; n < input.n(); ++n)
        for (Index c = 0; c < input.c(); ++c)
            for (Index h = 0; h < input.h(); ++h)
                for (Index w = 0; w < input.w(); ++w) {
                    const Index c_src = c % c_base;
                    const Index blk = c / c_base;
                    const Index dy = blk / block, dx = blk % block;
                    out.at(n, c_src, h * block + dy, w * block + dx) =
                        input.at(n, c, h, w);
                }
    return out;
}

ConvParams
spaceToDepthParams(const ConvParams &params, Index block)
{
    CFCONV_FATAL_IF(block < 1, "spaceToDepthParams: block >= 1");
    CFCONV_FATAL_IF(params.strideH % block != 0 ||
                    params.strideW % block != 0,
                    "spaceToDepthParams: stride must be a multiple of "
                    "the block (%s, block %lld)",
                    params.toString().c_str(),
                    static_cast<long long>(block));
    CFCONV_FATAL_IF(params.dilationH != 1 || params.dilationW != 1,
                    "spaceToDepthParams: dilation unsupported");
    ConvParams p = params;
    p.inChannels = params.inChannels * block * block;
    p.inH = divCeil(params.inH, block);
    p.inW = divCeil(params.inW, block);
    p.strideH = params.strideH / block;
    p.strideW = params.strideW / block;
    p.kernelH = divCeil(params.kernelH, block);
    p.kernelW = divCeil(params.kernelW, block);
    p.padH = divCeil(params.padH, block);
    p.padW = divCeil(params.padW, block);
    p.validate();
    return p;
}

} // namespace cfconv::tensor
