#include "tensor/quantize.h"

#include <cmath>
#include <cstring>

#include "common/logging.h"

namespace cfconv::tensor {

float
toBf16(float v)
{
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    // Round-to-nearest-even on the truncated 16 mantissa bits.
    const std::uint32_t rounding =
        0x7fffu + ((bits >> 16) & 1u);
    bits += rounding;
    bits &= 0xffff0000u;
    float out;
    std::memcpy(&out, &bits, sizeof(out));
    return out;
}

float
toFp16(float v)
{
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    const std::uint32_t sign = bits >> 31;
    const std::int32_t exp =
        static_cast<std::int32_t>((bits >> 23) & 0xff) - 127;
    const std::uint32_t mant = bits & 0x7fffffu;

    if (exp == 128) // inf / NaN propagate
        return v;

    std::uint16_t half;
    if (exp > 15) {
        half = static_cast<std::uint16_t>((sign << 15) | 0x7c00u);
    } else if (exp >= -14) {
        // Normal half: 10 mantissa bits, round to nearest even.
        std::uint32_t m = mant >> 13;
        const std::uint32_t rest = mant & 0x1fffu;
        if (rest > 0x1000u || (rest == 0x1000u && (m & 1u)))
            ++m;
        std::uint32_t e = static_cast<std::uint32_t>(exp + 15);
        if (m == 0x400u) { // mantissa carry
            m = 0;
            ++e;
        }
        if (e >= 31)
            half = static_cast<std::uint16_t>((sign << 15) | 0x7c00u);
        else
            half = static_cast<std::uint16_t>((sign << 15) | (e << 10) |
                                              m);
    } else if (exp >= -24) {
        // Subnormal half: value = m * 2^-24 with
        // m = full * 2^(exp+1) = full >> (-exp - 1).
        const std::uint32_t full = mant | 0x800000u;
        const int shift = -exp - 1; // in [14, 23]
        std::uint32_t m = full >> shift;
        const std::uint32_t rest =
            full & ((1u << shift) - 1u);
        const std::uint32_t halfway = 1u << (shift - 1);
        if (rest > halfway || (rest == halfway && (m & 1u)))
            ++m;
        half = static_cast<std::uint16_t>((sign << 15) | m);
    } else {
        half = static_cast<std::uint16_t>(sign << 15); // underflow
    }

    // Widen back to float.
    const std::uint32_t h_sign = (half >> 15) & 1u;
    const std::uint32_t h_exp = (half >> 10) & 0x1fu;
    const std::uint32_t h_mant = half & 0x3ffu;
    std::uint32_t out_bits;
    if (h_exp == 0x1f) {
        out_bits = (h_sign << 31) | 0x7f800000u | (h_mant << 13);
    } else if (h_exp == 0) {
        if (h_mant == 0) {
            out_bits = h_sign << 31;
        } else {
            // Normalize the subnormal.
            std::uint32_t m = h_mant;
            std::int32_t e = -14;
            while ((m & 0x400u) == 0) {
                m <<= 1;
                --e;
            }
            m &= 0x3ffu;
            out_bits = (h_sign << 31) |
                       (static_cast<std::uint32_t>(e + 127) << 23) |
                       (m << 13);
        }
    } else {
        out_bits = (h_sign << 31) |
                   ((h_exp - 15 + 127) << 23) | (h_mant << 13);
    }
    float out;
    std::memcpy(&out, &out_bits, sizeof(out));
    return out;
}

Tensor
quantize(const Tensor &t, DataType dtype)
{
    CFCONV_FATAL_IF(dtype == DataType::Int8,
                    "quantize: int8 requires scale/zero-point "
                    "semantics this library does not define");
    Tensor out(t.n(), t.c(), t.h(), t.w(), t.layout());
    for (Index i = 0; i < t.size(); ++i) {
        switch (dtype) {
          case DataType::Bf16:
            out.data()[i] = toBf16(t.data()[i]);
            break;
          case DataType::Fp16:
            out.data()[i] = toFp16(t.data()[i]);
            break;
          case DataType::Fp32:
            out.data()[i] = t.data()[i];
            break;
          case DataType::Int8:
            break; // unreachable
        }
    }
    return out;
}

double
quantizationError(const Tensor &t, DataType dtype, float floor)
{
    const Tensor q = quantize(t, dtype);
    double worst = 0.0;
    for (Index i = 0; i < t.size(); ++i) {
        const float a = t.data()[i];
        const float b = q.data()[i];
        const double denom =
            std::abs(a) > floor ? std::abs(a) : 1.0f;
        worst = std::max(worst,
                         static_cast<double>(std::abs(a - b)) / denom);
    }
    return worst;
}

} // namespace cfconv::tensor
