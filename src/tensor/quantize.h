/**
 * @file
 * Reduced-precision storage emulation: bf16 (TPU-v2/v3's native
 * training type) and fp16 (the GPU experiments' type). Values are
 * rounded through the narrow format and widened back to float, so the
 * functional paths can quantify the numeric effect of the storage
 * types the timing models assume.
 */

#ifndef CFCONV_TENSOR_QUANTIZE_H
#define CFCONV_TENSOR_QUANTIZE_H

#include "tensor/tensor.h"

namespace cfconv::tensor {

/** Round one float through bfloat16 (round-to-nearest-even). */
float toBf16(float v);

/** Round one float through IEEE fp16 (round-to-nearest-even, with
 *  overflow to infinity and subnormal handling). */
float toFp16(float v);

/** Quantize every element of @p t through @p dtype's storage format.
 *  Fp32 passes through; Int8 is rejected (no scale semantics here). */
Tensor quantize(const Tensor &t, DataType dtype);

/** Largest relative element error introduced by quantize() on @p t
 *  (elements below @p floor are compared absolutely). */
double quantizationError(const Tensor &t, DataType dtype,
                         float floor = 1e-3f);

} // namespace cfconv::tensor

#endif // CFCONV_TENSOR_QUANTIZE_H
