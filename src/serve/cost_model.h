/**
 * @file
 * Batch-aware service-cost model on top of the per-layer simulators:
 * "what does one batched run of model M at batch B cost on chip C?"
 * answered by an actual sim::ModelRunner run and memoized. This is
 * where the serving layer inherits the paper's per-layer fidelity —
 * batch efficiency is not a closed-form guess but the simulated
 * systolic-array / tensor-core occupancy at that batch, so the
 * batching-delay-versus-efficiency trade-off the dynamic batcher
 * optimizes is grounded in the same model the figures validate.
 *
 * Batch quantization: service cost is charged at the next *preferred
 * batch size* >= the actual request count (the Triton/TensorRT
 * padded-batch idiom). Padding waste is honest — useful FLOPs are
 * credited for real requests only — and the bucket set bounds the
 * number of distinct simulator evaluations per (chip, class) pair.
 */

#ifndef CFCONV_SERVE_COST_MODEL_H
#define CFCONV_SERVE_COST_MODEL_H

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "common/status.h"
#include "models/model_zoo.h"
#include "sim/accelerator.h"

namespace cfconv::serve {

/** One servable model class of a scenario's mix. */
struct ModelClass
{
    std::string name;
    /** Batch-parameterized spec factory (the model-zoo signature). */
    models::ModelSpec (*factory)(Index batch) = nullptr;
    /** Traffic mix weight (normalized by the workload generator). */
    double weight = 1.0;
    /** Priority tier: lower serves first, and brownout sheds the
     *  highest tier first. All-equal tiers (the default) reduce to the
     *  original cross-class FIFO. */
    Index priority = 0;
    /** Per-class latency SLO; 0 inherits the scenario-wide
     *  ServingConfig::sloSeconds. */
    double sloSeconds = 0.0;
};

/** The mixed model zoo one serving scenario serves. */
using ModelMix = std::vector<ModelClass>;

/** Zoo model names servable by name (makeModelClass). */
std::vector<std::string> knownModelClasses();

/**
 * Build a ModelClass from a zoo model name. NOT_FOUND listing the
 * valid names when @p name is not in the zoo — the serving layer's
 * front door for user-specified mixes.
 */
StatusOr<ModelClass> makeModelClass(const std::string &name,
                                    double weight = 1.0,
                                    Index priority = 0,
                                    double sloSeconds = 0.0);

/**
 * Parse a comma-separated class-spec list into a ModelMix:
 * "name[:weight[:priority[:sloMs]]]", e.g.
 * "alexnet:3:0:50,zfnet:1:1:100". INVALID_ARGUMENT naming the
 * offending token on malformed numbers; NOT_FOUND on unknown models.
 */
StatusOr<ModelMix> parseClassSpecs(const std::string &spec);

/** Largest batch the serving layer forms (the paper-style sweep upper
 *  bound; also the top quantization bucket). */
inline constexpr Index kMaxServeBatch = 64;

/** The next preferred batch size >= @p n (clamped to kMaxServeBatch).
 *  Buckets: 1, 2, 4, 8, 12, 16, 24, 32, 48, 64. */
Index quantizeBatch(Index n);

/** Memoized cost of one batched model run on one chip variant. */
struct BatchCost
{
    double seconds = 0.0;     ///< service time of the padded batch
    Flops paddedFlops = 0;    ///< MAC FLOPs of the padded batch
    Flops perRequestFlops = 0; ///< useful FLOPs of one request
    Bytes dramBytes = 0;      ///< off-chip traffic of the padded batch
    /** Chaos outcome of the underlying evaluation (all-zero when the
     *  fault injector is disarmed). Folded into the serving record's
     *  resilience tally once, at evaluation time. */
    sim::ResilienceInfo resilience;
};

/**
 * The memo table: (chip variant, class, padded batch, tensor-parallel
 * shards) -> BatchCost. Evaluations run the real ModelRunner — through
 * the resilient tryRunModel path when the fault injector is armed —
 * and are strictly deterministic, so a warm or cold cache never
 * changes simulated results, only wall time.
 */
class BatchCostModel
{
  public:
    explicit BatchCostModel(const ModelMix &mix);

    /**
     * Cost of class @p classIdx at padded batch @p batch (callers
     * quantize first) with @p tpShards-way output-channel sharding
     * (1 = unsharded), on @p accelerator. The reference stays valid
     * for the life of the model (entries are never evicted).
     */
    const BatchCost &cost(const sim::Accelerator &accelerator,
                          Index classIdx, Index batch,
                          Index tpShards = 1);

    const ModelMix &mix() const { return mix_; }

    /** Distinct simulator evaluations performed (test/report hook). */
    Index evaluations() const { return evaluations_; }

  private:
    using Key = std::tuple<std::string, Index, Index, Index>;

    ModelMix mix_;
    std::map<Key, BatchCost> cache_;
    std::vector<Flops> perRequestFlops_; ///< lazily filled per class
    Index evaluations_ = 0;
};

} // namespace cfconv::serve

#endif // CFCONV_SERVE_COST_MODEL_H
