/**
 * @file
 * Dynamic batcher + admission control for the serving simulator. The
 * batcher trades queueing delay against batch efficiency the same way
 * batching amortizes im2col overhead in the GEMM-lowered algorithms:
 * a batch launches when it is full (maxBatch) or when its oldest
 * request has waited maxWait — the two knobs of the classic
 * max-size / max-wait policy the Pareto sweep explores. Admission
 * control sheds requests at arrival when a class queue is full or the
 * estimated queueing delay already blows the budget: under overload,
 * shedding early is what keeps the served requests inside the SLO
 * (goodput) instead of letting every request time out (throughput
 * without goodput).
 *
 * Purely mechanical and single-threaded: all state transitions happen
 * at simulated timestamps handed in by the event loop, so the whole
 * structure is deterministic by construction.
 */

#ifndef CFCONV_SERVE_BATCHER_H
#define CFCONV_SERVE_BATCHER_H

#include <deque>
#include <vector>

#include "common/types.h"
#include "serve/workload.h"

namespace cfconv::serve {

/** The max-size / max-wait batching policy (batch 1..64). */
struct BatchPolicy
{
    /** Largest batch formed; 1 = no batching. */
    Index maxBatch = 8;
    /** Longest a request may wait for its batch to fill before the
     *  partial batch launches anyway; 0 = launch immediately. */
    double maxWaitSeconds = 2e-3;
};

/** Load-shedding policy applied at arrival. Both limits 0 = admit
 *  everything (pure FIFO, unbounded queues). */
struct AdmissionPolicy
{
    /** Shed when the class queue already holds this many requests. */
    Index maxQueuePerClass = 0;
    /** Shed when the caller's estimated queueing delay exceeds this. */
    double maxEstimatedDelaySeconds = 0.0;
};

/** One queued request (arrival kept for latency accounting). */
struct QueuedRequest
{
    Index id = 0;
    double arrivalSeconds = 0.0;
};

/**
 * Per-class FIFO queues + the launch/shed decision logic. The event
 * loop asks three questions: may this arrival enter (offer), which
 * class may launch a batch now (launchableClass), and when does the
 * next max-wait deadline expire (nextDeadline) so it can schedule a
 * wake-up even while every chip is busy or idle-waiting.
 */
class BatchQueue
{
  public:
    BatchQueue(Index num_classes, const BatchPolicy &batch,
               const AdmissionPolicy &admission);

    /**
     * Admit or shed @p request. @p estimated_delay_seconds is the
     * caller's current drain estimate for this class (ignored unless
     * the policy bounds it). @return false when shed.
     */
    bool offer(const Request &request, double estimated_delay_seconds);

    /**
     * The class allowed to launch at @p now — non-empty and either
     * full (>= maxBatch) or timed out (oldest waited >= maxWait) —
     * or -1. Ties broken by earliest oldest-arrival, then lowest
     * class index, so dispatch order is deterministic and FIFO
     * across classes.
     */
    Index launchableClass(double now) const;

    /** Earliest future instant some non-empty class times out; +inf
     *  when every queue is empty. */
    double nextDeadline() const;

    /** Pop up to @p max_n oldest requests of @p class_idx. */
    std::vector<QueuedRequest> pop(Index class_idx, Index max_n);

    /** Put a popped batch back at the front, oldest first (chip-down
     *  retry: the requests keep their arrival times and priority). */
    void requeueFront(Index class_idx,
                      const std::vector<QueuedRequest> &batch);

    Index depth(Index class_idx) const;
    Index totalDepth() const;
    Index shedCount(Index class_idx) const;

    const BatchPolicy &policy() const { return batch_; }

  private:
    BatchPolicy batch_;
    AdmissionPolicy admission_;
    std::vector<std::deque<QueuedRequest>> queues_;
    std::vector<Index> shed_;
};

} // namespace cfconv::serve

#endif // CFCONV_SERVE_BATCHER_H
