/**
 * @file
 * Dynamic batcher + admission control for the serving simulator. The
 * batcher trades queueing delay against batch efficiency the same way
 * batching amortizes im2col overhead in the GEMM-lowered algorithms:
 * a batch launches when it is full (maxBatch) or when its oldest
 * request has waited maxWait — the two knobs of the classic
 * max-size / max-wait policy the Pareto sweep explores. Admission
 * control sheds requests at arrival when a class queue is full or the
 * estimated queueing delay already blows the budget: under overload,
 * shedding early is what keeps the served requests inside the SLO
 * (goodput) instead of letting every request time out (throughput
 * without goodput).
 *
 * Purely mechanical and single-threaded: all state transitions happen
 * at simulated timestamps handed in by the event loop, so the whole
 * structure is deterministic by construction.
 */

#ifndef CFCONV_SERVE_BATCHER_H
#define CFCONV_SERVE_BATCHER_H

#include <deque>
#include <vector>

#include "common/types.h"
#include "serve/workload.h"

namespace cfconv::serve {

/** The max-size / max-wait batching policy (batch 1..64). */
struct BatchPolicy
{
    /** Largest batch formed; 1 = no batching. */
    Index maxBatch = 8;
    /** Longest a request may wait for its batch to fill before the
     *  partial batch launches anyway; 0 = launch immediately. */
    double maxWaitSeconds = 2e-3;
};

/** Load-shedding policy applied at arrival. Both limits 0 = admit
 *  everything (pure FIFO, unbounded queues). */
struct AdmissionPolicy
{
    /** Shed when the class queue already holds this many requests. */
    Index maxQueuePerClass = 0;
    /** Shed when the caller's estimated queueing delay exceeds this. */
    double maxEstimatedDelaySeconds = 0.0;
};

/** One queued request (arrival kept for latency accounting). */
struct QueuedRequest
{
    Index id = 0;
    double arrivalSeconds = 0.0;
};

/**
 * Per-class FIFO queues + the launch/shed decision logic. The event
 * loop asks three questions: may this arrival enter (offer), which
 * class may launch a batch now (launchableClass), and when does the
 * next max-wait deadline expire (nextDeadline) so it can schedule a
 * wake-up even while every chip is busy or idle-waiting.
 */
class BatchQueue
{
  public:
    /**
     * @p priorities / @p slo_seconds are per-class resilience knobs
     * (empty = all zero, the legacy behavior): priority orders launch
     * selection (lower tier first) and marks brownout victims;
     * slo_seconds sets each class's deadline for the
     * earliest-deadline-first tie-break within a tier. With all
     * priorities and SLOs equal the launch order is bit-identical to
     * the original earliest-arrival FIFO.
     */
    BatchQueue(Index num_classes, const BatchPolicy &batch,
               const AdmissionPolicy &admission,
               std::vector<Index> priorities = {},
               std::vector<double> slo_seconds = {});

    /**
     * Admit or shed @p request. @p estimated_delay_seconds is the
     * caller's current drain estimate for this class (ignored unless
     * the policy bounds it). @return false when shed.
     */
    bool offer(const Request &request, double estimated_delay_seconds);

    /**
     * The class allowed to launch at @p now — non-empty and either
     * full (>= effective maxBatch) or timed out (oldest waited >=
     * maxWait) — or -1. Selection order: lowest priority tier, then
     * earliest deadline (oldest arrival + class SLO), then earliest
     * oldest-arrival, then lowest class index — deterministic, and
     * identical to the original cross-class FIFO when every class
     * shares one tier and one SLO.
     */
    Index launchableClass(double now) const;

    /** Earliest future instant some non-empty class times out; +inf
     *  when every queue is empty. */
    double nextDeadline() const;

    /** Pop up to @p max_n oldest requests of @p class_idx. */
    std::vector<QueuedRequest> pop(Index class_idx, Index max_n);

    /** Put a popped batch back at the front, oldest first (chip-down
     *  retry: the requests keep their arrival times and priority). */
    void requeueFront(Index class_idx,
                      const std::vector<QueuedRequest> &batch);

    Index depth(Index class_idx) const;
    Index totalDepth() const;
    Index shedCount(Index class_idx) const;
    /** Of shedCount: requests shed by the brownout floor. */
    Index brownoutShedCount(Index class_idx) const;

    const BatchPolicy &policy() const { return batch_; }

    /**
     * Degradation hook: cap batches at @p max_batch (0 = back to the
     * policy's maxBatch). Affects the full-batch launch test and the
     * size dispatch should pop.
     */
    void setMaxBatchOverride(Index max_batch);

    /** Policy maxBatch with any degradation override applied. */
    Index effectiveMaxBatch() const;

    /**
     * Degradation hook: shed arrivals of classes with priority >=
     * @p min_priority at offer() (low-priority brownout). Pass a
     * value above every tier (the default) to disable.
     */
    void setBrownoutMinPriority(Index min_priority);

    Index priorityOf(Index class_idx) const;
    double sloOf(Index class_idx) const;

  private:
    BatchPolicy batch_;
    AdmissionPolicy admission_;
    std::vector<std::deque<QueuedRequest>> queues_;
    std::vector<Index> shed_;
    std::vector<Index> brownoutShed_;
    std::vector<Index> priorities_;
    std::vector<double> sloSeconds_;
    Index maxBatchOverride_ = 0;
    Index brownoutMinPriority_;
};

} // namespace cfconv::serve

#endif // CFCONV_SERVE_BATCHER_H
