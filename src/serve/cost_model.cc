#include "serve/cost_model.h"

#include <array>

#include "common/fault.h"
#include "common/logging.h"
#include "sim/model_runner.h"

namespace cfconv::serve {

Index
quantizeBatch(Index n)
{
    static constexpr std::array<Index, 10> kBuckets = {
        1, 2, 4, 8, 12, 16, 24, 32, 48, 64};
    CFCONV_FATAL_IF(n < 1, "quantizeBatch: batch must be >= 1");
    for (Index bucket : kBuckets)
        if (n <= bucket)
            return bucket;
    return kMaxServeBatch;
}

BatchCostModel::BatchCostModel(const ModelMix &mix)
    : mix_(mix), perRequestFlops_(mix.size(), 0)
{
    CFCONV_FATAL_IF(mix_.empty(), "BatchCostModel: empty model mix");
    for (const auto &cls : mix_)
        CFCONV_FATAL_IF(cls.factory == nullptr,
                        "BatchCostModel: class '%s' has no factory",
                        cls.name.c_str());
}

const BatchCost &
BatchCostModel::cost(const sim::Accelerator &accelerator,
                     Index classIdx, Index batch, Index tpShards)
{
    CFCONV_FATAL_IF(classIdx < 0 ||
                        classIdx >= static_cast<Index>(mix_.size()),
                    "BatchCostModel: class index out of range");
    CFCONV_FATAL_IF(batch < 1 || tpShards < 1,
                    "BatchCostModel: batch and tpShards must be >= 1");
    const Key key{accelerator.name(), classIdx, batch, tpShards};
    auto it = cache_.find(key);
    if (it != cache_.end())
        return it->second;

    auto &cls = mix_[static_cast<size_t>(classIdx)];
    models::ModelSpec spec = cls.factory(batch);
    if (tpShards > 1)
        spec = models::splitChannelsAcrossChips(spec, tpShards);

    sim::ModelRunner runner(accelerator);
    sim::RunRecord record;
    if (fault::FaultInjector::instance().armed()) {
        auto resilient = runner.tryRunModel(spec);
        CFCONV_FATAL_IF(!resilient.ok(),
                        "BatchCostModel: class '%s' batch %lld: %s",
                        cls.name.c_str(),
                        static_cast<long long>(batch),
                        resilient.status().toString().c_str());
        record = std::move(resilient).value();
    } else {
        record = runner.runModel(spec);
    }

    auto &per_req = perRequestFlops_[static_cast<size_t>(classIdx)];
    if (per_req == 0)
        per_req = cls.factory(1).totalFlops();

    BatchCost entry;
    // Retry backoff is wasted wall time on the chip: charge it to the
    // service interval so chaos runs see honestly longer batches.
    entry.seconds =
        record.seconds + record.resilience.backoffSeconds;
    entry.paddedFlops = cls.factory(batch).totalFlops();
    entry.perRequestFlops = per_req;
    entry.dramBytes = record.dramBytes;
    entry.resilience = record.resilience;
    ++evaluations_;
    return cache_.emplace(key, entry).first->second;
}

} // namespace cfconv::serve
