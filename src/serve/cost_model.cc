#include "serve/cost_model.h"

#include <array>
#include <cstdlib>

#include "common/fault.h"
#include "common/logging.h"
#include "sim/model_runner.h"

namespace cfconv::serve {

namespace {

struct ZooEntry
{
    const char *name;
    models::ModelSpec (*factory)(Index batch);
};

/** The servable-by-name zoo (mirrors models/model_zoo.h). */
constexpr ZooEntry kZoo[] = {
    {"alexnet", &models::alexnet},
    {"zfnet", &models::zfnet},
    {"vgg16", &models::vgg16},
    {"resnet50", &models::resnet50},
    {"googlenet", &models::googlenet},
    {"densenet121", &models::densenet121},
    {"yolov2", &models::yolov2},
    {"mobilenetv1", &models::mobilenetv1},
};

} // namespace

std::vector<std::string>
knownModelClasses()
{
    std::vector<std::string> names;
    for (const ZooEntry &entry : kZoo)
        names.emplace_back(entry.name);
    return names;
}

StatusOr<ModelClass>
makeModelClass(const std::string &name, double weight, Index priority,
               double sloSeconds)
{
    for (const ZooEntry &entry : kZoo)
        if (name == entry.name) {
            ModelClass cls;
            cls.name = name;
            cls.factory = entry.factory;
            cls.weight = weight;
            cls.priority = priority;
            cls.sloSeconds = sloSeconds;
            return cls;
        }
    std::string known;
    for (const ZooEntry &entry : kZoo) {
        if (!known.empty())
            known += ", ";
        known += entry.name;
    }
    return notFoundError("unknown model class '%s' (valid: %s)",
                         name.c_str(), known.c_str());
}

StatusOr<ModelMix>
parseClassSpecs(const std::string &spec)
{
    if (spec.empty())
        return invalidArgumentError("empty class spec");
    ModelMix mix;
    size_t start = 0;
    while (start <= spec.size()) {
        size_t end = spec.find(',', start);
        if (end == std::string::npos)
            end = spec.size();
        const std::string token = spec.substr(start, end - start);
        start = end + 1;
        if (token.empty())
            return invalidArgumentError(
                "class spec '%s': empty entry", spec.c_str());

        // Split "name[:weight[:priority[:sloMs]]]".
        std::vector<std::string> parts;
        size_t p = 0;
        while (p <= token.size()) {
            size_t colon = token.find(':', p);
            if (colon == std::string::npos)
                colon = token.size();
            parts.push_back(token.substr(p, colon - p));
            p = colon + 1;
        }
        if (parts.size() > 4)
            return invalidArgumentError(
                "class spec entry '%s': expected "
                "name[:weight[:priority[:sloMs]]]",
                token.c_str());
        const auto number = [&](const std::string &text,
                                double &out) -> bool {
            char *rest = nullptr;
            out = std::strtod(text.c_str(), &rest);
            return rest != nullptr && *rest == '\0' && !text.empty();
        };
        double weight = 1.0, priority = 0.0, sloMs = 0.0;
        if ((parts.size() > 1 && !number(parts[1], weight)) ||
            (parts.size() > 2 && !number(parts[2], priority)) ||
            (parts.size() > 3 && !number(parts[3], sloMs)))
            return invalidArgumentError(
                "class spec entry '%s': malformed number",
                token.c_str());
        if (weight <= 0.0)
            return invalidArgumentError(
                "class spec entry '%s': weight must be > 0",
                token.c_str());
        if (priority < 0.0)
            return invalidArgumentError(
                "class spec entry '%s': priority must be >= 0",
                token.c_str());
        if (sloMs < 0.0)
            return invalidArgumentError(
                "class spec entry '%s': sloMs must be >= 0",
                token.c_str());
        CFCONV_ASSIGN_OR_RETURN(
            ModelClass cls,
            makeModelClass(parts[0], weight,
                           static_cast<Index>(priority), sloMs * 1e-3));
        mix.push_back(std::move(cls));
        if (end == spec.size())
            break;
    }
    return mix;
}

Index
quantizeBatch(Index n)
{
    static constexpr std::array<Index, 10> kBuckets = {
        1, 2, 4, 8, 12, 16, 24, 32, 48, 64};
    CFCONV_FATAL_IF(n < 1, "quantizeBatch: batch must be >= 1");
    for (Index bucket : kBuckets)
        if (n <= bucket)
            return bucket;
    return kMaxServeBatch;
}

BatchCostModel::BatchCostModel(const ModelMix &mix)
    : mix_(mix), perRequestFlops_(mix.size(), 0)
{
    CFCONV_FATAL_IF(mix_.empty(), "BatchCostModel: empty model mix");
    for (const auto &cls : mix_)
        CFCONV_FATAL_IF(cls.factory == nullptr,
                        "BatchCostModel: class '%s' has no factory",
                        cls.name.c_str());
}

const BatchCost &
BatchCostModel::cost(const sim::Accelerator &accelerator,
                     Index classIdx, Index batch, Index tpShards)
{
    CFCONV_FATAL_IF(classIdx < 0 ||
                        classIdx >= static_cast<Index>(mix_.size()),
                    "BatchCostModel: class index out of range");
    CFCONV_FATAL_IF(batch < 1 || tpShards < 1,
                    "BatchCostModel: batch and tpShards must be >= 1");
    const Key key{accelerator.name(), classIdx, batch, tpShards};
    auto it = cache_.find(key);
    if (it != cache_.end())
        return it->second;

    auto &cls = mix_[static_cast<size_t>(classIdx)];
    models::ModelSpec spec = cls.factory(batch);
    if (tpShards > 1)
        spec = models::splitChannelsAcrossChips(spec, tpShards);

    sim::ModelRunner runner(accelerator);
    sim::RunRecord record;
    if (fault::FaultInjector::instance().armed()) {
        auto resilient = runner.tryRunModel(spec);
        CFCONV_FATAL_IF(!resilient.ok(),
                        "BatchCostModel: class '%s' batch %lld: %s",
                        cls.name.c_str(),
                        static_cast<long long>(batch),
                        resilient.status().toString().c_str());
        record = std::move(resilient).value();
    } else {
        record = runner.runModel(spec);
    }

    auto &per_req = perRequestFlops_[static_cast<size_t>(classIdx)];
    if (per_req == 0)
        per_req = cls.factory(1).totalFlops();

    BatchCost entry;
    // Retry backoff is wasted wall time on the chip: charge it to the
    // service interval so chaos runs see honestly longer batches.
    entry.seconds =
        record.seconds + record.resilience.backoffSeconds;
    entry.paddedFlops = cls.factory(batch).totalFlops();
    entry.perRequestFlops = per_req;
    entry.dramBytes = record.dramBytes;
    entry.resilience = record.resilience;
    ++evaluations_;
    return cache_.emplace(key, entry).first->second;
}

} // namespace cfconv::serve
