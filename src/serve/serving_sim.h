/**
 * @file
 * The request-level serving simulator: a discrete-event loop that
 * drives N simulated chips (any sim::Accelerator variants, possibly
 * heterogeneous) with synthetic traffic through the dynamic batcher,
 * work-stealing multi-chip dispatch, optional sharding of oversized
 * batches, and admission control — the CADOSys shape of per-layer
 * sims owned by a topology-level scheduler, lifted to request
 * granularity. Where the rest of the repo answers "how fast is one
 * layer / one model", this layer answers the production questions:
 * throughput versus tail latency, goodput under overload, and tail
 * behaviour while a chip fails over mid-burst (fault injector armed,
 * serve.chip_down site).
 *
 * Determinism contract: the event loop is strictly serial over
 * simulated time; every arrival, launch, shed, completion, and chaos
 * decision is a pure function of (TrafficSpec, ServingConfig, fault
 * seed). The only parallelism is inside the per-layer simulators,
 * which are thread-count-deterministic by construction (PR 1), so the
 * same scenario emits a byte-identical RunRecord at any thread count.
 * Wall-clock never enters the record — only the document-level
 * metrics histograms, which the gates exclude from byte comparison.
 */

#ifndef CFCONV_SERVE_SERVING_SIM_H
#define CFCONV_SERVE_SERVING_SIM_H

#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "serve/batcher.h"
#include "serve/cost_model.h"
#include "serve/health.h"
#include "serve/workload.h"
#include "sim/accelerator.h"

namespace cfconv::serve {

/** One simulated chip: an accelerator variant from the registry
 *  (tune/variant_registry), so heterogeneous boards — and PR 6's
 *  tuned design points — drop in by name. */
struct ChipSpec
{
    std::string variant = "tpu-v2";
};

/** How oversized batches may be split across idle chips. */
enum class ShardMode {
    None,           ///< every batch runs on exactly one chip
    DataParallel,   ///< batch slices via models::splitBatchAcrossCores
    TensorParallel, ///< C_O slices via models::splitChannelsAcrossChips
};

/** Full configuration of one serving scenario. */
struct ServingConfig
{
    std::vector<ChipSpec> chips = {ChipSpec{}};
    BatchPolicy batch;
    AdmissionPolicy admission;
    /** Latency SLO: a request finishing within this of its arrival
     *  counts toward goodput. */
    double sloSeconds = 50e-3;

    ShardMode shardMode = ShardMode::None;
    /** Most chips one batch may span (>= 2 enables sharding). */
    Index maxShards = 1;
    /** Shard only when the single-chip service estimate is at least
     *  this long — small batches gain nothing from spanning chips. */
    double shardMinServiceSeconds = 0.0;
    /** All-gather overhead charged per tensor-parallel run. */
    double shardSyncSeconds = 0.0;

    /** Repair interval after a serve.chip_down injection. */
    double chipDowntimeSeconds = 25e-3;
    /**
     * How long a batch dispatched onto a failing chip stalls before
     * the failure is detected and the batch re-enters its queue (the
     * timeout a real dispatcher needs to notice a dead chip). The
     * stall — not the outage itself — is what hurts tail latency, and
     * what breakers and hedging exist to avoid.
     */
    double chipOutageDetectionSeconds = 2e-3;
    /** Per-chip circuit breakers (route around repeat offenders). */
    BreakerPolicy breaker;
    /** Overload degradation ladder (shrink -> brownout -> fallback). */
    DegradationPolicy degradation;
    /** Straggler hedging onto a second idle chip. */
    HedgePolicy hedge;
    /**
     * Accelerator variants the degradation ladder may serve on at the
     * AlgorithmFallback step; the cost model picks the cheapest of
     * {chip's own variant} U fallbacks per (class, batch). Registry
     * names (tune/variant_registry), validated at construction.
     */
    std::vector<std::string> fallbackVariants;
    /** Scenario label: becomes RunRecord::model, so sweeps emit one
     *  named record per policy point. */
    std::string scenario = "serving";
};

/**
 * Structural validation of @p config, INVALID_ARGUMENT naming the
 * offending field. The ServingSimulator constructor applies it
 * fatally; callers building configs from user input (bench CLI,
 * tests) can pre-check recoverably.
 */
Status validateServingConfig(const ServingConfig &config);

/** Per-model-class outcome tallies of one scenario run. */
struct ClassStats
{
    std::string name;
    Index offered = 0;   ///< arrivals of this class
    Index admitted = 0;  ///< survived admission control
    Index completed = 0; ///< finished (== admitted when run drains)
    Index shed = 0;      ///< rejected at arrival
    Index sloViolations = 0; ///< completed but over the class SLO
    Index brownoutShed = 0;  ///< of shed: dropped by the brownout floor
    Index batches = 0;       ///< batched model runs launched
    double latencySum = 0.0; ///< sum of request latencies
    Scalar latency;          ///< request-latency distribution
    Scalar queueWait;        ///< arrival -> launch distribution
    Flops usefulFlops = 0;   ///< real-request FLOPs completed
    Bytes dramBytes = 0;     ///< padded-batch traffic accumulated
};

/** Everything one scenario run produced. */
struct ServingResult
{
    /** The unified record (schema of sim/report), ready for
     *  writeRunRecords: one LayerRecord per served model class,
     *  serving metrics in the extras, chaos outcome in the
     *  resilience block. */
    sim::RunRecord record;

    double makespanSeconds = 0.0; ///< time 0 .. last completion
    Index offered = 0;
    Index completed = 0;
    Index shed = 0;
    Index sloViolations = 0;
    double throughputRps = 0.0; ///< completed / makespan
    double goodputRps = 0.0;    ///< completed within SLO / makespan
    double shedFraction = 0.0;  ///< shed / offered
    /** Request-latency percentiles (simulated seconds). */
    double p50 = 0.0, p95 = 0.0, p99 = 0.0, p999 = 0.0;
    double meanBatch = 0.0;     ///< requests per launched batch
    Index chipDownEvents = 0;
    Index evaluations = 0;      ///< cost-model simulator runs
    std::vector<ClassStats> classes;

    /** Resilience-layer outcome (also mirrored into
     *  record.resilience.serving for chaos documents). */
    Index breakerTrips = 0;
    Index breakerProbes = 0;
    Index breakerCloses = 0;
    Index hedgedBatches = 0;
    Index hedgeWins = 0;
    Index hedgeLosses = 0;
    Index brownoutShed = 0;
    Index fallbackBatches = 0;
    Index degradeStepMax = 0;
    Index degradeTransitions = 0;
    /** Simulated seconds the ladder held each step (index 0..3). */
    double degradeSeconds[4] = {0.0, 0.0, 0.0, 0.0};
};

/**
 * The simulator. Owns one accelerator instance per distinct chip
 * variant (chips of the same variant share it, and its memo caches)
 * and a BatchCostModel; both persist across run() calls so policy
 * sweeps over the same mix reuse every evaluation.
 */
class ServingSimulator
{
  public:
    ServingSimulator(ServingConfig config, ModelMix mix);

    /** Run one scenario to completion (all admitted requests drain).
     *  Deterministic for a given (config, traffic, fault seed). */
    ServingResult run(const TrafficSpec &traffic);

    const ServingConfig &config() const { return config_; }
    BatchCostModel &costModel() { return costModel_; }

    /** Replace the policy knobs between sweep points (chips and mix
     *  stay, so caches survive). */
    void setPolicy(const BatchPolicy &batch,
                   const AdmissionPolicy &admission);
    void setScenario(const std::string &scenario);

  private:
    const sim::Accelerator &chipAccelerator(size_t chip) const;

    ServingConfig config_;
    BatchCostModel costModel_;
    /** Distinct variants instantiated once... index per chip below. */
    std::vector<std::unique_ptr<sim::Accelerator>> accelerators_;
    std::vector<size_t> chipAccel_; ///< chip index -> accelerators_ idx
    std::vector<size_t> chipOrder_; ///< dispatch preference (fast first)
    /** Fallback-variant instances for the AlgorithmFallback step
     *  (indices into accelerators_). */
    std::vector<size_t> fallbackAccel_;
};

/** Compact board label for RunRecord::accelerator, e.g.
 *  "serve:4xtpu-v2" or "serve:2xtpu-v2+1xgpu-v100". */
std::string describeChips(const std::vector<ChipSpec> &chips);

} // namespace cfconv::serve

#endif // CFCONV_SERVE_SERVING_SIM_H
