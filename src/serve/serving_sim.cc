#include "serve/serving_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <utility>

#include "common/fault.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/trace.h"

namespace cfconv::serve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Simulated seconds -> the integer clock of the trace's simulated
 *  rows (nanosecond ticks; the recorder only needs ordering). */
std::uint64_t
toTraceTicks(double seconds)
{
    return static_cast<std::uint64_t>(std::llround(seconds * 1e9));
}

/** The Scalar percentile nearest the hedge policy's cutoff. */
double
latencyPercentile(const Scalar &latency, double percentile)
{
    if (percentile >= 0.999)
        return latency.p999();
    if (percentile >= 0.99)
        return latency.p99();
    if (percentile >= 0.95)
        return latency.p95();
    return latency.p50();
}

/** A batch stalled on a failing chip, waiting out the outage-detection
 *  window before it re-enters its queue. */
struct PendingBatch
{
    double at = 0.0; ///< requeue instant
    Index cls = 0;
    std::vector<QueuedRequest> batch;
};

} // namespace

std::string
describeChips(const std::vector<ChipSpec> &chips)
{
    // Group by variant in first-appearance order: "4xtpu-v2" or
    // "2xtpu-v2+1xgpu-v100".
    std::vector<std::pair<std::string, int>> groups;
    for (const auto &chip : chips) {
        bool found = false;
        for (auto &[variant, count] : groups)
            if (variant == chip.variant) {
                ++count;
                found = true;
                break;
            }
        if (!found)
            groups.emplace_back(chip.variant, 1);
    }
    std::string out = "serve:";
    for (size_t i = 0; i < groups.size(); ++i) {
        if (i > 0)
            out += "+";
        out += std::to_string(groups[i].second) + "x" + groups[i].first;
    }
    return out;
}

Status
validateServingConfig(const ServingConfig &config)
{
    if (config.chips.empty())
        return invalidArgumentError(
            "ServingConfig: chips must be non-empty (chips=0)");
    if (config.sloSeconds <= 0.0)
        return invalidArgumentError(
            "ServingConfig: sloSeconds must be > 0");
    if (config.maxShards < 1)
        return invalidArgumentError(
            "ServingConfig: maxShards must be >= 1");
    if (config.chipDowntimeSeconds < 0.0)
        return invalidArgumentError(
            "ServingConfig: chipDowntimeSeconds must be >= 0");
    if (config.chipOutageDetectionSeconds < 0.0)
        return invalidArgumentError(
            "ServingConfig: chipOutageDetectionSeconds must be >= 0");
    if (config.breaker.enabled) {
        if (config.breaker.failureThreshold < 1)
            return invalidArgumentError(
                "ServingConfig: breaker.failureThreshold must be >= 1");
        if (config.breaker.openSeconds < 0.0)
            return invalidArgumentError(
                "ServingConfig: breaker.openSeconds must be >= 0");
        if (config.breaker.halfOpenSuccesses < 1)
            return invalidArgumentError(
                "ServingConfig: breaker.halfOpenSuccesses must be >= 1");
    }
    if (config.degradation.enabled) {
        if (config.degradation.maxStep < 0 ||
            config.degradation.maxStep > 3)
            return invalidArgumentError(
                "ServingConfig: degradation.maxStep must be in [0, 3]");
        if (config.degradation.stepUpPressure <=
            config.degradation.stepDownPressure)
            return invalidArgumentError(
                "ServingConfig: degradation.stepUpPressure must exceed "
                "stepDownPressure");
        if (config.degradation.stepUpAfterSeconds < 0.0 ||
            config.degradation.stepDownAfterSeconds < 0.0)
            return invalidArgumentError(
                "ServingConfig: degradation windows must be >= 0");
    }
    if (config.hedge.enabled && config.hedge.minSamples < 1)
        return invalidArgumentError(
            "ServingConfig: hedge.minSamples must be >= 1");
    for (const std::string &variant : config.fallbackVariants) {
        auto made = sim::tryMakeAccelerator(variant);
        if (!made.ok())
            return invalidArgumentError(
                "ServingConfig: fallbackVariants: unknown variant '%s'",
                variant.c_str());
    }
    return okStatus();
}

ServingSimulator::ServingSimulator(ServingConfig config, ModelMix mix)
    : config_(std::move(config)), costModel_(std::move(mix))
{
    const Status valid = validateServingConfig(config_);
    CFCONV_FATAL_IF(!valid.ok(), "ServingSimulator: %s",
                    valid.message().c_str());

    // One accelerator per distinct variant; chips share instances (and
    // thus layer memo caches) so heterogeneity costs one construction
    // per kind, not per chip.
    const auto internVariant = [this](const std::string &variant) {
        for (size_t i = 0; i < accelerators_.size(); ++i)
            if (accelerators_[i]->name() == variant)
                return i;
        accelerators_.push_back(sim::makeAccelerator(variant));
        return accelerators_.size() - 1;
    };
    for (const auto &chip : config_.chips)
        chipAccel_.push_back(internVariant(chip.variant));
    for (const auto &variant : config_.fallbackVariants)
        fallbackAccel_.push_back(internVariant(variant));

    // Dispatch preference: fastest chips first (work-stealing pulls go
    // to the chip that drains the queue soonest), index breaks ties so
    // the order — and therefore every record — is deterministic.
    chipOrder_.resize(config_.chips.size());
    for (size_t i = 0; i < chipOrder_.size(); ++i)
        chipOrder_[i] = i;
    std::stable_sort(chipOrder_.begin(), chipOrder_.end(),
                     [this](size_t a, size_t b) {
                         return chipAccelerator(a).peakTflops() >
                                chipAccelerator(b).peakTflops();
                     });
}

const sim::Accelerator &
ServingSimulator::chipAccelerator(size_t chip) const
{
    return *accelerators_[chipAccel_[chip]];
}

void
ServingSimulator::setPolicy(const BatchPolicy &batch,
                            const AdmissionPolicy &admission)
{
    config_.batch = batch;
    config_.admission = admission;
}

void
ServingSimulator::setScenario(const std::string &scenario)
{
    config_.scenario = scenario;
}

ServingResult
ServingSimulator::run(const TrafficSpec &traffic)
{
    auto &injector = fault::FaultInjector::instance();
    auto &metrics = MetricsRegistry::instance();
    const ModelMix &mix = costModel_.mix();
    const auto num_classes = static_cast<Index>(mix.size());
    const size_t num_chips = config_.chips.size();

    TrafficSpec spec = traffic;
    if (spec.classWeights.empty())
        for (const auto &cls : mix)
            spec.classWeights.push_back(cls.weight);
    CFCONV_FATAL_IF(static_cast<Index>(spec.classWeights.size()) !=
                        num_classes,
                    "ServingSimulator: classWeights/mix size mismatch");
    const std::vector<Request> arrivals = generateArrivals(spec);

    // Per-class resilience knobs: priority tiers and effective SLOs
    // (class SLO, falling back to the scenario-wide one).
    std::vector<Index> priorities;
    std::vector<double> effSlo;
    Index minTier = std::numeric_limits<Index>::max();
    Index maxTier = 0;
    for (const auto &cls : mix) {
        priorities.push_back(cls.priority);
        effSlo.push_back(cls.sloSeconds > 0.0 ? cls.sloSeconds
                                              : config_.sloSeconds);
        minTier = std::min(minTier, cls.priority);
        maxTier = std::max(maxTier, cls.priority);
    }

    BatchQueue queue(num_classes, config_.batch, config_.admission,
                     priorities, effSlo);
    HealthTracker health(num_chips, config_.breaker);
    DegradationLadder ladder(config_.degradation);
    std::vector<PendingBatch> pending;

    ServingResult result;
    result.classes.resize(static_cast<size_t>(num_classes));
    for (Index c = 0; c < num_classes; ++c)
        result.classes[static_cast<size_t>(c)].name =
            mix[static_cast<size_t>(c)].name;
    sim::ResilienceInfo resilience;
    resilience.active = injector.armed();
    const bool resilientServing = config_.breaker.enabled ||
                                  config_.degradation.enabled ||
                                  config_.hedge.enabled;

    // Per-chip state. availableAt is busy-serving only; outage windows
    // and breaker cooldowns live in the HealthTracker so candidate
    // selection (dispatch, sharding, hedging) excludes a downed chip
    // the instant its outage starts.
    std::vector<double> availableAt(num_chips, 0.0);
    std::vector<trace::SimTrack> tracks;
    tracks.reserve(num_chips);
    for (size_t i = 0; i < num_chips; ++i)
        tracks.push_back(trace::simTrack(
            "serve chip" + std::to_string(i) + " (" +
            config_.chips[i].variant + ")"));
    trace::SimTrack degradeTrack;
    if (config_.degradation.enabled) {
        degradeTrack = trace::simTrack("serve degradation");
        trace::simInstant(degradeTrack, "degrade_step", 0,
                          {{"step", 0.0}});
    }

    // Earliest instant a chip can accept work, counting busy time,
    // outage repair, and breaker cooldown.
    const auto chipReadyAt = [&](size_t chip) {
        return std::max(availableAt[chip], health.blockedUntil(chip));
    };

    // Coarse per-class service estimate for the admission controller's
    // estimated-delay bound: one full batch on the fastest chip.
    std::vector<double> serviceEstimate(
        static_cast<size_t>(num_classes), -1.0);
    const auto classEstimate = [&](Index c) {
        auto &est = serviceEstimate[static_cast<size_t>(c)];
        if (est < 0.0)
            est = costModel_
                      .cost(chipAccelerator(chipOrder_.front()), c,
                            quantizeBatch(config_.batch.maxBatch))
                      .seconds;
        return est;
    };

    // Fold a cost-model entry's chaos outcome into the run's tally
    // exactly once (memo hits must not double-count).
    Index seenEvaluations = costModel_.evaluations();
    const auto chargeCost = [&](const BatchCost &cost) -> const BatchCost & {
        if (costModel_.evaluations() != seenEvaluations) {
            seenEvaluations = costModel_.evaluations();
            resilience.faultsSeen += cost.resilience.faultsSeen;
            resilience.retries += cost.resilience.retries;
            resilience.failovers += cost.resilience.failovers;
            resilience.layersFailedOver +=
                cost.resilience.layersFailedOver;
            resilience.layersResumed += cost.resilience.layersResumed;
            resilience.backoffSeconds +=
                cost.resilience.backoffSeconds;
            if (!cost.resilience.finalBackend.empty())
                resilience.finalBackend = cost.resilience.finalBackend;
        }
        return cost;
    };

    double makespan = 0.0;
    Scalar latencyAll;
    Index launchedRequests = 0;
    std::uint64_t dispatchOrdinal = 0;
    // Chip that chaos just bounced a class's batch off: the next
    // successful launch on a different chip counts as a failover.
    std::vector<Index> bouncedChip(static_cast<size_t>(num_classes), -1);

    // Roll the chip-down die for one dispatch attempt onto @p chip.
    // Pure in (seed, variant, ordinal), so the fault schedule is
    // byte-identical at any thread count.
    const auto rollChipDown = [&](size_t chip) {
        return injector.armed() &&
               injector.inject(
                   fault::kServeChipDown, config_.chips[chip].variant,
                   hashCombine(dispatchOrdinal++,
                               static_cast<std::uint64_t>(chip)));
    };

    // An outage on @p chip at @p now: health bookkeeping, breaker
    // transition detection, trace instants, tallies.
    const auto chipDown = [&](size_t chip, double now) {
        const Index tripsBefore = health.trips();
        health.recordFault(chip, now,
                           now + config_.chipDowntimeSeconds);
        // The outage on the chip's own simulated track, with its
        // repair interval, so the offline analyzer can attribute the
        // idle window to the fault rather than to a drained queue.
        trace::simInstant(
            tracks[chip], "chip_down", toTraceTicks(now),
            {{"downtimeTicks",
              static_cast<double>(
                  toTraceTicks(config_.chipDowntimeSeconds))}});
        if (health.trips() != tripsBefore) {
            trace::simInstant(
                tracks[chip], "breaker_open", toTraceTicks(now),
                {{"openTicks",
                  static_cast<double>(
                      toTraceTicks(config_.breaker.openSeconds))}});
            metrics.add("serve.breaker_trips", 1.0);
        }
        ++result.chipDownEvents;
        ++resilience.faultsSeen;
        ++resilience.retries;
    };

    // A batch served on @p chip: health bookkeeping plus breaker-close
    // detection for canary successes.
    const auto chipServed = [&](size_t chip, double now, double span) {
        const Index closesBefore = health.closes();
        health.recordSuccess(chip, now, span);
        if (health.closes() != closesBefore) {
            trace::simInstant(tracks[chip], "breaker_close",
                              toTraceTicks(now));
            metrics.add("serve.breaker_closes", 1.0);
        }
    };

    // Degradation-ladder observation at a dispatch instant; applies
    // the batcher knobs on a step change.
    const auto observeLadder = [&](double now) {
        if (!config_.degradation.enabled)
            return;
        const double capacity = std::max<double>(
            1.0, static_cast<double>(health.aliveChips(now)) *
                     static_cast<double>(config_.batch.maxBatch));
        const double pressure =
            static_cast<double>(queue.totalDepth()) / capacity;
        if (!ladder.observe(now, pressure))
            return;
        const Index step = ladder.step();
        queue.setMaxBatchOverride(
            step >= static_cast<Index>(DegradeStep::BatchShrink)
                ? std::max<Index>(1, config_.batch.maxBatch / 2)
                : 0);
        // Brownout sheds the lowest-priority tier — only meaningful
        // when the mix actually has more than one tier.
        queue.setBrownoutMinPriority(
            step >= static_cast<Index>(DegradeStep::Brownout) &&
                    maxTier > minTier
                ? maxTier
                : std::numeric_limits<Index>::max());
        metrics.add("serve.degrade_transitions", 1.0);
        trace::simInstant(degradeTrack, "degrade_step",
                          toTraceTicks(now),
                          {{"step", static_cast<double>(step)}});
    };

    // Book one completed batch: latency/SLO accounting per request.
    const auto completeRequests =
        [&](Index cls, const std::vector<QueuedRequest> &batch,
            double now, double finish, Flops perRequestFlops) {
            auto &cstats = result.classes[static_cast<size_t>(cls)];
            const double slo = effSlo[static_cast<size_t>(cls)];
            ++cstats.batches;
            launchedRequests += static_cast<Index>(batch.size());
            for (const auto &req : batch) {
                const double latency = finish - req.arrivalSeconds;
                const bool late = latency > slo;
                ++cstats.completed;
                cstats.sloViolations += late ? 1 : 0;
                cstats.latencySum += latency;
                cstats.latency.sample(latency);
                latencyAll.sample(latency);
                cstats.queueWait.sample(now - req.arrivalSeconds);
                cstats.usefulFlops += perRequestFlops;
                metrics.sample("serve.request_latency_seconds",
                               latency);
            }
        };

    // Dispatch every batch launchable at `now`. Returns when no
    // launchable class or no dispatchable chip remains.
    const auto dispatch = [&](double now) {
        observeLadder(now);
        for (;;) {
            const Index cls = queue.launchableClass(now);
            if (cls < 0)
                return;
            // Work-stealing pull over the chips health allows: closed
            // breakers first in preference order; when none is idle, a
            // half-open chip may take the batch as its canary probe.
            std::vector<size_t> idle;
            for (size_t chip : chipOrder_)
                if (availableAt[chip] <= now &&
                    health.dispatchable(chip, now))
                    idle.push_back(chip);
            bool canary = false;
            size_t chip = 0;
            if (!idle.empty()) {
                chip = idle.front();
            } else {
                size_t probe = num_chips;
                for (size_t c : chipOrder_)
                    if (availableAt[c] <= now &&
                        health.canaryReady(c, now)) {
                        probe = c;
                        break;
                    }
                if (probe == num_chips)
                    return;
                chip = probe;
                canary = true;
                health.markCanary(chip);
                trace::simInstant(tracks[chip], "breaker_probe",
                                  toTraceTicks(now));
                metrics.add("serve.breaker_probes", 1.0);
            }

            auto &cstats = result.classes[static_cast<size_t>(cls)];
            std::vector<QueuedRequest> batch =
                queue.pop(cls, queue.effectiveMaxBatch());
            const auto n = static_cast<Index>(batch.size());
            const Index padded = quantizeBatch(n);

            // Hedge decision (made before the chaos roll: a hedged
            // batch survives a primary outage on its hedge chip). A
            // batch is a straggler when its oldest request has waited
            // past the class's observed latency percentile.
            size_t hedgeChip = num_chips;
            if (!canary && config_.hedge.enabled && idle.size() >= 2 &&
                cstats.latency.count() >=
                    static_cast<std::size_t>(config_.hedge.minSamples)) {
                const double cutoff = latencyPercentile(
                    cstats.latency, config_.hedge.latencyPercentile);
                if (now - batch.front().arrivalSeconds >= cutoff)
                    hedgeChip = idle[1];
            }

            // Chaos: whole-chip outage at dispatch. Unhedged, the
            // batch stalls on the dead chip for the outage-detection
            // window, then re-enters the front of its queue with
            // arrival times (and priority) intact; the chip sits out
            // the repair interval.
            if (rollChipDown(chip)) {
                chipDown(chip, now);
                bouncedChip[static_cast<size_t>(cls)] =
                    static_cast<Index>(chip);
                bool savedByHedge = false;
                if (hedgeChip != num_chips && !rollChipDown(hedgeChip)) {
                    // First-completion-wins: the hedge chip is the
                    // only completion, and it saved the batch from
                    // the detection stall.
                    savedByHedge = true;
                    ++result.hedgedBatches;
                    ++result.hedgeWins;
                    metrics.add("serve.hedged_batches", 1.0);
                    metrics.add("serve.hedge_wins", 1.0);
                    ++resilience.failovers;
                    bouncedChip[static_cast<size_t>(cls)] = -1;
                    const BatchCost &hCost = chargeCost(costModel_.cost(
                        chipAccelerator(hedgeChip), cls, padded));
                    const double finish = now + hCost.seconds;
                    makespan = std::max(makespan, finish);
                    availableAt[hedgeChip] = finish;
                    chipServed(hedgeChip, now, hCost.seconds);
                    if (tracks[hedgeChip].active())
                        trace::simSpan(
                            tracks[hedgeChip],
                            mix[static_cast<size_t>(cls)].name.c_str(),
                            toTraceTicks(now),
                            toTraceTicks(hCost.seconds),
                            {{"batch", static_cast<double>(n)},
                             {"padded", static_cast<double>(padded)},
                             {"shards", 1.0},
                             {"chip",
                              static_cast<double>(hedgeChip)},
                             {"hedge", 1.0}});
                    trace::simInstant(tracks[hedgeChip], "hedge_win",
                                      toTraceTicks(now));
                    cstats.dramBytes += hCost.dramBytes;
                    completeRequests(cls, batch, now, finish,
                                     hCost.perRequestFlops);
                } else if (hedgeChip != num_chips) {
                    // Both chips failed: the hedge chip is down too.
                    chipDown(hedgeChip, now);
                    ++result.hedgedBatches;
                    metrics.add("serve.hedged_batches", 1.0);
                }
                if (!savedByHedge)
                    pending.push_back(
                        {now + config_.chipOutageDetectionSeconds, cls,
                         std::move(batch)});
                continue;
            }

            auto &bounced = bouncedChip[static_cast<size_t>(cls)];
            if (bounced >= 0) {
                if (bounced != static_cast<Index>(chip))
                    ++resilience.failovers;
                bounced = -1;
            }

            // Service cost on the chosen chip; at the ladder's
            // algorithm-fallback step the cost model picks the
            // cheapest of the chip's own variant and the configured
            // fallbacks (re-programming the chip with a cheaper
            // lowering).
            bool usedFallback = false;
            const BatchCost *solo = &chargeCost(
                costModel_.cost(chipAccelerator(chip), cls, padded));
            if (ladder.step() >=
                    static_cast<Index>(DegradeStep::AlgorithmFallback) &&
                !fallbackAccel_.empty()) {
                for (size_t f : fallbackAccel_) {
                    if (f == chipAccel_[chip])
                        continue;
                    const BatchCost &alt = chargeCost(
                        costModel_.cost(*accelerators_[f], cls, padded));
                    if (alt.seconds < solo->seconds) {
                        solo = &alt;
                        usedFallback = true;
                    }
                }
                if (usedFallback) {
                    ++result.fallbackBatches;
                    metrics.add("serve.fallback_batches", 1.0);
                }
            }

            // Sharding: span idle chips when allowed, worthwhile
            // (service estimate past the floor), and possible (a
            // second idle chip exists). The group frees together —
            // the sync barrier of a real multi-chip launch. Canary
            // and hedged batches stay single-chip.
            size_t shards = 1;
            if (!canary && hedgeChip == num_chips &&
                config_.shardMode != ShardMode::None &&
                config_.maxShards > 1 &&
                solo->seconds >= config_.shardMinServiceSeconds)
                shards = std::min(
                    idle.size(),
                    static_cast<size_t>(config_.maxShards));

            double span = 0.0;
            Bytes dram = 0;
            if (shards <= 1) {
                span = solo->seconds;
                dram = solo->dramBytes;
            } else if (config_.shardMode == ShardMode::DataParallel) {
                const Index slice = quantizeBatch(std::max<Index>(
                    1, divCeil(padded, static_cast<Index>(shards))));
                for (size_t s = 0; s < shards; ++s) {
                    const BatchCost &part = chargeCost(costModel_.cost(
                        chipAccelerator(idle[s]), cls, slice));
                    span = std::max(span, part.seconds);
                    dram += part.dramBytes;
                }
            } else { // TensorParallel
                for (size_t s = 0; s < shards; ++s) {
                    const BatchCost &part = chargeCost(costModel_.cost(
                        chipAccelerator(idle[s]), cls, padded,
                        static_cast<Index>(shards)));
                    span = std::max(span, part.seconds);
                    dram += part.dramBytes;
                }
                span += config_.shardSyncSeconds;
            }

            // A hedged launch runs the batch on the primary and the
            // hedge chip simultaneously; the earlier completion
            // delivers, both chips stay busy to their own finish, and
            // the duplicate traffic is charged honestly.
            double finish = now + span;
            if (hedgeChip != num_chips) {
                ++result.hedgedBatches;
                metrics.add("serve.hedged_batches", 1.0);
                if (rollChipDown(hedgeChip)) {
                    // The hedge chip died at launch: the primary
                    // carries the batch alone.
                    chipDown(hedgeChip, now);
                    ++result.hedgeLosses;
                    metrics.add("serve.hedge_losses", 1.0);
                    trace::simInstant(tracks[chip], "hedge_loss",
                                      toTraceTicks(now));
                    hedgeChip = num_chips;
                } else {
                    const BatchCost &hCost = chargeCost(costModel_.cost(
                        chipAccelerator(hedgeChip), cls, padded));
                    const bool hedgeWon = hCost.seconds < span;
                    finish = now + std::min(span, hCost.seconds);
                    availableAt[hedgeChip] = now + hCost.seconds;
                    dram += hCost.dramBytes;
                    chipServed(hedgeChip, now, hCost.seconds);
                    if (tracks[hedgeChip].active())
                        trace::simSpan(
                            tracks[hedgeChip],
                            mix[static_cast<size_t>(cls)].name.c_str(),
                            toTraceTicks(now),
                            toTraceTicks(hCost.seconds),
                            {{"batch", static_cast<double>(n)},
                             {"padded", static_cast<double>(padded)},
                             {"shards", 1.0},
                             {"chip", static_cast<double>(hedgeChip)},
                             {"hedge", 1.0}});
                    if (hedgeWon) {
                        ++result.hedgeWins;
                        metrics.add("serve.hedge_wins", 1.0);
                        trace::simInstant(tracks[hedgeChip],
                                          "hedge_win",
                                          toTraceTicks(now));
                    } else {
                        ++result.hedgeLosses;
                        metrics.add("serve.hedge_losses", 1.0);
                        trace::simInstant(tracks[chip], "hedge_loss",
                                          toTraceTicks(now));
                    }
                }
            }

            makespan = std::max(makespan, finish);
            for (size_t s = 0; s < shards; ++s) {
                const size_t c = shards <= 1 ? chip : idle[s];
                // Each chip stays busy to its own completion — under a
                // hedge the batch may deliver (finish) before the
                // slower copy frees its chip.
                availableAt[c] = now + span;
                chipServed(c, now, span);
                if (tracks[c].active()) {
                    trace::Args args = {
                        {"batch", static_cast<double>(n)},
                        {"padded", static_cast<double>(padded)},
                        {"shards", static_cast<double>(shards)},
                        {"chip", static_cast<double>(c)}};
                    if (usedFallback)
                        args.emplace_back("fallback", 1.0);
                    if (canary)
                        args.emplace_back("canary", 1.0);
                    trace::simSpan(
                        tracks[c],
                        mix[static_cast<size_t>(cls)].name.c_str(),
                        toTraceTicks(now), toTraceTicks(span),
                        std::move(args));
                }
            }

            cstats.dramBytes += dram;
            completeRequests(cls, batch, now, finish,
                             solo->perRequestFlops);
        }
    };

    // The event loop: strictly serial over simulated time. Events are
    // (a) the next arrival, (b) the earliest max-wait deadline,
    // (c) — when work is queued but every chip is busy, down, or
    // breaker-blocked — the earliest chip-ready instant, and (d) the
    // earliest stalled-batch requeue.
    double now = 0.0;
    size_t next = 0;
    while (next < arrivals.size() || queue.totalDepth() > 0 ||
           !pending.empty()) {
        // Requeue stalled batches whose detection window elapsed —
        // newest first, so requeueFront leaves the oldest arrivals at
        // the very front of their class queue.
        for (size_t i = pending.size(); i-- > 0;) {
            if (pending[i].at > now)
                continue;
            queue.requeueFront(pending[i].cls, pending[i].batch);
            pending.erase(pending.begin() +
                          static_cast<std::ptrdiff_t>(i));
        }
        dispatch(now);
        if (next >= arrivals.size() && queue.totalDepth() == 0 &&
            pending.empty())
            break; // dispatch drained the last batch

        double tNext = kInf;
        if (next < arrivals.size())
            tNext = std::min(tNext, arrivals[next].arrivalSeconds);
        for (const PendingBatch &p : pending)
            tNext = std::min(tNext, p.at);
        if (queue.totalDepth() > 0) {
            // A deadline at or before `now` means dispatch was blocked
            // by busy chips, not by the wait policy: the next real
            // event is then a chip freeing up, so only strictly future
            // deadlines count (else the loop would never advance).
            const double deadline = queue.nextDeadline();
            if (deadline > now)
                tNext = std::min(tNext, deadline);
            double chipFree = kInf;
            for (size_t chip = 0; chip < num_chips; ++chip) {
                const double ready = chipReadyAt(chip);
                if (ready > now)
                    chipFree = std::min(chipFree, ready);
            }
            tNext = std::min(tNext, chipFree);
        }
        CFCONV_FATAL_IF(tNext == kInf,
                        "ServingSimulator: event loop stalled");
        now = std::max(now, tNext);

        while (next < arrivals.size() &&
               arrivals[next].arrivalSeconds <= now) {
            const Request &req = arrivals[next];
            auto &cstats =
                result.classes[static_cast<size_t>(req.classIdx)];
            ++cstats.offered;
            double estimate = 0.0;
            if (config_.admission.maxEstimatedDelaySeconds > 0.0) {
                double chipFree = kInf;
                for (size_t chip = 0; chip < num_chips; ++chip)
                    chipFree = std::min(chipFree, chipReadyAt(chip));
                const Index backlog =
                    queue.depth(req.classIdx) + 1;
                estimate =
                    std::max(0.0, chipFree - now) +
                    static_cast<double>(divCeil(
                        backlog, config_.batch.maxBatch)) *
                        classEstimate(req.classIdx);
            }
            if (queue.offer(req, estimate)) {
                ++cstats.admitted;
            } else {
                ++cstats.shed;
                metrics.add("serve.requests_shed", 1.0);
            }
            ++next;
        }
    }

    ladder.finalize(makespan);
    if (config_.degradation.enabled)
        trace::simInstant(
            degradeTrack, "degrade_end", toTraceTicks(makespan),
            {{"step", static_cast<double>(ladder.step())}});

    // Roll up totals and the unified record.
    Index batches = 0;
    Flops usefulFlops = 0;
    for (Index c = 0; c < num_classes; ++c) {
        auto &cstats = result.classes[static_cast<size_t>(c)];
        cstats.brownoutShed = queue.brownoutShedCount(c);
        result.offered += cstats.offered;
        result.completed += cstats.completed;
        result.shed += cstats.shed;
        result.sloViolations += cstats.sloViolations;
        result.brownoutShed += cstats.brownoutShed;
        batches += cstats.batches;
        usefulFlops += cstats.usefulFlops;
    }
    if (result.brownoutShed > 0)
        metrics.add("serve.brownout_shed",
                    static_cast<double>(result.brownoutShed));
    result.makespanSeconds = makespan;
    result.evaluations = costModel_.evaluations();
    result.breakerTrips = health.trips();
    result.breakerProbes = health.probes();
    result.breakerCloses = health.closes();
    result.degradeStepMax = ladder.maxStepReached();
    result.degradeTransitions = ladder.transitions();
    for (Index s = 0; s < 4; ++s)
        result.degradeSeconds[s] = ladder.secondsAtStep(s);
    if (makespan > 0.0) {
        result.throughputRps =
            static_cast<double>(result.completed) / makespan;
        result.goodputRps =
            static_cast<double>(result.completed -
                                result.sloViolations) /
            makespan;
    }
    if (result.offered > 0)
        result.shedFraction =
            static_cast<double>(result.shed) /
            static_cast<double>(result.offered);
    if (latencyAll.count() > 0) {
        result.p50 = latencyAll.p50();
        result.p95 = latencyAll.p95();
        result.p99 = latencyAll.p99();
        result.p999 = latencyAll.p999();
    }
    if (batches > 0)
        result.meanBatch = static_cast<double>(launchedRequests) /
                           static_cast<double>(batches);

    // Serving resilience outcome into the record's chaos block (only
    // chaos documents emit it; see sim/report).
    resilience.serving.active = resilientServing;
    resilience.serving.breakerTrips = result.breakerTrips;
    resilience.serving.breakerProbes = result.breakerProbes;
    resilience.serving.breakerCloses = result.breakerCloses;
    resilience.serving.hedgedBatches = result.hedgedBatches;
    resilience.serving.hedgeWins = result.hedgeWins;
    resilience.serving.hedgeLosses = result.hedgeLosses;
    resilience.serving.degradeStepMax = result.degradeStepMax;
    resilience.serving.degradeTransitions = result.degradeTransitions;
    resilience.serving.brownoutShed = result.brownoutShed;
    resilience.serving.fallbackBatches = result.fallbackBatches;

    sim::RunRecord &record = result.record;
    record.accelerator = describeChips(config_.chips);
    record.model = config_.scenario;
    record.batch = config_.batch.maxBatch;
    // Board peak = per-chip peak summed (shared accelerator instances
    // still count once per chip).
    for (size_t chip = 0; chip < num_chips; ++chip)
        record.peakTflops += chipAccelerator(chip).peakTflops();
    record.seconds = makespan;
    record.tflops = makespan > 0.0
        ? static_cast<double>(usefulFlops) / makespan / 1e12
        : 0.0;
    record.resilience = resilience;
    for (Index c = 0; c < num_classes; ++c) {
        const auto &cstats = result.classes[static_cast<size_t>(c)];
        const auto &cls = mix[static_cast<size_t>(c)];
        sim::LayerRecord layer;
        layer.name = cstats.name;
        layer.geometry =
            "serve(" + cstats.name +
            ", slo=" + std::to_string(effSlo[static_cast<size_t>(c)]) +
            "s)";
        layer.count = cstats.completed;
        layer.seconds = cstats.completed > 0
            ? cstats.latencySum /
                static_cast<double>(cstats.completed)
            : 0.0;
        layer.flops = cstats.usefulFlops;
        layer.dramBytes = cstats.dramBytes;
        layer.tflops = makespan > 0.0
            ? static_cast<double>(cstats.usefulFlops) / makespan / 1e12
            : 0.0;
        layer.extras["offered"] =
            static_cast<double>(cstats.offered);
        layer.extras["admitted"] =
            static_cast<double>(cstats.admitted);
        layer.extras["shed"] = static_cast<double>(cstats.shed);
        layer.extras["sloViolations"] =
            static_cast<double>(cstats.sloViolations);
        layer.extras["batches"] =
            static_cast<double>(cstats.batches);
        // Resilience-only extras appear only when the feature fired,
        // so legacy scenarios keep their exact record bytes.
        if (cls.priority != 0)
            layer.extras["priority"] =
                static_cast<double>(cls.priority);
        if (cstats.brownoutShed > 0)
            layer.extras["brownoutShed"] =
                static_cast<double>(cstats.brownoutShed);
        if (cstats.batches > 0)
            layer.extras["meanBatch"] =
                static_cast<double>(cstats.completed) /
                static_cast<double>(cstats.batches);
        if (cstats.latency.count() > 0) {
            layer.extras["p50Ms"] = cstats.latency.p50() * 1e3;
            layer.extras["p95Ms"] = cstats.latency.p95() * 1e3;
            layer.extras["p99Ms"] = cstats.latency.p99() * 1e3;
            layer.extras["p999Ms"] = cstats.latency.p999() * 1e3;
            layer.extras["queueWaitP99Ms"] =
                cstats.queueWait.p99() * 1e3;
        }
        if (makespan > 0.0)
            layer.extras["goodputRps"] =
                static_cast<double>(cstats.completed -
                                    cstats.sloViolations) /
                makespan;
        record.layers.push_back(std::move(layer));
        record.dramBytes += cstats.dramBytes;
    }

    metrics.add("serve.scenarios", 1.0);
    return result;
}

} // namespace cfconv::serve
