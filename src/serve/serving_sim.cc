#include "serve/serving_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <utility>

#include "common/fault.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/trace.h"

namespace cfconv::serve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Simulated seconds -> the integer clock of the trace's simulated
 *  rows (nanosecond ticks; the recorder only needs ordering). */
std::uint64_t
toTraceTicks(double seconds)
{
    return static_cast<std::uint64_t>(std::llround(seconds * 1e9));
}

} // namespace

std::string
describeChips(const std::vector<ChipSpec> &chips)
{
    // Group by variant in first-appearance order: "4xtpu-v2" or
    // "2xtpu-v2+1xgpu-v100".
    std::vector<std::pair<std::string, int>> groups;
    for (const auto &chip : chips) {
        bool found = false;
        for (auto &[variant, count] : groups)
            if (variant == chip.variant) {
                ++count;
                found = true;
                break;
            }
        if (!found)
            groups.emplace_back(chip.variant, 1);
    }
    std::string out = "serve:";
    for (size_t i = 0; i < groups.size(); ++i) {
        if (i > 0)
            out += "+";
        out += std::to_string(groups[i].second) + "x" + groups[i].first;
    }
    return out;
}

ServingSimulator::ServingSimulator(ServingConfig config, ModelMix mix)
    : config_(std::move(config)), costModel_(std::move(mix))
{
    CFCONV_FATAL_IF(config_.chips.empty(),
                    "ServingSimulator: need at least one chip");
    CFCONV_FATAL_IF(config_.sloSeconds <= 0.0,
                    "ServingSimulator: sloSeconds must be > 0");
    CFCONV_FATAL_IF(config_.maxShards < 1,
                    "ServingSimulator: maxShards must be >= 1");
    CFCONV_FATAL_IF(config_.chipDowntimeSeconds < 0.0,
                    "ServingSimulator: chipDowntimeSeconds must be >= 0");

    // One accelerator per distinct variant; chips share instances (and
    // thus layer memo caches) so heterogeneity costs one construction
    // per kind, not per chip.
    for (const auto &chip : config_.chips) {
        size_t idx = accelerators_.size();
        for (size_t i = 0; i < accelerators_.size(); ++i)
            if (accelerators_[i]->name() == chip.variant) {
                idx = i;
                break;
            }
        if (idx == accelerators_.size())
            accelerators_.push_back(sim::makeAccelerator(chip.variant));
        chipAccel_.push_back(idx);
    }

    // Dispatch preference: fastest chips first (work-stealing pulls go
    // to the chip that drains the queue soonest), index breaks ties so
    // the order — and therefore every record — is deterministic.
    chipOrder_.resize(config_.chips.size());
    for (size_t i = 0; i < chipOrder_.size(); ++i)
        chipOrder_[i] = i;
    std::stable_sort(chipOrder_.begin(), chipOrder_.end(),
                     [this](size_t a, size_t b) {
                         return chipAccelerator(a).peakTflops() >
                                chipAccelerator(b).peakTflops();
                     });
}

const sim::Accelerator &
ServingSimulator::chipAccelerator(size_t chip) const
{
    return *accelerators_[chipAccel_[chip]];
}

void
ServingSimulator::setPolicy(const BatchPolicy &batch,
                            const AdmissionPolicy &admission)
{
    config_.batch = batch;
    config_.admission = admission;
}

void
ServingSimulator::setScenario(const std::string &scenario)
{
    config_.scenario = scenario;
}

ServingResult
ServingSimulator::run(const TrafficSpec &traffic)
{
    auto &injector = fault::FaultInjector::instance();
    auto &metrics = MetricsRegistry::instance();
    const ModelMix &mix = costModel_.mix();
    const auto num_classes = static_cast<Index>(mix.size());
    const size_t num_chips = config_.chips.size();

    TrafficSpec spec = traffic;
    if (spec.classWeights.empty())
        for (const auto &cls : mix)
            spec.classWeights.push_back(cls.weight);
    CFCONV_FATAL_IF(static_cast<Index>(spec.classWeights.size()) !=
                        num_classes,
                    "ServingSimulator: classWeights/mix size mismatch");
    const std::vector<Request> arrivals = generateArrivals(spec);

    BatchQueue queue(num_classes, config_.batch, config_.admission);

    ServingResult result;
    result.classes.resize(static_cast<size_t>(num_classes));
    for (Index c = 0; c < num_classes; ++c)
        result.classes[static_cast<size_t>(c)].name =
            mix[static_cast<size_t>(c)].name;
    sim::ResilienceInfo resilience;
    resilience.active = injector.armed();

    // Per-chip state: the instant the chip can next accept work (busy
    // until then, whether serving or sitting out a repair interval).
    std::vector<double> availableAt(num_chips, 0.0);
    std::vector<trace::SimTrack> tracks;
    tracks.reserve(num_chips);
    for (size_t i = 0; i < num_chips; ++i)
        tracks.push_back(trace::simTrack(
            "serve chip" + std::to_string(i) + " (" +
            config_.chips[i].variant + ")"));

    // Coarse per-class service estimate for the admission controller's
    // estimated-delay bound: one full batch on the fastest chip.
    std::vector<double> serviceEstimate(
        static_cast<size_t>(num_classes), -1.0);
    const auto classEstimate = [&](Index c) {
        auto &est = serviceEstimate[static_cast<size_t>(c)];
        if (est < 0.0)
            est = costModel_
                      .cost(chipAccelerator(chipOrder_.front()), c,
                            quantizeBatch(config_.batch.maxBatch))
                      .seconds;
        return est;
    };

    // Fold a cost-model entry's chaos outcome into the run's tally
    // exactly once (memo hits must not double-count).
    Index seenEvaluations = costModel_.evaluations();
    const auto chargeCost = [&](const BatchCost &cost) -> const BatchCost & {
        if (costModel_.evaluations() != seenEvaluations) {
            seenEvaluations = costModel_.evaluations();
            resilience.faultsSeen += cost.resilience.faultsSeen;
            resilience.retries += cost.resilience.retries;
            resilience.failovers += cost.resilience.failovers;
            resilience.layersFailedOver +=
                cost.resilience.layersFailedOver;
            resilience.layersResumed += cost.resilience.layersResumed;
            resilience.backoffSeconds +=
                cost.resilience.backoffSeconds;
            if (!cost.resilience.finalBackend.empty())
                resilience.finalBackend = cost.resilience.finalBackend;
        }
        return cost;
    };

    double makespan = 0.0;
    Scalar latencyAll;
    Index launchedRequests = 0;
    std::uint64_t dispatchOrdinal = 0;
    // Chip that chaos just bounced a class's batch off: the next
    // successful launch on a different chip counts as a failover.
    std::vector<Index> bouncedChip(static_cast<size_t>(num_classes), -1);

    // Dispatch every batch launchable at `now`. Returns when no
    // launchable class or no idle chip remains.
    const auto dispatch = [&](double now) {
        for (;;) {
            const Index cls = queue.launchableClass(now);
            if (cls < 0)
                return;
            // Work-stealing pull: the first idle chip in preference
            // order takes the batch.
            std::vector<size_t> idle;
            for (size_t chip : chipOrder_)
                if (availableAt[chip] <= now)
                    idle.push_back(chip);
            if (idle.empty())
                return;
            const size_t chip = idle.front();
            const std::string &variant = config_.chips[chip].variant;

            // Chaos: whole-chip outage at dispatch. The batch goes
            // back to the front of its queue with arrival times (and
            // FIFO priority) intact; the chip sits out the repair
            // interval. Decision is pure in (seed, variant, ordinal).
            if (injector.armed() &&
                injector.inject(
                    fault::kServeChipDown, variant,
                    hashCombine(dispatchOrdinal++,
                                static_cast<std::uint64_t>(chip)))) {
                availableAt[chip] = now + config_.chipDowntimeSeconds;
                // The outage on the chip's own simulated track, with
                // its repair interval, so the offline analyzer can
                // attribute the idle window to the fault rather than
                // to a drained queue.
                trace::simInstant(
                    tracks[chip], "chip_down", toTraceTicks(now),
                    {{"downtimeTicks",
                      static_cast<double>(toTraceTicks(
                          config_.chipDowntimeSeconds))}});
                ++result.chipDownEvents;
                ++resilience.faultsSeen;
                ++resilience.retries;
                bouncedChip[static_cast<size_t>(cls)] =
                    static_cast<Index>(chip);
                continue; // retry: next idle chip, fresh die
            }
            ++dispatchOrdinal;
            auto &bounced = bouncedChip[static_cast<size_t>(cls)];
            if (bounced >= 0) {
                if (bounced != static_cast<Index>(chip))
                    ++resilience.failovers;
                bounced = -1;
            }

            std::vector<QueuedRequest> batch =
                queue.pop(cls, config_.batch.maxBatch);
            const auto n = static_cast<Index>(batch.size());
            const Index padded = quantizeBatch(n);
            const BatchCost &solo = chargeCost(
                costModel_.cost(chipAccelerator(chip), cls, padded));

            // Sharding: span idle chips when allowed, worthwhile
            // (service estimate past the floor), and possible (a
            // second idle chip exists). The group frees together —
            // the sync barrier of a real multi-chip launch.
            size_t shards = 1;
            if (config_.shardMode != ShardMode::None &&
                config_.maxShards > 1 &&
                solo.seconds >= config_.shardMinServiceSeconds)
                shards = std::min(
                    idle.size(),
                    static_cast<size_t>(config_.maxShards));

            double span = 0.0;
            Bytes dram = 0;
            if (shards <= 1) {
                span = solo.seconds;
                dram = solo.dramBytes;
            } else if (config_.shardMode == ShardMode::DataParallel) {
                const Index slice = quantizeBatch(std::max<Index>(
                    1, divCeil(padded, static_cast<Index>(shards))));
                for (size_t s = 0; s < shards; ++s) {
                    const BatchCost &part = chargeCost(costModel_.cost(
                        chipAccelerator(idle[s]), cls, slice));
                    span = std::max(span, part.seconds);
                    dram += part.dramBytes;
                }
            } else { // TensorParallel
                for (size_t s = 0; s < shards; ++s) {
                    const BatchCost &part = chargeCost(costModel_.cost(
                        chipAccelerator(idle[s]), cls, padded,
                        static_cast<Index>(shards)));
                    span = std::max(span, part.seconds);
                    dram += part.dramBytes;
                }
                span += config_.shardSyncSeconds;
            }

            const double finish = now + span;
            makespan = std::max(makespan, finish);
            for (size_t s = 0; s < shards; ++s) {
                availableAt[idle[s]] = finish;
                if (tracks[idle[s]].active())
                    trace::simSpan(
                        tracks[idle[s]],
                        mix[static_cast<size_t>(cls)].name.c_str(),
                        toTraceTicks(now), toTraceTicks(span),
                        {{"batch", static_cast<double>(n)},
                         {"padded", static_cast<double>(padded)},
                         {"shards", static_cast<double>(shards)},
                         {"chip", static_cast<double>(idle[s])}});
            }

            auto &cstats = result.classes[static_cast<size_t>(cls)];
            ++cstats.batches;
            launchedRequests += n;
            cstats.dramBytes += dram;
            for (const auto &req : batch) {
                const double latency = finish - req.arrivalSeconds;
                const bool late = latency > config_.sloSeconds;
                ++cstats.completed;
                cstats.sloViolations += late ? 1 : 0;
                cstats.latencySum += latency;
                cstats.latency.sample(latency);
                latencyAll.sample(latency);
                cstats.queueWait.sample(now - req.arrivalSeconds);
                cstats.usefulFlops += solo.perRequestFlops;
                metrics.sample("serve.request_latency_seconds",
                               latency);
            }
        }
    };

    // The event loop: strictly serial over simulated time. Events are
    // (a) the next arrival, (b) the earliest max-wait deadline, and
    // (c) — when work is queued but every chip is busy or down — the
    // earliest chip-free instant.
    double now = 0.0;
    size_t next = 0;
    while (next < arrivals.size() || queue.totalDepth() > 0) {
        dispatch(now);
        if (next >= arrivals.size() && queue.totalDepth() == 0)
            break; // dispatch drained the last batch

        double tNext = kInf;
        if (next < arrivals.size())
            tNext = std::min(tNext, arrivals[next].arrivalSeconds);
        if (queue.totalDepth() > 0) {
            // A deadline at or before `now` means dispatch was blocked
            // by busy chips, not by the wait policy: the next real
            // event is then a chip freeing up, so only strictly future
            // deadlines count (else the loop would never advance).
            const double deadline = queue.nextDeadline();
            if (deadline > now)
                tNext = std::min(tNext, deadline);
            double chipFree = kInf;
            for (size_t chip = 0; chip < num_chips; ++chip)
                if (availableAt[chip] > now)
                    chipFree = std::min(chipFree, availableAt[chip]);
            tNext = std::min(tNext, chipFree);
        }
        CFCONV_FATAL_IF(tNext == kInf,
                        "ServingSimulator: event loop stalled");
        now = std::max(now, tNext);

        while (next < arrivals.size() &&
               arrivals[next].arrivalSeconds <= now) {
            const Request &req = arrivals[next];
            auto &cstats =
                result.classes[static_cast<size_t>(req.classIdx)];
            ++cstats.offered;
            double estimate = 0.0;
            if (config_.admission.maxEstimatedDelaySeconds > 0.0) {
                double chipFree = kInf;
                for (size_t chip = 0; chip < num_chips; ++chip)
                    chipFree = std::min(chipFree, availableAt[chip]);
                const Index backlog =
                    queue.depth(req.classIdx) + 1;
                estimate =
                    std::max(0.0, chipFree - now) +
                    static_cast<double>(divCeil(
                        backlog, config_.batch.maxBatch)) *
                        classEstimate(req.classIdx);
            }
            if (queue.offer(req, estimate)) {
                ++cstats.admitted;
            } else {
                ++cstats.shed;
                metrics.add("serve.requests_shed", 1.0);
            }
            ++next;
        }
    }

    // Roll up totals and the unified record.
    Index batches = 0;
    Flops usefulFlops = 0;
    for (auto &cstats : result.classes) {
        result.offered += cstats.offered;
        result.completed += cstats.completed;
        result.shed += cstats.shed;
        result.sloViolations += cstats.sloViolations;
        batches += cstats.batches;
        usefulFlops += cstats.usefulFlops;
    }
    result.makespanSeconds = makespan;
    result.evaluations = costModel_.evaluations();
    if (makespan > 0.0) {
        result.throughputRps =
            static_cast<double>(result.completed) / makespan;
        result.goodputRps =
            static_cast<double>(result.completed -
                                result.sloViolations) /
            makespan;
    }
    if (result.offered > 0)
        result.shedFraction =
            static_cast<double>(result.shed) /
            static_cast<double>(result.offered);
    if (latencyAll.count() > 0) {
        result.p50 = latencyAll.p50();
        result.p95 = latencyAll.p95();
        result.p99 = latencyAll.p99();
        result.p999 = latencyAll.p999();
    }
    if (batches > 0)
        result.meanBatch = static_cast<double>(launchedRequests) /
                           static_cast<double>(batches);

    sim::RunRecord &record = result.record;
    record.accelerator = describeChips(config_.chips);
    record.model = config_.scenario;
    record.batch = config_.batch.maxBatch;
    // Board peak = per-chip peak summed (shared accelerator instances
    // still count once per chip).
    for (size_t chip = 0; chip < num_chips; ++chip)
        record.peakTflops += chipAccelerator(chip).peakTflops();
    record.seconds = makespan;
    record.tflops = makespan > 0.0
        ? static_cast<double>(usefulFlops) / makespan / 1e12
        : 0.0;
    record.resilience = resilience;
    for (Index c = 0; c < num_classes; ++c) {
        const auto &cstats = result.classes[static_cast<size_t>(c)];
        sim::LayerRecord layer;
        layer.name = cstats.name;
        layer.geometry =
            "serve(" + cstats.name +
            ", slo=" + std::to_string(config_.sloSeconds) + "s)";
        layer.count = cstats.completed;
        layer.seconds = cstats.completed > 0
            ? cstats.latencySum /
                static_cast<double>(cstats.completed)
            : 0.0;
        layer.flops = cstats.usefulFlops;
        layer.dramBytes = cstats.dramBytes;
        layer.tflops = makespan > 0.0
            ? static_cast<double>(cstats.usefulFlops) / makespan / 1e12
            : 0.0;
        layer.extras["offered"] =
            static_cast<double>(cstats.offered);
        layer.extras["admitted"] =
            static_cast<double>(cstats.admitted);
        layer.extras["shed"] = static_cast<double>(cstats.shed);
        layer.extras["sloViolations"] =
            static_cast<double>(cstats.sloViolations);
        layer.extras["batches"] =
            static_cast<double>(cstats.batches);
        if (cstats.batches > 0)
            layer.extras["meanBatch"] =
                static_cast<double>(cstats.completed) /
                static_cast<double>(cstats.batches);
        if (cstats.latency.count() > 0) {
            layer.extras["p50Ms"] = cstats.latency.p50() * 1e3;
            layer.extras["p95Ms"] = cstats.latency.p95() * 1e3;
            layer.extras["p99Ms"] = cstats.latency.p99() * 1e3;
            layer.extras["p999Ms"] = cstats.latency.p999() * 1e3;
            layer.extras["queueWaitP99Ms"] =
                cstats.queueWait.p99() * 1e3;
        }
        if (makespan > 0.0)
            layer.extras["goodputRps"] =
                static_cast<double>(cstats.completed -
                                    cstats.sloViolations) /
                makespan;
        record.layers.push_back(std::move(layer));
        record.dramBytes += cstats.dramBytes;
    }

    metrics.add("serve.scenarios", 1.0);
    return result;
}

} // namespace cfconv::serve
