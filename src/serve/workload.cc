#include "serve/workload.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace cfconv::serve {

namespace {

/** Exponential variate with mean 1/@p rate. 1 - uniform() keeps the
 *  argument of log strictly positive. */
double
exponential(Rng &rng, double rate)
{
    return -std::log(1.0 - rng.uniform()) / rate;
}

/** Weighted class pick over the normalized @p cumulative weights. */
Index
pickClass(Rng &rng, const std::vector<double> &cumulative)
{
    if (cumulative.empty())
        return 0;
    const double u = rng.uniform();
    for (size_t i = 0; i < cumulative.size(); ++i)
        if (u < cumulative[i])
            return static_cast<Index>(i);
    return static_cast<Index>(cumulative.size() - 1);
}

std::vector<double>
cumulativeWeights(const TrafficSpec &spec)
{
    std::vector<double> cum;
    if (spec.classWeights.empty())
        return cum;
    double total = 0.0;
    for (double w : spec.classWeights) {
        CFCONV_FATAL_IF(w < 0.0,
                        "generateArrivals: negative class weight");
        total += w;
    }
    CFCONV_FATAL_IF(total <= 0.0,
                    "generateArrivals: class weights sum to zero");
    double running = 0.0;
    for (double w : spec.classWeights) {
        running += w / total;
        cum.push_back(running);
    }
    return cum;
}

void
validate(const TrafficSpec &spec)
{
    CFCONV_FATAL_IF(spec.ratePerSecond <= 0.0,
                    "generateArrivals: ratePerSecond must be > 0");
    CFCONV_FATAL_IF(spec.horizonSeconds <= 0.0,
                    "generateArrivals: horizonSeconds must be > 0");
    if (spec.kind == ArrivalKind::Bursty) {
        CFCONV_FATAL_IF(spec.burstMultiplier <= 1.0,
                        "generateArrivals: burstMultiplier must be > 1");
        CFCONV_FATAL_IF(
            spec.burstFraction <= 0.0 ||
                spec.burstFraction * spec.burstMultiplier >= 1.0,
            "generateArrivals: need 0 < burstFraction * "
            "burstMultiplier < 1 (quiet rate must stay positive)");
        CFCONV_FATAL_IF(spec.meanBurstSeconds <= 0.0,
                        "generateArrivals: meanBurstSeconds must be > 0");
    }
    if (spec.kind == ArrivalKind::Diurnal) {
        CFCONV_FATAL_IF(spec.diurnalDepth < 0.0 ||
                            spec.diurnalDepth >= 1.0,
                        "generateArrivals: diurnalDepth must be in "
                        "[0, 1)");
        CFCONV_FATAL_IF(spec.diurnalPeriodSeconds <= 0.0,
                        "generateArrivals: diurnalPeriodSeconds must "
                        "be > 0");
    }
}

} // namespace

const char *
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::Poisson:
        return "poisson";
      case ArrivalKind::Bursty:
        return "bursty";
      case ArrivalKind::Diurnal:
        return "diurnal";
    }
    return "?";
}

StatusOr<ArrivalKind>
parseArrivalKind(const std::string &name)
{
    if (name == "poisson")
        return ArrivalKind::Poisson;
    if (name == "bursty")
        return ArrivalKind::Bursty;
    if (name == "diurnal")
        return ArrivalKind::Diurnal;
    return invalidArgumentError(
        "unknown arrival stream \"%s\" (want poisson, bursty, or "
        "diurnal)",
        name.c_str());
}

std::vector<Request>
generateArrivals(const TrafficSpec &spec)
{
    validate(spec);
    Rng rng(hashCombine(spec.seed,
                        fnv1a(arrivalKindName(spec.kind))));
    const std::vector<double> cum = cumulativeWeights(spec);
    std::vector<Request> out;
    out.reserve(static_cast<size_t>(
        spec.ratePerSecond * spec.horizonSeconds * 1.25 + 16.0));

    const auto push = [&](double t) {
        Request r;
        r.id = static_cast<Index>(out.size());
        r.arrivalSeconds = t;
        r.classIdx = pickClass(rng, cum);
        out.push_back(r);
    };

    switch (spec.kind) {
      case ArrivalKind::Poisson: {
        double t = exponential(rng, spec.ratePerSecond);
        while (t < spec.horizonSeconds) {
            push(t);
            t += exponential(rng, spec.ratePerSecond);
        }
        break;
      }
      case ArrivalKind::Bursty: {
        // Two-state MMPP. The burst state runs at rate * multiplier;
        // the quiet rate is solved so the long-run mean stays at
        // ratePerSecond given the stationary burst fraction f:
        //   f * burst + (1 - f) * quiet = rate.
        const double f = spec.burstFraction;
        const double burst_rate =
            spec.ratePerSecond * spec.burstMultiplier;
        const double quiet_rate = spec.ratePerSecond *
                                  (1.0 - f * spec.burstMultiplier) /
                                  (1.0 - f);
        const double mean_burst = spec.meanBurstSeconds;
        const double mean_quiet = mean_burst * (1.0 - f) / f;
        bool in_burst = rng.uniform() < f; // stationary start
        double t = 0.0;
        double state_end = t + exponential(rng, 1.0 / (in_burst
                                                           ? mean_burst
                                                           : mean_quiet));
        while (t < spec.horizonSeconds) {
            const double rate = in_burst ? burst_rate : quiet_rate;
            const double next = t + exponential(rng, rate);
            if (next >= state_end) {
                // State flips before the candidate arrival; restart
                // the (memoryless) arrival clock in the new state.
                t = state_end;
                in_burst = !in_burst;
                state_end = t + exponential(
                                    rng, 1.0 / (in_burst ? mean_burst
                                                         : mean_quiet));
                continue;
            }
            t = next;
            if (t < spec.horizonSeconds)
                push(t);
        }
        break;
      }
      case ArrivalKind::Diurnal: {
        // Thinning (Lewis-Shedler): generate at the peak rate, accept
        // with probability rate(t) / peak.
        const double peak =
            spec.ratePerSecond * (1.0 + spec.diurnalDepth);
        const double two_pi = 6.283185307179586;
        double t = exponential(rng, peak);
        while (t < spec.horizonSeconds) {
            const double rate =
                spec.ratePerSecond *
                (1.0 + spec.diurnalDepth *
                           std::sin(two_pi * t /
                                    spec.diurnalPeriodSeconds));
            if (rng.uniform() < rate / peak)
                push(t);
            t += exponential(rng, peak);
        }
        break;
      }
    }
    return out;
}

} // namespace cfconv::serve
