/**
 * @file
 * Chip health tracking and graceful degradation for the serving
 * simulator — the state machines behind the resilience layer:
 *
 *   - HealthTracker: per-chip outage windows (the `serve.chip_down`
 *     repair interval) and a closed / open / half-open circuit breaker
 *     fed by the dispatch loop's fault and success observations. An
 *     open breaker removes the chip from candidate selection; once the
 *     cooldown elapses the breaker goes half-open and admits exactly
 *     one canary batch at a time — success closes the breaker, another
 *     fault re-opens it.
 *   - DegradationLadder: deterministic overload controller. It
 *     observes queue pressure (depth relative to what the alive chips
 *     can drain) at event-loop instants and, when pressure stays above
 *     the step-up threshold for a full window, descends one step:
 *     0 normal -> 1 batch-size shrink -> 2 low-priority brownout ->
 *     3 algorithm fallback. Sustained relief walks back up the same
 *     way.
 *
 * Both machines advance only at simulated timestamps handed in by the
 * strictly serial event loop, and every transition is a pure function
 * of the observation sequence — so chaos runs stay byte-identical at
 * any thread count.
 */

#ifndef CFCONV_SERVE_HEALTH_H
#define CFCONV_SERVE_HEALTH_H

#include <vector>

#include "common/types.h"

namespace cfconv::serve {

/** Circuit-breaker state of one chip. */
enum class BreakerState {
    Closed,   ///< healthy: normal dispatch
    Open,     ///< tripped: no dispatch until the cooldown elapses
    HalfOpen, ///< cooldown over: one canary batch may probe the chip
};

/** Stable lowercase name for traces/tables. */
const char *breakerStateName(BreakerState state);

/** Per-chip circuit-breaker policy. */
struct BreakerPolicy
{
    bool enabled = false;
    /** Consecutive faults on one chip that trip its breaker. */
    Index failureThreshold = 2;
    /** Cooldown an open breaker holds before going half-open. */
    double openSeconds = 50e-3;
    /** Canary successes a half-open breaker needs to close. */
    Index halfOpenSuccesses = 1;
};

/** Hedged-dispatch policy: duplicate straggler batches onto a second
 *  idle chip, first completion wins. A batch is a straggler when its
 *  oldest request has already waited past the class's observed latency
 *  percentile — the deterministic analog of p95-latency request
 *  hedging. */
struct HedgePolicy
{
    bool enabled = false;
    /** Which observed-latency percentile arms the hedge (snapped to
     *  the Scalar histogram's 0.5 / 0.95 / 0.99 / 0.999 cuts). */
    double latencyPercentile = 0.95;
    /** Completed-request samples a class needs before hedging. */
    Index minSamples = 16;
};

/** Degradation-ladder steps, shallow to deep. */
enum class DegradeStep : Index {
    Normal = 0,
    BatchShrink = 1,       ///< halve the batcher's maxBatch
    Brownout = 2,          ///< shed the lowest-priority class at arrival
    AlgorithmFallback = 3, ///< serve on the cheapest configured variant
};

/** Stable step name for traces/tables. */
const char *degradeStepName(Index step);

/** Overload-degradation policy. Pressure is queue depth divided by the
 *  board's one-round drain capacity (alive chips x maxBatch). */
struct DegradationPolicy
{
    bool enabled = false;
    /** Step down one rung after pressure holds >= this ... */
    double stepUpPressure = 2.0;
    /** ... for this long; step back up after pressure holds <=
     *  stepDownPressure for stepDownAfterSeconds. */
    double stepUpAfterSeconds = 10e-3;
    double stepDownPressure = 0.5;
    double stepDownAfterSeconds = 20e-3;
    /** Deepest rung the ladder may reach (<= 3). */
    Index maxStep = 3;
};

/**
 * Per-chip fault/latency history + breaker state machine. The serving
 * event loop reports every outage (recordFault) and every served batch
 * (recordSuccess); dispatch asks which chips may take work now.
 *
 * With the policy disabled the tracker still owns the outage windows —
 * the explicit "this chip is down until T" state that keeps downed
 * chips out of candidate selection (dispatch, sharding, hedging) —
 * but every breaker query answers Closed.
 */
class HealthTracker
{
  public:
    HealthTracker(size_t num_chips, const BreakerPolicy &policy);

    /** A serve.chip_down outage on @p chip at @p now; the chip repairs
     *  at @p down_until. Counts toward the breaker threshold. */
    void recordFault(size_t chip, double now, double down_until);

    /** A batch served successfully on @p chip (service @p seconds).
     *  Resets the consecutive-fault count; a half-open canary success
     *  may close the breaker. */
    void recordSuccess(size_t chip, double now, double seconds);

    /** Is @p chip inside an outage repair window at @p now? */
    bool isDown(size_t chip, double now) const;

    /** Breaker state at @p now (Open lapses to HalfOpen by time). */
    BreakerState state(size_t chip, double now) const;

    /** May @p chip take a normal batch at @p now? (not down, breaker
     *  closed). */
    bool dispatchable(size_t chip, double now) const;

    /** May @p chip take a canary batch at @p now? (half-open and no
     *  canary already in flight). */
    bool canaryReady(size_t chip, double now) const;

    /** A canary batch launched on @p chip (counted as a probe; blocks
     *  further canaries until it resolves). */
    void markCanary(size_t chip);

    /** Earliest instant >= @p now the chip can accept work again as
     *  far as health is concerned: max(repair end, breaker cooldown
     *  end); 0 for a healthy chip. */
    double blockedUntil(size_t chip) const;

    /** Chips neither down nor open at @p now (capacity estimate for
     *  the degradation ladder's pressure signal). */
    size_t aliveChips(double now) const;

    /** Mean observed service seconds on @p chip; 0 before the first
     *  success (health report hook). */
    double meanServiceSeconds(size_t chip) const;

    Index trips() const { return trips_; }
    Index probes() const { return probes_; }
    Index closes() const { return closes_; }

  private:
    struct ChipHealth
    {
        double downUntil = 0.0;
        bool tripped = false;    ///< breaker open or half-open
        double openUntil = 0.0;  ///< cooldown end while tripped
        Index consecutiveFaults = 0;
        bool canaryInFlight = false;
        Index canarySuccesses = 0;
        Index served = 0;
        double serviceSum = 0.0;
    };

    BreakerPolicy policy_;
    std::vector<ChipHealth> chips_;
    Index trips_ = 0;
    Index probes_ = 0;
    Index closes_ = 0;
};

/**
 * The overload controller. observe() is called by the event loop at
 * each dispatch instant with the current pressure; it returns true
 * when the ladder changed step at that instant (so the caller can
 * re-apply knobs and emit the transition).
 */
class DegradationLadder
{
  public:
    explicit DegradationLadder(const DegradationPolicy &policy);

    /** Feed one pressure observation at @p now. @return step changed. */
    bool observe(double now, double pressure);

    Index step() const { return step_; }
    Index maxStepReached() const { return maxStepReached_; }
    Index transitions() const { return transitions_; }

    /** Close occupancy accounting at the end of the run. */
    void finalize(double end);

    /** Simulated seconds spent at @p step (after finalize()). */
    double secondsAtStep(Index step) const;

  private:
    void moveTo(Index step, double now);

    DegradationPolicy policy_;
    Index step_ = 0;
    Index maxStepReached_ = 0;
    Index transitions_ = 0;
    double aboveSince_ = -1.0;
    double belowSince_ = -1.0;
    double stepSince_ = 0.0;
    double seconds_[4] = {0.0, 0.0, 0.0, 0.0};
};

} // namespace cfconv::serve

#endif // CFCONV_SERVE_HEALTH_H
