/**
 * @file
 * Multi-chip model execution behind the unified Accelerator API — the
 * generalization of the TPU-only TpuSim::runModelMultiCore (now a
 * deprecated compatibility wrapper). Both data-parallel batch
 * splitting and tensor-parallel output-channel sharding ride on the
 * shared models:: split helpers, so the offline one-shot API here and
 * the serving scheduler's in-flight sharding can never drift from the
 * legacy TPU path (parity-tested in tests/serve/test_multi_chip.cc).
 */

#ifndef CFCONV_SERVE_MULTI_CHIP_H
#define CFCONV_SERVE_MULTI_CHIP_H

#include "models/model_zoo.h"
#include "sim/accelerator.h"

namespace cfconv::serve {

/**
 * Run @p model data-parallel across @p chips identical chips of
 * @p accelerator's configuration: each chip runs the per-chip batch
 * slice MAX(1, ceil(B / chips)) (weights broadcast, activations
 * chip-local), so the board finishes when one slice does. Seconds are
 * the slice time; TFLOPS are accounted over the full batch, exactly
 * like the legacy TPU multi-core path. Fatal when @p chips < 1.
 */
sim::RunRecord runModelDataParallel(const sim::Accelerator &accelerator,
                                    const models::ModelSpec &model,
                                    Index chips);

/**
 * Run @p model tensor-parallel across @p chips chips: ungrouped
 * layers compute the output-channel slice MAX(1, ceil(C_O / chips))
 * per chip (grouped layers stay whole — see
 * models::splitChannelsAcrossChips). Seconds are the slice time plus
 * @p sync_seconds of all-gather overhead per model run; TFLOPS are
 * accounted over the full model. Fatal when @p chips < 1.
 */
sim::RunRecord runModelTensorParallel(
    const sim::Accelerator &accelerator,
    const models::ModelSpec &model, Index chips,
    double sync_seconds = 0.0);

} // namespace cfconv::serve

#endif // CFCONV_SERVE_MULTI_CHIP_H
