#include "serve/health.h"

#include <algorithm>

#include "common/logging.h"

namespace cfconv::serve {

const char *
breakerStateName(BreakerState state)
{
    switch (state) {
      case BreakerState::Closed:
        return "closed";
      case BreakerState::Open:
        return "open";
      case BreakerState::HalfOpen:
        return "half-open";
    }
    return "?";
}

const char *
degradeStepName(Index step)
{
    switch (step) {
      case 0:
        return "normal";
      case 1:
        return "batch-shrink";
      case 2:
        return "brownout";
      case 3:
        return "algorithm-fallback";
      default:
        return "?";
    }
}

HealthTracker::HealthTracker(size_t num_chips, const BreakerPolicy &policy)
    : policy_(policy), chips_(num_chips)
{
    CFCONV_FATAL_IF(num_chips == 0, "HealthTracker: need at least one chip");
}

void
HealthTracker::recordFault(size_t chip, double now, double down_until)
{
    ChipHealth &c = chips_[chip];
    c.downUntil = std::max(c.downUntil, down_until);
    ++c.consecutiveFaults;
    if (!policy_.enabled)
        return;
    // A tripped breaker re-opens on any fault (a failed canary); a
    // closed one trips once the consecutive-fault threshold is hit.
    if (c.tripped || c.consecutiveFaults >= policy_.failureThreshold) {
        c.tripped = true;
        c.openUntil = now + policy_.openSeconds;
        c.canaryInFlight = false;
        c.canarySuccesses = 0;
        ++trips_;
    }
}

void
HealthTracker::recordSuccess(size_t chip, double now, double seconds)
{
    ChipHealth &c = chips_[chip];
    c.consecutiveFaults = 0;
    ++c.served;
    c.serviceSum += seconds;
    if (!policy_.enabled || !c.tripped)
        return;
    if (now < c.openUntil || !c.canaryInFlight)
        return;
    c.canaryInFlight = false;
    ++c.canarySuccesses;
    if (c.canarySuccesses >= policy_.halfOpenSuccesses) {
        c.tripped = false;
        c.openUntil = 0.0;
        c.canarySuccesses = 0;
        ++closes_;
    }
}

bool
HealthTracker::isDown(size_t chip, double now) const
{
    return chips_[chip].downUntil > now;
}

BreakerState
HealthTracker::state(size_t chip, double now) const
{
    const ChipHealth &c = chips_[chip];
    if (!policy_.enabled || !c.tripped)
        return BreakerState::Closed;
    return now < c.openUntil ? BreakerState::Open : BreakerState::HalfOpen;
}

bool
HealthTracker::dispatchable(size_t chip, double now) const
{
    return !isDown(chip, now) && state(chip, now) == BreakerState::Closed;
}

bool
HealthTracker::canaryReady(size_t chip, double now) const
{
    return !isDown(chip, now) &&
           state(chip, now) == BreakerState::HalfOpen &&
           !chips_[chip].canaryInFlight;
}

void
HealthTracker::markCanary(size_t chip)
{
    chips_[chip].canaryInFlight = true;
    ++probes_;
}

double
HealthTracker::blockedUntil(size_t chip) const
{
    const ChipHealth &c = chips_[chip];
    double until = c.downUntil;
    if (policy_.enabled && c.tripped)
        until = std::max(until, c.openUntil);
    return until;
}

size_t
HealthTracker::aliveChips(double now) const
{
    size_t alive = 0;
    for (size_t chip = 0; chip < chips_.size(); ++chip)
        if (!isDown(chip, now) && state(chip, now) != BreakerState::Open)
            ++alive;
    return alive;
}

double
HealthTracker::meanServiceSeconds(size_t chip) const
{
    const ChipHealth &c = chips_[chip];
    return c.served > 0 ? c.serviceSum / static_cast<double>(c.served)
                        : 0.0;
}

DegradationLadder::DegradationLadder(const DegradationPolicy &policy)
    : policy_(policy)
{
    CFCONV_FATAL_IF(policy_.maxStep < 0 || policy_.maxStep > 3,
                    "DegradationLadder: maxStep must be in [0, 3]");
}

void
DegradationLadder::moveTo(Index step, double now)
{
    seconds_[step_] += now - stepSince_;
    step_ = step;
    stepSince_ = now;
    maxStepReached_ = std::max(maxStepReached_, step_);
    ++transitions_;
    // Re-arm both windows: the next move needs a fresh sustained
    // signal measured from this transition.
    aboveSince_ = now;
    belowSince_ = now;
}

bool
DegradationLadder::observe(double now, double pressure)
{
    if (!policy_.enabled)
        return false;
    if (pressure >= policy_.stepUpPressure) {
        belowSince_ = -1.0;
        if (aboveSince_ < 0.0)
            aboveSince_ = now;
        if (now - aboveSince_ >= policy_.stepUpAfterSeconds &&
            step_ < policy_.maxStep) {
            moveTo(step_ + 1, now);
            return true;
        }
    } else if (pressure <= policy_.stepDownPressure) {
        aboveSince_ = -1.0;
        if (belowSince_ < 0.0)
            belowSince_ = now;
        if (now - belowSince_ >= policy_.stepDownAfterSeconds &&
            step_ > 0) {
            moveTo(step_ - 1, now);
            return true;
        }
    } else {
        // Mid-band pressure: neither window accumulates.
        aboveSince_ = -1.0;
        belowSince_ = -1.0;
    }
    return false;
}

void
DegradationLadder::finalize(double end)
{
    if (end > stepSince_) {
        seconds_[step_] += end - stepSince_;
        stepSince_ = end;
    }
}

double
DegradationLadder::secondsAtStep(Index step) const
{
    return step >= 0 && step <= 3 ? seconds_[step] : 0.0;
}

} // namespace cfconv::serve
