#include "serve/batcher.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace cfconv::serve {

namespace {

/** Slack for comparing accumulated simulated timestamps against the
 *  max-wait deadline; one picosecond is far below any service time
 *  yet absorbs double rounding in t = a + b chains. */
constexpr double kTimeEps = 1e-12;

} // namespace

BatchQueue::BatchQueue(Index num_classes, const BatchPolicy &batch,
                       const AdmissionPolicy &admission,
                       std::vector<Index> priorities,
                       std::vector<double> slo_seconds)
    : batch_(batch), admission_(admission),
      queues_(static_cast<size_t>(num_classes)),
      shed_(static_cast<size_t>(num_classes), 0),
      brownoutShed_(static_cast<size_t>(num_classes), 0),
      priorities_(std::move(priorities)),
      sloSeconds_(std::move(slo_seconds)),
      brownoutMinPriority_(std::numeric_limits<Index>::max())
{
    CFCONV_FATAL_IF(num_classes < 1,
                    "BatchQueue: need at least one class");
    CFCONV_FATAL_IF(batch_.maxBatch < 1,
                    "BatchQueue: maxBatch must be >= 1");
    CFCONV_FATAL_IF(batch_.maxWaitSeconds < 0.0,
                    "BatchQueue: maxWaitSeconds must be >= 0");
    if (priorities_.empty())
        priorities_.assign(static_cast<size_t>(num_classes), 0);
    if (sloSeconds_.empty())
        sloSeconds_.assign(static_cast<size_t>(num_classes), 0.0);
    CFCONV_FATAL_IF(priorities_.size() != queues_.size() ||
                        sloSeconds_.size() != queues_.size(),
                    "BatchQueue: priorities/sloSeconds size mismatch");
}

bool
BatchQueue::offer(const Request &request,
                  double estimated_delay_seconds)
{
    const auto idx = static_cast<size_t>(request.classIdx);
    CFCONV_FATAL_IF(idx >= queues_.size(),
                    "BatchQueue: class index out of range");
    if (priorities_[idx] >= brownoutMinPriority_) {
        ++shed_[idx];
        ++brownoutShed_[idx];
        return false;
    }
    const bool full =
        admission_.maxQueuePerClass > 0 &&
        static_cast<Index>(queues_[idx].size()) >=
            admission_.maxQueuePerClass;
    const bool late =
        admission_.maxEstimatedDelaySeconds > 0.0 &&
        estimated_delay_seconds > admission_.maxEstimatedDelaySeconds;
    if (full || late) {
        ++shed_[idx];
        return false;
    }
    queues_[idx].push_back({request.id, request.arrivalSeconds});
    return true;
}

Index
BatchQueue::launchableClass(double now) const
{
    constexpr double inf = std::numeric_limits<double>::infinity();
    const Index max_batch = effectiveMaxBatch();
    Index best = -1;
    Index best_priority = std::numeric_limits<Index>::max();
    double best_deadline = inf;
    double best_arrival = inf;
    for (size_t i = 0; i < queues_.size(); ++i) {
        const auto &q = queues_[i];
        if (q.empty())
            continue;
        const bool full = static_cast<Index>(q.size()) >= max_batch;
        const bool timed_out = now - q.front().arrivalSeconds >=
                               batch_.maxWaitSeconds - kTimeEps;
        if (!full && !timed_out)
            continue;
        // Earliest deadline within the lowest (most important)
        // priority tier; arrival and class index break remaining
        // ties. With one tier and one SLO this reduces exactly to
        // earliest-arrival FIFO.
        const Index priority = priorities_[i];
        const double arrival = q.front().arrivalSeconds;
        const double deadline = arrival + sloSeconds_[i];
        if (priority < best_priority ||
            (priority == best_priority &&
             (deadline < best_deadline ||
              (deadline == best_deadline && arrival < best_arrival)))) {
            best_priority = priority;
            best_deadline = deadline;
            best_arrival = arrival;
            best = static_cast<Index>(i);
        }
    }
    return best;
}

double
BatchQueue::nextDeadline() const
{
    double deadline = std::numeric_limits<double>::infinity();
    for (const auto &q : queues_) {
        if (q.empty())
            continue;
        deadline = std::min(
            deadline, q.front().arrivalSeconds + batch_.maxWaitSeconds);
    }
    return deadline;
}

std::vector<QueuedRequest>
BatchQueue::pop(Index class_idx, Index max_n)
{
    auto &q = queues_[static_cast<size_t>(class_idx)];
    std::vector<QueuedRequest> batch;
    const Index n =
        std::min<Index>(max_n, static_cast<Index>(q.size()));
    batch.reserve(static_cast<size_t>(n));
    for (Index i = 0; i < n; ++i) {
        batch.push_back(q.front());
        q.pop_front();
    }
    return batch;
}

void
BatchQueue::requeueFront(Index class_idx,
                         const std::vector<QueuedRequest> &batch)
{
    auto &q = queues_[static_cast<size_t>(class_idx)];
    for (auto it = batch.rbegin(); it != batch.rend(); ++it)
        q.push_front(*it);
}

Index
BatchQueue::depth(Index class_idx) const
{
    return static_cast<Index>(
        queues_[static_cast<size_t>(class_idx)].size());
}

Index
BatchQueue::totalDepth() const
{
    Index total = 0;
    for (const auto &q : queues_)
        total += static_cast<Index>(q.size());
    return total;
}

Index
BatchQueue::shedCount(Index class_idx) const
{
    return shed_[static_cast<size_t>(class_idx)];
}

Index
BatchQueue::brownoutShedCount(Index class_idx) const
{
    return brownoutShed_[static_cast<size_t>(class_idx)];
}

void
BatchQueue::setMaxBatchOverride(Index max_batch)
{
    CFCONV_FATAL_IF(max_batch < 0,
                    "BatchQueue: maxBatch override must be >= 0");
    maxBatchOverride_ = max_batch;
}

Index
BatchQueue::effectiveMaxBatch() const
{
    return maxBatchOverride_ > 0
        ? std::min(maxBatchOverride_, batch_.maxBatch)
        : batch_.maxBatch;
}

void
BatchQueue::setBrownoutMinPriority(Index min_priority)
{
    brownoutMinPriority_ = min_priority;
}

Index
BatchQueue::priorityOf(Index class_idx) const
{
    return priorities_[static_cast<size_t>(class_idx)];
}

double
BatchQueue::sloOf(Index class_idx) const
{
    return sloSeconds_[static_cast<size_t>(class_idx)];
}

} // namespace cfconv::serve
