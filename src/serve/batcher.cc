#include "serve/batcher.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace cfconv::serve {

namespace {

/** Slack for comparing accumulated simulated timestamps against the
 *  max-wait deadline; one picosecond is far below any service time
 *  yet absorbs double rounding in t = a + b chains. */
constexpr double kTimeEps = 1e-12;

} // namespace

BatchQueue::BatchQueue(Index num_classes, const BatchPolicy &batch,
                       const AdmissionPolicy &admission)
    : batch_(batch), admission_(admission),
      queues_(static_cast<size_t>(num_classes)),
      shed_(static_cast<size_t>(num_classes), 0)
{
    CFCONV_FATAL_IF(num_classes < 1,
                    "BatchQueue: need at least one class");
    CFCONV_FATAL_IF(batch_.maxBatch < 1,
                    "BatchQueue: maxBatch must be >= 1");
    CFCONV_FATAL_IF(batch_.maxWaitSeconds < 0.0,
                    "BatchQueue: maxWaitSeconds must be >= 0");
}

bool
BatchQueue::offer(const Request &request,
                  double estimated_delay_seconds)
{
    const auto idx = static_cast<size_t>(request.classIdx);
    CFCONV_FATAL_IF(idx >= queues_.size(),
                    "BatchQueue: class index out of range");
    const bool full =
        admission_.maxQueuePerClass > 0 &&
        static_cast<Index>(queues_[idx].size()) >=
            admission_.maxQueuePerClass;
    const bool late =
        admission_.maxEstimatedDelaySeconds > 0.0 &&
        estimated_delay_seconds > admission_.maxEstimatedDelaySeconds;
    if (full || late) {
        ++shed_[idx];
        return false;
    }
    queues_[idx].push_back({request.id, request.arrivalSeconds});
    return true;
}

Index
BatchQueue::launchableClass(double now) const
{
    Index best = -1;
    double best_arrival = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < queues_.size(); ++i) {
        const auto &q = queues_[i];
        if (q.empty())
            continue;
        const bool full =
            static_cast<Index>(q.size()) >= batch_.maxBatch;
        const bool timed_out = now - q.front().arrivalSeconds >=
                               batch_.maxWaitSeconds - kTimeEps;
        if (!full && !timed_out)
            continue;
        if (q.front().arrivalSeconds < best_arrival) {
            best_arrival = q.front().arrivalSeconds;
            best = static_cast<Index>(i);
        }
    }
    return best;
}

double
BatchQueue::nextDeadline() const
{
    double deadline = std::numeric_limits<double>::infinity();
    for (const auto &q : queues_) {
        if (q.empty())
            continue;
        deadline = std::min(
            deadline, q.front().arrivalSeconds + batch_.maxWaitSeconds);
    }
    return deadline;
}

std::vector<QueuedRequest>
BatchQueue::pop(Index class_idx, Index max_n)
{
    auto &q = queues_[static_cast<size_t>(class_idx)];
    std::vector<QueuedRequest> batch;
    const Index n =
        std::min<Index>(max_n, static_cast<Index>(q.size()));
    batch.reserve(static_cast<size_t>(n));
    for (Index i = 0; i < n; ++i) {
        batch.push_back(q.front());
        q.pop_front();
    }
    return batch;
}

void
BatchQueue::requeueFront(Index class_idx,
                         const std::vector<QueuedRequest> &batch)
{
    auto &q = queues_[static_cast<size_t>(class_idx)];
    for (auto it = batch.rbegin(); it != batch.rend(); ++it)
        q.push_front(*it);
}

Index
BatchQueue::depth(Index class_idx) const
{
    return static_cast<Index>(
        queues_[static_cast<size_t>(class_idx)].size());
}

Index
BatchQueue::totalDepth() const
{
    Index total = 0;
    for (const auto &q : queues_)
        total += static_cast<Index>(q.size());
    return total;
}

Index
BatchQueue::shedCount(Index class_idx) const
{
    return shed_[static_cast<size_t>(class_idx)];
}

} // namespace cfconv::serve
