#include "serve/multi_chip.h"

#include <string>

#include "common/logging.h"
#include "sim/model_runner.h"

namespace cfconv::serve {

namespace {

/** Full-model useful FLOPs (grouped-aware, counting repetitions). */
Flops
modelFlops(const models::ModelSpec &model)
{
    Flops flops = 0;
    for (const auto &layer : model.layers)
        flops += layer.flops() * static_cast<Flops>(layer.count);
    return flops;
}

} // namespace

sim::RunRecord
runModelDataParallel(const sim::Accelerator &accelerator,
                     const models::ModelSpec &model, Index chips)
{
    CFCONV_FATAL_IF(chips < 1,
                    "runModelDataParallel: chips must be >= 1");
    sim::RunRecord record = sim::ModelRunner(accelerator)
                                .runModel(models::splitBatchAcrossCores(
                                    model, chips));
    record.model =
        model.name + " (x" + std::to_string(chips) + " chips)";
    record.batch =
        model.layers.empty() ? 0 : model.layers.front().params.batch;
    // Throughput accounting covers the full batch: the board's time is
    // one slice's time, but all `chips` slices' FLOPs got done.
    const Flops flops = modelFlops(model);
    record.tflops = record.seconds > 0.0
        ? static_cast<double>(flops) / record.seconds / 1e12
        : 0.0;
    return record;
}

sim::RunRecord
runModelTensorParallel(const sim::Accelerator &accelerator,
                       const models::ModelSpec &model, Index chips,
                       double sync_seconds)
{
    CFCONV_FATAL_IF(chips < 1,
                    "runModelTensorParallel: chips must be >= 1");
    CFCONV_FATAL_IF(sync_seconds < 0.0,
                    "runModelTensorParallel: sync_seconds must be >= 0");
    sim::RunRecord record =
        sim::ModelRunner(accelerator)
            .runModel(models::splitChannelsAcrossChips(model, chips));
    record.model =
        model.name + " (tp" + std::to_string(chips) + ")";
    record.seconds += sync_seconds;
    const Flops flops = modelFlops(model);
    record.tflops = record.seconds > 0.0
        ? static_cast<double>(flops) / record.seconds / 1e12
        : 0.0;
    return record;
}

} // namespace cfconv::serve
