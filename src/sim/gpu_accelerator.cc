#include "sim/gpu_accelerator.h"

#include "gpusim/energy.h"
#include "gpusim/kernel_cache.h"
#include "models/model_zoo.h"
#include "sim/algorithm_map.h"

namespace cfconv::sim {

GpuAccelerator::GpuAccelerator(std::string name,
                               const gpusim::GpuConfig &config,
                               const gpusim::GpuRunOptions &options)
    : name_(std::move(name)), sim_(config), options_(options)
{}

double
GpuAccelerator::peakTflops() const
{
    return sim_.config().peakTflops();
}

LayerRecord
GpuAccelerator::runLayer(const ConvParams &params,
                         const RunOptions &options) const
{
    // Grouped layers: one kernel per group slice (real stacks fuse
    // these, but the slice count dominates the estimate). The slice
    // geometry is computed by ConvLayerSpec::sliceParams so it is
    // byte-identical to what GpuSim::runModel always simulated.
    models::ConvLayerSpec spec;
    spec.params = params;
    spec.groups = options.groups;
    const gpusim::GpuKernelResult r =
        sim_.runConv(spec.sliceParams(), options_);
    const double groups = static_cast<double>(options.groups);

    LayerRecord rec;
    rec.geometry = params.toString();
    rec.groups = options.groups;
    rec.seconds = r.seconds * groups;
    rec.dramBytes = r.dramBytes * static_cast<Bytes>(options.groups);
    rec.flops = spec.flops();
    rec.tflops = static_cast<double>(rec.flops) / rec.seconds / 1e12;
    rec.utilization = rec.tflops / peakTflops();
    rec.extras["memoryBound"] = r.memoryBound ? 1.0 : 0.0;
    rec.extras["computeSeconds"] = r.computeSeconds * groups;
    rec.extras["memorySeconds"] = r.memorySeconds * groups;
    rec.extras["transformSeconds"] = r.transformSeconds * groups;
    // pJ/MAC is a per-MAC ratio, so the single-slice kernel result is
    // the grouped layer's figure too (both energy and MACs scale by
    // the group count).
    rec.extras["pjPerMac"] =
        gpusim::kernelEnergy(sim_.config(), r).pjPerMac;
    // Stamp the algorithm only for the zoo additions: records from the
    // pre-zoo paths stay byte-identical to the pre-refactor goldens.
    if (options_.algorithm == gpusim::GpuAlgorithm::Indirect ||
        options_.algorithm == gpusim::GpuAlgorithm::Smm)
        rec.algorithm = algorithm()->name();
    return rec;
}

StatGroup
GpuAccelerator::cacheStats() const
{
    return gpusim::KernelCache::instance().statsSnapshot();
}

const conv::Algorithm *
GpuAccelerator::algorithm() const
{
    return algorithmForGpu(options_.algorithm);
}

} // namespace cfconv::sim
