#include "sim/report.h"

#include "common/atomic_file.h"
#include "common/metrics.h"
#include "common/report.h"
#include "common/trace.h"

namespace cfconv::sim {

namespace {

void
emitLayer(JsonWriter &w, const LayerRecord &layer)
{
    w.beginObject();
    w.field("name", layer.name);
    w.field("geometry", layer.geometry);
    w.field("count", static_cast<long long>(layer.count));
    w.field("groups", static_cast<long long>(layer.groups));
    w.field("seconds", layer.seconds);
    w.field("tflops", layer.tflops);
    w.field("utilization", layer.utilization);
    w.field("dram_bytes", static_cast<std::uint64_t>(layer.dramBytes));
    w.field("flops", static_cast<std::uint64_t>(layer.flops));
    // The v4 algorithm field: emitted only for the zoo additions, so
    // stock-path documents stay byte-identical to the pre-zoo goldens.
    if (!layer.algorithm.empty())
        w.field("algorithm", layer.algorithm);
    w.key("extras");
    w.beginObject();
    for (const auto &[name, value] : layer.extras)
        w.field(name, value);
    w.endObject();
    w.endObject();
}

void
emitRecord(JsonWriter &w, const RunRecord &record)
{
    w.beginObject();
    w.field("accelerator", record.accelerator);
    w.field("model", record.model);
    w.field("batch", static_cast<long long>(record.batch));
    w.field("peak_tflops", record.peakTflops);
    w.field("seconds", record.seconds);
    w.field("tflops", record.tflops);
    w.field("dram_bytes", static_cast<std::uint64_t>(record.dramBytes));
    // The v3 resilience block: emitted only for chaos runs (injector
    // armed), so fault-free documents stay byte-identical to the v2
    // goldens.
    if (record.resilience.active) {
        const auto &r = record.resilience;
        w.key("resilience");
        w.beginObject();
        w.field("active", true);
        w.field("faults_seen", static_cast<long long>(r.faultsSeen));
        w.field("retries", static_cast<long long>(r.retries));
        w.field("failovers", static_cast<long long>(r.failovers));
        w.field("layers_failed_over",
                static_cast<long long>(r.layersFailedOver));
        w.field("layers_resumed",
                static_cast<long long>(r.layersResumed));
        w.field("backoff_seconds", r.backoffSeconds);
        w.field("final_backend", r.finalBackend);
        // The v5 serving sub-object: emitted only when the serving
        // layer ran with some resilience feature enabled, so
        // model-level chaos documents stay byte-identical to the v3
        // goldens.
        if (r.serving.active) {
            const auto &s = r.serving;
            w.key("serving");
            w.beginObject();
            w.field("active", true);
            w.field("breaker_trips",
                    static_cast<long long>(s.breakerTrips));
            w.field("breaker_probes",
                    static_cast<long long>(s.breakerProbes));
            w.field("breaker_closes",
                    static_cast<long long>(s.breakerCloses));
            w.field("hedged_batches",
                    static_cast<long long>(s.hedgedBatches));
            w.field("hedge_wins", static_cast<long long>(s.hedgeWins));
            w.field("hedge_losses",
                    static_cast<long long>(s.hedgeLosses));
            w.field("degrade_step_max",
                    static_cast<long long>(s.degradeStepMax));
            w.field("degrade_transitions",
                    static_cast<long long>(s.degradeTransitions));
            w.field("brownout_shed",
                    static_cast<long long>(s.brownoutShed));
            w.field("fallback_batches",
                    static_cast<long long>(s.fallbackBatches));
            w.endObject();
        }
        w.endObject();
    }
    w.key("layers");
    w.beginArray();
    for (const auto &layer : record.layers)
        emitLayer(w, layer);
    w.endArray();
    w.endObject();
}

void
emitMeta(JsonWriter &w, const ReportMeta &meta)
{
    if (!meta.traceFile.empty())
        w.field("trace_file", meta.traceFile);
    w.key("metrics");
    w.beginObject();
    // Shared with the standalone metrics=FILE dump (common/metrics),
    // so the two emitters cannot drift.
    emitStatGroupJson(w, meta.metrics);
    w.endObject();
}

} // namespace

ReportMeta
currentReportMeta()
{
    ReportMeta meta;
    meta.traceFile = trace::outputPath();
    meta.metrics = MetricsRegistry::instance().snapshot();
    return meta;
}

std::string
runRecordsJson(const std::vector<RunRecord> &records,
               const ReportMeta &meta)
{
    // Stamp the newest version some record actually needs: v5 when a
    // chaos record carries serving resilience, v4 when a layer carries
    // an algorithm, v3 when a record carries a resilience block, v2
    // otherwise — so older documents remain byte-identical to their
    // goldens.
    bool anyResilience = false;
    bool anyAlgorithm = false;
    bool anyServing = false;
    for (const auto &record : records) {
        anyResilience = anyResilience || record.resilience.active;
        anyServing = anyServing
            || (record.resilience.active && record.resilience.serving.active);
        for (const auto &layer : record.layers)
            anyAlgorithm = anyAlgorithm || !layer.algorithm.empty();
    }
    const long long version = anyServing
        ? RunRecord::kSchemaVersion
        : (anyAlgorithm ? 4LL : (anyResilience ? 3LL : 2LL));

    JsonWriter w;
    w.beginObject();
    w.field("schema", "cfconv.run_record");
    w.field("version", version);
    emitMeta(w, meta);
    w.key("records");
    w.beginArray();
    for (const auto &record : records)
        emitRecord(w, record);
    w.endArray();
    w.endObject();
    return w.str() + "\n";
}

std::string
runRecordsJson(const std::vector<RunRecord> &records)
{
    return runRecordsJson(records, currentReportMeta());
}

bool
writeRunRecords(const std::string &path,
                const std::vector<RunRecord> &records,
                const ReportMeta &meta)
{
    // Atomic write-temp + rename: a crash mid-save leaves the previous
    // document intact instead of a torn JSON prefix.
    return atomicWriteFile(path, runRecordsJson(records, meta));
}

bool
writeRunRecords(const std::string &path,
                const std::vector<RunRecord> &records)
{
    return atomicWriteFile(path,
                           runRecordsJson(records, currentReportMeta()));
}

} // namespace cfconv::sim
