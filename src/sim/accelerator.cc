#include "sim/accelerator.h"

#include <cstdio>

#include "common/fault.h"
#include "common/logging.h"
#include "common/rng.h"
#include "conv/algorithm.h"

namespace cfconv::sim {

namespace {

/** Input-side description of a possibly nonsense layer. Unlike
 *  ConvParams::toString(), never computes the output shape — that
 *  divides by the stride, which is exactly what may be zero here. */
std::string
describeUnvalidated(const ConvParams &p)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "N%lld C%lld %lldx%lld k%lldx%lld s%lldx%lld "
                  "p%lldx%lld d%lldx%lld -> C%lld",
                  static_cast<long long>(p.batch),
                  static_cast<long long>(p.inChannels),
                  static_cast<long long>(p.inH),
                  static_cast<long long>(p.inW),
                  static_cast<long long>(p.kernelH),
                  static_cast<long long>(p.kernelW),
                  static_cast<long long>(p.strideH),
                  static_cast<long long>(p.strideW),
                  static_cast<long long>(p.padH),
                  static_cast<long long>(p.padW),
                  static_cast<long long>(p.dilationH),
                  static_cast<long long>(p.dilationW),
                  static_cast<long long>(p.outChannels));
    return buf;
}

} // namespace

Status
validateLayerParams(const ConvParams &params, const RunOptions &options)
{
    const auto bad = [&](const char *field, Index value,
                         const char *what) {
        return invalidArgumentError(
            "layer %s: %s = %lld %s",
            describeUnvalidated(params).c_str(), field,
            static_cast<long long>(value), what);
    };
    if (params.batch < 1)
        return bad("batch", params.batch, "must be >= 1");
    if (params.inChannels < 1)
        return bad("inChannels", params.inChannels, "must be >= 1");
    if (params.outChannels < 1)
        return bad("outChannels", params.outChannels, "must be >= 1");
    if (params.inH < 1)
        return bad("inH", params.inH, "must be >= 1");
    if (params.inW < 1)
        return bad("inW", params.inW, "must be >= 1");
    if (params.kernelH < 1)
        return bad("kernelH", params.kernelH, "must be >= 1");
    if (params.kernelW < 1)
        return bad("kernelW", params.kernelW, "must be >= 1");
    if (params.strideH < 1)
        return bad("strideH", params.strideH, "must be >= 1");
    if (params.strideW < 1)
        return bad("strideW", params.strideW, "must be >= 1");
    if (params.dilationH < 1)
        return bad("dilationH", params.dilationH, "must be >= 1");
    if (params.dilationW < 1)
        return bad("dilationW", params.dilationW, "must be >= 1");
    if (params.padH < 0)
        return bad("padH", params.padH, "must be >= 0");
    if (params.padW < 0)
        return bad("padW", params.padW, "must be >= 0");
    if (params.effKernelH() > params.inH + 2 * params.padH)
        return invalidArgumentError(
            "layer %s: dilated kernel height %lld exceeds padded input "
            "height %lld",
            params.toString().c_str(),
            static_cast<long long>(params.effKernelH()),
            static_cast<long long>(params.inH + 2 * params.padH));
    if (params.effKernelW() > params.inW + 2 * params.padW)
        return invalidArgumentError(
            "layer %s: dilated kernel width %lld exceeds padded input "
            "width %lld",
            params.toString().c_str(),
            static_cast<long long>(params.effKernelW()),
            static_cast<long long>(params.inW + 2 * params.padW));
    if (params.outH() < 1 || params.outW() < 1)
        return invalidArgumentError(
            "layer %s: degenerate output %lldx%lld",
            params.toString().c_str(),
            static_cast<long long>(params.outH()),
            static_cast<long long>(params.outW()));
    if (options.groups < 1)
        return bad("groups", options.groups, "must be >= 1");
    if (params.inChannels % options.groups != 0)
        return invalidArgumentError(
            "layer %s: inChannels %lld not divisible by groups %lld",
            params.toString().c_str(),
            static_cast<long long>(params.inChannels),
            static_cast<long long>(options.groups));
    if (params.outChannels % options.groups != 0)
        return invalidArgumentError(
            "layer %s: outChannels %lld not divisible by groups %lld",
            params.toString().c_str(),
            static_cast<long long>(params.outChannels),
            static_cast<long long>(options.groups));
    if (options.attempt < 0)
        return bad("attempt", options.attempt, "must be >= 0");
    return okStatus();
}

StatusOr<LayerRecord>
Accelerator::tryRunLayer(const ConvParams &params,
                         const RunOptions &options) const
{
    CFCONV_RETURN_IF_ERROR(
        validateLayerParams(params, options)
            .withContext("accelerator " + name()));
    // Algorithm applicability is a property of the layer, not a
    // simulator bug: reject unsupported shapes (SMM-Conv on strided
    // layers) here so the resilient runner sees INVALID_ARGUMENT.
    if (const conv::Algorithm *algo = algorithm())
        CFCONV_RETURN_IF_ERROR(
            algo->supports(params, options.groups)
                .withContext("accelerator " + name()));
    // The step-timeout die is keyed on (backend, geometry, groups,
    // attempt): a retried layer rolls a fresh die, a different backend
    // rolls an independent one, and neither depends on thread schedule.
    const std::string geometry = params.toString();
    std::uint64_t key = hashBytes(geometry.data(), geometry.size());
    key = hashCombine(key, static_cast<std::uint64_t>(options.groups));
    key = hashCombine(key, static_cast<std::uint64_t>(options.attempt));
    if (fault::FaultInjector::instance().inject(fault::kAccelStepTimeout,
                                                name(), key)) {
        return deadlineExceededError(
            "accelerator %s: simulated step timeout on layer %s "
            "(attempt %lld)",
            name().c_str(), geometry.c_str(),
            static_cast<long long>(options.attempt));
    }
    try {
        return runLayer(params, options);
    } catch (const PanicError &e) {
        return internalError("accelerator %s: %s", name().c_str(),
                             e.what());
    } catch (const FatalError &e) {
        return invalidArgumentError("accelerator %s: %s", name().c_str(),
                                    e.what());
    }
}

// makeAccelerator / tryMakeAccelerator / knownAccelerators are defined
// in tune/variant_registry.cc: both the name list and the dispatch
// derive from the variant registry, the single source of truth.

} // namespace cfconv::sim
