#include "sim/accelerator.h"

#include "common/logging.h"
#include "sim/gpu_accelerator.h"
#include "sim/tpu_accelerator.h"

namespace cfconv::sim {

std::unique_ptr<Accelerator>
makeAccelerator(const std::string &name)
{
    if (name == "tpu-v2") {
        return std::make_unique<TpuAccelerator>(
            name, tpusim::TpuConfig::tpuV2());
    }
    if (name == "tpu-v3ish") {
        return std::make_unique<TpuAccelerator>(
            name, tpusim::TpuConfig::tpuV3ish());
    }
    if (name == "gpu-v100") {
        return std::make_unique<GpuAccelerator>(
            name, gpusim::GpuConfig::v100());
    }
    if (name == "gpu-v100-cudnn") {
        gpusim::GpuRunOptions options;
        options.algorithm = gpusim::GpuAlgorithm::ImplicitChannelLast;
        options.vendorTuned = true;
        return std::make_unique<GpuAccelerator>(
            name, gpusim::GpuConfig::v100(), options);
    }
    fatal("unknown accelerator '%s' (known: tpu-v2, tpu-v3ish, "
          "gpu-v100, gpu-v100-cudnn)",
          name.c_str());
}

std::vector<std::string>
knownAccelerators()
{
    return {"tpu-v2", "tpu-v3ish", "gpu-v100", "gpu-v100-cudnn"};
}

} // namespace cfconv::sim
