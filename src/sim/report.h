/**
 * @file
 * Versioned JSON emission of sim::RunRecord documents — the
 * BENCH_gemm.json pattern generalized to whole-model runs. The
 * document shape (validated by scripts/check_report.sh):
 *
 *   {
 *     "schema": "cfconv.run_record",
 *     "version": 1,
 *     "records": [
 *       {
 *         "accelerator": "tpu-v2", "model": "ResNet", "batch": 8,
 *         "peak_tflops": 22.9, "seconds": ..., "tflops": ...,
 *         "dram_bytes": ...,
 *         "layers": [
 *           { "name": ..., "geometry": ..., "count": ..,
 *             "groups": .., "seconds": ..., "tflops": ...,
 *             "utilization": ..., "dram_bytes": ..., "flops": ...,
 *             "extras": { "multiTile": 3, ... } },
 *           ...
 *         ]
 *       }, ...
 *     ]
 *   }
 *
 * Non-finite metric values are emitted as null (common/report), which
 * the validator rejects — a bench whose model run produced NaN cannot
 * silently ship a green report.
 */

#ifndef CFCONV_SIM_REPORT_H
#define CFCONV_SIM_REPORT_H

#include <string>
#include <vector>

#include "sim/accelerator.h"

namespace cfconv::sim {

/** Render @p records as the versioned JSON document. */
std::string runRecordsJson(const std::vector<RunRecord> &records);

/** Write runRecordsJson() to @p path; @return false on I/O failure. */
bool writeRunRecords(const std::string &path,
                     const std::vector<RunRecord> &records);

} // namespace cfconv::sim

#endif // CFCONV_SIM_REPORT_H
