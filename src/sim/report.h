/**
 * @file
 * Versioned JSON emission of sim::RunRecord documents — the
 * BENCH_gemm.json pattern generalized to whole-model runs. The
 * document shape (validated by scripts/check_report.sh):
 *
 *   {
 *     "schema": "cfconv.run_record",
 *     "version": 2,                      // 3 when any record carries
 *                                        // a "resilience" block
 *     "trace_file": "trace.json",        // only when the run traced
 *     "metrics": {
 *       "counters": { "runner.layers": 53, ... },
 *       "histograms": {
 *         "runner.layer_sim_seconds": { "count": .., "mean": ...,
 *           "min": ..., "max": ..., "p50": ..., "p95": ...,
 *           "p99": ..., "p999": ... }, ...
 *       }
 *     },
 *     "records": [
 *       {
 *         "accelerator": "tpu-v2", "model": "ResNet", "batch": 8,
 *         "peak_tflops": 22.9, "seconds": ..., "tflops": ...,
 *         "dram_bytes": ...,
 *         "resilience": {                // v3, chaos runs only
 *           "active": true, "faults_seen": .., "retries": ..,
 *           "failovers": .., "layers_failed_over": ..,
 *           "layers_resumed": .., "backoff_seconds": ...,
 *           "final_backend": "gpu-v100" },
 *         "layers": [
 *           { "name": ..., "geometry": ..., "count": ..,
 *             "groups": .., "seconds": ..., "tflops": ...,
 *             "utilization": ..., "dram_bytes": ..., "flops": ...,
 *             "extras": { "multiTile": 3, ... } },
 *           ...
 *         ]
 *       }, ...
 *     ]
 *   }
 *
 * Non-finite metric values are emitted as null (common/report), which
 * the validator rejects — a bench whose model run produced NaN cannot
 * silently ship a green report.
 */

#ifndef CFCONV_SIM_REPORT_H
#define CFCONV_SIM_REPORT_H

#include <string>
#include <vector>

#include "sim/accelerator.h"

namespace cfconv::sim {

/** Document-level metadata of the v2 schema. */
struct ReportMeta
{
    /** Chrome-trace file this run wrote; empty = untraced (the
     *  "trace_file" key is omitted, keeping healthy documents
     *  null-free for the validators). */
    std::string traceFile;
    /** Metrics snapshot: counters and sampled distributions. */
    StatGroup metrics;
};

/** Meta describing the live process: the MetricsRegistry snapshot
 *  plus the armed trace path. What the benches pass. */
ReportMeta currentReportMeta();

/** Render @p records as the versioned JSON document. The two-argument
 *  form stamps currentReportMeta(). */
std::string runRecordsJson(const std::vector<RunRecord> &records);
std::string runRecordsJson(const std::vector<RunRecord> &records,
                           const ReportMeta &meta);

/** Write runRecordsJson() to @p path; @return false on I/O failure. */
bool writeRunRecords(const std::string &path,
                     const std::vector<RunRecord> &records);
bool writeRunRecords(const std::string &path,
                     const std::vector<RunRecord> &records,
                     const ReportMeta &meta);

} // namespace cfconv::sim

#endif // CFCONV_SIM_REPORT_H
