/**
 * @file
 * Sim-layer observability hooks: RAII helpers that tie one ModelRunner
 * invocation (and each layer inside it) to a wall-clock trace span and
 * to the process-wide MetricsRegistry. The backend simulators emit
 * their own spans on the simulated-cycles clock (tpusim, gpusim);
 * these hooks add the host-side view — where the runner actually
 * spends real time — plus the latency histograms the v2 RunRecord
 * schema exports. Metrics are recorded whether or not tracing is
 * armed, so reports carry percentiles even in untraced runs.
 */

#ifndef CFCONV_SIM_TRACE_HOOKS_H
#define CFCONV_SIM_TRACE_HOOKS_H

#include <string>

#include "common/trace.h"
#include "sim/accelerator.h"

namespace cfconv::sim {

/**
 * Wall-clock span + metrics for simulating one layer. Construct
 * before Accelerator::runLayer, call finish() with the result; the
 * span is emitted at destruction. Safe on pool worker threads (the
 * registry is mutex-protected, the span buffers per thread).
 */
class LayerSpan
{
  public:
    LayerSpan(const std::string &accelerator,
              const std::string &layer_name);
    ~LayerSpan() = default;

    LayerSpan(const LayerSpan &) = delete;
    LayerSpan &operator=(const LayerSpan &) = delete;

    /** Attach the layer result to the span and meter it. When the
     *  record names a conv::Algorithm (the zoo paths), the span also
     *  carries "algorithm" and "variant" string args so the offline
     *  analyzer (src/analyze) can group layers without guessing;
     *  stock-path records (empty algorithm) stamp nothing, keeping
     *  their traces byte-identical to the pre-analyzer recorder. */
    void finish(const LayerRecord &record);

  private:
    trace::Scope scope_;
    std::string accelerator_;
    double startUs_;
};

/** Wall-clock span + metrics for one whole model run. */
class ModelSpan
{
  public:
    ModelSpan(const std::string &accelerator, const std::string &model);
    ~ModelSpan() = default;

    ModelSpan(const ModelSpan &) = delete;
    ModelSpan &operator=(const ModelSpan &) = delete;

    /** Attach the run result to the span and meter it. Mirrors
     *  LayerSpan::finish: when any layer names an algorithm, the span
     *  carries "algorithm"/"variant" string args. */
    void finish(const RunRecord &record);

  private:
    trace::Scope scope_;
    std::string accelerator_;
    double startUs_;
};

} // namespace cfconv::sim

#endif // CFCONV_SIM_TRACE_HOOKS_H
