#include "sim/trace_hooks.h"

#include "common/metrics.h"

namespace cfconv::sim {

LayerSpan::LayerSpan(const std::string &accelerator,
                     const std::string &layer_name)
    : scope_("runner",
             trace::enabled()
                 ? accelerator + " layer " +
                       (layer_name.empty() ? "<ad hoc>" : layer_name)
                 : std::string()),
      accelerator_(accelerator), startUs_(trace::nowUs())
{}

void
LayerSpan::finish(const LayerRecord &record)
{
    scope_.arg("seconds", record.seconds);
    scope_.arg("tflops", record.tflops);
    scope_.arg("utilization", record.utilization);
    // Self-describing zoo spans: the algorithm/variant the layer
    // actually ran, for the offline analyzer's grouping. Stock-path
    // records carry no algorithm name, so their traces stay
    // byte-identical to the pre-analyzer recorder.
    if (!record.algorithm.empty()) {
        scope_.arg("algorithm", record.algorithm);
        scope_.arg("variant", accelerator_);
    }
    auto &metrics = MetricsRegistry::instance();
    metrics.add("runner.layers", 1.0);
    metrics.sample("runner.layer_sim_seconds", record.seconds);
    metrics.sample("runner.layer_tflops", record.tflops);
    metrics.sample("runner.layer_wall_seconds",
                   (trace::nowUs() - startUs_) * 1e-6);
}

ModelSpan::ModelSpan(const std::string &accelerator,
                     const std::string &model)
    : scope_("runner",
             trace::enabled() ? "runModel " + model + " on " + accelerator
                              : std::string()),
      accelerator_(accelerator), startUs_(trace::nowUs())
{}

void
ModelSpan::finish(const RunRecord &record)
{
    scope_.arg("seconds", record.seconds);
    scope_.arg("tflops", record.tflops);
    scope_.arg("layers", static_cast<double>(record.layers.size()));
    for (const auto &layer : record.layers)
        if (!layer.algorithm.empty()) {
            scope_.arg("algorithm", layer.algorithm);
            scope_.arg("variant", accelerator_);
            break;
        }
    auto &metrics = MetricsRegistry::instance();
    metrics.add("runner.models", 1.0);
    metrics.sample("runner.model_sim_seconds", record.seconds);
    metrics.sample("runner.model_wall_seconds",
                   (trace::nowUs() - startUs_) * 1e-6);
}

} // namespace cfconv::sim
