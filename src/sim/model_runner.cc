#include "sim/model_runner.h"

#include "common/parallel.h"
#include "sim/trace_hooks.h"

namespace cfconv::sim {

RunRecord
ModelRunner::runModel(const models::ModelSpec &model) const
{
    ModelSpan model_span(accelerator_.name(), model.name);
    RunRecord record;
    record.accelerator = accelerator_.name();
    record.model = model.name;
    record.batch =
        model.layers.empty() ? 0 : model.layers.front().params.batch;
    record.peakTflops = accelerator_.peakTflops();

    // Per-layer timings are independent; simulate them in parallel and
    // reduce in layer order afterwards, so totals match the serial run
    // bit for bit.
    const Index n_layers = static_cast<Index>(model.layers.size());
    record.layers.resize(model.layers.size());
    parallel::parallelFor(0, n_layers, 1, [&](Index b, Index e) {
        for (Index i = b; i < e; ++i) {
            const auto &layer = model.layers[static_cast<size_t>(i)];
            RunOptions opts;
            opts.groups = layer.groups;
            LayerSpan span(record.accelerator, layer.name);
            LayerRecord rec = accelerator_.runLayer(layer.params, opts);
            rec.name = layer.name;
            rec.count = layer.count;
            span.finish(rec);
            record.layers[static_cast<size_t>(i)] = std::move(rec);
        }
    });

    Flops flops = 0;
    for (const auto &layer : record.layers) {
        const double n = static_cast<double>(layer.count);
        record.seconds += n * layer.seconds;
        record.dramBytes +=
            layer.dramBytes * static_cast<Bytes>(layer.count);
        flops += layer.flops * static_cast<Flops>(layer.count);
    }
    record.tflops = record.seconds > 0.0
        ? static_cast<double>(flops) / record.seconds / 1e12
        : 0.0;
    model_span.finish(record);
    return record;
}

std::vector<RunRecord>
ModelRunner::runModels(const std::vector<models::ModelSpec> &models) const
{
    std::vector<RunRecord> records;
    records.reserve(models.size());
    for (const auto &model : models)
        records.push_back(runModel(model));
    return records;
}

std::vector<RunRecord>
runModelOnBackends(const models::ModelSpec &model,
                   const std::vector<std::string> &accelerator_names)
{
    std::vector<RunRecord> records;
    records.reserve(accelerator_names.size());
    for (const auto &name : accelerator_names) {
        const auto accelerator = makeAccelerator(name);
        records.push_back(ModelRunner(*accelerator).runModel(model));
    }
    return records;
}

} // namespace cfconv::sim
