#include "sim/model_runner.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/trace.h"
#include "sim/trace_hooks.h"

namespace cfconv::sim {

namespace {

/**
 * Per-layer resilience bookkeeping. Each entry is written only by the
 * parallel chunk that owns its layer index (and read serially between
 * passes), so the sweep needs no locks and the serial reduction is
 * deterministic across thread counts.
 */
struct LayerOutcome
{
    bool done = false;       ///< checkpointed: completed on some backend
    bool failedOver = false; ///< completed on a failover backend
    Index attempts = 0;      ///< total attempts across all backends
    Index retries = 0;       ///< re-attempts after a retryable failure
    Index faults = 0;        ///< failed attempts observed
    double backoffSeconds = 0.0; ///< simulated backoff accumulated
    Status error;                ///< last error (OK once done)
    std::string backend;         ///< backend that completed the layer
};

/** Simulated backoff before retry number @p retry (1-based), capped
 *  exponential per the policy. */
double
backoffFor(const fault::ResiliencePolicy &policy, Index retry)
{
    double d = policy.backoffSeconds;
    for (Index i = 1; i < retry; ++i) {
        d *= policy.backoffMultiplier;
        if (d >= policy.maxBackoffSeconds)
            break;
    }
    return std::min(d, policy.maxBackoffSeconds);
}

} // namespace

RunRecord
ModelRunner::runModel(const models::ModelSpec &model) const
{
    if (fault::FaultInjector::instance().armed()) {
        auto resilient = tryRunModel(model);
        if (!resilient.ok())
            fatal("runModel '%s': %s", model.name.c_str(),
                  resilient.status().toString().c_str());
        return std::move(resilient).value();
    }

    // Validate at the accelerator boundary before spending any
    // simulation time; a nonsense layer dies with the structured
    // message instead of an assert deep inside a backend.
    for (const auto &layer : model.layers) {
        RunOptions opts;
        opts.groups = layer.groups;
        const Status valid = validateLayerParams(layer.params, opts);
        if (!valid.ok())
            fatal("runModel '%s': %s", model.name.c_str(),
                  valid.toString().c_str());
    }

    ModelSpan model_span(accelerator_.name(), model.name);
    RunRecord record;
    record.accelerator = accelerator_.name();
    record.model = model.name;
    record.batch =
        model.layers.empty() ? 0 : model.layers.front().params.batch;
    record.peakTflops = accelerator_.peakTflops();

    // Per-layer timings are independent; simulate them in parallel and
    // reduce in layer order afterwards, so totals match the serial run
    // bit for bit.
    const Index n_layers = static_cast<Index>(model.layers.size());
    record.layers.resize(model.layers.size());
    parallel::parallelFor(0, n_layers, 1, [&](Index b, Index e) {
        for (Index i = b; i < e; ++i) {
            const auto &layer = model.layers[static_cast<size_t>(i)];
            RunOptions opts;
            opts.groups = layer.groups;
            LayerSpan span(record.accelerator, layer.name);
            LayerRecord rec = accelerator_.runLayer(layer.params, opts);
            rec.name = layer.name;
            rec.count = layer.count;
            span.finish(rec);
            record.layers[static_cast<size_t>(i)] = std::move(rec);
        }
    });

    Flops flops = 0;
    for (const auto &layer : record.layers) {
        const double n = static_cast<double>(layer.count);
        record.seconds += n * layer.seconds;
        record.dramBytes +=
            layer.dramBytes * static_cast<Bytes>(layer.count);
        flops += layer.flops * static_cast<Flops>(layer.count);
    }
    record.tflops = record.seconds > 0.0
        ? static_cast<double>(flops) / record.seconds / 1e12
        : 0.0;
    model_span.finish(record);
    return record;
}

StatusOr<RunRecord>
ModelRunner::tryRunModel(const models::ModelSpec &model) const
{
    auto &injector = fault::FaultInjector::instance();
    const fault::ResiliencePolicy policy = injector.policy();

    ModelSpan model_span(accelerator_.name(), model.name);
    RunRecord record;
    record.accelerator = accelerator_.name();
    record.model = model.name;
    record.batch =
        model.layers.empty() ? 0 : model.layers.front().params.batch;
    record.peakTflops = accelerator_.peakTflops();
    record.resilience.active = injector.armed();

    const Index n_layers = static_cast<Index>(model.layers.size());
    record.layers.resize(model.layers.size());
    std::vector<LayerOutcome> outcomes(model.layers.size());

    // One pass over the not-yet-checkpointed layers on @p acc: up to
    // policy.maxAttempts tries per layer, simulated backoff between
    // retryable failures. Outcome slots are owned by the parallel
    // chunk holding the layer index.
    const auto runPass = [&](const Accelerator &acc, bool is_failover) {
        parallel::parallelFor(0, n_layers, 1, [&](Index b, Index e) {
            for (Index i = b; i < e; ++i) {
                auto &out = outcomes[static_cast<size_t>(i)];
                if (out.done)
                    continue; // checkpointed: resume, don't rerun
                const auto &layer =
                    model.layers[static_cast<size_t>(i)];
                RunOptions opts;
                opts.groups = layer.groups;
                LayerSpan span(acc.name(), layer.name);
                for (Index attempt = 0; attempt < policy.maxAttempts;
                     ++attempt) {
                    opts.attempt = attempt;
                    auto result = acc.tryRunLayer(layer.params, opts);
                    ++out.attempts;
                    if (result.ok()) {
                        LayerRecord rec = std::move(result).value();
                        rec.name = layer.name;
                        rec.count = layer.count;
                        if (out.attempts > 1)
                            rec.extras["attempts"] =
                                static_cast<double>(out.attempts);
                        if (is_failover) {
                            rec.extras["failedOver"] = 1.0;
                            out.failedOver = true;
                        }
                        span.finish(rec);
                        record.layers[static_cast<size_t>(i)] =
                            std::move(rec);
                        out.done = true;
                        out.error = okStatus();
                        out.backend = acc.name();
                        break;
                    }
                    ++out.faults;
                    out.error = result.status().withContext(
                        "layer " + layer.name);
                    if (!isRetryable(result.status().code()))
                        break; // deterministic failure: retrying is futile
                    if (attempt + 1 < policy.maxAttempts) {
                        ++out.retries;
                        out.backoffSeconds +=
                            backoffFor(policy, out.retries);
                    }
                }
            }
        });
    };

    runPass(accelerator_, /*is_failover=*/false);

    // Fail fast on non-retryable errors (first in layer order): the
    // same bad geometry fails identically on every backend, so the
    // failover chain stays unburned.
    const auto firstNonRetryable = [&]() -> const LayerOutcome * {
        for (const auto &out : outcomes)
            if (!out.done && !out.error.ok() &&
                !isRetryable(out.error.code()))
                return &out;
        return nullptr;
    };
    const auto remaining = [&] {
        Index n = 0;
        for (const auto &out : outcomes)
            n += out.done ? 0 : 1;
        return n;
    };

    std::string current_backend = accelerator_.name();
    size_t next_failover = 0;
    while (remaining() > 0) {
        if (const LayerOutcome *bad = firstNonRetryable())
            return bad->error.withContext("model " + model.name);
        if (next_failover >= policy.failover.size())
            break;
        const std::string target = policy.failover[next_failover++];
        if (target == current_backend)
            continue; // failing over to ourselves cannot help
        auto fallback = tryMakeAccelerator(target);
        if (!fallback.ok())
            return fallback.status().withContext(
                "model " + model.name + ": failover");
        ++record.resilience.failovers;
        // Checkpoint resume: completed layers are skipped, not rerun.
        record.resilience.layersResumed += n_layers - remaining();
        record.resilience.finalBackend = target;
        current_backend = target;
        runPass(*fallback.value(), /*is_failover=*/true);
    }
    if (const LayerOutcome *bad = firstNonRetryable())
        return bad->error.withContext("model " + model.name);
    if (remaining() > 0) {
        for (const auto &out : outcomes)
            if (!out.done)
                return out.error.withContext(
                    "model " + model.name + ": backends exhausted");
    }

    // Serial reduction in layer order: totals, resilience tallies, and
    // the simulated-timeline instants all come out identical at any
    // thread count.
    Flops flops = 0;
    trace::SimTrack chaos_track;
    double sim_us = 0.0; // position on the simulated timeline
    for (size_t i = 0; i < record.layers.size(); ++i) {
        const auto &layer = record.layers[i];
        const auto &out = outcomes[i];
        const double n = static_cast<double>(layer.count);
        record.seconds += n * layer.seconds;
        record.dramBytes +=
            layer.dramBytes * static_cast<Bytes>(layer.count);
        flops += layer.flops * static_cast<Flops>(layer.count);

        record.resilience.faultsSeen += out.faults;
        record.resilience.retries += out.retries;
        record.resilience.layersFailedOver += out.failedOver ? 1 : 0;
        record.resilience.backoffSeconds += out.backoffSeconds;

        if (out.faults > 0 && trace::enabled()) {
            if (!chaos_track.active())
                chaos_track = trace::simTrack(
                    "resilience " + record.accelerator + " " +
                    record.model);
            trace::simInstant(
                chaos_track,
                "fault " + layer.name + " attempts=" +
                    std::to_string(out.attempts),
                static_cast<std::uint64_t>(sim_us));
            if (out.failedOver)
                trace::simInstant(chaos_track,
                                  "failover " + layer.name + " -> " +
                                      out.backend,
                                  static_cast<std::uint64_t>(sim_us));
        }
        sim_us +=
            (n * layer.seconds + out.backoffSeconds) * 1e6;
    }
    record.tflops = record.seconds > 0.0
        ? static_cast<double>(flops) / record.seconds / 1e12
        : 0.0;

    auto &metrics = MetricsRegistry::instance();
    const auto &res = record.resilience;
    if (res.faultsSeen > 0)
        metrics.add("resilience.faults_seen",
                    static_cast<double>(res.faultsSeen));
    if (res.retries > 0)
        metrics.add("resilience.retries",
                    static_cast<double>(res.retries));
    if (res.failovers > 0)
        metrics.add("resilience.failovers",
                    static_cast<double>(res.failovers));
    if (res.layersFailedOver > 0)
        metrics.add("resilience.layers_failed_over",
                    static_cast<double>(res.layersFailedOver));
    if (res.layersResumed > 0)
        metrics.add("resilience.layers_resumed",
                    static_cast<double>(res.layersResumed));
    if (res.backoffSeconds > 0.0)
        metrics.add("resilience.backoff_seconds", res.backoffSeconds);

    model_span.finish(record);
    return record;
}

std::vector<RunRecord>
ModelRunner::runModels(const std::vector<models::ModelSpec> &models) const
{
    std::vector<RunRecord> records;
    records.reserve(models.size());
    for (const auto &model : models)
        records.push_back(runModel(model));
    return records;
}

std::vector<RunRecord>
runModelOnBackends(const models::ModelSpec &model,
                   const std::vector<std::string> &accelerator_names)
{
    std::vector<RunRecord> records;
    records.reserve(accelerator_names.size());
    for (const auto &name : accelerator_names) {
        const auto accelerator = makeAccelerator(name);
        records.push_back(ModelRunner(*accelerator).runModel(model));
    }
    return records;
}

} // namespace cfconv::sim
