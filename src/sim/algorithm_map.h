/**
 * @file
 * Backend-enum to conv::Algorithm bridge. The conv module is backend
 * agnostic (it depends only on tensor/im2col); the mapping from each
 * simulator's private algorithm enum to the registered interface lives
 * here in the sim layer, so neither backend grows a dependency on the
 * other or on conv.
 */

#ifndef CFCONV_SIM_ALGORITHM_MAP_H
#define CFCONV_SIM_ALGORITHM_MAP_H

#include "conv/algorithm.h"
#include "gpusim/gpu_sim.h"
#include "tpusim/tpu_sim.h"

namespace cfconv::sim {

/** The registered algorithm a TPU run option selects (never null —
 *  every TPU path is a registered lowering scheme). */
const conv::Algorithm *algorithmForTpu(tpusim::ConvAlgorithm algorithm);

/** The registered algorithm a GPU run option selects; nullptr for
 *  GemmOnly (the idealized Fig-4 reference is not a lowering scheme). */
const conv::Algorithm *algorithmForGpu(gpusim::GpuAlgorithm algorithm);

} // namespace cfconv::sim

#endif // CFCONV_SIM_ALGORITHM_MAP_H
