/**
 * @file
 * sim::Accelerator adapter over the GPU tensor-core simulator.
 * Backend-specific run knobs (kernel algorithm, inter-tile reuse,
 * vendor tuning) are fixed at construction; grouped layers run one
 * kernel per group slice exactly as GpuSim::runModel always has
 * (sliced via models::ConvLayerSpec::sliceParams so the two paths can
 * never drift), and GPU-only result fields are exported through
 * LayerRecord::extras ("memoryBound", "computeSeconds",
 * "memorySeconds", "transformSeconds").
 */

#ifndef CFCONV_SIM_GPU_ACCELERATOR_H
#define CFCONV_SIM_GPU_ACCELERATOR_H

#include <string>

#include "gpusim/gpu_sim.h"
#include "sim/accelerator.h"

namespace cfconv::sim {

class GpuAccelerator : public Accelerator
{
  public:
    GpuAccelerator(std::string name, const gpusim::GpuConfig &config,
                   const gpusim::GpuRunOptions &options = {});

    std::string name() const override { return name_; }
    double peakTflops() const override;
    LayerRecord runLayer(const ConvParams &params,
                         const RunOptions &options = {}) const override;
    StatGroup cacheStats() const override;
    const conv::Algorithm *algorithm() const override;

    /** The wrapped simulator, for callers needing the full GPU API. */
    const gpusim::GpuSim &sim() const { return sim_; }
    const gpusim::GpuRunOptions &runOptions() const { return options_; }

  private:
    std::string name_;
    gpusim::GpuSim sim_;
    gpusim::GpuRunOptions options_;
};

} // namespace cfconv::sim

#endif // CFCONV_SIM_GPU_ACCELERATOR_H
