#include "sim/algorithm_map.h"

#include "common/logging.h"

namespace cfconv::sim {

const conv::Algorithm *
algorithmForTpu(tpusim::ConvAlgorithm algorithm)
{
    switch (algorithm) {
      case tpusim::ConvAlgorithm::ChannelFirst:
        return conv::findAlgorithm(conv::AlgorithmId::ChannelFirst);
      case tpusim::ConvAlgorithm::ChannelLast:
        return conv::findAlgorithm(conv::AlgorithmId::ChannelLast);
      case tpusim::ConvAlgorithm::Explicit:
        return conv::findAlgorithm(conv::AlgorithmId::ExplicitIm2col);
      case tpusim::ConvAlgorithm::Indirect:
        return conv::findAlgorithm(conv::AlgorithmId::Indirect);
      case tpusim::ConvAlgorithm::Smm:
        return conv::findAlgorithm(conv::AlgorithmId::Smm);
    }
    panic("algorithmForTpu: unknown ConvAlgorithm");
}

const conv::Algorithm *
algorithmForGpu(gpusim::GpuAlgorithm algorithm)
{
    switch (algorithm) {
      case gpusim::GpuAlgorithm::ImplicitChannelFirst:
        return conv::findAlgorithm(conv::AlgorithmId::ChannelFirst);
      case gpusim::GpuAlgorithm::ImplicitChannelLast:
        return conv::findAlgorithm(conv::AlgorithmId::ChannelLast);
      case gpusim::GpuAlgorithm::ExplicitIm2col:
        return conv::findAlgorithm(conv::AlgorithmId::ExplicitIm2col);
      case gpusim::GpuAlgorithm::GemmOnly:
        return nullptr;
      case gpusim::GpuAlgorithm::Indirect:
        return conv::findAlgorithm(conv::AlgorithmId::Indirect);
      case gpusim::GpuAlgorithm::Smm:
        return conv::findAlgorithm(conv::AlgorithmId::Smm);
    }
    panic("algorithmForGpu: unknown GpuAlgorithm");
}

} // namespace cfconv::sim
