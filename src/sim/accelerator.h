/**
 * @file
 * The common accelerator abstraction over the backend simulators. The
 * paper's point is that one algorithm family — GEMM-lowered implicit
 * convolution — maps onto both a weight-stationary systolic TPU
 * (Sec. IV/VI) and tensor-core GPUs (Sec. V); this layer gives the
 * two simulators one API so model runs, sweeps, caching, and report
 * emission are written once. Backend-specific knobs stay where they
 * belong: in the adapter constructors (tpu_accelerator.h,
 * gpu_accelerator.h) and in each LayerRecord's `extras` map.
 */

#ifndef CFCONV_SIM_ACCELERATOR_H
#define CFCONV_SIM_ACCELERATOR_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/types.h"
#include "tensor/conv_params.h"

namespace cfconv::conv {
class Algorithm;
} // namespace cfconv::conv

namespace cfconv::sim {

using tensor::ConvParams;

/** Backend-independent per-layer run knobs. */
struct RunOptions
{
    /**
     * Grouped-convolution factor. Each backend maps groups its own
     * way (the TPU packs group slices block-diagonally into the
     * array; the GPU launches one kernel per group slice), which is
     * exactly why the knob lives here and not in the params.
     */
    Index groups = 1;
    /**
     * Retry ordinal of this invocation (0 = first try). Purely
     * bookkeeping for the fault layer: the `accel.step_timeout`
     * injection decision is keyed on (backend, geometry, attempt), so
     * a retried layer rolls a fresh — but still deterministic — die.
     * Backends ignore it; it is not part of any memo-cache key.
     */
    Index attempt = 0;
};

/** Unified result of simulating one layer on any backend. */
struct LayerRecord
{
    std::string name;     ///< layer name (empty for ad-hoc layers)
    std::string geometry; ///< ConvParams::toString() of the full layer
    Index count = 1;      ///< repetitions of this shape in the model
    Index groups = 1;     ///< grouped-convolution factor
    double seconds = 0.0; ///< one instance, end to end
    double tflops = 0.0;  ///< useful FLOPs / second
    /**
     * Fraction of the backend's peak compute actually used: the
     * systolic-array occupancy on the TPU, achieved/peak TFLOPS on
     * the GPU.
     */
    double utilization = 0.0;
    Bytes dramBytes = 0;  ///< off-chip traffic of one instance
    Flops flops = 0;      ///< useful FLOPs of one instance
    /**
     * Canonical conv::Algorithm name of the lowering scheme this
     * backend ran, e.g. "indirect". Empty for the pre-zoo algorithms
     * (channel-first/channel-last/explicit paths), so records from
     * those paths — and their emitted JSON — stay byte-identical to
     * the pre-refactor goldens.
     */
    std::string algorithm;
    /**
     * Backend-specific fields, e.g. "multiTile", "portUtilization",
     * "exposedFillFrac" (TPU) or "memoryBound", "computeSeconds",
     * "memorySeconds" (GPU). std::map so iteration order — and the
     * emitted JSON — is deterministic.
     */
    std::map<std::string, double> extras;
};

/**
 * Resilience outcome of one model run: what the fault layer injected
 * and what the resilient runner did about it. Emitted as the schema-v3
 * `resilience` block — but only when `active`, so fault-free documents
 * stay byte-identical to the v2 goldens.
 */
/**
 * Serving-layer resilience outcome (src/serve): what the circuit
 * breakers, degradation ladder, and hedged dispatch did during one
 * board run. Nested inside ResilienceInfo and emitted as the
 * "serving" sub-object of the resilience block only when some serving
 * feature was enabled, so model-level chaos documents (and all
 * fault-free documents) keep their previous version and bytes.
 */
struct ServingResilienceInfo
{
    /** Whether any serving resilience feature (breakers, degradation,
     *  hedging) was enabled for this run. */
    bool active = false;
    Index breakerTrips = 0;   ///< closed/half-open -> open transitions
    Index breakerProbes = 0;  ///< half-open canary batches launched
    Index breakerCloses = 0;  ///< half-open -> closed recoveries
    Index hedgedBatches = 0;  ///< batches launched on two chips
    Index hedgeWins = 0;      ///< hedge chip delivered first (or saved
                              ///< the batch from a primary outage)
    Index hedgeLosses = 0;    ///< primary delivered first; hedge wasted
    Index degradeStepMax = 0; ///< deepest degradation-ladder step held
    Index degradeTransitions = 0; ///< ladder step changes (both ways)
    Index brownoutShed = 0;   ///< requests shed by low-priority brownout
    Index fallbackBatches = 0; ///< batches served by a fallback variant
};

struct ResilienceInfo
{
    /** Whether the FaultInjector was armed during this run (the block
     *  is emitted, even all-zero, so chaos runs are self-describing). */
    bool active = false;
    Index faultsSeen = 0;       ///< failed layer attempts observed
    Index retries = 0;          ///< same-backend re-attempts
    Index failovers = 0;        ///< backend switches performed
    Index layersFailedOver = 0; ///< layers completed on a failover backend
    Index layersResumed = 0;    ///< checkpointed layers skipped at failover
    double backoffSeconds = 0.0; ///< total simulated retry backoff
    /** Backend of the last failover; empty when the primary finished
     *  the whole model. */
    std::string finalBackend;
    /** Serving-layer outcome (v5); inert for model-level runs. */
    ServingResilienceInfo serving;
};

/** Unified result of one model run on one backend. */
struct RunRecord
{
    /** Version of the RunRecord JSON schema (sim/report). v2 added the
     *  document-level "metrics" object (registry counters + latency
     *  histograms with percentiles) and the optional "trace_file"
     *  pointer to the Chrome-trace file the run wrote. v3 adds the
     *  per-record "resilience" block; the writer only stamps v3 when
     *  a record carries one, so fault-free documents remain v2 and
     *  byte-identical to the pre-chaos goldens. v4 adds the optional
     *  per-layer "algorithm" field (conv::Algorithm name); the writer
     *  stamps v4 only when some layer carries one, so stock-path
     *  documents keep their previous version and bytes. v5 adds the
     *  "serving" sub-object of the resilience block (breaker trips,
     *  hedge wins/losses, degradation-ladder counters); it is stamped
     *  only when a chaos record carries serving resilience, so every
     *  older document shape is preserved bit-for-bit. */
    static constexpr long long kSchemaVersion = 5;

    std::string accelerator;  ///< backend name, e.g. "tpu-v2"
    std::string model;        ///< model name, e.g. "ResNet"
    Index batch = 0;          ///< batch size the layers were built with
    double peakTflops = 0.0;  ///< backend peak compute
    double seconds = 0.0;     ///< total incl. layer repetitions
    double tflops = 0.0;      ///< useful FLOPs / second, whole model
    Bytes dramBytes = 0;      ///< total off-chip traffic incl. reps
    std::vector<LayerRecord> layers; ///< one entry per distinct layer
    ResilienceInfo resilience;       ///< chaos outcome (v3)
};

/** Abstract accelerator: what ModelRunner and the benches program
 *  against. Implementations adapt tpusim::TpuSim and gpusim::GpuSim. */
class Accelerator
{
  public:
    virtual ~Accelerator() = default;

    /** Stable backend identifier, e.g. "tpu-v2", "gpu-v100". */
    virtual std::string name() const = 0;

    /** Peak useful TFLOPS of the configured hardware. */
    virtual double peakTflops() const = 0;

    /** Simulate one (possibly grouped) convolution layer. */
    virtual LayerRecord runLayer(const ConvParams &params,
                                 const RunOptions &options = {}) const
        = 0;

    /**
     * The recoverable front door to runLayer(): validates the layer
     * geometry (validateLayerParams), rolls the `accel.step_timeout`
     * chaos die scoped to this backend's name, and converts any
     * FatalError/PanicError escaping the backend into a Status
     * (INVALID_ARGUMENT / INTERNAL) instead of unwinding through the
     * thread pool. What the resilient ModelRunner programs against.
     */
    StatusOr<LayerRecord> tryRunLayer(const ConvParams &params,
                                      const RunOptions &options = {})
        const;

    /** Snapshot of this backend's memo-cache counters. */
    virtual StatGroup cacheStats() const = 0;

    /**
     * The registered conv::Algorithm this backend's configured
     * lowering scheme corresponds to, or nullptr when none maps (the
     * GPU GemmOnly reference). tryRunLayer consults its supports()
     * predicate, so an accelerator configured for, say, SMM-Conv
     * rejects strided layers with INVALID_ARGUMENT instead of dying in
     * the kernel model.
     */
    virtual const conv::Algorithm *algorithm() const { return nullptr; }
};

/**
 * Validate one layer at the accelerator boundary: positive dims,
 * stride/dilation >= 1, kernel fits the padded input, non-degenerate
 * output, and grouped-conv channel divisibility. Returns a descriptive
 * INVALID_ARGUMENT naming the offending field instead of letting the
 * shape flow into the kernels.
 */
Status validateLayerParams(const ConvParams &params,
                           const RunOptions &options = {});

/**
 * Factory over the named accelerator zoo. The stock configurations —
 * "tpu-v2" (Table II core), "tpu-v3ish" (v2 core with a second matrix
 * unit and faster HBM — the Fig 16b insight), "gpu-v100" (the paper's
 * V100 + our channel-first kernel), "gpu-v100-cudnn" (vendor-tuned
 * channel-last baseline) — come first; the design-space sweep variants
 * (array/word/buffer/algorithm points, see tune/variant_registry.h)
 * follow. Defined by the variant registry (src/tune), which is the
 * single source of truth for the name table. Fatal on unknown names so
 * typos surface.
 */
std::unique_ptr<Accelerator> makeAccelerator(const std::string &name);

/** makeAccelerator that reports an unknown name as a NOT_FOUND Status
 *  (listing the valid names) instead of fatal — what the failover
 *  chain (whose backend names come from user-written chaos specs)
 *  resolves through. */
StatusOr<std::unique_ptr<Accelerator>>
tryMakeAccelerator(const std::string &name);

/** The names makeAccelerator() accepts, in registration order (the
 *  four stock configurations first). */
std::vector<std::string> knownAccelerators();

} // namespace cfconv::sim

#endif // CFCONV_SIM_ACCELERATOR_H
