#include "sim/tpu_accelerator.h"

#include "sim/algorithm_map.h"
#include "tpusim/energy.h"
#include "tpusim/layer_cache.h"

namespace cfconv::sim {

TpuAccelerator::TpuAccelerator(std::string name,
                               const tpusim::TpuConfig &config,
                               const tpusim::TpuRunOptions &options)
    : name_(std::move(name)), sim_(config), options_(options)
{}

double
TpuAccelerator::peakTflops() const
{
    return sim_.config().peakTflops();
}

LayerRecord
TpuAccelerator::runLayer(const ConvParams &params,
                         const RunOptions &options) const
{
    const tpusim::TpuLayerResult r =
        sim_.runGroupedConv(params, options.groups, options_);

    LayerRecord rec;
    rec.geometry = params.toString();
    rec.groups = options.groups;
    rec.seconds = r.seconds;
    rec.tflops = r.tflops;
    rec.utilization = r.arrayUtilization;
    rec.dramBytes = r.dramBytes;
    rec.flops = params.flops() / static_cast<Flops>(options.groups);
    rec.extras["multiTile"] = static_cast<double>(r.multiTile);
    rec.extras["portUtilization"] = r.portUtilization;
    rec.extras["exposedFillFrac"] = r.cycles
        ? static_cast<double>(r.exposedFillCycles) /
            static_cast<double>(r.cycles)
        : 0.0;
    rec.extras["peakOnChipBytes"] =
        static_cast<double>(r.peakOnChipBytes);
    rec.extras["pjPerMac"] =
        tpusim::layerEnergy(sim_.config(), r).pjPerMac;
    // Stamp the algorithm only for the zoo additions: records from the
    // pre-zoo paths stay byte-identical to the pre-refactor goldens.
    if (options_.algorithm == tpusim::ConvAlgorithm::Indirect ||
        options_.algorithm == tpusim::ConvAlgorithm::Smm)
        rec.algorithm = algorithm()->name();
    return rec;
}

StatGroup
TpuAccelerator::cacheStats() const
{
    return tpusim::LayerCache::instance().statsSnapshot();
}

const conv::Algorithm *
TpuAccelerator::algorithm() const
{
    return algorithmForTpu(options_.algorithm);
}

} // namespace cfconv::sim
