/**
 * @file
 * sim::Accelerator adapter over the TPU simulator. Backend-specific
 * run knobs (algorithm, DRAM layout, multi-tile override, ...) are
 * fixed at construction; per-layer calls go through TpuSim's grouped
 * block-diagonal mapping and the tpusim/layer_cache memo cache, and
 * the TPU-only result fields are exported through LayerRecord::extras
 * ("multiTile", "portUtilization", "exposedFillFrac",
 * "peakOnChipBytes", "pjPerMac").
 */

#ifndef CFCONV_SIM_TPU_ACCELERATOR_H
#define CFCONV_SIM_TPU_ACCELERATOR_H

#include <string>

#include "sim/accelerator.h"
#include "tpusim/tpu_sim.h"

namespace cfconv::sim {

class TpuAccelerator : public Accelerator
{
  public:
    TpuAccelerator(std::string name, const tpusim::TpuConfig &config,
                   const tpusim::TpuRunOptions &options = {});

    std::string name() const override { return name_; }
    double peakTflops() const override;
    LayerRecord runLayer(const ConvParams &params,
                         const RunOptions &options = {}) const override;
    StatGroup cacheStats() const override;
    const conv::Algorithm *algorithm() const override;

    /** The wrapped simulator, for callers needing the full TPU API. */
    const tpusim::TpuSim &sim() const { return sim_; }
    const tpusim::TpuRunOptions &runOptions() const { return options_; }

  private:
    std::string name_;
    tpusim::TpuSim sim_;
    tpusim::TpuRunOptions options_;
};

} // namespace cfconv::sim

#endif // CFCONV_SIM_TPU_ACCELERATOR_H
