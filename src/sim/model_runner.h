/**
 * @file
 * The shared model runner: runs every layer of a models::ModelSpec on
 * any sim::Accelerator with the common/parallel sweep (independent
 * per-layer timings simulated concurrently, reduced serially in layer
 * order so totals match a serial run bit for bit), grouped-conv
 * handling delegated to the backend adapter, and repeated shapes
 * collapsed by the backend memo caches. Replaces the per-binary
 * hand-rolled layer loops the benches and examples used to carry.
 */

#ifndef CFCONV_SIM_MODEL_RUNNER_H
#define CFCONV_SIM_MODEL_RUNNER_H

#include <string>
#include <vector>

#include "models/model_zoo.h"
#include "sim/accelerator.h"

namespace cfconv::sim {

class ModelRunner
{
  public:
    explicit ModelRunner(const Accelerator &accelerator)
        : accelerator_(accelerator)
    {}

    /** Simulate all layers of @p model; one LayerRecord per distinct
     *  layer, model totals accumulated over layer repetitions. */
    RunRecord runModel(const models::ModelSpec &model) const;

    /** Run several models back to back (a zoo sweep). */
    std::vector<RunRecord>
    runModels(const std::vector<models::ModelSpec> &models) const;

    const Accelerator &accelerator() const { return accelerator_; }

  private:
    const Accelerator &accelerator_;
};

/**
 * The cross-accelerator one-liner the unified layer exists for: run
 * @p model on every backend in @p accelerator_names (see
 * makeAccelerator) and return the records side by side for diffing.
 */
std::vector<RunRecord>
runModelOnBackends(const models::ModelSpec &model,
                   const std::vector<std::string> &accelerator_names);

} // namespace cfconv::sim

#endif // CFCONV_SIM_MODEL_RUNNER_H
