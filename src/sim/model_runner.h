/**
 * @file
 * The shared model runner: runs every layer of a models::ModelSpec on
 * any sim::Accelerator with the common/parallel sweep (independent
 * per-layer timings simulated concurrently, reduced serially in layer
 * order so totals match a serial run bit for bit), grouped-conv
 * handling delegated to the backend adapter, and repeated shapes
 * collapsed by the backend memo caches. Replaces the per-binary
 * hand-rolled layer loops the benches and examples used to carry.
 *
 * Resilience (the chaos counterpart): when the common/fault injector
 * is armed, runModel() routes through tryRunModel(), which retries
 * failed layer attempts with capped exponential (simulated) backoff,
 * checkpoints completed layers, and — when a layer exhausts its
 * attempts on the current backend — fails over to the next backend in
 * the ResiliencePolicy chain, resuming from the checkpoint instead of
 * restarting. Every injection decision is a pure function of
 * (seed, site, scope, key), and per-layer outcome tallies are written
 * by the owning parallel chunk then reduced serially in layer order,
 * so a chaos RunRecord is byte-identical across runs and thread
 * counts. Fault-free runs never enter this path and stay bit-identical
 * to the pre-chaos behavior.
 */

#ifndef CFCONV_SIM_MODEL_RUNNER_H
#define CFCONV_SIM_MODEL_RUNNER_H

#include <string>
#include <vector>

#include "models/model_zoo.h"
#include "sim/accelerator.h"

namespace cfconv::sim {

class ModelRunner
{
  public:
    explicit ModelRunner(const Accelerator &accelerator)
        : accelerator_(accelerator)
    {}

    /** Simulate all layers of @p model; one LayerRecord per distinct
     *  layer, model totals accumulated over layer repetitions. Routes
     *  through tryRunModel() when the fault injector is armed (fatal
     *  on unrecoverable errors); otherwise validates every layer at
     *  the accelerator boundary and takes the exact legacy path. */
    RunRecord runModel(const models::ModelSpec &model) const;

    /**
     * The recoverable runModel(): per-layer retry with capped
     * exponential simulated backoff, completed-layer checkpointing,
     * and backend failover along FaultInjector::policy().failover.
     * Outcomes land in the record's ResilienceInfo (and per-layer
     * "attempts"/"failedOver" extras on layers that misbehaved);
     * retries, failovers, and detected faults are also counted in the
     * MetricsRegistry ("resilience.*") and dropped as instants on the
     * simulated-cycles trace timeline. Fails fast on non-retryable
     * errors (bad layer geometry) without burning the failover chain;
     * returns the last per-layer error when every backend is
     * exhausted.
     */
    StatusOr<RunRecord> tryRunModel(const models::ModelSpec &model) const;

    /** Run several models back to back (a zoo sweep). */
    std::vector<RunRecord>
    runModels(const std::vector<models::ModelSpec> &models) const;

    const Accelerator &accelerator() const { return accelerator_; }

  private:
    const Accelerator &accelerator_;
};

/**
 * The cross-accelerator one-liner the unified layer exists for: run
 * @p model on every backend in @p accelerator_names (see
 * makeAccelerator) and return the records side by side for diffing.
 */
std::vector<RunRecord>
runModelOnBackends(const models::ModelSpec &model,
                   const std::vector<std::string> &accelerator_names);

} // namespace cfconv::sim

#endif // CFCONV_SIM_MODEL_RUNNER_H
