#include "sram/channel_last_feed.h"

#include <vector>

#include "common/logging.h"

namespace cfconv::sram {

Index
bankOf(const ConvParams &params, const BankedSramConfig &config,
       BankLayout layout, Index ih, Index iw, Index ci)
{
    CFCONV_FATAL_IF(ih < 0 || ih >= params.inH || iw < 0 ||
                    iw >= params.inW || ci < 0 ||
                    ci >= params.inChannels,
                    "bankOf: element out of range");
    switch (layout) {
      case BankLayout::NaiveModulo: {
        const Index linear =
            (ih * params.inW + iw) * params.inChannels + ci;
        return linear % config.banks;
      }
      case BankLayout::Skewed: {
        // Offline skew: consecutive window rows jump by a full
        // window-row's worth of elements, so the K elements of one
        // sliding window land in K distinct banks (for K <= banks).
        const Index skew_h = params.kernelW * params.inChannels;
        const Index v =
            ih * skew_h + iw * params.inChannels + ci;
        return v % config.banks;
      }
    }
    panic("bankOf: unknown layout");
}

FeedReport
replayChannelLastFeed(const ConvParams &params,
                      const BankedSramConfig &config, BankLayout layout)
{
    params.validate();
    BankedSram sram(config);
    FeedReport report;

    std::vector<Index> column;
    for (Index oh = 0; oh < params.outH(); ++oh) {
        for (Index ow = 0; ow < params.outW(); ++ow) {
            column.clear();
            for (Index r = 0; r < params.kernelH; ++r) {
                const Index ih = oh * params.strideH - params.padH +
                                 r * params.dilationH;
                if (ih < 0 || ih >= params.inH)
                    continue;
                for (Index s = 0; s < params.kernelW; ++s) {
                    const Index iw = ow * params.strideW -
                                     params.padW +
                                     s * params.dilationW;
                    if (iw < 0 || iw >= params.inW)
                        continue;
                    for (Index ci = 0; ci < params.inChannels; ++ci)
                        column.push_back(bankOf(params, config, layout,
                                                ih, iw, ci));
                }
            }
            // The GEMM engine consumes up to `ports` elements per
            // cycle; conflicting banks within a beat serialize.
            for (size_t i = 0; i < column.size();
                 i += static_cast<size_t>(config.ports)) {
                const size_t end = std::min(
                    column.size(),
                    i + static_cast<size_t>(config.ports));
                report.totalCycles += sram.serveColumn(
                    {column.begin() + static_cast<long>(i),
                     column.begin() + static_cast<long>(end)});
                ++report.idealCycles;
            }
        }
    }
    report.conflictStalls = sram.conflictCycles();
    return report;
}

} // namespace cfconv::sram
