/**
 * @file
 * Multi-banked SRAM + crossbar model for the Lym et al. channel-last
 * design (Sec. II-C, Fig 3). Used to (a) count bank-conflict stalls when
 * feeding a GEMM engine one lowered column per cycle and (b) quantify
 * why the crossbar does not scale to TPU-sized arrays.
 */

#ifndef CFCONV_SRAM_BANKED_SRAM_H
#define CFCONV_SRAM_BANKED_SRAM_H

#include <vector>

#include "common/types.h"

namespace cfconv::sram {

/** Configuration of the banked memory + crossbar frontend. */
struct BankedSramConfig
{
    Index banks = 32;      ///< SRAM banks (GPU shared memory: 32)
    Index ports = 32;      ///< crossbar ports toward the PE array
};

/**
 * Conflict-counting model: each cycle the GEMM engine requests one
 * element per PE row; requests mapping to the same bank serialize.
 */
class BankedSram
{
  public:
    explicit BankedSram(const BankedSramConfig &config);

    /**
     * Serve one vector of per-row bank indices (one GEMM column's worth
     * of operands). @return the cycles needed = max per-bank load.
     * The `sram.bank_read` chaos site models a detected-and-corrected
     * read error here: the column is re-read (its cycles are paid
     * again) and readErrors() counts the event. The injection decision
     * is keyed on the column index, so a seeded fault schedule is
     * deterministic.
     */
    Cycles serveColumn(const std::vector<Index> &bank_of_row);

    Index conflictCycles() const { return conflicts_; }
    Index servedColumns() const { return columns_; }
    /** Injected-and-retried bank read errors since resetStats(). */
    Index readErrors() const { return readErrors_; }

    void resetStats();

  private:
    BankedSramConfig config_;
    Index conflicts_ = 0;
    Index columns_ = 0;
    Index readErrors_ = 0;
};

/**
 * Relative crossbar area/power cost versus a 32x32 baseline: grows
 * quadratically in port count (Sec. II-C cites Kilo-NOC for this
 * scaling).
 */
double crossbarRelativeCost(Index ports);

/**
 * Relative area-efficiency penalty of splitting a fixed capacity into
 * @p banks banks (per-bank periphery duplication).
 */
double bankingRelativeCost(Index banks, Index baseline_banks = 32);

} // namespace cfconv::sram

#endif // CFCONV_SRAM_BANKED_SRAM_H
