#include "sram/energy_model.h"

#include <cmath>

#include "common/logging.h"

namespace cfconv::sram {

SramEnergyModel::SramEnergyModel(Bytes elem_bytes)
    : elemBytes_(elem_bytes)
{
    CFCONV_FATAL_IF(elem_bytes == 0, "SramEnergyModel: zero element");
    // 45 nm-class coefficients: a 256 KB macro with a 32-byte word
    // costs ~25 pJ per access (~0.8 pJ/B); narrow words pay the same
    // decode for fewer bits.
    rowDecodePj_ = 6.0;
    perBitPj_ = 0.07;
    capacityCoeff_ = 0.35;
}

double
SramEnergyModel::accessPj(Bytes capacity_bytes, Index word_elems) const
{
    CFCONV_FATAL_IF(word_elems < 1, "SramEnergyModel: word < 1");
    CFCONV_FATAL_IF(capacity_bytes == 0, "SramEnergyModel: no capacity");
    const double bits = static_cast<double>(word_elems) *
                        static_cast<double>(elemBytes_) * 8.0;
    // Bitline energy grows with the log of the macro depth.
    const double depth_factor =
        1.0 + capacityCoeff_ *
                  std::log2(static_cast<double>(capacity_bytes) /
                            (64.0 * 1024.0) + 1.0);
    return (rowDecodePj_ + perBitPj_ * bits) * depth_factor;
}

double
SramEnergyModel::perBytePj(Bytes capacity_bytes, Index word_elems) const
{
    const double bytes = static_cast<double>(word_elems) *
                         static_cast<double>(elemBytes_);
    return accessPj(capacity_bytes, word_elems) / bytes;
}

} // namespace cfconv::sram
