#include "sram/vector_memory.h"

namespace cfconv::sram {

namespace {

/** Validate @p config before any size computation touches it. */
const VectorMemoryConfig &
checkedConfig(const VectorMemoryConfig &config)
{
    CFCONV_FATAL_IF(config.wordElems < 1, "VectorMemory: word size < 1");
    CFCONV_FATAL_IF(config.elemBytes == 0,
                    "VectorMemory: zero element width");
    CFCONV_FATAL_IF(config.words() < 1,
                    "VectorMemory: capacity below one word");
    return config;
}

} // namespace

VectorMemory::VectorMemory(const VectorMemoryConfig &config)
    : config_(checkedConfig(config)),
      data_(static_cast<size_t>(config.words() * config.wordElems), 0.0f)
{
}

void
VectorMemory::touchPort(Cycles cycle)
{
    if (portUsed_ && cycle == lastPortCycle_)
        conflict_ = true;
    portUsed_ = true;
    lastPortCycle_ = cycle;
}

void
VectorMemory::writeWord(Index addr, const std::vector<float> &word,
                        Cycles cycle)
{
    CFCONV_FATAL_IF(addr < 0 || addr >= config_.words(),
                    "VectorMemory: write address %lld out of range",
                    static_cast<long long>(addr));
    CFCONV_FATAL_IF(static_cast<Index>(word.size()) != config_.wordElems,
                    "VectorMemory: word size mismatch");
    touchPort(cycle);
    ++writes_;
    std::copy(word.begin(), word.end(),
              data_.begin() +
                  static_cast<size_t>(addr * config_.wordElems));
}

std::vector<float>
VectorMemory::readWord(Index addr, Cycles cycle)
{
    CFCONV_FATAL_IF(addr < 0 || addr >= config_.words(),
                    "VectorMemory: read address %lld out of range",
                    static_cast<long long>(addr));
    touchPort(cycle);
    ++reads_;
    auto begin =
        data_.begin() + static_cast<size_t>(addr * config_.wordElems);
    return std::vector<float>(begin, begin + config_.wordElems);
}

void
VectorMemory::resetStats()
{
    reads_ = writes_ = 0;
    portUsed_ = false;
    conflict_ = false;
    lastPortCycle_ = 0;
}

} // namespace cfconv::sram
