#include "sram/sram_area_model.h"

#include <algorithm>

#include "common/logging.h"

namespace cfconv::sram {

SramAreaModel::SramAreaModel(Bytes elem_bytes) : elemBytes_(elem_bytes)
{
    CFCONV_FATAL_IF(elem_bytes == 0, "SramAreaModel: zero element size");
    // Relative area at 256 KB: A(w) = base + row/w + col*w, where w is
    // the word size in elements. Calibration to the paper's anchors
    // (A(1) = 5 units, A(1)/A(8) = 3.2 => A(8) = 1.5625):
    //   base + row + col       = 5
    //   base + row/8 + 8*col   = 1.5625
    // with col chosen (0.012) so the minimum falls in the 16-32 element
    // range (area flattens out for large words, Fig 16b):
    //   row = 4.0246, base = 0.9634.
    base_ = 0.9634;
    rowCoeff_ = 4.0246;
    colCoeff_ = 0.012;
    // Scale: a well-organized (w = 16) 256 KB macro in a 45 nm process
    // is on the order of 1.2 mm^2.
    mm2PerUnit_ = 1.2 / (base_ + rowCoeff_ / 16.0 + colCoeff_ * 16.0);
}

double
SramAreaModel::areaMm2(Bytes capacity_bytes, Index word_elems) const
{
    CFCONV_FATAL_IF(word_elems < 1, "SramAreaModel: word size < 1");
    CFCONV_FATAL_IF(capacity_bytes == 0, "SramAreaModel: zero capacity");
    const double w = static_cast<double>(word_elems);
    const double rel = base_ + rowCoeff_ / w + colCoeff_ * w;
    // Bit-cell area scales linearly in capacity; periphery terms are
    // already expressed relative to the 256 KB calibration point.
    const double capacity_scale =
        static_cast<double>(capacity_bytes) / (256.0 * 1024.0);
    return rel * mm2PerUnit_ * capacity_scale;
}

double
SramAreaModel::relativeArea(Bytes capacity_bytes, Index word_elems) const
{
    const Index best = bestWordElems(capacity_bytes);
    return areaMm2(capacity_bytes, word_elems) /
           areaMm2(capacity_bytes, best);
}

Index
SramAreaModel::bestWordElems(Bytes capacity_bytes) const
{
    Index best = 1;
    double best_area = areaMm2(capacity_bytes, 1);
    for (Index w = 2; w <= 64; w *= 2) {
        const double a = areaMm2(capacity_bytes, w);
        if (a < best_area) {
            best_area = a;
            best = w;
        }
    }
    return best;
}

} // namespace cfconv::sram
