/**
 * @file
 * Analytical SRAM area model (the CACTI/OpenRAM stand-in) for the word
 * size design-space study of Fig 16b. Calibrated to the paper's anchor
 * points at 256 KB capacity: a 4-byte word costs 3.2x the area of a
 * 32-byte word, and a 1-element word is ~5x the minimum.
 */

#ifndef CFCONV_SRAM_SRAM_AREA_MODEL_H
#define CFCONV_SRAM_SRAM_AREA_MODEL_H

#include "common/types.h"

namespace cfconv::sram {

/** Analytical area model for a single-port SRAM macro. */
class SramAreaModel
{
  public:
    /**
     * @param elem_bytes storage width of one element (TPU regs: 4 B).
     */
    explicit SramAreaModel(Bytes elem_bytes = 4);

    /**
     * Area of a macro of @p capacity_bytes organized with words of
     * @p word_elems elements, in mm^2 (freepdk45-like scale).
     *
     * Components: bit cells (constant for fixed capacity), row periphery
     * (decoder + wordline drivers, ~1/word), and column periphery
     * (sense amps + write drivers + column mux, ~word).
     */
    double areaMm2(Bytes capacity_bytes, Index word_elems) const;

    /** Area relative to the minimum over word sizes in [1, 64]. */
    double relativeArea(Bytes capacity_bytes, Index word_elems) const;

    /** Word size (elements) minimizing area for @p capacity_bytes. */
    Index bestWordElems(Bytes capacity_bytes) const;

  private:
    Bytes elemBytes_;
    // Relative-cost coefficients; see sram_area_model.cc for the
    // calibration derivation.
    double base_;
    double rowCoeff_;
    double colCoeff_;
    double mm2PerUnit_;
};

} // namespace cfconv::sram

#endif // CFCONV_SRAM_SRAM_AREA_MODEL_H
