/**
 * @file
 * TPU-style vector memory: a single-port SRAM array with a wide word,
 * fronted by a serializer (word -> one element per cycle toward the
 * systolic array) and a de-serializer (one result per cycle -> word
 * writes), as in Fig 9/10. Tracks port occupancy so read/write
 * interleaving on the unified memory can be verified contention-free.
 */

#ifndef CFCONV_SRAM_VECTOR_MEMORY_H
#define CFCONV_SRAM_VECTOR_MEMORY_H

#include <vector>

#include "common/logging.h"
#include "common/types.h"

namespace cfconv::sram {

/** Configuration of one vector memory (one SRAM array). */
struct VectorMemoryConfig
{
    Index wordElems = 8;       ///< elements per word (TPU-v2: 8)
    Bytes elemBytes = 4;       ///< storage width of one element
    Bytes capacityBytes = 256 * 1024; ///< per-array capacity

    Index
    words() const
    {
        return static_cast<Index>(capacityBytes /
                                  (static_cast<Bytes>(wordElems) *
                                   elemBytes));
    }
};

/**
 * Functional + accounting model of one vector memory. Storage is an
 * array of words of wordElems floats. Each read or write moves exactly
 * one word and occupies the single port for one cycle.
 */
class VectorMemory
{
  public:
    explicit VectorMemory(const VectorMemoryConfig &config);

    const VectorMemoryConfig &config() const { return config_; }

    /** Write @p word (wordElems floats) at word address @p addr. */
    void writeWord(Index addr, const std::vector<float> &word,
                   Cycles cycle);

    /** Read the word at word address @p addr. */
    std::vector<float> readWord(Index addr, Cycles cycle);

    Index readCount() const { return reads_; }
    Index writeCount() const { return writes_; }

    /**
     * @return true if any two port operations were issued in the same
     * cycle (a structural hazard the TPU mapping must avoid).
     */
    bool hadPortConflict() const { return conflict_; }

    /** Port utilization over [0, total_cycles). */
    double
    portUtilization(Cycles total_cycles) const
    {
        if (total_cycles == 0)
            return 0.0;
        return static_cast<double>(reads_ + writes_) /
               static_cast<double>(total_cycles);
    }

    void resetStats();

  private:
    void touchPort(Cycles cycle);

    VectorMemoryConfig config_;
    std::vector<float> data_;
    Index reads_ = 0;
    Index writes_ = 0;
    Cycles lastPortCycle_ = 0;
    bool portUsed_ = false;
    bool conflict_ = false;
};

} // namespace cfconv::sram

#endif // CFCONV_SRAM_VECTOR_MEMORY_H
