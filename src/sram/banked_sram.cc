#include "sram/banked_sram.h"

#include <algorithm>

#include "common/fault.h"
#include "common/logging.h"

namespace cfconv::sram {

BankedSram::BankedSram(const BankedSramConfig &config) : config_(config)
{
    CFCONV_FATAL_IF(config.banks < 1 || config.ports < 1,
                    "BankedSram: need at least one bank and port");
}

Cycles
BankedSram::serveColumn(const std::vector<Index> &bank_of_row)
{
    CFCONV_FATAL_IF(static_cast<Index>(bank_of_row.size()) > config_.ports,
                    "BankedSram: more requests (%zu) than ports (%lld)",
                    bank_of_row.size(),
                    static_cast<long long>(config_.ports));
    std::vector<Index> load(static_cast<size_t>(config_.banks), 0);
    for (Index bank : bank_of_row) {
        CFCONV_FATAL_IF(bank < 0 || bank >= config_.banks,
                        "BankedSram: bank %lld out of range",
                        static_cast<long long>(bank));
        ++load[static_cast<size_t>(bank)];
    }
    const Index worst = *std::max_element(load.begin(), load.end());
    Cycles cycles = worst == 0 ? 1 : static_cast<Cycles>(worst);
    conflicts_ += worst > 1 ? worst - 1 : 0;
    // Chaos site: a bank read error caught by (modeled) ECC. The
    // column is served again, doubling its cost; figures change only
    // when the site is armed, and identically for a given seed.
    if (fault::FaultInjector::instance().inject(
            fault::kSramBankRead, "",
            static_cast<std::uint64_t>(columns_))) {
        cycles += cycles;
        ++readErrors_;
    }
    ++columns_;
    return cycles;
}

void
BankedSram::resetStats()
{
    conflicts_ = 0;
    columns_ = 0;
    readErrors_ = 0;
}

double
crossbarRelativeCost(Index ports)
{
    CFCONV_FATAL_IF(ports < 1, "crossbarRelativeCost: bad port count");
    const double p = static_cast<double>(ports) / 32.0;
    return p * p;
}

double
bankingRelativeCost(Index banks, Index baseline_banks)
{
    CFCONV_FATAL_IF(banks < 1 || baseline_banks < 1,
                    "bankingRelativeCost: bad bank count");
    // Each bank duplicates decoders/sense amps; model the per-bank
    // periphery as a fixed fraction of a baseline bank's area.
    const double periphery = 0.35;
    auto cost = [&](Index b) {
        return 1.0 + periphery * static_cast<double>(b);
    };
    return cost(banks) / cost(baseline_banks);
}

} // namespace cfconv::sram
