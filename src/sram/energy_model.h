/**
 * @file
 * Access-energy models for the on-chip and off-chip memories and the
 * MAC array, used for the energy-side design-space exploration that
 * complements the paper's area study (Fig 16b). Coefficients are
 * 45 nm-class estimates in picojoules.
 */

#ifndef CFCONV_SRAM_ENERGY_MODEL_H
#define CFCONV_SRAM_ENERGY_MODEL_H

#include "common/types.h"

namespace cfconv::sram {

/** Energy coefficients for one vector-memory macro. */
class SramEnergyModel
{
  public:
    /**
     * @param elem_bytes element width (TPU vector memories: 4 B).
     */
    explicit SramEnergyModel(Bytes elem_bytes = 4);

    /**
     * Energy of one word access (read or write) in pJ for a macro of
     * @p capacity_bytes and @p word_elems elements per word. Wider
     * words cost more per access but amortize the row decode over more
     * bits, so pJ/byte falls with word size -- the energy twin of the
     * paper's area argument.
     */
    double accessPj(Bytes capacity_bytes, Index word_elems) const;

    /** Energy per useful byte moved, pJ/B. */
    double perBytePj(Bytes capacity_bytes, Index word_elems) const;

  private:
    Bytes elemBytes_;
    double rowDecodePj_;   ///< per-access row decode + wordline
    double perBitPj_;      ///< per-bit sense/drive energy
    double capacityCoeff_; ///< bitline-length growth with capacity
};

/** Off-chip (HBM2-class) energy per byte moved, pJ/B. */
constexpr double kDramPjPerByte = 31.0; // ~3.9 pJ/bit

/** One bf16 multiply-accumulate in the systolic array, pJ. */
constexpr double kMacPj = 0.4;

} // namespace cfconv::sram

#endif // CFCONV_SRAM_ENERGY_MODEL_H
