/**
 * @file
 * The channel-last (Lym et al.) SRAM feed, functionally: each GEMM
 * cycle one lowered column — K = H_F*W_F*C_I input elements — must
 * leave the multi-banked SRAM together (Fig 3). Whether that works
 * without stalls depends entirely on how IFMap elements are assigned
 * to banks: a naive modulo layout conflicts, while Lym's offline
 * skewed layout is conflict-free for the common geometries. This
 * module builds both layouts, replays a convolution's column stream
 * against the BankedSram conflict model, and reports the stall
 * cycles — the quantitative side of Sec. II-C's critique.
 */

#ifndef CFCONV_SRAM_CHANNEL_LAST_FEED_H
#define CFCONV_SRAM_CHANNEL_LAST_FEED_H

#include "sram/banked_sram.h"
#include "tensor/conv_params.h"

namespace cfconv::sram {

using tensor::ConvParams;

/** Bank-assignment policies for IFMap elements. */
enum class BankLayout {
    /** bank = linear offset % banks: conflicts under k > 1 windows. */
    NaiveModulo,
    /**
     * Lym-style offline skew: bank = (ih * skew + iw * C_I + ci)
     * % banks with the skew chosen so one window's elements spread
     * across banks.
     */
    Skewed,
};

/** Result of replaying a layer's column stream against the banks. */
struct FeedReport
{
    Cycles totalCycles = 0;    ///< cycles to serve every column
    Cycles idealCycles = 0;    ///< columns (1 cycle each, no stalls)
    Index conflictStalls = 0;  ///< extra cycles lost to bank conflicts

    double
    slowdown() const
    {
        return idealCycles == 0
            ? 1.0
            : static_cast<double>(totalCycles) /
                  static_cast<double>(idealCycles);
    }
};

/** Bank index of IFMap element (ih, iw, ci) under @p layout. */
Index bankOf(const ConvParams &params, const BankedSramConfig &config,
             BankLayout layout, Index ih, Index iw, Index ci);

/**
 * Replay the channel-last column stream of one batch sample against a
 * banked SRAM: each GEMM cycle requests all K elements of a lowered
 * column; conflicting requests serialize.
 */
FeedReport replayChannelLastFeed(const ConvParams &params,
                                 const BankedSramConfig &config,
                                 BankLayout layout);

} // namespace cfconv::sram

#endif // CFCONV_SRAM_CHANNEL_LAST_FEED_H
