#include "gpusim/energy.h"

#include "sram/energy_model.h"

namespace cfconv::gpusim {

GpuEnergyReport
kernelEnergy(const GpuConfig &config, const GpuKernelResult &result)
{
    GpuEnergyReport e;
    e.dramPj = static_cast<double>(result.dramBytes) *
               sram::kDramPjPerByte;

    // The shared-memory fill pipeline drains L2 at l2GBps * l2Util for
    // memorySeconds of aggregate step time; that product is the bytes
    // the TBs pulled on chip (DRAM misses are already billed above).
    const double l2_bytes =
        result.memorySeconds * config.l2GBps * 1e9 * config.l2Util;
    e.l2Pj = l2_bytes * kL2PjPerByte;

    const double macs = result.tflops * 1e12 * result.seconds / 2.0;
    e.macPj = macs * kGpuMacPj;

    e.totalPj = e.dramPj + e.l2Pj + e.macPj;
    e.pjPerMac = macs > 0.0 ? e.totalPj / macs : 0.0;
    return e;
}

} // namespace cfconv::gpusim
