/**
 * @file
 * V100-like GPU configuration for the tensor-core simulator: 80 SMs with
 * 8 TCs each (512 FP16 MACs/SM/cycle), ~900 GB/s HBM2, 96 KB shared
 * memory per SM. Stands in for the real V100 + cuDNN measurements of
 * Secs. II/V/VII-B.
 */

#ifndef CFCONV_GPUSIM_GPU_CONFIG_H
#define CFCONV_GPUSIM_GPU_CONFIG_H

#include "common/types.h"
#include "dram/dram_model.h"

namespace cfconv::gpusim {

/** Configuration of the simulated GPU. */
struct GpuConfig
{
    Index sms = 80;                 ///< streaming multiprocessors
    Index tbPerSm = 2;              ///< resident thread blocks per SM
    double clockGhz = 1.53;         ///< SM boost clock
    Index macsPerSmPerCycle = 512;  ///< 8 TCs x 64 FP16 FMA
    double computeEff = 0.885;      ///< achievable TC efficiency (ours)
    double cudnnComputeEff = 0.93;  ///< vendor-tuned kernel efficiency
    double bwUtil = 0.78;           ///< achievable DRAM utilization
    double l2GBps = 2150.0;         ///< L2 bandwidth feeding smem fills
    double l2Util = 0.85;           ///< achievable L2 utilization
    /**
     * Transaction waste of the channel-last kernel's strided shared-
     * memory fills, per unit of linear stride (cache lines partially
     * reused; calibrated to Fig 4a's 30%/60% drops at strides 2/4).
     */
    double clStrideWasteCoeff = 0.8;
    /**
     * Effective throughput of the explicit-im2col transformation kernel
     * in GB/s: the lowered tiles are produced and consumed through L2
     * rather than bouncing every byte off DRAM.
     */
    double transformGBps = 2500.0;
    Bytes sharedMemPerSm = 96 * 1024;
    Bytes transactionBytes = 32;    ///< DRAM sector granularity
    double kernelOverheadSec = 3.0e-6; ///< launch + epilogue per kernel
    /** Vendor kernels amortize launch work slightly better. */
    double cudnnKernelOverheadSec = 2.5e-6;
    dram::DramConfig dram = dram::DramConfig::hbm900();

    /** Peak FP16 tensor-core TFLOPS. */
    double
    peakTflops() const
    {
        return 2.0 * static_cast<double>(macsPerSmPerCycle) *
               static_cast<double>(sms) * clockGhz / 1e3;
    }

    /** The V100 configuration used throughout the paper. */
    static GpuConfig v100();
};

} // namespace cfconv::gpusim

#endif // CFCONV_GPUSIM_GPU_CONFIG_H
