#include "gpusim/gpu_config.h"

namespace cfconv::gpusim {

GpuConfig
GpuConfig::v100()
{
    return GpuConfig{};
}

} // namespace cfconv::gpusim
