/**
 * @file
 * Functional block-level channel-first kernel (Fig 12): executes the
 * convolution exactly as the GPU implementation schedules it — the
 * output matrix partitioned into thread-block tiles, each TB walking
 * the decomposed filters and staging operand chunks through a
 * bounded shared-memory buffer — and proves two claims of Sec. V:
 *  1. thread blocks own disjoint output tiles, so no atomic updates
 *     are ever needed, and
 *  2. the staging buffer respects the configured shared-memory
 *     capacity on every step.
 */

#ifndef CFCONV_GPUSIM_BLOCK_KERNEL_H
#define CFCONV_GPUSIM_BLOCK_KERNEL_H

#include "im2col/reorder.h"
#include "tensor/conv_params.h"
#include "tensor/tensor.h"

namespace cfconv::gpusim {

using tensor::ConvParams;
using tensor::Tensor;

/** Configuration of the functional block-level kernel. */
struct BlockKernelConfig
{
    Index tileM = 64;          ///< output rows per thread block
    Index tileN = 64;          ///< output channels per thread block
    Index chunkK = 32;         ///< staged operand depth per step
    Bytes sharedMemBytes = 96 * 1024; ///< per-TB staging capacity
    Bytes elemBytes = 2;       ///< staged element width (fp16)
    im2col::TileOrder order = im2col::TileOrder::ReuseGreedy;
};

/** Execution statistics the functional kernel collects. */
struct BlockKernelStats
{
    Index threadBlocks = 0;    ///< TB grid size
    Index stagingSteps = 0;    ///< shared-memory fills across all TBs
    Bytes peakStagingBytes = 0;///< largest single staging buffer
    Index outputWrites = 0;    ///< OFMap element writes (for the
                               ///< no-atomics check: must equal the
                               ///< OFMap size exactly)
};

/**
 * Execute the convolution with the block-level channel-first schedule.
 * Throws (fatal) if any staging step would exceed the shared-memory
 * capacity. @p stats, when non-null, receives execution statistics.
 */
Tensor convBlockChannelFirst(const ConvParams &params,
                             const Tensor &input, const Tensor &filter,
                             const BlockKernelConfig &config = {},
                             BlockKernelStats *stats = nullptr);

} // namespace cfconv::gpusim

#endif // CFCONV_GPUSIM_BLOCK_KERNEL_H
