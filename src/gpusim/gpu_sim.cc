#include "gpusim/gpu_sim.h"

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/trace.h"
#include "gpusim/kernel_cache.h"
#include "im2col/reorder.h"

namespace cfconv::gpusim {

namespace {

/**
 * Pick the thread-block tile for an (M, N) output. Starts from the
 * throughput-optimal 128x128 tile and halves it while the grid would
 * underfill the machine (what cuDNN's heuristics do for small layers).
 */
void
chooseTile(Index m, Index n, Index occupancy_target, Index &tm,
           Index &tn)
{
    tm = m >= 128 ? 128 : 64;
    tn = n >= 128 ? 128 : 64;
    auto tbs = [&] { return divCeil(m, tm) * divCeil(n, tn); };
    while (tbs() < occupancy_target && (tm > 32 || tn > 32)) {
        if (tm >= tn && tm > 32)
            tm /= 2;
        else if (tn > 32)
            tn /= 2;
        else
            break;
    }
}

/** Label for a conv kernel's trace rows, e.g. "cf-conv 3x3 64->128". */
std::string
convKernelLabel(const ConvParams &params, const GpuRunOptions &options)
{
    const char *alg = "cl-conv";
    switch (options.algorithm) {
      case GpuAlgorithm::ImplicitChannelFirst:
        alg = options.interTileReuse ? "cf-conv+reuse" : "cf-conv";
        break;
      case GpuAlgorithm::ImplicitChannelLast:
        alg = "cl-conv";
        break;
      case GpuAlgorithm::ExplicitIm2col:
        alg = "im2col-conv";
        break;
      case GpuAlgorithm::GemmOnly:
        alg = "gemm-conv";
        break;
      case GpuAlgorithm::Indirect:
        alg = "indirect-conv";
        break;
      case GpuAlgorithm::Smm:
        alg = "smm-conv";
        break;
    }
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s %lldx%lld %lld->%lld", alg,
                  static_cast<long long>(params.kernelH),
                  static_cast<long long>(params.kernelW),
                  static_cast<long long>(params.inChannels),
                  static_cast<long long>(params.outChannels));
    return buf;
}

std::string
gemmKernelLabel(Index m, Index k, Index n)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "gemm %lldx%lldx%lld",
                  static_cast<long long>(m), static_cast<long long>(k),
                  static_cast<long long>(n));
    return buf;
}

} // namespace

GpuSim::GpuSim(const GpuConfig &config) : config_(config)
{
    CFCONV_FATAL_IF(config.sms < 1 || config.tbPerSm < 1,
                    "GpuSim: need at least one SM and one resident TB");
}

double
GpuSim::gatherWaste(Bytes contiguous_run_bytes, Index stride) const
{
    if (stride <= 1 || contiguous_run_bytes >= config_.transactionBytes)
        return 1.0;
    const double per_run =
        static_cast<double>(config_.transactionBytes) /
        static_cast<double>(contiguous_run_bytes);
    return std::min(static_cast<double>(stride), per_run);
}

GpuKernelResult
GpuSim::runPipeline(Index m, Index n, const std::vector<Step> &steps,
                    Flops useful_flops, double compute_eff,
                    double overhead_sec, const std::string &label) const
{
    CFCONV_FATAL_IF(steps.empty(), "GpuSim: empty pipeline");
    trace::Scope span("gpusim",
                      trace::enabled() ? label : std::string());
    Index tm, tn;
    chooseTile(m, n, config_.sms * config_.tbPerSm, tm, tn);
    const Index num_tbs = divCeil(m, tm) * divCeil(n, tn);
    const Index concurrent =
        std::min(num_tbs, config_.sms * config_.tbPerSm);
    // Continuous throughput model: a ragged tail wave contributes its
    // fraction rather than a whole extra wave.
    const double waves = std::max(
        1.0, static_cast<double>(num_tbs) /
                 static_cast<double>(config_.sms * config_.tbPerSm));

    const double per_tb_macs =
        static_cast<double>(config_.macsPerSmPerCycle) /
        static_cast<double>(config_.tbPerSm) * compute_eff;
    const double per_tb_fill_bpc =
        config_.l2GBps * 1e9 * config_.l2Util /
        (static_cast<double>(concurrent) * config_.clockGhz * 1e9);

    // One representative thread block's pipeline on the simulated-
    // cycles clock: fills overlap the previous step's MACs, so the two
    // phases get their own rows (they would collide on one track).
    trace::SimTrack fill_row;
    trace::SimTrack mac_row;
    if (trace::enabled()) {
        fill_row = trace::simTrack(label + " fill");
        mac_row = trace::simTrack(label + " mac");
    }
    // Past this many k-steps the picture is periodic anyway.
    constexpr size_t kMaxSteps = 512;
    size_t emitted = 0;

    double tb_cycles = 0.0;
    double compute_cycles = 0.0;
    double fill_cycles = 0.0;
    Bytes tb_bytes = 0;
    for (const auto &s : steps) {
        const double c = static_cast<double>(s.macs) / per_tb_macs;
        const double f =
            static_cast<double>(s.fillBytes) / per_tb_fill_bpc;
        if (mac_row.active() && emitted < kMaxSteps) {
            const auto t0 = static_cast<std::uint64_t>(tb_cycles + 0.5);
            if (c > 0.0)
                trace::simSpan(mac_row, "mac", t0,
                               static_cast<std::uint64_t>(c + 0.5));
            if (f > 0.0)
                trace::simSpan(fill_row, "smem fill", t0,
                               static_cast<std::uint64_t>(f + 0.5));
            ++emitted;
        }
        tb_cycles += std::max(c, f);
        compute_cycles += c;
        fill_cycles += f;
        tb_bytes += s.fillBytes;
    }
    span.arg("waves", waves);
    span.arg("threadBlocks", static_cast<double>(num_tbs));

    GpuKernelResult r;
    const double kernel_secs =
        waves * tb_cycles / (config_.clockGhz * 1e9);
    r.computeSeconds =
        waves * compute_cycles / (config_.clockGhz * 1e9);
    r.memorySeconds =
        waves * fill_cycles / (config_.clockGhz * 1e9);
    r.memoryBound = fill_cycles > compute_cycles;
    r.seconds = kernel_secs + overhead_sec;
    r.dramBytes = tb_bytes * static_cast<Bytes>(num_tbs);
    r.tflops = static_cast<double>(useful_flops) / r.seconds / 1e12;
    return r;
}

GpuKernelResult
GpuSim::runGemm(Index m, Index k, Index n, bool vendor_tuned,
                bool operands_in_dram) const
{
    CFCONV_FATAL_IF(m < 1 || k < 1 || n < 1,
                    "GpuSim::runGemm: non-positive dimensions");
    // A GEMM result is a pure function of (dims, flags, config);
    // memoize it exactly like TpuSim::runGemm.
    KernelCache &cache = KernelCache::instance();
    std::string key;
    GpuKernelResult cached;
    if (cache.enabled()) {
        key = gpuGemmCacheKey(config_, m, k, n, vendor_tuned,
                              operands_in_dram);
        if (cache.lookup(key, &cached))
            return cached;
    }
    Index tm, tn;
    chooseTile(m, n, config_.sms * config_.tbPerSm, tm, tn);
    const Bytes elem = 2; // FP16 operands
    const Index kc = 64;
    std::vector<Step> steps;
    for (Index k0 = 0; k0 < k; k0 += kc) {
        const Index kc_eff = std::min(kc, k - k0);
        Step s;
        s.macs = static_cast<Flops>(tm) * static_cast<Flops>(tn) *
                 static_cast<Flops>(kc_eff);
        s.fillBytes =
            static_cast<Bytes>((tm + tn) * kc_eff) * elem;
        steps.push_back(s);
    }
    // Epilogue: write the output tile.
    steps.push_back({0, static_cast<Bytes>(tm * tn) * elem});

    const Flops flops = 2ULL * static_cast<Flops>(m) *
                        static_cast<Flops>(k) * static_cast<Flops>(n);
    const double overhead = vendor_tuned
        ? config_.cudnnKernelOverheadSec
        : config_.kernelOverheadSec;
    GpuKernelResult r =
        runPipeline(m, n, steps, flops,
                    vendor_tuned ? config_.cudnnComputeEff
                                 : config_.computeEff,
                    overhead, gemmKernelLabel(m, k, n));

    // Global DRAM roofline: unique operand + result bytes. Skipped for
    // the idealized reference GEMM whose operands are assumed resident.
    const Bytes unique =
        (static_cast<Bytes>(m) * static_cast<Bytes>(k) +
         static_cast<Bytes>(k) * static_cast<Bytes>(n) +
         static_cast<Bytes>(m) * static_cast<Bytes>(n)) *
        elem;
    if (operands_in_dram) {
        const double dram_secs = static_cast<double>(unique) /
                                 (config_.dram.peakGBps() * 1e9 *
                                  config_.bwUtil);
        if (dram_secs + overhead > r.seconds) {
            r.seconds = dram_secs + overhead;
            r.memoryBound = true;
            r.tflops = static_cast<double>(flops) / r.seconds / 1e12;
        }
    }
    r.dramBytes = unique;
    if (cache.enabled())
        cache.insert(key, r);
    return r;
}

GpuKernelResult
GpuSim::runConv(const ConvParams &params,
                const GpuRunOptions &options) const
{
    params.validate();

    // A kernel result is a pure function of (params, options, config);
    // memoize it so repeated shapes (model blocks, sweep grids) are
    // simulated once. Concurrent misses on the same key may compute
    // the identical result twice — benign, last insert wins.
    KernelCache &cache = KernelCache::instance();
    std::string key;
    GpuKernelResult cached;
    if (cache.enabled()) {
        key = kernelCacheKey(config_, params, options);
        if (cache.lookup(key, &cached))
            return cached;
    }

    GpuKernelResult r = runConvUncached(params, options);
    if (cache.enabled())
        cache.insert(key, r);
    return r;
}

GpuKernelResult
GpuSim::runConvUncached(const ConvParams &params,
                        const GpuRunOptions &options) const
{
    const Index m = params.gemmM();
    const Index n = params.gemmN();
    const Bytes elem = dataTypeSize(params.dataType);
    Index tm, tn;
    chooseTile(m, n, config_.sms * config_.tbPerSm, tm, tn);
    const Index kc = 64;
    const double eff = options.vendorTuned ? config_.cudnnComputeEff
                                           : config_.computeEff;

    if (options.algorithm == GpuAlgorithm::GemmOnly)
        return runGemm(m, params.gemmK(), n, options.vendorTuned,
                       /*operands_in_dram=*/false);

    if (options.algorithm == GpuAlgorithm::ExplicitIm2col) {
        GpuKernelResult gemm =
            runGemm(m, params.gemmK(), n, options.vendorTuned);
        const double transform = explicitTransformSeconds(params);
        gemm.transformSeconds = transform;
        gemm.seconds += transform;
        gemm.tflops =
            static_cast<double>(params.flops()) / gemm.seconds / 1e12;
        gemm.dramBytes += params.inputBytes() + 2 * params.loweredBytes();
        return gemm;
    }

    std::vector<Step> steps;
    Bytes unique_input = 0;

    if (options.algorithm == GpuAlgorithm::ImplicitChannelFirst) {
        // Block-level channel-first kernel (Fig 12): each TB walks the
        // decomposed tiles in the chosen order, C_I depth per tile.
        const auto sequence = [&] {
            TRACE_SCOPE("gpusim", "orderTiles");
            return im2col::orderTiles(
                params, options.interTileReuse
                            ? im2col::TileOrder::ReuseGreedy
                            : im2col::TileOrder::Naive);
        }();
        // NHWC gathers are contiguous over C_I; waste appears only for
        // shallow inputs. With inter-tile reuse and stride <= kernel,
        // whole pixel rows are useful across the tile sequence, so the
        // transaction waste is amortized away even for C_I = 3.
        const bool rows_fully_useful =
            options.interTileReuse &&
            params.strideW <= params.kernelW &&
            params.strideH <= params.kernelH;
        const double waste = rows_fully_useful
            ? 1.0
            : gatherWaste(static_cast<Bytes>(params.inChannels) * elem,
                          std::max(params.strideH, params.strideW));
        // Shared-memory fills are paid per k-step regardless of reuse;
        // what inter-tile reuse changes is which of those fills hit L2
        // instead of DRAM (the unique-traffic roofline below).
        for (size_t i = 0; i < sequence.size(); ++i) {
            for (Index k0 = 0; k0 < params.inChannels; k0 += kc) {
                const Index kc_eff =
                    std::min(kc, params.inChannels - k0);
                Step s;
                s.macs = static_cast<Flops>(tm) * static_cast<Flops>(tn) *
                         static_cast<Flops>(kc_eff);
                const double a_bytes = static_cast<double>(tm * kc_eff) *
                                       static_cast<double>(elem) * waste;
                s.fillBytes = static_cast<Bytes>(a_bytes) +
                              static_cast<Bytes>(kc_eff * tn) * elem;
                steps.push_back(s);
            }
        }
        unique_input = static_cast<Bytes>(im2col::sequenceFillElems(
                           params, sequence)) *
                       elem;
    } else if (options.algorithm == GpuAlgorithm::Indirect) {
        // IndirectConv kernel (Dukhan): each TB walks the H_F*W_F taps,
        // C_I depth per tap, gathering input rows through the
        // indirection buffer. The gathers dereference per-pixel
        // pointers, so the transaction pattern is contiguous over C_I
        // regardless of stride/dilation (no waste); the buffer itself
        // — tm pointers per tap per TB — streams with the first chunk
        // of every tap.
        constexpr Bytes kPointerBytes = 8;
        const Index taps = params.kernelH * params.kernelW;
        for (Index t = 0; t < taps; ++t) {
            for (Index k0 = 0; k0 < params.inChannels; k0 += kc) {
                const Index kc_eff =
                    std::min(kc, params.inChannels - k0);
                Step s;
                s.macs = static_cast<Flops>(tm) * static_cast<Flops>(tn) *
                         static_cast<Flops>(kc_eff);
                s.fillBytes = static_cast<Bytes>(tm * kc_eff) * elem +
                              static_cast<Bytes>(kc_eff * tn) * elem;
                if (k0 == 0)
                    s.fillBytes +=
                        static_cast<Bytes>(tm) * kPointerBytes;
                steps.push_back(s);
            }
        }
        unique_input = im2col::inputUnionBytes(params) +
                       static_cast<Bytes>(m) *
                           static_cast<Bytes>(taps) * kPointerBytes;
    } else if (options.algorithm == GpuAlgorithm::Smm) {
        // SMM-Conv kernel: one scalar-matrix multiply per tap over
        // contiguous zero-packed rows; only defined for unit
        // stride/dilation, where the shifted input block is one long
        // sequential run (waste-free by construction).
        CFCONV_FATAL_IF(params.strideH != 1 || params.strideW != 1 ||
                            params.dilationH != 1 ||
                            params.dilationW != 1,
                        "GpuSim: SMM-Conv requires unit stride/dilation "
                        "(layer %s)",
                        params.toString().c_str());
        const Index taps = params.kernelH * params.kernelW;
        for (Index t = 0; t < taps; ++t) {
            for (Index k0 = 0; k0 < params.inChannels; k0 += kc) {
                const Index kc_eff =
                    std::min(kc, params.inChannels - k0);
                Step s;
                s.macs = static_cast<Flops>(tm) * static_cast<Flops>(tn) *
                         static_cast<Flops>(kc_eff);
                s.fillBytes = static_cast<Bytes>(tm * kc_eff) * elem +
                              static_cast<Bytes>(kc_eff * tn) * elem;
                steps.push_back(s);
            }
        }
        unique_input = im2col::inputUnionBytes(params);
    } else {
        // cuDNN-like implicit channel-last kernel: the K loop spans
        // H_F*W_F*C_I; strided layers gather scattered rows, paying a
        // stride-proportional transaction waste, and the fill volume
        // does not shrink with stride (Fig 3).
        const Index k_total = params.gemmK();
        const double lin_stride = static_cast<double>(
            std::max(params.strideH, params.strideW));
        // Capped at 2x: past that, the vendor kernel's specialized
        // gathers (e.g. first-layer kernels) stop the bleeding.
        const double waste =
            lin_stride > 1.0
                ? std::clamp(config_.clStrideWasteCoeff * lin_stride,
                             1.0, 2.0)
                : 1.0;
        for (Index k0 = 0; k0 < k_total; k0 += kc) {
            const Index kc_eff = std::min(kc, k_total - k0);
            Step s;
            s.macs = static_cast<Flops>(tm) * static_cast<Flops>(tn) *
                     static_cast<Flops>(kc_eff);
            const double a_bytes = static_cast<double>(tm * kc_eff) *
                                   static_cast<double>(elem) * waste;
            s.fillBytes = static_cast<Bytes>(a_bytes) +
                          static_cast<Bytes>(kc_eff * tn) * elem;
            steps.push_back(s);
        }
        unique_input = static_cast<Bytes>(
            static_cast<double>(im2col::inputUnionBytes(params)) *
            waste);
    }

    // Epilogue: output tile writeback.
    steps.push_back({0, static_cast<Bytes>(tm * tn) * elem});

    const double overhead = options.vendorTuned
        ? config_.cudnnKernelOverheadSec
        : config_.kernelOverheadSec;
    GpuKernelResult r = runPipeline(m, n, steps, params.flops(), eff,
                                    overhead,
                                    convKernelLabel(params, options));

    // Global DRAM roofline over unique traffic.
    const Bytes unique = unique_input + params.filterBytes() +
                         params.outputBytes();
    const double dram_secs =
        static_cast<double>(unique) /
        (config_.dram.peakGBps() * 1e9 * config_.bwUtil);
    if (dram_secs + overhead > r.seconds) {
        r.seconds = dram_secs + overhead;
        r.memoryBound = true;
        r.tflops =
            static_cast<double>(params.flops()) / r.seconds / 1e12;
    }
    r.dramBytes = unique;
    return r;
}

double
GpuSim::explicitTransformSeconds(const ConvParams &params) const
{
    // The im2col kernel reads the IFMap and writes the lowered matrix.
    // It streams through L2 (transformGBps), since the matrix is
    // produced tile-by-tile rather than bounced entirely off DRAM.
    const Bytes bytes = params.inputBytes() + params.loweredBytes();
    return static_cast<double>(bytes) / (config_.transformGBps * 1e9) +
           config_.kernelOverheadSec;
}

GpuModelResult
GpuSim::runModel(const models::ModelSpec &model,
                 const GpuRunOptions &options) const
{
    TRACE_SCOPE_DYN("gpusim", "runModel " + model.name);
    GpuModelResult result;
    result.model = model.name;
    // Layer kernels are independent; simulate in parallel, reduce in
    // layer order so totals match the serial run bit for bit.
    const Index n_layers = static_cast<Index>(model.layers.size());
    result.layers.resize(model.layers.size());
    parallel::parallelFor(0, n_layers, 1, [&](Index b, Index e) {
        for (Index i = b; i < e; ++i) {
            const auto &layer = model.layers[static_cast<size_t>(i)];
            // Grouped layers: one kernel per group slice (real stacks
            // fuse these, but the slice count dominates the estimate).
            GpuKernelResult lr = runConv(layer.sliceParams(), options);
            lr.seconds *= static_cast<double>(layer.groups);
            lr.dramBytes *= static_cast<Bytes>(layer.groups);
            result.layers[static_cast<size_t>(i)] = lr;
        }
    });
    Flops flops = 0;
    for (size_t i = 0; i < model.layers.size(); ++i) {
        result.seconds += result.layers[i].seconds *
                          static_cast<double>(model.layers[i].count);
        flops += model.layers[i].flops() *
                 static_cast<Flops>(model.layers[i].count);
    }
    result.tflops = static_cast<double>(flops) / result.seconds / 1e12;
    return result;
}

} // namespace cfconv::gpusim
