#include "gpusim/block_kernel.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "im2col/filter_decomp.h"
#include "tensor/im2col_explicit.h"
#include "tensor/microkernel.h"

namespace cfconv::gpusim {

Tensor
convBlockChannelFirst(const ConvParams &params, const Tensor &input,
                      const Tensor &filter,
                      const BlockKernelConfig &config,
                      BlockKernelStats *stats)
{
    params.validate();
    CFCONV_FATAL_IF(config.tileM < 1 || config.tileN < 1 ||
                    config.chunkK < 1,
                    "block kernel: non-positive tile configuration");

    const Index m_total = params.gemmM();
    const Index n_total = params.gemmN();
    const auto sequence = im2col::orderTiles(params, config.order);

    BlockKernelStats local;
    Tensor out(params.batch, params.outChannels, params.outH(),
               params.outW());
    // The no-atomics proof: count writes per OFMap element; every
    // element must be written exactly once across all thread blocks.
    std::vector<Index> write_count(
        static_cast<size_t>(m_total * n_total), 0);

    for (Index m0 = 0; m0 < m_total; m0 += config.tileM) {
        const Index m1 = std::min(m0 + config.tileM, m_total);
        for (Index n0 = 0; n0 < n_total; n0 += config.tileN) {
            const Index n1 = std::min(n0 + config.tileN, n_total);
            ++local.threadBlocks;

            // Per-TB accumulator (the register tile).
            tensor::Matrix acc(m1 - m0, n1 - n0);
            acc.fill(0.0f);

            for (const auto &tile : sequence) {
                for (Index k0 = 0; k0 < params.inChannels;
                     k0 += config.chunkK) {
                    const Index k1 = std::min(k0 + config.chunkK,
                                              params.inChannels);

                    // Stage the A and B chunks "into shared memory".
                    const Bytes staged =
                        static_cast<Bytes>((m1 - m0) * (k1 - k0) +
                                           (k1 - k0) * (n1 - n0)) *
                        config.elemBytes;
                    CFCONV_FATAL_IF(staged > config.sharedMemBytes,
                                    "block kernel: staging %llu B "
                                    "exceeds shared memory %llu B",
                                    (unsigned long long)staged,
                                    (unsigned long long)
                                        config.sharedMemBytes);
                    ++local.stagingSteps;
                    local.peakStagingBytes =
                        std::max(local.peakStagingBytes, staged);

                    std::vector<float> a_smem(
                        static_cast<size_t>((m1 - m0) * (k1 - k0)));
                    for (Index m = m0; m < m1; ++m) {
                        const tensor::RowCoord rc =
                            tensor::rowCoord(params, m);
                        const Index ih = rc.oh * params.strideH -
                                         params.padH +
                                         tile.r * params.dilationH;
                        const Index iw = rc.ow * params.strideW -
                                         params.padW +
                                         tile.s * params.dilationW;
                        for (Index k = k0; k < k1; ++k)
                            a_smem[static_cast<size_t>(
                                (m - m0) * (k1 - k0) + (k - k0))] =
                                input.atPadded(rc.n, k, ih, iw);
                    }
                    std::vector<float> b_smem(
                        static_cast<size_t>((k1 - k0) * (n1 - n0)));
                    for (Index k = k0; k < k1; ++k)
                        for (Index n = n0; n < n1; ++n)
                            b_smem[static_cast<size_t>(
                                (k - k0) * (n1 - n0) + (n - n0))] =
                                filter.at(n, k, tile.r, tile.s);

                    // The tensor-core MMA over the staged chunks,
                    // dispatched to the micro-kernel GEMM (the staged
                    // buffers are exactly its packed-operand shape).
                    tensor::GemmOptions mma;
                    mma.accumulate = true;
                    tensor::microkernelGemm(
                        m1 - m0, n1 - n0, k1 - k0, a_smem.data(),
                        k1 - k0, b_smem.data(), n1 - n0, acc.data(),
                        n1 - n0, mma);
                }
            }

            // Epilogue: each TB writes its own disjoint output tile.
            for (Index m = m0; m < m1; ++m) {
                const tensor::RowCoord rc = tensor::rowCoord(params, m);
                for (Index n = n0; n < n1; ++n) {
                    out.at(rc.n, n, rc.oh, rc.ow) =
                        acc.at(m - m0, n - n0);
                    ++write_count[static_cast<size_t>(m * n_total + n)];
                    ++local.outputWrites;
                }
            }
        }
    }

    for (size_t i = 0; i < write_count.size(); ++i)
        CFCONV_ASSERT(write_count[i] == 1,
                      "(an OFMap element was written != 1 times: the "
                      "no-atomics property is broken)");

    if (stats)
        *stats = local;
    return out;
}

} // namespace cfconv::gpusim
