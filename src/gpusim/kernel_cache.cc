#include "gpusim/kernel_cache.h"

namespace cfconv::gpusim {

namespace {

void
appendConfig(std::string &key, const GpuConfig &config)
{
    memoKeyAppendInt(key, config.sms);
    memoKeyAppendInt(key, config.tbPerSm);
    memoKeyAppendFloat(key, config.clockGhz);
    memoKeyAppendInt(key, config.macsPerSmPerCycle);
    memoKeyAppendFloat(key, config.computeEff);
    memoKeyAppendFloat(key, config.cudnnComputeEff);
    memoKeyAppendFloat(key, config.bwUtil);
    memoKeyAppendFloat(key, config.l2GBps);
    memoKeyAppendFloat(key, config.l2Util);
    memoKeyAppendFloat(key, config.clStrideWasteCoeff);
    memoKeyAppendFloat(key, config.transformGBps);
    memoKeyAppendInt(key, static_cast<long long>(config.sharedMemPerSm));
    memoKeyAppendInt(key,
                     static_cast<long long>(config.transactionBytes));
    memoKeyAppendFloat(key, config.kernelOverheadSec);
    memoKeyAppendFloat(key, config.cudnnKernelOverheadSec);
    const dram::DramConfig &d = config.dram;
    memoKeyAppendInt(key, d.channels);
    memoKeyAppendInt(key, d.banksPerChannel);
    memoKeyAppendInt(key, static_cast<long long>(d.rowBytes));
    memoKeyAppendInt(key, static_cast<long long>(d.busBytesPerCycle));
    memoKeyAppendInt(key, static_cast<long long>(d.tPrecharge));
    memoKeyAppendInt(key, static_cast<long long>(d.tActivate));
    memoKeyAppendInt(key, static_cast<long long>(d.tCas));
    memoKeyAppendFloat(key, d.clockGhz);
    memoKeyAppendInt(key, static_cast<long long>(d.pagePolicy));
    memoKeyAppendInt(key, static_cast<long long>(d.mapping));
}

void
appendParams(std::string &key, const tensor::ConvParams &p)
{
    memoKeyAppendInt(key, p.batch);
    memoKeyAppendInt(key, p.inChannels);
    memoKeyAppendInt(key, p.inH);
    memoKeyAppendInt(key, p.inW);
    memoKeyAppendInt(key, p.outChannels);
    memoKeyAppendInt(key, p.kernelH);
    memoKeyAppendInt(key, p.kernelW);
    memoKeyAppendInt(key, p.strideH);
    memoKeyAppendInt(key, p.strideW);
    memoKeyAppendInt(key, p.padH);
    memoKeyAppendInt(key, p.padW);
    memoKeyAppendInt(key, p.dilationH);
    memoKeyAppendInt(key, p.dilationW);
    memoKeyAppendInt(key, static_cast<long long>(p.dataType));
}

} // namespace

std::string
kernelCacheKey(const GpuConfig &config, const tensor::ConvParams &params,
               const GpuRunOptions &options)
{
    std::string key = "gconv|";
    key.reserve(256);
    appendParams(key, params);
    memoKeyAppendInt(key, static_cast<long long>(options.algorithm));
    memoKeyAppendInt(key, options.interTileReuse ? 1 : 0);
    memoKeyAppendInt(key, options.vendorTuned ? 1 : 0);
    appendConfig(key, config);
    return key;
}

std::string
gpuGemmCacheKey(const GpuConfig &config, Index m, Index k, Index n,
                bool vendor_tuned, bool operands_in_dram)
{
    std::string key = "ggemm|";
    key.reserve(192);
    memoKeyAppendInt(key, m);
    memoKeyAppendInt(key, k);
    memoKeyAppendInt(key, n);
    memoKeyAppendInt(key, vendor_tuned ? 1 : 0);
    memoKeyAppendInt(key, operands_in_dram ? 1 : 0);
    appendConfig(key, config);
    return key;
}

std::uint64_t
kernelResultChecksum(const GpuKernelResult &r)
{
    std::uint64_t h = 0;
    auto mixFloat = [&h](double v) {
        h = hashCombine(h, hashBytes(&v, sizeof v));
    };
    mixFloat(r.seconds);
    mixFloat(r.tflops);
    h = hashCombine(h, static_cast<std::uint64_t>(r.dramBytes));
    mixFloat(r.computeSeconds);
    mixFloat(r.memorySeconds);
    mixFloat(r.transformSeconds);
    h = hashCombine(h, r.memoryBound ? 1 : 0);
    return h;
}

KernelCache &
KernelCache::instance()
{
    static KernelCache cache;
    return cache;
}

} // namespace cfconv::gpusim
