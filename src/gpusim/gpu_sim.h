/**
 * @file
 * Tile-level GPU tensor-core simulator. Models blocked GEMM across
 * thread blocks (wave quantization, per-TB shared-memory fill pipelines,
 * DRAM transaction efficiency) and three convolution kernels on top of
 * it: the paper's block-level implicit channel-first kernel (Sec. V,
 * with optional inter-tile reuse), a cuDNN-like implicit channel-last
 * kernel (stride-sensitive fills), and explicit im2col.
 */

#ifndef CFCONV_GPUSIM_GPU_SIM_H
#define CFCONV_GPUSIM_GPU_SIM_H

#include <string>
#include <vector>

#include "gpusim/gpu_config.h"
#include "models/model_zoo.h"
#include "tensor/conv_params.h"

namespace cfconv::gpusim {

using tensor::ConvParams;

/**
 * Which GPU kernel to simulate. The enum value is serialized into
 * kernel memo-cache keys, so new algorithms append at the end — never
 * reorder.
 */
enum class GpuAlgorithm {
    ImplicitChannelFirst, ///< our block-level channel-first kernel
    ImplicitChannelLast,  ///< cuDNN-like implicit kernel
    ExplicitIm2col,       ///< explicit transform + GEMM
    GemmOnly,             ///< equivalent GEMM (Fig 4 reference)
    Indirect,             ///< indirection-buffer pointer GEMM (Dukhan)
    Smm,                  ///< SMM-Conv scalar-matrix multiply (unit stride)
};

/** Per-run knobs. */
struct GpuRunOptions
{
    GpuAlgorithm algorithm = GpuAlgorithm::ImplicitChannelFirst;
    bool interTileReuse = true; ///< Sec. V reordering (channel-first)
    bool vendorTuned = false;   ///< cuDNN-grade compute efficiency
};

/** Result of simulating one kernel/layer. */
struct GpuKernelResult
{
    double seconds = 0.0;
    double tflops = 0.0;       ///< useful FLOPs / second
    Bytes dramBytes = 0;       ///< total DRAM traffic incl. waste
    double computeSeconds = 0.0; ///< sum of compute-bound step time
    double memorySeconds = 0.0;  ///< sum of memory-bound step time
    double transformSeconds = 0.0; ///< explicit-im2col transform part
    bool memoryBound = false;  ///< fills dominate the TB pipeline
};

/** Result of simulating a whole model. */
struct GpuModelResult
{
    std::string model;
    std::vector<GpuKernelResult> layers;
    double seconds = 0.0;
    double tflops = 0.0;
};

/** The GPU performance simulator. */
class GpuSim
{
  public:
    explicit GpuSim(const GpuConfig &config);

    const GpuConfig &config() const { return config_; }

    /** Simulate one convolution layer. */
    GpuKernelResult runConv(const ConvParams &params,
                            const GpuRunOptions &options = {}) const;

    /**
     * Simulate a plain GEMM kernel. When @p operands_in_dram is true
     * the full operands stream from DRAM (the explicit-im2col case,
     * where the lowered matrix lives off-chip); false gives the
     * idealized cache-resident reference the paper plots in Fig 4.
     */
    GpuKernelResult runGemm(Index m, Index k, Index n,
                            bool vendor_tuned = false,
                            bool operands_in_dram = true) const;

    /**
     * Time of the explicit im2col transformation kernel alone
     * (bandwidth-bound read-IFMap / write-lowered-matrix); this is the
     * GPU estimate Fig 2b reuses for the TPU.
     */
    double explicitTransformSeconds(const ConvParams &params) const;

    /** Simulate all conv layers of @p model. */
    GpuModelResult runModel(const models::ModelSpec &model,
                            const GpuRunOptions &options = {}) const;

  private:
    /** One shared-memory pipeline stage of a thread block. */
    struct Step
    {
        Flops macs = 0;      ///< MACs this k-step performs per TB
        Bytes fillBytes = 0; ///< gmem bytes the TB loads (incl. waste)
    };

    /** runConv body, bypassing the kernel memo cache. */
    GpuKernelResult runConvUncached(const ConvParams &params,
                                    const GpuRunOptions &options) const;

    GpuKernelResult runPipeline(Index m, Index n,
                                const std::vector<Step> &steps,
                                Flops useful_flops, double compute_eff,
                                double overhead_sec,
                                const std::string &label) const;

    /** DRAM-transaction waste factor for a strided gather. */
    double gatherWaste(Bytes contiguous_run_bytes, Index stride) const;

    GpuConfig config_;
};

} // namespace cfconv::gpusim

#endif // CFCONV_GPUSIM_GPU_SIM_H
