/**
 * @file
 * Energy accounting on top of GpuSim results: the GPU companion of
 * tpusim/energy. Combines the kernel's traffic counters with
 * per-access energy coefficients to report per-layer energy and
 * pJ/MAC, so the v2 RunRecord extras expose the same energy figure on
 * both backends (the TPU side has exported pJ/MAC since the Fig 16b
 * study).
 */

#ifndef CFCONV_GPUSIM_ENERGY_H
#define CFCONV_GPUSIM_ENERGY_H

#include "gpusim/gpu_config.h"
#include "gpusim/gpu_sim.h"

namespace cfconv::gpusim {

/** One FP16 tensor-core multiply-accumulate, pJ (same 45 nm-class
 *  estimate family as sram::kMacPj; tensor cores amortize operand
 *  routing over the 4x4 tile, landing below the scalar MAC). */
constexpr double kGpuMacPj = 0.25;

/** L2-serviced byte moved into shared memory, pJ/B (estimate: long
 *  on-die wires but no off-chip PHY). */
constexpr double kL2PjPerByte = 2.0;

/** Energy breakdown of one simulated kernel. */
struct GpuEnergyReport
{
    double dramPj = 0.0;   ///< off-chip traffic energy
    double l2Pj = 0.0;     ///< L2-to-shared-memory fill energy
    double macPj = 0.0;    ///< tensor-core compute energy
    double totalPj = 0.0;
    double pjPerMac = 0.0; ///< total energy per useful MAC
};

/**
 * Energy for one kernel result produced by @p config's simulator. MAC
 * count is recovered from the result's throughput accounting; L2
 * traffic is estimated from the memory-bound pipeline time serviced at
 * the configured L2 bandwidth.
 */
GpuEnergyReport kernelEnergy(const GpuConfig &config,
                             const GpuKernelResult &result);

} // namespace cfconv::gpusim

#endif // CFCONV_GPUSIM_ENERGY_H
