/**
 * @file
 * Process-wide memo cache for GpuSim kernel results: the GPU
 * instantiation of the generic common/memo_cache template. A kernel's
 * timing result is a pure function of (ConvParams, GpuConfig,
 * GpuRunOptions), so model sweeps over networks with repeated layer
 * shapes (ResNet's bottleneck blocks, the Fig 17/18 grids) hit the
 * cache exactly like the TPU side's tpusim/layer_cache. Disable with
 * CFCONV_LAYER_CACHE=0 (results are identical either way).
 */

#ifndef CFCONV_GPUSIM_KERNEL_CACHE_H
#define CFCONV_GPUSIM_KERNEL_CACHE_H

#include <string>

#include "common/memo_cache.h"
#include "gpusim/gpu_config.h"
#include "gpusim/gpu_sim.h"
#include "tensor/conv_params.h"

namespace cfconv::gpusim {

/**
 * Exact textual cache key for one simulated conv kernel: every field
 * of the params, run options, and GPU config the timing result
 * depends on (equal keys imply equal inputs).
 */
std::string kernelCacheKey(const GpuConfig &config,
                           const tensor::ConvParams &params,
                           const GpuRunOptions &options);

/** Cache key for a plain GEMM kernel run. */
std::string gpuGemmCacheKey(const GpuConfig &config, Index m, Index k,
                            Index n, bool vendor_tuned,
                            bool operands_in_dram);

/** Field-by-field checksum of a cached kernel result (never raw
 *  struct bytes — padding is indeterminate). Lets the cache detect
 *  corrupted entries (and the `cache.corrupt` chaos site) and
 *  recompute instead of serving damaged figures. */
std::uint64_t kernelResultChecksum(const GpuKernelResult &r);

/** The process-wide GPU kernel-result memo cache ("kernel_cache.hits"
 *  / ".misses" / ".entries" in statsSnapshot()). */
class KernelCache : public MemoCache<GpuKernelResult>
{
  public:
    static KernelCache &instance();

  private:
    KernelCache() : MemoCache<GpuKernelResult>("kernel_cache")
    {
        setChecksumFn(&kernelResultChecksum);
    }
};

} // namespace cfconv::gpusim

#endif // CFCONV_GPUSIM_KERNEL_CACHE_H
