#include "systolic/systolic_array.h"

#include "common/logging.h"

namespace cfconv::systolic {

SystolicArray::SystolicArray(Index rows, Index cols)
    : rows_(rows), cols_(cols),
      weights_(static_cast<size_t>(rows * cols), 0.0f)
{
    CFCONV_FATAL_IF(rows < 1 || cols < 1,
                    "SystolicArray: non-positive dimensions");
}

void
SystolicArray::loadWeights(const Matrix &weights)
{
    CFCONV_FATAL_IF(weights.rows() > rows_ || weights.cols() > cols_,
                    "SystolicArray: weights (%lldx%lld) exceed array "
                    "(%lldx%lld)",
                    static_cast<long long>(weights.rows()),
                    static_cast<long long>(weights.cols()),
                    static_cast<long long>(rows_),
                    static_cast<long long>(cols_));
    std::fill(weights_.begin(), weights_.end(), 0.0f);
    loadedK_ = weights.rows();
    loadedN_ = weights.cols();
    for (Index i = 0; i < loadedK_; ++i)
        for (Index j = 0; j < loadedN_; ++j)
            w(i, j) = weights.at(i, j);
}

Matrix
SystolicArray::run(const Matrix &a)
{
    CFCONV_FATAL_IF(loadedK_ == 0, "SystolicArray: no weights loaded");
    CFCONV_FATAL_IF(a.cols() != loadedK_,
                    "SystolicArray: operand depth %lld != loaded K %lld",
                    static_cast<long long>(a.cols()),
                    static_cast<long long>(loadedK_));
    ActivationProvider provider = [&a](Index k, Cycles t) -> float {
        const Index m = static_cast<Index>(t) - k;
        if (m < 0 || m >= a.rows())
            return 0.0f;
        return a.at(m, k);
    };
    return runWithProvider(provider, a.rows());
}

Matrix
SystolicArray::runWithProvider(const ActivationProvider &provider,
                               Index m)
{
    CFCONV_FATAL_IF(loadedK_ == 0, "SystolicArray: no weights loaded");
    CFCONV_FATAL_IF(m < 1, "SystolicArray: need at least one row");

    const Index k_dim = loadedK_, n_dim = loadedN_;
    Matrix out(m, n_dim);

    // Cycle-by-cycle simulation. State per PE: the activation currently
    // held (moving right) and the partial sum just produced (moving
    // down). Double-buffered so all PEs update simultaneously.
    std::vector<float> act(static_cast<size_t>(k_dim * n_dim), 0.0f);
    std::vector<float> act_next(act);
    std::vector<float> psum(static_cast<size_t>(k_dim * n_dim), 0.0f);
    std::vector<float> psum_next(psum);

    auto at = [n_dim](std::vector<float> &v, Index i, Index j) -> float & {
        return v[static_cast<size_t>(i * n_dim + j)];
    };

    // Output for row m' leaves column n at cycle m' + n + K - 1; the
    // final cycle is (m-1) + (n_dim-1) + (k_dim-1).
    const Cycles total =
        static_cast<Cycles>(m + n_dim + k_dim - 2) + 1;

    for (Cycles t = 0; t < total; ++t) {
        for (Index i = 0; i < k_dim; ++i) {
            for (Index j = 0; j < n_dim; ++j) {
                const float a_in = j == 0
                    ? provider(i, t)
                    : at(act, i, j - 1);
                const float p_in = i == 0 ? 0.0f : at(psum, i - 1, j);
                at(act_next, i, j) = a_in;
                at(psum_next, i, j) = p_in + w(i, j) * a_in;
            }
        }
        act.swap(act_next);
        psum.swap(psum_next);

        // Bottom-edge outputs: column j emits C[t - j - (K - 1)][j].
        for (Index j = 0; j < n_dim; ++j) {
            const Index row = static_cast<Index>(t) - j - (k_dim - 1);
            if (row >= 0 && row < m)
                out.at(row, j) = at(psum, k_dim - 1, j);
        }
    }

    lastCycles_ = total;
    return out;
}

} // namespace cfconv::systolic
