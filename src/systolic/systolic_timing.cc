#include "systolic/systolic_timing.h"

#include <algorithm>

#include "common/logging.h"

namespace cfconv::systolic {

Cycles
passCycles(const SystolicConfig &config, Index m, Index k, Index n)
{
    CFCONV_FATAL_IF(m < 1 || k < 1 || n < 1,
                    "passCycles: non-positive GEMM dims");
    CFCONV_FATAL_IF(k > config.rows || n > config.cols,
                    "passCycles: tile (%lldx%lld) exceeds array",
                    static_cast<long long>(k),
                    static_cast<long long>(n));
    Cycles cycles = static_cast<Cycles>(m + k + n - 1);
    if (!config.weightLoadOverlapped)
        cycles += static_cast<Cycles>(k);
    return cycles;
}

PassTiming
gemmTiming(const SystolicConfig &config, Index m, Index k, Index n)
{
    CFCONV_FATAL_IF(m < 1 || k < 1 || n < 1,
                    "gemmTiming: non-positive GEMM dims");
    PassTiming t;
    for (Index k0 = 0; k0 < k; k0 += config.rows) {
        const Index kt = std::min(config.rows, k - k0);
        for (Index n0 = 0; n0 < n; n0 += config.cols) {
            const Index nt = std::min(config.cols, n - n0);
            t.cycles += passCycles(config, m, kt, nt);
            t.macs += static_cast<Flops>(m) * static_cast<Flops>(kt) *
                      static_cast<Flops>(nt);
        }
    }
    const double capacity = static_cast<double>(t.cycles) *
                            static_cast<double>(config.rows) *
                            static_cast<double>(config.cols);
    t.utilization =
        capacity > 0.0 ? static_cast<double>(t.macs) / capacity : 0.0;
    return t;
}

} // namespace cfconv::systolic
