/**
 * @file
 * Closed-form timing for weight-stationary GEMM passes. Full-size
 * (128x128) simulations use these per-tile cycle counts; the functional
 * array cross-validates them on small configurations.
 */

#ifndef CFCONV_SYSTOLIC_SYSTOLIC_TIMING_H
#define CFCONV_SYSTOLIC_SYSTOLIC_TIMING_H

#include "common/types.h"

namespace cfconv::systolic {

/** Timing parameters of the systolic GEMM engine. */
struct SystolicConfig
{
    Index rows = 128;
    Index cols = 128;
    /**
     * True when weight loading for pass i+1 overlaps pass i's compute
     * (TPU-style weight FIFO); false exposes the load latency.
     */
    bool weightLoadOverlapped = true;
};

/** Cycle/work accounting for one or more weight-stationary passes. */
struct PassTiming
{
    Cycles cycles = 0;     ///< total engine-busy cycles
    Flops macs = 0;        ///< useful multiply-accumulates
    double utilization = 0.0; ///< macs / (cycles * rows * cols)
};

/**
 * Cycles for a single pass streaming @p m rows through a loaded
 * (k x n) weight block: m + k + n - 1 (stream + pipeline fill/drain),
 * plus the weight load (k cycles) when not overlapped.
 */
Cycles passCycles(const SystolicConfig &config, Index m, Index k,
                  Index n);

/**
 * Full GEMM (M x K x N): tiles K over rows and N over cols, one pass per
 * (K-tile, N-tile) pair, each streaming all M rows.
 */
PassTiming gemmTiming(const SystolicConfig &config, Index m, Index k,
                      Index n);

} // namespace cfconv::systolic

#endif // CFCONV_SYSTOLIC_SYSTOLIC_TIMING_H
