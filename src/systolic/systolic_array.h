/**
 * @file
 * Functional, cycle-by-cycle weight-stationary systolic array. Small
 * configurations of this model (e.g. the 4x4 array of Fig 10) validate
 * the dataflow, the skewed input schedule, and the vector-memory
 * interaction; the closed-form timing model (systolic_timing.h) is
 * cross-checked against it.
 */

#ifndef CFCONV_SYSTOLIC_SYSTOLIC_ARRAY_H
#define CFCONV_SYSTOLIC_SYSTOLIC_ARRAY_H

#include <functional>
#include <vector>

#include "common/types.h"
#include "tensor/tensor.h"

namespace cfconv::systolic {

using tensor::Matrix;

/**
 * Supplies the activation entering PE row @p k at cycle @p t, or 0 when
 * the row has no data that cycle. Row k of a skewed schedule receives
 * A[t - k][k].
 */
using ActivationProvider = std::function<float(Index k, Cycles t)>;

/**
 * Weight-stationary systolic array of rows x cols PEs. Weights stay in
 * place; activations enter from the left edge (one per row per cycle)
 * and partial sums flow downward, exiting at the bottom edge.
 */
class SystolicArray
{
  public:
    SystolicArray(Index rows, Index cols);

    Index rows() const { return rows_; }
    Index cols() const { return cols_; }

    /**
     * Preload @p weights (K x N with K <= rows, N <= cols) into the PE
     * grid; unused PEs hold zero.
     */
    void loadWeights(const Matrix &weights);

    /**
     * Run a full M-row GEMM pass: activations follow the canonical skew
     * (row k gets A[t - k][k]); @return C = A * W (M x N).
     */
    Matrix run(const Matrix &a);

    /**
     * Run with a custom activation provider for @p m output rows; used
     * by the TPU functional model where the provider is the serializer
     * in front of each vector memory. @return C (m x loaded-N).
     */
    Matrix runWithProvider(const ActivationProvider &provider, Index m);

    /** Cycles consumed by the last run (fill + stream + drain). */
    Cycles lastRunCycles() const { return lastCycles_; }

  private:
    Index rows_, cols_;
    Index loadedK_ = 0, loadedN_ = 0;
    std::vector<float> weights_;
    Cycles lastCycles_ = 0;

    float &w(Index i, Index j) { return weights_[i * cols_ + j]; }
};

} // namespace cfconv::systolic

#endif // CFCONV_SYSTOLIC_SYSTOLIC_ARRAY_H
