/**
 * @file
 * Ablation benches for the design arguments of Secs. II-C and III:
 *  1. Crossbar/banking scaling of the Lym-style channel-last design:
 *     why it cannot scale to a 256x256 GEMM engine (Sec. II-C).
 *  2. DRAM layout (Fig 7): HWC vs CHW tile-fill latency on the banked
 *     DRAM model across strides.
 *  3. Tile-order ablation: naive vs reuse-greedy DRAM fill volume
 *     across strides (the basis of Fig 18b's gains).
 *  4. Channel-last bank-conflict replay (Fig 3).
 *  5. Algorithm/layout ablation over *named registry variants*: every
 *     compared baseline is a reproducible accelerator name from the
 *     tune registry, and `json=FILE` dumps their ResNet-50 RunRecords.
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "dram/access_pattern.h"
#include "im2col/reorder.h"
#include "models/model_zoo.h"
#include "sim/model_runner.h"
#include "sim/report.h"
#include "sram/banked_sram.h"
#include "sram/channel_last_feed.h"
#include "tensor/conv_params.h"

using namespace cfconv;

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    const bench::WallTimer wall;
    // ---- 1. crossbar scaling ----
    bench::experimentHeader(
        "Ablation 1",
        "Crossbar + banking cost of the channel-last design vs GEMM "
        "engine size (Sec. II-C's unscalability argument)");
    Table t1("Crossbar/banking relative cost vs engine size");
    t1.setHeader({"engine", "crossbar cost", "banking cost"});
    for (Index size : {32L, 64L, 128L, 256L}) {
        t1.addRow({cell("%lldx%lld", (long long)size, (long long)size),
                   cell("%.0fx", sram::crossbarRelativeCost(size)),
                   cell("%.1fx", sram::bankingRelativeCost(size))});
    }
    t1.print();
    bench::summaryLine("Ablation-1", "crossbar cost at 256 (vs 32)",
                       64.0, sram::crossbarRelativeCost(256));

    // ---- 2. DRAM layout ----
    bench::experimentHeader(
        "Ablation 2",
        "HWC vs CHW DRAM layout: tile-fill cycles on the banked DRAM "
        "model (Fig 7)");
    Table t2("Tile-fill cycles by layout and stride");
    t2.setHeader({"stride", "HWCN cycles", "NCHW cycles", "CHW/HWC"});
    dram::DramModel model(dram::DramConfig::hbm700());
    for (Index stride : {1L, 2L, 4L}) {
        const auto p = tensor::makeConv(8, 64, 56, 64, 3, stride, 1);
        const Cycles hwcn = model.service(
            dram::tileFillStream(p, {1, 1}, tensor::Layout::HWCN));
        const Cycles nchw = model.service(
            dram::tileFillStream(p, {1, 1}, tensor::Layout::NCHW));
        t2.addRow({cell("%lld", (long long)stride),
                   cell("%llu", (unsigned long long)hwcn),
                   cell("%llu", (unsigned long long)nchw),
                   cell("%.1fx", static_cast<double>(nchw) /
                                     static_cast<double>(hwcn))});
        if (stride == 2)
            bench::summaryLine("Ablation-2", "CHW/HWC fill ratio (s2)",
                               2.0, static_cast<double>(nchw) /
                                        static_cast<double>(hwcn));
    }
    t2.print();

    // ---- 3. tile ordering ----
    bench::experimentHeader(
        "Ablation 3",
        "Naive vs reuse-greedy decomposed-filter order: DRAM fill "
        "volume (inter-tile reuse, Sec. V)");
    Table t3("Fill elements by tile order and stride");
    t3.setHeader({"stride", "naive", "reuse-greedy", "reduction"});
    for (Index stride : {1L, 2L, 3L}) {
        const auto p = tensor::makeConv(1, 64, 99, 64, 3, stride, 1);
        const Index naive = im2col::sequenceFillElems(
            p, im2col::orderTiles(p, im2col::TileOrder::Naive));
        const Index greedy = im2col::sequenceFillElems(
            p, im2col::orderTiles(p, im2col::TileOrder::ReuseGreedy));
        t3.addRow({cell("%lld", (long long)stride),
                   cell("%lld", (long long)naive),
                   cell("%lld", (long long)greedy),
                   cell("%.0f%%", 100.0 * (1.0 - static_cast<double>(
                                                     greedy) /
                                                     static_cast<double>(
                                                         naive)))});
    }
    t3.print();

    // ---- 4. channel-last bank-conflict replay ----
    bench::experimentHeader(
        "Ablation 4",
        "Channel-last SRAM feed: naive vs offline-skewed bank layout "
        "(the Fig 3 'careful layout' requirement, replayed)");
    Table t4("Feed slowdown over a 32-bank / 32-port SRAM");
    t4.setHeader({"layer", "naive slowdown", "skewed slowdown"});
    for (const auto &layer :
         {tensor::makeConv(1, 3, 32, 8, 3, 1, 1),
          tensor::makeConv(1, 4, 32, 8, 3, 1, 1),
          tensor::makeConv(1, 8, 24, 8, 3, 2, 1)}) {
        const auto naive = sram::replayChannelLastFeed(
            layer, {32, 32}, sram::BankLayout::NaiveModulo);
        const auto skewed = sram::replayChannelLastFeed(
            layer, {32, 32}, sram::BankLayout::Skewed);
        t4.addRow({layer.toString(),
                   cell("%.2fx", naive.slowdown()),
                   cell("%.2fx", skewed.slowdown())});
    }
    t4.print();

    // ---- 5. algorithm/layout variants, by registry name ----
    bench::experimentHeader(
        "Ablation 5",
        "Convolution algorithm / layout ablation on ResNet-50 (batch "
        "8), every baseline a named variant from the tune registry");
    const auto resnet = models::resnet50(8);
    const std::vector<std::vector<std::string>> families = {
        {"tpu-v2", "tpu-v2-chlast", "tpu-v2-explicit", "tpu-v2-nchw",
         "tpu-v2-s2d"},
        {"gpu-v100", "gpu-v100-chlast", "gpu-v100-noreuse",
         "gpu-v100-explicit", "gpu-v100-cudnn"},
    };
    Table t5("ResNet-50 end-to-end by named variant");
    t5.setHeader({"variant", "time (ms)", "TFLOPS", "vs family base"});
    std::vector<sim::RunRecord> records;
    for (const auto &family : families) {
        double base_seconds = 0.0;
        for (const auto &name : family) {
            const auto accelerator = sim::makeAccelerator(name);
            const sim::RunRecord record =
                sim::ModelRunner(*accelerator).runModel(resnet);
            if (name == family.front())
                base_seconds = record.seconds;
            t5.addRow({name, cell("%.3f", record.seconds * 1e3),
                       cell("%.2f", record.tflops),
                       cell("%.2fx", base_seconds / record.seconds)});
            records.push_back(record);
        }
    }
    t5.print();
    // The paper's core claim, as an ablation headline: implicit
    // channel-first beats explicit im2col on the TPU path.
    bench::summaryLine("Ablation-5", "tpu explicit/implicit time",
                       1.5,
                       records[2].seconds / records[0].seconds);
    if (!args.jsonPath.empty()
        && sim::writeRunRecords(args.jsonPath, records))
        std::printf("wrote %s (%zu records)\n", args.jsonPath.c_str(),
                    records.size());
    bench::printWallClock("bench_ablation_hardware", wall);
    return 0;
}
