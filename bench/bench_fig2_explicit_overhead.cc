/**
 * @file
 * Fig 2 reproduction: execution time of explicit vs implicit im2col,
 * batch 64, normalized to the implicit method.
 *  (a) V100 GPU: cuDNN-like implicit vs explicit transform + GEMM.
 *  (b) TPU-v2: implicit channel-first vs "explicit" = TPU GEMM time +
 *      the transform time estimated from the GPU (as the paper does).
 * Paper headline: explicit is ~28% slower on the GPU and ~23% slower
 * on the TPU; the GEMM portion of the explicit method matches the
 * implicit time.
 */

#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "models/model_zoo.h"
#include "oracle/gpu_oracle.h"
#include "tpusim/tpu_sim.h"

using namespace cfconv;

int
main(int argc, char **argv)
{
    bench::parseBenchArgs(argc, argv, /*supports_json=*/false);
    const bench::WallTimer wall;
    const Index batch = 64;
    const auto zoo = models::allModels(batch);
    oracle::GpuOracle gpu;
    tpusim::TpuSim tpu((tpusim::TpuConfig::tpuV2()));

    // ---- (a) GPU ----
    bench::experimentHeader(
        "Fig 2a", "Explicit vs implicit im2col on the V100, batch 64");
    Table gpu_table("Fig 2a: normalized execution time (V100)");
    gpu_table.setHeader({"model", "implicit", "explicit total",
                         "explicit GEMM", "transform share"});
    std::vector<double> gpu_slowdowns;
    for (const auto &model : zoo) {
        double implicit_s = 0.0, explicit_s = 0.0, transform_s = 0.0;
        for (const auto &layer : model.layers) {
            const double n = static_cast<double>(layer.count);
            implicit_s += n * gpu.convSeconds(layer.params);
            explicit_s += n * gpu.convExplicitSeconds(layer.params);
            transform_s += n * gpu.transformSeconds(layer.params);
        }
        const double slowdown = explicit_s / implicit_s;
        gpu_slowdowns.push_back(slowdown);
        gpu_table.addRow(
            {model.name, "1.00", cell("%.2f", slowdown),
             cell("%.2f", (explicit_s - transform_s) / implicit_s),
             cell("%.0f%%", 100.0 * transform_s / explicit_s)});
    }
    gpu_table.print();
    double gpu_avg = 0.0;
    for (double s : gpu_slowdowns)
        gpu_avg += s;
    gpu_avg /= static_cast<double>(gpu_slowdowns.size());
    bench::summaryLine("Fig-2a", "explicit slowdown (avg)", 1.28,
                       gpu_avg);

    // ---- (b) TPU ----
    // The paper's cloud TPU-v2 is an 8-core board; batch 64 splits
    // data-parallel into batch 8 per core. The explicit transform is
    // estimated from the (full-batch) GPU measurement, as the paper
    // does.
    const Index tpu_cores = 8;
    bench::experimentHeader(
        "Fig 2b",
        "Explicit vs implicit im2col on the 8-core cloud TPU-v2, "
        "batch 64 (transform estimated from the GPU, as in the paper)");
    Table tpu_table("Fig 2b: normalized execution time (TPU-v2)");
    tpu_table.setHeader({"model", "implicit", "explicit total",
                         "explicit GEMM", "transform share"});
    std::vector<double> tpu_slowdowns;
    for (const auto &model : models::allModels(batch / tpu_cores)) {
        double implicit_s = 0.0, explicit_s = 0.0, transform_s = 0.0;
        for (const auto &layer : model.layers) {
            const double n = static_cast<double>(layer.count);
            implicit_s += n * tpu.runConv(layer.params).seconds;
            tensor::ConvParams full = layer.params;
            full.batch = batch;
            tpusim::TpuRunOptions ex;
            ex.algorithm = tpusim::ConvAlgorithm::Explicit;
            ex.explicitTransformSeconds = gpu.transformSeconds(full);
            explicit_s += n * tpu.runConv(layer.params, ex).seconds;
            transform_s += n * ex.explicitTransformSeconds;
        }
        const double slowdown = explicit_s / implicit_s;
        tpu_slowdowns.push_back(slowdown);
        tpu_table.addRow(
            {model.name, "1.00", cell("%.2f", slowdown),
             cell("%.2f", (explicit_s - transform_s) / implicit_s),
             cell("%.0f%%", 100.0 * transform_s / explicit_s)});
    }
    tpu_table.print();
    double tpu_avg = 0.0;
    for (double s : tpu_slowdowns)
        tpu_avg += s;
    tpu_avg /= static_cast<double>(tpu_slowdowns.size());
    bench::summaryLine("Fig-2b", "explicit slowdown (avg)", 1.23,
                       tpu_avg);
    bench::printWallClock("bench_fig2_explicit_overhead", wall);
    return 0;
}
