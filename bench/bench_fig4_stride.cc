/**
 * @file
 * Fig 4 reproduction: TFLOPS of implicit im2col on representative
 * ResNet layers (W_I, C_I, C_O, W_F) under strides 1/2/4, with the
 * equivalent GEMM as a reference.
 *  (a) GPU (cuDNN-like channel-last): degrades ~30% at stride 2 and
 *      ~60% at stride 4 while the GEMM reference stays high.
 *  (b) TPU (channel-first): insensitive to stride.
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "gpusim/gpu_sim.h"
#include "models/model_zoo.h"
#include "tpusim/tpu_sim.h"

using namespace cfconv;

namespace {

tensor::ConvParams
withStride(tensor::ConvParams p, Index stride)
{
    p.strideH = p.strideW = stride;
    p.validate();
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseBenchArgs(argc, argv, /*supports_json=*/false);
    const bench::WallTimer wall;
    const Index batch = 64;
    const auto layers = models::resnetRepresentativeLayers(batch);
    const std::vector<Index> strides{1, 2, 4};

    gpusim::GpuSim gpu((gpusim::GpuConfig::v100()));
    tpusim::TpuSim tpu((tpusim::TpuConfig::tpuV2()));

    // ---- (a) GPU ----
    bench::experimentHeader(
        "Fig 4a",
        "TFLOPS vs stride on V100 tensor cores (implicit channel-last "
        "= cuDNN-like baseline; GEMM = lowered-size reference)");
    Table ga("Fig 4a: V100 TFLOPS under stride");
    ga.setHeader({"layer (W,C,K,F)", "stride", "implicit", "GEMM",
                  "impl/GEMM"});
    double drop2 = 0.0, drop4 = 0.0;
    for (const auto &layer : layers) {
        double base = 0.0;
        for (Index s : strides) {
            const auto p = withStride(layer.params, s);
            gpusim::GpuRunOptions cl;
            cl.algorithm = gpusim::GpuAlgorithm::ImplicitChannelLast;
            cl.vendorTuned = true;
            gpusim::GpuRunOptions go;
            go.algorithm = gpusim::GpuAlgorithm::GemmOnly;
            go.vendorTuned = true;
            const double impl = gpu.runConv(p, cl).tflops;
            const double gemm = gpu.runConv(p, go).tflops;
            if (s == 1)
                base = impl;
            if (s == 2)
                drop2 += 1.0 - impl / base;
            if (s == 4)
                drop4 += 1.0 - impl / base;
            ga.addRow({layer.name, cell("%lld", (long long)s),
                       cell("%.1f", impl), cell("%.1f", gemm),
                       cell("%.2f", impl / gemm)});
        }
    }
    ga.print();
    const double n = static_cast<double>(layers.size());
    bench::summaryLine("Fig-4a", "GPU drop at stride 2", 0.30,
                       drop2 / n);
    bench::summaryLine("Fig-4a", "GPU drop at stride 4", 0.60,
                       drop4 / n);

    // ---- (b) TPU ----
    bench::experimentHeader(
        "Fig 4b",
        "TFLOPS vs stride on TPU-v2 (implicit channel-first; GEMM = "
        "lowered-size reference): insensitive to stride");
    Table gb("Fig 4b: TPU TFLOPS under stride");
    gb.setHeader({"layer (W,C,K,F)", "stride", "implicit", "GEMM",
                  "impl/GEMM"});
    double tpu_drop2 = 0.0, tpu_drop4 = 0.0;
    for (const auto &layer : layers) {
        double base = 0.0;
        for (Index s : strides) {
            const auto p = withStride(layer.params, s);
            const double impl = tpu.runConv(p).tflops;
            const double gemm =
                tpu.runGemm(p.gemmM(), p.gemmK(), p.gemmN(),
                            p.dataType).tflops;
            if (s == 1)
                base = impl;
            if (s == 2)
                tpu_drop2 += 1.0 - impl / base;
            if (s == 4)
                tpu_drop4 += 1.0 - impl / base;
            gb.addRow({layer.name, cell("%lld", (long long)s),
                       cell("%.1f", impl), cell("%.1f", gemm),
                       cell("%.2f", impl / gemm)});
        }
    }
    gb.print();
    bench::summaryLine("Fig-4b", "TPU drop at stride 2", 0.0,
                       tpu_drop2 / n);
    bench::summaryLine("Fig-4b", "TPU drop at stride 4", 0.0,
                       tpu_drop4 / n);
    bench::printWallClock("bench_fig4_stride", wall);
    return 0;
}
