/**
 * @file
 * Fig 4 reproduction + the algorithm-matrix extension: TFLOPS of
 * implicit im2col on representative ResNet layers (W_I, C_I, C_O,
 * W_F) under strides 1/2/4, with the equivalent GEMM as a reference.
 *  (a) GPU (cuDNN-like channel-last): degrades ~30% at stride 2 and
 *      ~60% at stride 4 while the GEMM reference stays high.
 *  (b) TPU (channel-first): insensitive to stride.
 *  (c) The stride/dilation-sensitivity matrix across the full
 *      conv::Algorithm zoo on both simulators: every registered
 *      algorithm x {stride 1/2/4, dilation 2}, combos an algorithm
 *      cannot run marked n/a (SMM-Conv is unit-stride only). The
 *      matrix records land in BENCH_algos.json (json= overrides),
 *      and algo=NAME restricts the matrix to one algorithm.
 */

#include <cstdio>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "gpusim/gpu_sim.h"
#include "models/model_zoo.h"
#include "sim/model_runner.h"
#include "sim/report.h"
#include "tpusim/tpu_sim.h"

using namespace cfconv;

namespace {

tensor::ConvParams
withStride(tensor::ConvParams p, Index stride)
{
    p.strideH = p.strideW = stride;
    p.validate();
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, /*supports_json=*/true,
        /*supports_workload=*/false, /*supports_algo=*/true);
    if (args.jsonPath.empty())
        args.jsonPath = "BENCH_algos.json";
    const bench::WallTimer wall;
    const Index batch = 64;
    const auto layers = models::resnetRepresentativeLayers(batch);
    const std::vector<Index> strides{1, 2, 4};

    gpusim::GpuSim gpu((gpusim::GpuConfig::v100()));
    tpusim::TpuSim tpu((tpusim::TpuConfig::tpuV2()));

    // ---- (a) GPU ----
    bench::experimentHeader(
        "Fig 4a",
        "TFLOPS vs stride on V100 tensor cores (implicit channel-last "
        "= cuDNN-like baseline; GEMM = lowered-size reference)");
    Table ga("Fig 4a: V100 TFLOPS under stride");
    ga.setHeader({"layer (W,C,K,F)", "stride", "implicit", "GEMM",
                  "impl/GEMM"});
    double drop2 = 0.0, drop4 = 0.0;
    for (const auto &layer : layers) {
        double base = 0.0;
        for (Index s : strides) {
            const auto p = withStride(layer.params, s);
            gpusim::GpuRunOptions cl;
            cl.algorithm = gpusim::GpuAlgorithm::ImplicitChannelLast;
            cl.vendorTuned = true;
            gpusim::GpuRunOptions go;
            go.algorithm = gpusim::GpuAlgorithm::GemmOnly;
            go.vendorTuned = true;
            const double impl = gpu.runConv(p, cl).tflops;
            const double gemm = gpu.runConv(p, go).tflops;
            if (s == 1)
                base = impl;
            if (s == 2)
                drop2 += 1.0 - impl / base;
            if (s == 4)
                drop4 += 1.0 - impl / base;
            ga.addRow({layer.name, cell("%lld", (long long)s),
                       cell("%.1f", impl), cell("%.1f", gemm),
                       cell("%.2f", impl / gemm)});
        }
    }
    ga.print();
    const double n = static_cast<double>(layers.size());
    bench::summaryLine("Fig-4a", "GPU drop at stride 2", 0.30,
                       drop2 / n);
    bench::summaryLine("Fig-4a", "GPU drop at stride 4", 0.60,
                       drop4 / n);

    // ---- (b) TPU ----
    bench::experimentHeader(
        "Fig 4b",
        "TFLOPS vs stride on TPU-v2 (implicit channel-first; GEMM = "
        "lowered-size reference): insensitive to stride");
    Table gb("Fig 4b: TPU TFLOPS under stride");
    gb.setHeader({"layer (W,C,K,F)", "stride", "implicit", "GEMM",
                  "impl/GEMM"});
    double tpu_drop2 = 0.0, tpu_drop4 = 0.0;
    for (const auto &layer : layers) {
        double base = 0.0;
        for (Index s : strides) {
            const auto p = withStride(layer.params, s);
            const double impl = tpu.runConv(p).tflops;
            const double gemm =
                tpu.runGemm(p.gemmM(), p.gemmK(), p.gemmN(),
                            p.dataType).tflops;
            if (s == 1)
                base = impl;
            if (s == 2)
                tpu_drop2 += 1.0 - impl / base;
            if (s == 4)
                tpu_drop4 += 1.0 - impl / base;
            gb.addRow({layer.name, cell("%lld", (long long)s),
                       cell("%.1f", impl), cell("%.1f", gemm),
                       cell("%.2f", impl / gemm)});
        }
    }
    gb.print();
    bench::summaryLine("Fig-4b", "TPU drop at stride 2", 0.0,
                       tpu_drop2 / n);
    bench::summaryLine("Fig-4b", "TPU drop at stride 4", 0.0,
                       tpu_drop4 / n);

    // ---- (c) the algorithm matrix ----
    bench::experimentHeader(
        "Fig 4c",
        "Stride/dilation sensitivity across the registered algorithm "
        "zoo on both simulators (records -> BENCH_algos.json)");

    struct Combo
    {
        Index stride, dilation;
        const char *tag;
    };
    const std::vector<Combo> combos = {
        {1, 1, "s1-d1"}, {2, 1, "s2-d1"}, {4, 1, "s4-d1"},
        {1, 2, "s1-d2"}};
    // One variant per (backend, algorithm) cell, all on the stock
    // tpu-v2 / gpu-v100 cores so the algorithm is the only axis.
    const std::vector<std::string> matrixVariants = {
        "tpu-v2",          "tpu-v2-chlast",
        "tpu-v2-explicit", "tpu-v2-indirect",
        "tpu-v2-smm",      "gpu-v100",
        "gpu-v100-chlast", "gpu-v100-explicit",
        "gpu-v100-indirect", "gpu-v100-smm",
    };
    const auto repLayers = models::resnetRepresentativeLayers(8);

    Table gc("Fig 4c: model milliseconds across the algorithm matrix");
    gc.setHeader({"variant", "algorithm", "s1-d1", "s2-d1", "s4-d1",
                  "s1-d2"});
    std::vector<sim::RunRecord> records;
    Index cells = 0, skipped = 0;
    for (const auto &name : matrixVariants) {
        const auto accel = sim::makeAccelerator(name);
        const conv::Algorithm *algo = accel->algorithm();
        const std::string algoName =
            algo != nullptr ? algo->name() : "?";
        if (!args.algo.empty() && args.algo != algoName)
            continue;
        std::vector<std::string> row = {name, algoName};
        for (const Combo &combo : combos) {
            models::ModelSpec m;
            m.name = std::string("resnet-rep-") + combo.tag;
            bool supported = true;
            for (const auto &layer : repLayers) {
                models::ConvLayerSpec spec = layer;
                spec.params.strideH = spec.params.strideW =
                    combo.stride;
                spec.params.dilationH = spec.params.dilationW =
                    combo.dilation;
                spec.params.validate();
                if (algo != nullptr &&
                    !algo->supports(spec.params, spec.groups).ok())
                    supported = false;
                m.layers.push_back(std::move(spec));
            }
            if (!supported) {
                // The applicability predicate said no (e.g. SMM-Conv
                // on a strided combo): an honest hole, not a crash.
                row.push_back("n/a");
                ++skipped;
                continue;
            }
            sim::RunRecord record =
                sim::ModelRunner(*accel).runModel(m);
            row.push_back(cell("%.3f", record.seconds * 1e3));
            records.push_back(std::move(record));
            ++cells;
        }
        gc.addRow(row);
    }
    gc.print();
    std::printf("ALGOMATRIX combos=%zu | ran=%lld | n/a=%lld | "
                "records=%zu\n",
                combos.size(), static_cast<long long>(cells),
                static_cast<long long>(skipped), records.size());
    // An empty meta keeps the document a pure function of the sim, so
    // repeat runs are byte-identical (check_algos.sh relies on it).
    if (sim::writeRunRecords(args.jsonPath, records, sim::ReportMeta{}))
        std::printf("wrote %s (%zu records)\n", args.jsonPath.c_str(),
                    records.size());

    bench::printWallClock("bench_fig4_stride", wall);
    return 0;
}
