/**
 * @file
 * google-benchmark microbenchmarks of the functional kernels: reference
 * GEMM, explicit im2col lowering, the virtual lowered view, and the
 * implicit channel-first engine. These time the host-side reference
 * implementations (not the simulators).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "im2col/implicit_conv.h"
#include "im2col/lowered_view.h"
#include "tensor/conv_ref.h"
#include "tensor/gemm.h"
#include "tensor/im2col_explicit.h"
#include "tensor/microkernel.h"

using namespace cfconv;
using tensor::makeConv;

namespace {

void
BM_ReferenceGemm(benchmark::State &state)
{
    const Index dim = state.range(0);
    tensor::Matrix a(dim, dim), b(dim, dim), c(dim, dim);
    a.fillRandom(1);
    b.fillRandom(2);
    for (auto _ : state) {
        tensor::gemm(a, b, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * dim * dim * dim);
}
BENCHMARK(BM_ReferenceGemm)->Arg(64)->Arg(128);

void
BM_ExplicitLowering(benchmark::State &state)
{
    const auto p = makeConv(1, 32, state.range(0), 32, 3, 1, 1);
    tensor::Tensor input = tensor::makeInput(p);
    input.fillRandom(3);
    for (auto _ : state) {
        auto lowered = tensor::im2colLower(
            p, input, tensor::ColumnOrder::ChannelFirst);
        benchmark::DoNotOptimize(lowered.data());
    }
    state.SetItemsProcessed(state.iterations() * p.loweredElems());
}
BENCHMARK(BM_ExplicitLowering)->Arg(28)->Arg(56);

void
BM_LoweredViewAccess(benchmark::State &state)
{
    const auto p = makeConv(1, 32, 28, 32, 3, 1, 1);
    tensor::Tensor input = tensor::makeInput(p);
    input.fillRandom(4);
    const im2col::LoweredView view(p,
                                   tensor::ColumnOrder::ChannelFirst);
    Index m = 0, k = 0;
    for (auto _ : state) {
        float v = view.valueAt(input, m, k);
        benchmark::DoNotOptimize(v);
        k = (k + 7) % p.gemmK();
        m = (m + 13) % p.gemmM();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LoweredViewAccess);

void
BM_ImplicitConv(benchmark::State &state)
{
    const auto p = makeConv(1, 16, state.range(0), 16, 3, 1, 1);
    tensor::Tensor input = tensor::makeInput(p);
    tensor::Tensor filter = tensor::makeFilter(p);
    input.fillRandom(5);
    filter.fillRandom(6);
    im2col::ImplicitConvOptions options;
    options.tilesPerGroup = im2col::tpuMultiTileParam(128, p);
    for (auto _ : state) {
        auto out = im2col::convImplicit(p, input, filter, options);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * p.flops());
}
BENCHMARK(BM_ImplicitConv)->Arg(14)->Arg(28);

void
BM_DirectConv(benchmark::State &state)
{
    const auto p = makeConv(1, 16, state.range(0), 16, 3, 1, 1);
    tensor::Tensor input = tensor::makeInput(p);
    tensor::Tensor filter = tensor::makeFilter(p);
    input.fillRandom(7);
    filter.fillRandom(8);
    for (auto _ : state) {
        auto out = tensor::convDirect(p, input, filter);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * p.flops());
}
BENCHMARK(BM_DirectConv)->Arg(14)->Arg(28);

/** One timed GEMM data point of the per-backend sweep. */
struct GemmPoint
{
    Index m, n, k;
    std::string backend;
    long long threads;
    double wallMs;
    double gflops;
};

/** Best-of-3 wall time for one gemm() call on the active backend. */
double
timeGemmMs(const tensor::Matrix &a, const tensor::Matrix &b,
           tensor::Matrix &c)
{
    double best = 1e30;
    tensor::gemm(a, b, c); // warm up packing buffers and the pool
    for (int rep = 0; rep < 3; ++rep) {
        bench::WallTimer t;
        tensor::gemm(a, b, c);
        best = std::min(best, t.seconds() * 1e3);
    }
    benchmark::DoNotOptimize(c.data());
    return best;
}

/**
 * Per-backend GEMM sweep: GFLOP/s for every available backend on a few
 * paper-relevant shapes, printed as GEMM lines and written to
 * BENCH_gemm.json so the repo's bench trajectory has machine-readable
 * data points. The SUMMARY line tracks the acceptance target of a
 * >= 3x best-backend speedup over the seed scalar loop at 512^3.
 */
void
gemmBackendSweep()
{
    bench::experimentHeader(
        "gemm_backends",
        "micro-kernel GEMM GFLOP/s per backend (best of 3)");

    const struct
    {
        Index m, n, k;
    } shapes[] = {
        {256, 256, 256},
        {512, 512, 512},
        {3136, 64, 576}, // resnet conv3x3 56x56x64 lowered
    };
    const tensor::KernelBackend backends[] = {
        tensor::KernelBackend::Scalar,
        tensor::KernelBackend::Generic,
        tensor::KernelBackend::Avx2,
    };

    std::vector<GemmPoint> points;
    double scalar512 = 0.0, best512 = 1e30;
    for (const auto &sh : shapes) {
        tensor::Matrix a(sh.m, sh.k), b(sh.k, sh.n), c(sh.m, sh.n);
        a.fillRandom(11);
        b.fillRandom(12);
        for (const auto backend : backends) {
            if (!tensor::kernelBackendAvailable(backend))
                continue;
            tensor::setKernelBackend(backend);
            GemmPoint pt;
            pt.m = sh.m;
            pt.n = sh.n;
            pt.k = sh.k;
            pt.backend = tensor::kernelBackendName(backend);
            pt.threads = static_cast<long long>(parallel::threads());
            pt.wallMs = timeGemmMs(a, b, c);
            pt.gflops = 2.0 * static_cast<double>(sh.m) *
                        static_cast<double>(sh.n) *
                        static_cast<double>(sh.k) /
                        (pt.wallMs * 1e6);
            std::printf("GEMM shape=%lldx%lldx%lld backend=%s "
                        "threads=%lld wall_ms=%.3f gflops=%.2f\n",
                        static_cast<long long>(pt.m),
                        static_cast<long long>(pt.n),
                        static_cast<long long>(pt.k),
                        pt.backend.c_str(), pt.threads, pt.wallMs,
                        pt.gflops);
            if (sh.m == 512 && sh.n == 512 && sh.k == 512) {
                if (backend == tensor::KernelBackend::Scalar)
                    scalar512 = pt.wallMs;
                else
                    best512 = std::min(best512, pt.wallMs);
            }
            points.push_back(std::move(pt));
        }
    }
    tensor::resetKernelBackend();

    if (scalar512 > 0.0 && best512 < 1e30)
        bench::summaryLine("gemm_backends",
                           "512^3 best-backend speedup vs scalar (>=3 "
                           "required)",
                           3.0, scalar512 / best512);

    std::FILE *json = std::fopen("BENCH_gemm.json", "w");
    if (json == nullptr) {
        std::fprintf(stderr, "could not write BENCH_gemm.json\n");
        return;
    }
    std::fprintf(json, "[\n");
    for (size_t i = 0; i < points.size(); ++i) {
        const GemmPoint &pt = points[i];
        std::fprintf(
            json,
            "  {\"m\": %lld, \"n\": %lld, \"k\": %lld, "
            "\"backend\": \"%s\", \"threads\": %lld, "
            "\"wall_ms\": %.3f, \"gflops\": %.2f}%s\n",
            static_cast<long long>(pt.m), static_cast<long long>(pt.n),
            static_cast<long long>(pt.k), pt.backend.c_str(),
            pt.threads, pt.wallMs, pt.gflops,
            i + 1 < points.size() ? "," : "");
    }
    std::fprintf(json, "]\n");
    std::fclose(json);
    std::printf("wrote BENCH_gemm.json (%zu points)\n", points.size());
}

} // namespace

int
main(int argc, char **argv)
{
    // Peel off the uniform `threads=N` bench argument before google
    // benchmark parses its own flags.
    std::vector<char *> kept{argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "threads=", 8) == 0) {
            char *args[] = {argv[0], argv[i]};
            bench::parseBenchArgs(2, args, /*supports_json=*/false);
        } else {
            kept.push_back(argv[i]);
        }
    }
    int kept_argc = static_cast<int>(kept.size());
    benchmark::Initialize(&kept_argc, kept.data());
    const bench::WallTimer wall;
    benchmark::RunSpecifiedBenchmarks();
    gemmBackendSweep();
    bench::printWallClock("bench_micro_kernels", wall);
    return 0;
}
