/**
 * @file
 * google-benchmark microbenchmarks of the functional kernels: reference
 * GEMM, explicit im2col lowering, the virtual lowered view, and the
 * implicit channel-first engine. These time the host-side reference
 * implementations (not the simulators).
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "bench_util.h"
#include "im2col/implicit_conv.h"
#include "im2col/lowered_view.h"
#include "tensor/conv_ref.h"
#include "tensor/gemm.h"
#include "tensor/im2col_explicit.h"

using namespace cfconv;
using tensor::makeConv;

namespace {

void
BM_ReferenceGemm(benchmark::State &state)
{
    const Index dim = state.range(0);
    tensor::Matrix a(dim, dim), b(dim, dim), c(dim, dim);
    a.fillRandom(1);
    b.fillRandom(2);
    for (auto _ : state) {
        tensor::gemm(a, b, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * dim * dim * dim);
}
BENCHMARK(BM_ReferenceGemm)->Arg(64)->Arg(128);

void
BM_ExplicitLowering(benchmark::State &state)
{
    const auto p = makeConv(1, 32, state.range(0), 32, 3, 1, 1);
    tensor::Tensor input = tensor::makeInput(p);
    input.fillRandom(3);
    for (auto _ : state) {
        auto lowered = tensor::im2colLower(
            p, input, tensor::ColumnOrder::ChannelFirst);
        benchmark::DoNotOptimize(lowered.data());
    }
    state.SetItemsProcessed(state.iterations() * p.loweredElems());
}
BENCHMARK(BM_ExplicitLowering)->Arg(28)->Arg(56);

void
BM_LoweredViewAccess(benchmark::State &state)
{
    const auto p = makeConv(1, 32, 28, 32, 3, 1, 1);
    tensor::Tensor input = tensor::makeInput(p);
    input.fillRandom(4);
    const im2col::LoweredView view(p,
                                   tensor::ColumnOrder::ChannelFirst);
    Index m = 0, k = 0;
    for (auto _ : state) {
        float v = view.valueAt(input, m, k);
        benchmark::DoNotOptimize(v);
        k = (k + 7) % p.gemmK();
        m = (m + 13) % p.gemmM();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LoweredViewAccess);

void
BM_ImplicitConv(benchmark::State &state)
{
    const auto p = makeConv(1, 16, state.range(0), 16, 3, 1, 1);
    tensor::Tensor input = tensor::makeInput(p);
    tensor::Tensor filter = tensor::makeFilter(p);
    input.fillRandom(5);
    filter.fillRandom(6);
    im2col::ImplicitConvOptions options;
    options.tilesPerGroup = im2col::tpuMultiTileParam(128, p);
    for (auto _ : state) {
        auto out = im2col::convImplicit(p, input, filter, options);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * p.flops());
}
BENCHMARK(BM_ImplicitConv)->Arg(14)->Arg(28);

void
BM_DirectConv(benchmark::State &state)
{
    const auto p = makeConv(1, 16, state.range(0), 16, 3, 1, 1);
    tensor::Tensor input = tensor::makeInput(p);
    tensor::Tensor filter = tensor::makeFilter(p);
    input.fillRandom(7);
    filter.fillRandom(8);
    for (auto _ : state) {
        auto out = tensor::convDirect(p, input, filter);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * p.flops());
}
BENCHMARK(BM_DirectConv)->Arg(14)->Arg(28);

} // namespace

int
main(int argc, char **argv)
{
    // Peel off the uniform `threads=N` bench argument before google
    // benchmark parses its own flags.
    std::vector<char *> kept{argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "threads=", 8) == 0) {
            char *args[] = {argv[0], argv[i]};
            bench::initBench(2, args);
        } else {
            kept.push_back(argv[i]);
        }
    }
    int kept_argc = static_cast<int>(kept.size());
    benchmark::Initialize(&kept_argc, kept.data());
    const bench::WallTimer wall;
    benchmark::RunSpecifiedBenchmarks();
    bench::printWallClock("bench_micro_kernels", wall);
    return 0;
}
