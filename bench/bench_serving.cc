/**
 * @file
 * Request-level serving benchmark on the serve:: stack: synthetic
 * traffic over a mixed model zoo through the dynamic batcher,
 * multi-chip work-stealing scheduler, and admission controller. Four
 * scenario families, each emitting one RunRecord into
 * BENCH_serving.json (override with json=FILE):
 *
 *   pareto_b<N>   — throughput-versus-p99 Pareto sweep over maxBatch
 *                   (the batching-delay / batch-efficiency frontier)
 *   scale_n<N>    — multi-chip scaling at saturating offered load
 *   stream_<kind> — the three arrival families at one mean rate
 *   overload_*    — sustained overload with the admission door open
 *                   versus bounded (goodput under load shedding)
 *   slo_classes_* — a three-tier priority/SLO mix under overload,
 *                   plain versus with the degradation ladder armed
 *                   (brownout sheds the batch tier first)
 *   resilient_*   — a heterogeneous board under the same traffic,
 *                   shed-only versus the full resilience layer
 *                   (breakers + degradation + hedging + fallback);
 *                   pair with faults=SPEC for the chaos headline
 *
 * Accepts the workload keys: seed=N reseeds every traffic stream,
 * stream=NAME picks the Pareto sweep's arrival family, classes=SPEC
 * overrides the slo_classes mix ("name[:weight[:priority[:sloMs]]]",
 * comma-separated; malformed specs exit 2), and faults=SPEC (e.g.
 * "seed=7; serve.chip_down=0.05") turns the whole run into
 * chaos-under-load, stamping the v3 resilience block (v5 once the
 * resilience layer itself is armed). All simulated metrics are
 * deterministic per seed at any thread count; only the WALL lines
 * move.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "models/model_zoo.h"
#include "serve/serving_sim.h"
#include "sim/report.h"

using namespace cfconv;
using namespace cfconv::serve;

namespace {

/** Small, distinct classes keep per-point cost evaluations cheap
 *  while still exercising the mixed-zoo paths. */
ModelMix
servingMix()
{
    return {{"alexnet", &models::alexnet, 3.0},
            {"zfnet", &models::zfnet, 1.0}};
}

TrafficSpec
baseTraffic(std::uint64_t seed, ArrivalKind kind, double rate,
            double horizon)
{
    TrafficSpec spec;
    spec.kind = kind;
    spec.ratePerSecond = rate;
    spec.horizonSeconds = horizon;
    spec.seed = seed;
    return spec;
}

void
addRow(Table &t, const std::string &name, const ServingResult &r)
{
    t.addRow({name, cell("%lld", static_cast<long long>(r.offered)),
              cell("%lld", static_cast<long long>(r.completed)),
              cell("%lld", static_cast<long long>(r.shed)),
              cell("%.0f", r.throughputRps),
              cell("%.0f", r.goodputRps), cell("%.2f", r.meanBatch),
              cell("%.2f", r.p50 * 1e3), cell("%.2f", r.p99 * 1e3),
              cell("%.2f", r.p999 * 1e3)});
}

constexpr const char *kTableHeader[] = {
    "scenario", "offered", "done",   "shed",    "thru rps",
    "good rps", "batch",   "p50 ms", "p99 ms",  "p999 ms"};

std::vector<std::string>
tableHeader()
{
    return {kTableHeader, kTableHeader + 10};
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args =
        bench::parseBenchArgs(argc, argv, true, true);
    if (args.jsonPath.empty())
        args.jsonPath = "BENCH_serving.json";
    const std::uint64_t seed = args.seed ? args.seed : 42;
    ArrivalKind paretoKind = ArrivalKind::Poisson;
    if (!args.stream.empty()) {
        auto parsed = parseArrivalKind(args.stream);
        if (!parsed.ok()) {
            std::fprintf(stderr, "%s\n",
                         parsed.status().toString().c_str());
            return 2;
        }
        paretoKind = parsed.value();
    }
    const bench::WallTimer wall;
    std::vector<sim::RunRecord> records;

    bench::experimentHeader(
        "serving",
        "Request-level serving: dynamic batching, multi-chip "
        "scheduling, admission control");

    // --- Pareto sweep: throughput versus p99 over maxBatch. One
    // simulator, policies swapped between points, so every cost
    // evaluation after the first point is a memo hit.
    {
        Table t("Batching Pareto frontier (2 chips, rate 6000/s, " +
                std::string(arrivalKindName(paretoKind)) + ")");
        t.setHeader(tableHeader());
        ServingConfig config;
        config.chips.assign(2, ChipSpec{"tpu-v2"});
        ServingSimulator sim(config, servingMix());
        const TrafficSpec traffic =
            baseTraffic(seed, paretoKind, 6000, 0.25);
        double batch1Goodput = 0.0;
        double bestGoodput = 0.0;
        for (Index maxBatch : {1, 4, 8, 16, 32, 64}) {
            BatchPolicy policy;
            policy.maxBatch = maxBatch;
            policy.maxWaitSeconds = 2e-3;
            sim.setPolicy(policy, {});
            sim.setScenario("pareto_b" + std::to_string(maxBatch));
            const ServingResult r = sim.run(traffic);
            records.push_back(r.record);
            addRow(t, r.record.model, r);
            if (maxBatch == 1)
                batch1Goodput = r.goodputRps;
            bestGoodput = std::max(bestGoodput, r.goodputRps);
        }
        t.print();
        // The headline batching win: goodput (completed within the
        // 50 ms SLO) at the best sweep point versus no batching.
        bench::summaryLine("serving", "batching goodput gain (x)",
                           1.0, bestGoodput / batch1Goodput);
    }

    // --- Multi-chip scaling at saturating load: every board runs
    // flat out, so throughput is pure drain rate.
    {
        Table t("Multi-chip scaling (maxBatch 8, saturating load)");
        t.setHeader(tableHeader());
        double oneChip = 0.0;
        double fourChip = 0.0;
        for (Index chips : {1, 2, 4, 8}) {
            ServingConfig config;
            config.chips.assign(static_cast<size_t>(chips),
                                ChipSpec{"tpu-v2"});
            config.scenario = "scale_n" + std::to_string(chips);
            ServingSimulator sim(config, servingMix());
            const ServingResult r = sim.run(baseTraffic(
                seed, ArrivalKind::Poisson, 60000, 0.05));
            records.push_back(r.record);
            addRow(t, r.record.model, r);
            if (chips == 1)
                oneChip = r.throughputRps;
            if (chips == 4)
                fourChip = r.throughputRps;
        }
        t.print();
        bench::summaryLine("serving", "4-chip scaling (x)", 4.0,
                           fourChip / oneChip);
    }

    // --- Arrival families at one mean rate: how the same policies
    // hold up under memoryless, flash-crowd, and diurnal load.
    {
        Table t("Arrival streams (2 chips, rate 3000/s, maxBatch 16)");
        t.setHeader(tableHeader());
        ServingConfig config;
        config.chips.assign(2, ChipSpec{"tpu-v2"});
        config.batch.maxBatch = 16;
        ServingSimulator sim(config, servingMix());
        for (ArrivalKind kind :
             {ArrivalKind::Poisson, ArrivalKind::Bursty,
              ArrivalKind::Diurnal}) {
            sim.setScenario(std::string("stream_") +
                            arrivalKindName(kind));
            const ServingResult r =
                sim.run(baseTraffic(seed, kind, 3000, 0.25));
            records.push_back(r.record);
            addRow(t, r.record.model, r);
        }
        t.print();
    }

    // --- Sustained overload, admission door open versus bounded:
    // shedding early keeps the served tail inside the SLO.
    {
        Table t("Overload at 1.5x capacity (2 chips, maxBatch 8)");
        t.setHeader(tableHeader());
        ServingConfig config;
        config.chips.assign(2, ChipSpec{"tpu-v2"});
        ServingSimulator sim(config, servingMix());
        const TrafficSpec traffic =
            baseTraffic(seed, ArrivalKind::Poisson, 16000, 0.3);

        sim.setScenario("overload_open");
        const ServingResult open = sim.run(traffic);
        records.push_back(open.record);
        addRow(t, open.record.model, open);

        AdmissionPolicy admission;
        admission.maxQueuePerClass = 32;
        sim.setPolicy(BatchPolicy{}, admission);
        sim.setScenario("overload_shed");
        const ServingResult shed = sim.run(traffic);
        records.push_back(shed.record);
        addRow(t, shed.record.model, shed);
        t.print();

        bench::summaryLine("serving", "shedding goodput gain (x)",
                           1.0, shed.goodputRps /
                                    std::max(1.0, open.goodputRps));
        bench::summaryLine("serving", "overload shed fraction", 0.0,
                           shed.shedFraction);
    }

    // --- Priority/SLO classes under the same overload: three tiers
    // (interactive alexnet, standard zfnet, batch mobilenetv1), each
    // with its own deadline. The degraded point arms the ladder:
    // sustained pressure first halves the batch cap, then browns out
    // the batch tier at arrival — so the interactive tier's goodput
    // survives the overload.
    {
        StatusOr<ModelMix> mixOr = parseClassSpecs(
            args.classes.empty()
                ? "alexnet:2:0:50,zfnet:1:1:100,mobilenetv1:1:2:250"
                : args.classes);
        if (!mixOr.ok()) {
            std::fprintf(stderr, "classes=: %s\n",
                         mixOr.status().toString().c_str());
            return 2;
        }
        const ModelMix classMix = std::move(mixOr).value();

        Table t("Priority/SLO classes at 1.5x capacity (2 chips, "
                "maxBatch 8)");
        t.setHeader(tableHeader());
        ServingConfig config;
        config.chips.assign(2, ChipSpec{"tpu-v2"});
        const TrafficSpec traffic =
            baseTraffic(seed, ArrivalKind::Poisson, 16000, 0.3);

        config.scenario = "slo_classes_open";
        ServingSimulator open(config, classMix);
        const ServingResult ro = open.run(traffic);
        records.push_back(ro.record);
        addRow(t, ro.record.model, ro);

        config.scenario = "slo_classes_degrade";
        config.degradation.enabled = true;
        config.degradation.stepUpPressure = 2.0;
        config.degradation.stepUpAfterSeconds = 5e-3;
        config.degradation.stepDownPressure = 0.5;
        config.degradation.stepDownAfterSeconds = 20e-3;
        ServingSimulator degraded(config, classMix);
        const ServingResult rd = degraded.run(traffic);
        records.push_back(rd.record);
        addRow(t, rd.record.model, rd);
        t.print();

        bench::summaryLine("serving", "degraded brownout shed",
                           0.0,
                           static_cast<double>(rd.brownoutShed));
        bench::summaryLine("serving", "degrade max step", 0.0,
                           static_cast<double>(rd.degradeStepMax));
    }

    // --- The resilience layer on a heterogeneous board: shed-only
    // baseline versus breakers + degradation + hedging + algorithm
    // fallback, same traffic and the same admission door. Fault-free
    // the pair is a plain A/B (byte-stable v2 records); under a
    // chaos spec that singles out the flaky variant (e.g.
    // "serve.chip_down@tpu-v2=0.6; serve.chip_down=0.02") the
    // breakers route around it and the goodput gap at the 50 ms SLO
    // is the PR's headline.
    {
        Table t("Resilience layer under chaos (1x gpu-v100 + 2x "
                "tpu-v2, maxBatch 8)");
        t.setHeader(tableHeader());
        ServingConfig config;
        // The fastest chip leads the dispatch preference order — so
        // when the chaos spec makes *it* the flaky one
        // (serve.chip_down@gpu-v100), the shed-only baseline walks
        // into the outage on nearly every batch, while the breaker
        // sits the repeat offender out and serves cleanly on the two
        // healthy (slower) chips.
        config.chips = {ChipSpec{"gpu-v100"}, ChipSpec{"tpu-v2"},
                        ChipSpec{"tpu-v2"}};
        config.admission.maxQueuePerClass = 32;
        // A realistic dispatcher timeout: every batch that lands on a
        // failing chip stalls this long before the failure is noticed
        // and the batch requeues — against a 50 ms SLO, one bounce
        // nearly consumes the whole budget. This is the cost the
        // breakers avoid by routing around a repeat offender. The
        // rate is picked so the two healthy chips can carry the load:
        // the breaker's capacity trade (sit the repeat offender out)
        // is then pure goodput win.
        config.chipOutageDetectionSeconds = 30e-3;
        const TrafficSpec traffic =
            baseTraffic(seed, ArrivalKind::Poisson, 8000, 0.3);

        config.scenario = "resilient_off";
        ServingSimulator off(config, servingMix());
        const ServingResult roff = off.run(traffic);
        records.push_back(roff.record);
        addRow(t, roff.record.model, roff);

        config.scenario = "resilient_on";
        config.breaker.enabled = true;
        // Two consecutive faults discriminate the persistent offender
        // (0.6 fault rate trips within a few touches) from healthy
        // chips' rare blips; a half-open chip must then serve two
        // canaries before full traffic returns.
        config.breaker.failureThreshold = 2;
        config.breaker.halfOpenSuccesses = 2;
        config.breaker.openSeconds = 150e-3;
        config.degradation.enabled = true;
        // Deep-collapse guard rails: a pressure the bounded queues
        // only reach when most of the board is breaker-open, with a
        // recovery band wide enough to step back up as soon as the
        // breakers restore capacity.
        config.degradation.stepUpPressure = 6.0;
        config.degradation.stepUpAfterSeconds = 20e-3;
        config.degradation.stepDownPressure = 3.0;
        config.degradation.stepDownAfterSeconds = 10e-3;
        config.hedge.enabled = true;
        config.hedge.minSamples = 16;
        config.fallbackVariants = {"tpu-v3ish"};
        ServingSimulator on(config, servingMix());
        const ServingResult ron = on.run(traffic);
        records.push_back(ron.record);
        addRow(t, ron.record.model, ron);
        t.print();

        bench::summaryLine("serving", "resilient goodput gain (x)",
                           1.0,
                           ron.goodputRps /
                               std::max(1.0, roff.goodputRps));
        bench::summaryLine("serving", "breaker trips", 0.0,
                           static_cast<double>(ron.breakerTrips));
        bench::summaryLine("serving", "hedge wins", 0.0,
                           static_cast<double>(ron.hedgeWins));
    }

    if (sim::writeRunRecords(args.jsonPath, records))
        std::printf("wrote %s (%zu records)\n", args.jsonPath.c_str(),
                    records.size());
    bench::printLatencyStats();
    bench::printWallClock("bench_serving", wall);
    return 0;
}
