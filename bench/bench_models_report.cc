/**
 * @file
 * End-to-end model throughput trajectory: run the full model zoo
 * (the paper's seven CNNs plus MobileNetV1) at batch 8 through
 * sim::ModelRunner on every stock backend — TPU-v2, the v3-ish
 * two-MXU core, and the V100 channel-first kernel — and write the
 * unified RunRecord document to BENCH_models.json (override with
 * json=FILE; narrow the sweep with model=NAME and backend=NAME, which
 * is how the trace-analyzer gate records clean single-model traces).
 * The BENCH_gemm.json companion tracks raw GEMM; this one
 * tracks whole models, so regressions in the model runner, the memo
 * caches, or either simulator show up in the bench trajectory.
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "models/model_zoo.h"
#include "sim/model_runner.h"
#include "sim/report.h"

using namespace cfconv;

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, /*supports_json=*/true, /*supports_workload=*/false,
        /*supports_algo=*/false, /*supports_selection=*/true);
    if (args.jsonPath.empty())
        args.jsonPath = "BENCH_models.json";
    const bench::WallTimer wall;
    const Index batch = 8;

    auto zoo = models::allModels(batch);
    zoo.push_back(models::mobilenetv1(batch));
    std::vector<std::string> backends = {"tpu-v2", "tpu-v3ish",
                                         "gpu-v100"};
    // model=/backend= narrow the sweep to one model and/or backend —
    // how check_analyze.sh records a single-model single-backend trace
    // whose timelines aren't interleaved with the rest of the zoo.
    if (!args.model.empty()) {
        decltype(zoo) kept;
        for (auto &model : zoo)
            if (model.name == args.model)
                kept.push_back(std::move(model));
        if (kept.empty()) {
            std::fprintf(stderr,
                         "INVALID_ARGUMENT: unknown model=%s (not in "
                         "the zoo)\n",
                         args.model.c_str());
            return 2;
        }
        zoo = std::move(kept);
    }
    if (!args.backend.empty()) {
        bool known = false;
        for (const auto &b : backends)
            known = known || b == args.backend;
        if (!known) {
            std::fprintf(stderr,
                         "INVALID_ARGUMENT: unknown backend=%s "
                         "(supported: tpu-v2, tpu-v3ish, gpu-v100)\n",
                         args.backend.c_str());
            return 2;
        }
        backends = {args.backend};
    }

    bench::experimentHeader(
        "models_report",
        "Model zoo on every backend via sim::ModelRunner, batch 8");
    Table t("End-to-end model time (ms) per backend");
    std::vector<std::string> header = {"model"};
    for (const auto &b : backends)
        header.push_back(b);
    t.setHeader(header);

    // One runner per backend, reused across the zoo so the memo
    // caches collapse repeated shapes between models too.
    std::vector<std::unique_ptr<sim::Accelerator>> accelerators;
    for (const auto &name : backends)
        accelerators.push_back(sim::makeAccelerator(name));

    std::vector<sim::RunRecord> records;
    for (const auto &model : zoo) {
        std::vector<std::string> row = {model.name};
        for (const auto &accelerator : accelerators) {
            const sim::RunRecord record =
                sim::ModelRunner(*accelerator).runModel(model);
            row.push_back(cell("%.3f", record.seconds * 1e3));
            records.push_back(record);
        }
        t.addRow(row);
    }
    t.print();

    // Headline: zoo-wide effective throughput per backend, the number
    // the trajectory tracks.
    for (size_t b = 0; b < backends.size(); ++b) {
        double seconds = 0.0;
        double flops = 0.0;
        for (size_t r = b; r < records.size(); r += backends.size()) {
            seconds += records[r].seconds;
            flops += records[r].tflops * records[r].seconds;
        }
        char metric[64];
        std::snprintf(metric, sizeof(metric), "%s zoo TFLOPS",
                      backends[b].c_str());
        bench::summaryLine("models_report", metric,
                           accelerators[b]->peakTflops(),
                           flops / seconds);
    }

    if (sim::writeRunRecords(args.jsonPath, records))
        std::printf("wrote %s (%zu records)\n", args.jsonPath.c_str(),
                    records.size());
    bench::printLatencyStats();
    for (const auto &accelerator : accelerators)
        bench::printCacheStats(*accelerator);
    bench::printWallClock("bench_models_report", wall);
    return 0;
}
