/**
 * @file
 * Tile-level sparsity study — instantiating the paper's closing
 * future-work direction (sparse CNN accelerators on channel-first
 * implicit im2col). Sweeps structured (tile-wise) pruning rates and
 * reports the pass savings the schedule realizes on the TPU with zero
 * hardware support, alongside the functional exactness check.
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/table.h"
#include "im2col/sparse.h"
#include "tensor/conv_ref.h"
#include "tpusim/tpu_sim.h"

using namespace cfconv;

int
main(int argc, char **argv)
{
    bench::parseBenchArgs(argc, argv, /*supports_json=*/false);
    const bench::WallTimer wall;
    bench::experimentHeader(
        "Sparsity",
        "Tile-wise pruning on the channel-first schedule: skipped "
        "passes translate 1:1 into TPU time (zero hardware support)");

    tpusim::TpuSim sim((tpusim::TpuConfig::tpuV2()));
    const auto p = tensor::makeConv(8, 128, 28, 128, 3, 1, 1);
    tensor::Tensor input = tensor::makeInput(p);
    tensor::Tensor filter = tensor::makeFilter(p);
    input.fillRandom(1);
    filter.fillRandom(2);

    const double dense_sec = sim.runConv(p).seconds;

    Table t("Pruning-rate sweep (128ch 28x28 k3, batch 8)");
    t.setHeader({"pruned tiles", "density", "exact?", "est. speedup"});
    // Each pruning rate runs the full functional pipeline (prune,
    // sparse implicit conv, direct-conv reference); sweep the rates in
    // parallel and print the rows in order afterwards.
    struct SparsityPoint
    {
        double fraction;
        Index skippableTiles;
        double overallDensity;
        double maxDiff;
        double speedup;
    };
    const std::vector<double> fractions = {0.0, 2.0 / 9.0, 4.0 / 9.0,
                                           6.0 / 9.0};
    std::vector<SparsityPoint> points(fractions.size());
    parallel::parallelFor(
        0, static_cast<Index>(fractions.size()), 1,
        [&](Index lo, Index hi) {
            for (Index i = lo; i < hi; ++i) {
                const double fraction = fractions[i];
                const tensor::Tensor pruned =
                    im2col::pruneFilterTiles(p, filter, fraction);
                const auto report =
                    im2col::analyzeSparsity(p, pruned);

                Index skipped = 0;
                const tensor::Tensor sparse_out =
                    im2col::convImplicitSparse(p, input, pruned,
                                               &skipped);
                const double diff =
                    static_cast<double>(sparse_out.maxAbsDiff(
                        tensor::convDirect(p, input, pruned)));

                // TPU estimate: passes scale with the surviving
                // tiles. With C_I = 128 (T = 1), each tile is one
                // pass.
                const double sparse_sec =
                    dense_sec * (1.0 - report.passSavings());
                points[i] = {fraction, report.skippableTiles,
                             report.overallDensity, diff,
                             sparse_sec > 0.0 ? dense_sec / sparse_sec
                                              : 9.0};
            }
        });
    for (const SparsityPoint &pt : points) {
        t.addRow({cell("%lld/9", (long long)pt.skippableTiles),
                  cell("%.2f", pt.overallDensity),
                  pt.maxDiff < 1e-3 ? "yes" : "NO",
                  cell("%.2fx", pt.speedup)});
        if (pt.fraction > 0.6)
            bench::summaryLine("Sparsity", "speedup at 6/9 pruned",
                               3.0, pt.speedup);
    }
    t.print();

    // Unstructured pruning for contrast: magnitude pruning rarely
    // zeroes whole tiles, so the schedule alone recovers nothing.
    bench::experimentHeader(
        "Sparsity (unstructured)",
        "Magnitude pruning leaves tiles non-empty: pass-level skipping "
        "recovers nothing, motivating tile-structured training");
    Table t2("Unstructured pruning: density vs skippable tiles");
    t2.setHeader({"threshold", "density", "skippable tiles"});
    for (float thr : {0.0f, 0.5f, 0.9f}) {
        const auto pruned = im2col::pruneFilter(filter, thr);
        const auto report = im2col::analyzeSparsity(p, pruned);
        t2.addRow({cell("%.1f", static_cast<double>(thr)),
                   cell("%.2f", report.overallDensity),
                   cell("%lld/9", (long long)report.skippableTiles)});
    }
    t2.print();
    bench::printWallClock("bench_sparsity", wall);
    return 0;
}
