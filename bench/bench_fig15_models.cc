/**
 * @file
 * Fig 15 reproduction: end-to-end model validation at batch 8.
 *  (a) Per-model execution time, TPUSim vs measured TPU-v2.
 *  (b) Layer-wise error distribution; the paper reports a 5.8% MAE
 *      over all layers.
 * The simulation side runs through sim::ModelRunner (parallel layer
 * sweep + layer memo cache); `json=FILE` additionally emits the
 * structured RunRecord document for the whole zoo.
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/stats.h"
#include "common/table.h"
#include "models/model_zoo.h"
#include "oracle/tpu_oracle.h"
#include "sim/model_runner.h"
#include "sim/report.h"

using namespace cfconv;

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    const bench::WallTimer wall;
    const Index batch = 8;
    const auto accelerator = sim::makeAccelerator("tpu-v2");
    const sim::ModelRunner runner(*accelerator);
    oracle::TpuOracle oracle;

    bench::experimentHeader(
        "Fig 15a", "End-to-end model time, TPUSim vs TPU-v2, batch 8");
    Table ga("Fig 15a: model execution time (ms)");
    ga.setHeader({"model", "TPUSim", "measured", "error"});

    std::vector<sim::RunRecord> records;
    std::vector<double> all_ref, all_got;
    for (const auto &model : models::allModels(batch)) {
        const sim::RunRecord record = runner.runModel(model);
        double meas_s = 0.0;
        for (size_t i = 0; i < model.layers.size(); ++i) {
            const double n =
                static_cast<double>(model.layers[i].count);
            const double meas =
                oracle.convSeconds(model.layers[i].params);
            meas_s += n * meas;
            all_ref.push_back(meas);
            all_got.push_back(record.layers[i].seconds);
        }
        const double sim_s = record.seconds;
        ga.addRow({model.name, cell("%.3f", sim_s * 1e3),
                   cell("%.3f", meas_s * 1e3),
                   cell("%.1f%%", 100.0 * (sim_s - meas_s) / meas_s)});
        records.push_back(record);
    }
    ga.print();

    bench::experimentHeader(
        "Fig 15b", "Layer-wise error distribution across all models");
    Table gb("Fig 15b: layer error histogram");
    gb.setHeader({"|error| bucket", "layers", "share"});
    std::vector<Index> buckets(5, 0); // <2.5, <5, <10, <20, >=20 (%)
    for (size_t i = 0; i < all_ref.size(); ++i) {
        const double err = 100.0 *
                           std::abs(all_got[i] - all_ref[i]) /
                           all_ref[i];
        if (err < 2.5)
            ++buckets[0];
        else if (err < 5.0)
            ++buckets[1];
        else if (err < 10.0)
            ++buckets[2];
        else if (err < 20.0)
            ++buckets[3];
        else
            ++buckets[4];
    }
    const char *labels[5] = {"< 2.5%", "2.5-5%", "5-10%", "10-20%",
                             ">= 20%"};
    for (int b = 0; b < 5; ++b)
        gb.addRow({labels[b], cell("%lld", (long long)buckets[b]),
                   cell("%.0f%%", 100.0 * static_cast<double>(buckets[b]) /
                                      static_cast<double>(all_ref.size()))});
    gb.print();

    bench::summaryLine("Fig-15b", "all-layer MAE %", 5.8,
                       meanAbsPctError(all_ref, all_got));
    if (!args.jsonPath.empty() &&
        sim::writeRunRecords(args.jsonPath, records))
        std::printf("wrote %s (%zu records)\n", args.jsonPath.c_str(),
                    records.size());
    bench::printCacheStats(*accelerator);
    bench::printWallClock("bench_fig15_models", wall);
    return 0;
}
