/**
 * @file
 * Fig 14 reproduction: the multi-tile optimization.
 *  (a) Effect of the multi-tile parameter on performance and on-chip
 *      workspace for N=8, C_I=8, W_I=C_O=128, W_F=3: workspace grows
 *      linearly, performance shows diminishing returns, and the
 *      TPU-matching point is 3 tiles.
 *  (b) Validation of the inferred strategy tiles = MIN(128/C_I, W_F)
 *      across channel/filter sizes (paper: 5.3% average error).
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "im2col/multi_tile.h"
#include "oracle/tpu_oracle.h"
#include "tpusim/tpu_sim.h"

using namespace cfconv;

int
main(int argc, char **argv)
{
    bench::parseBenchArgs(argc, argv, /*supports_json=*/false);
    const bench::WallTimer wall;
    tpusim::TpuSim sim((tpusim::TpuConfig::tpuV2()));
    oracle::TpuOracle oracle;

    // ---- (a) parameter sweep ----
    bench::experimentHeader(
        "Fig 14a",
        "Multi-tile parameter sweep on N=8, C_I=8, W_I=C_O=128, W_F=3");
    const auto layer = tensor::makeConv(8, 8, 128, 128, 3, 1, 1);
    Table ga("Fig 14a: performance and workspace vs multi-tile param");
    ga.setHeader({"tiles", "TFLOPS", "workspace (KB)", "vs 1-tile"});
    double one_tile = 0.0;
    for (Index tiles = 1; tiles <= 8; ++tiles) {
        tpusim::TpuRunOptions o;
        o.multiTileOverride = tiles;
        const auto r = sim.runConv(layer, o);
        if (tiles == 1)
            one_tile = r.tflops;
        ga.addRow({cell("%lld", (long long)r.multiTile),
                   cell("%.2f", r.tflops),
                   cell("%.0f",
                        static_cast<double>(r.peakOnChipBytes) / 1024.0),
                   cell("%.2fx", r.tflops / one_tile)});
    }
    ga.print();
    // The TPU-matching configuration: tiles = MIN(128/8, 3) = 3.
    const Index strategy = im2col::tpuMultiTileParam(128, layer);
    std::printf("TPU strategy for this layer: %lld tiles "
                "(paper: simulation matches TPUv2 at 3)\n",
                (long long)strategy);
    bench::summaryLine("Fig-14a", "strategy tile count", 3.0,
                       static_cast<double>(strategy));

    // ---- (b) strategy validation ----
    bench::experimentHeader(
        "Fig 14b",
        "Validation of tiles = MIN(128/C_I, W_F) across C_I and W_F");
    Table gb("Fig 14b: TFLOPS, TPUSim (strategy) vs measured");
    gb.setHeader({"C_I", "W_F", "tiles", "TPUSim", "measured",
                  "error"});
    std::vector<double> ref, got;
    for (Index wf : {3L, 5L, 7L}) {
        for (Index ci : {4L, 8L, 16L, 32L, 64L, 128L}) {
            const auto p =
                tensor::makeConv(8, ci, 128, 128, wf, 1, wf / 2);
            const auto r = sim.runConv(p);
            const double o = oracle.convTflops(p);
            ref.push_back(o);
            got.push_back(r.tflops);
            gb.addRow({cell("%lld", (long long)ci),
                       cell("%lld", (long long)wf),
                       cell("%lld", (long long)r.multiTile),
                       cell("%.2f", r.tflops), cell("%.2f", o),
                       cell("%.1f%%", 100.0 * (r.tflops - o) / o)});
        }
    }
    gb.print();
    bench::summaryLine("Fig-14b", "strategy avg |error| %", 5.3,
                       meanAbsPctError(ref, got));
    bench::printWallClock("bench_fig14_multitile", wall);
    return 0;
}
