/**
 * @file
 * Fig 17 reproduction: end-to-end model execution time of our
 * block-level channel-first implementation on the V100, normalized to
 * the cuDNN (channel-last implicit, vendor-tuned) baseline at batch 8.
 * Paper headline: ours is ~1% slower on average.
 * The simulation side runs through sim::ModelRunner (parallel layer
 * sweep + the GPU kernel memo cache); `json=FILE` additionally emits
 * the structured RunRecord document for the whole zoo.
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "models/model_zoo.h"
#include "oracle/gpu_oracle.h"
#include "sim/model_runner.h"
#include "sim/report.h"

using namespace cfconv;

int
main(int argc, char **argv)
{
    const bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    const bench::WallTimer wall;
    const Index batch = 8;
    const auto accelerator = sim::makeAccelerator("gpu-v100");
    const sim::ModelRunner runner(*accelerator);
    oracle::GpuOracle cudnn;

    bench::experimentHeader(
        "Fig 17",
        "Ours (implicit channel-first) vs cuDNN on V100, batch 8, "
        "normalized execution time");
    Table t("Fig 17: normalized execution time (cuDNN = 1.0)");
    t.setHeader({"model", "cuDNN (ms)", "ours (ms)", "normalized"});

    std::vector<sim::RunRecord> records;
    std::vector<double> ratios;
    for (const auto &model : models::allModels(batch)) {
        const sim::RunRecord record = runner.runModel(model);
        double cudnn_s = 0.0;
        for (const auto &layer : model.layers) {
            cudnn_s += static_cast<double>(layer.count) *
                       cudnn.convSeconds(layer.params);
        }
        const double ours_s = record.seconds;
        const double ratio = ours_s / cudnn_s;
        ratios.push_back(ratio);
        t.addRow({model.name, cell("%.3f", cudnn_s * 1e3),
                  cell("%.3f", ours_s * 1e3), cell("%.3f", ratio)});
        records.push_back(record);
    }
    t.print();

    double avg = 0.0;
    for (double r : ratios)
        avg += r;
    avg /= static_cast<double>(ratios.size());
    bench::summaryLine("Fig-17", "ours/cuDNN (avg, paper ~1.01)", 1.01,
                       avg);
    if (!args.jsonPath.empty() &&
        sim::writeRunRecords(args.jsonPath, records))
        std::printf("wrote %s (%zu records)\n", args.jsonPath.c_str(),
                    records.size());
    bench::printCacheStats(*accelerator);
    bench::printWallClock("bench_fig17_gpu_models", wall);
    return 0;
}
