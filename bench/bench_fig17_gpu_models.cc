/**
 * @file
 * Fig 17 reproduction: end-to-end model execution time of our
 * block-level channel-first implementation on the V100, normalized to
 * the cuDNN (channel-last implicit, vendor-tuned) baseline at batch 8.
 * Paper headline: ours is ~1% slower on average.
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "gpusim/gpu_sim.h"
#include "models/model_zoo.h"
#include "oracle/gpu_oracle.h"

using namespace cfconv;

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    const bench::WallTimer wall;
    const Index batch = 8;
    gpusim::GpuSim sim((gpusim::GpuConfig::v100()));
    oracle::GpuOracle cudnn;

    bench::experimentHeader(
        "Fig 17",
        "Ours (implicit channel-first) vs cuDNN on V100, batch 8, "
        "normalized execution time");
    Table t("Fig 17: normalized execution time (cuDNN = 1.0)");
    t.setHeader({"model", "cuDNN (ms)", "ours (ms)", "normalized"});

    gpusim::GpuRunOptions ours;
    ours.algorithm = gpusim::GpuAlgorithm::ImplicitChannelFirst;
    ours.interTileReuse = true;

    std::vector<double> ratios;
    for (const auto &model : models::allModels(batch)) {
        double ours_s = 0.0, cudnn_s = 0.0;
        for (const auto &layer : model.layers) {
            const double n = static_cast<double>(layer.count);
            ours_s += n * sim.runConv(layer.params, ours).seconds;
            cudnn_s += n * cudnn.convSeconds(layer.params);
        }
        const double ratio = ours_s / cudnn_s;
        ratios.push_back(ratio);
        t.addRow({model.name, cell("%.3f", cudnn_s * 1e3),
                  cell("%.3f", ours_s * 1e3), cell("%.3f", ratio)});
    }
    t.print();

    double avg = 0.0;
    for (double r : ratios)
        avg += r;
    avg /= static_cast<double>(ratios.size());
    bench::summaryLine("Fig-17", "ours/cuDNN (avg, paper ~1.01)", 1.01,
                       avg);
    bench::printWallClock("bench_fig17_gpu_models", wall);
    return 0;
}
