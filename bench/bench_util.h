/**
 * @file
 * Shared helpers for the paper-reproduction benchmark binaries. Each
 * binary regenerates one table or figure of the paper and prints the
 * series in a uniform tabular format, alongside the paper's headline
 * numbers for comparison (recorded in EXPERIMENTS.md). All binaries
 * accept a `threads=N` argument (equivalent to CFCONV_THREADS=N) and
 * print a machine-parseable `WALL` line with their wall-clock time.
 */

#ifndef CFCONV_BENCH_BENCH_UTIL_H
#define CFCONV_BENCH_BENCH_UTIL_H

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/status.h"
#include "common/table.h"
#include "common/trace.h"
#include "conv/algorithm.h"
#include "sim/accelerator.h"
#include "tensor/microkernel.h"

namespace cfconv::bench {

/** Print the standard header for one reproduced experiment. */
inline void
experimentHeader(const char *experiment_id, const char *description)
{
    std::printf("\n################################################\n");
    std::printf("# %s\n", experiment_id);
    std::printf("# %s\n", description);
    std::printf("################################################\n");
}

/** Print a one-line paper-vs-measured summary for EXPERIMENTS.md. */
inline void
summaryLine(const char *experiment_id, const char *metric, double paper,
            double measured)
{
    std::printf("SUMMARY %s | %s | paper=%.4g | measured=%.4g\n",
                experiment_id, metric, paper, measured);
}

/** Steady-clock wall timer for the bench-wide WALL summary lines. */
class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}

    double
    seconds() const
    {
        const auto now = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(now - start_).count();
    }

    void reset() { start_ = std::chrono::steady_clock::now(); }

  private:
    std::chrono::steady_clock::time_point start_;
};

/** Parsed uniform bench arguments (see parseBenchArgs). */
struct BenchArgs
{
    /** Worker-count override (threads=N); 0 = leave the pool alone. */
    Index threads = 0;
    /** Destination of the structured JSON report (json=FILE), empty
     *  when not requested. Benches that emit a sim::RunRecord
     *  document honor it; report-less benches reject it. */
    std::string jsonPath;
    /** Destination of the Chrome-trace file (trace=FILE), empty when
     *  the run is untraced. The parser arms the recorder itself. */
    std::string tracePath;
    /** Chaos spec (faults=SPEC; see common/fault.h for the grammar),
     *  empty when the run is fault-free. The parser arms the
     *  injector itself. */
    std::string faultsSpec;
    /** Workload seed override (seed=N); 0 = the bench's default.
     *  Consumed by the traffic-driven benches (bench_serving); the
     *  paper-figure benches have no randomness to seed and reject
     *  it via supports_workload. */
    std::uint64_t seed = 0;
    /** Arrival-stream kind override (stream=NAME, e.g. "poisson",
     *  "bursty", "diurnal"); empty = the bench's default. Validated
     *  by the consuming bench, not here. */
    std::string stream;
    /** Algorithm filter (algo=NAME, a canonical conv::Algorithm name
     *  such as "channel-first" or "indirect"); empty = the bench's
     *  default (usually the full algorithm matrix). Validated here
     *  against the conv::Algorithm registry; only the algorithm-aware
     *  benches (bench_fig4_stride) accept it, via supports_algo. */
    std::string algo;
    /** Destination of the process-wide MetricsRegistry snapshot
     *  (metrics=FILE), dumped at exit as a sorted deterministic
     *  "cfconv.metrics" JSON document (the same counters/histograms
     *  shape as the RunRecord metrics block). Empty = no dump.
     *  Accepted by every bench — the registry is process-wide. */
    std::string metricsPath;
    /** Model filter (model=NAME, e.g. "ResNet"); empty = the bench's
     *  default (usually the whole zoo). Only the model-sweep benches
     *  accept it, via supports_selection; matched case-sensitively by
     *  the consuming bench, which exits 2 on an unknown name. */
    std::string model;
    /** Backend filter (backend=NAME, e.g. "tpu-v2", "gpu-v100");
     *  empty = all of the bench's backends. Only the model-sweep
     *  benches accept it, via supports_selection. */
    std::string backend;
    /** Serving model-class spec (classes=SPEC, comma-separated
     *  "name[:weight[:priority[:sloMs]]]" entries; see
     *  serve::parseClassSpecs); empty = the bench's default mix.
     *  Only the serving benches accept it, via supports_workload;
     *  validated by the consuming bench, which exits 2 on a
     *  malformed spec. */
    std::string classes;
};

/**
 * The recoverable core of parseBenchArgs: pure parse into @p args, no
 * side effects, INVALID_ARGUMENT naming the offending argument. Every
 * unknown `key=value` is an error, never silently ignored — a typoed
 * knob must not run the bench with defaults and look green.
 */
inline Status
tryParseBenchArgs(int argc, char **argv, bool supports_json,
                  BenchArgs *args, bool supports_workload = false,
                  bool supports_algo = false,
                  bool supports_selection = false)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "threads=", 8) == 0) {
            const long v = std::strtol(argv[i] + 8, nullptr, 10);
            if (v < 1)
                return invalidArgumentError(
                    "bad threads=%s (want >= 1)", argv[i] + 8);
            args->threads = static_cast<Index>(v);
        } else if (supports_json &&
                   std::strncmp(argv[i], "json=", 5) == 0 &&
                   argv[i][5] != '\0') {
            args->jsonPath = argv[i] + 5;
        } else if (std::strncmp(argv[i], "trace=", 6) == 0 &&
                   argv[i][6] != '\0') {
            args->tracePath = argv[i] + 6;
        } else if (std::strncmp(argv[i], "faults=", 7) == 0 &&
                   argv[i][7] != '\0') {
            args->faultsSpec = argv[i] + 7;
        } else if (supports_workload &&
                   std::strncmp(argv[i], "seed=", 5) == 0) {
            char *end = nullptr;
            const unsigned long long v =
                std::strtoull(argv[i] + 5, &end, 10);
            if (argv[i][5] == '\0' || end == nullptr || *end != '\0' ||
                v == 0)
                return invalidArgumentError(
                    "bad seed=%s (want an integer >= 1)", argv[i] + 5);
            args->seed = v;
        } else if (supports_workload &&
                   std::strncmp(argv[i], "stream=", 7) == 0 &&
                   argv[i][7] != '\0') {
            args->stream = argv[i] + 7;
        } else if (supports_workload &&
                   std::strncmp(argv[i], "classes=", 8) == 0 &&
                   argv[i][8] != '\0') {
            args->classes = argv[i] + 8;
        } else if (supports_algo &&
                   std::strncmp(argv[i], "algo=", 5) == 0) {
            const StatusOr<conv::AlgorithmId> parsed =
                conv::parseAlgorithmName(argv[i] + 5);
            if (!parsed.ok())
                return invalidArgumentError(
                    "bad algo=%s (%s)", argv[i] + 5,
                    parsed.status().message().c_str());
            args->algo = argv[i] + 5;
        } else if (std::strncmp(argv[i], "metrics=", 8) == 0 &&
                   argv[i][8] != '\0') {
            args->metricsPath = argv[i] + 8;
        } else if (supports_selection &&
                   std::strncmp(argv[i], "model=", 6) == 0 &&
                   argv[i][6] != '\0') {
            args->model = argv[i] + 6;
        } else if (supports_selection &&
                   std::strncmp(argv[i], "backend=", 8) == 0 &&
                   argv[i][8] != '\0') {
            args->backend = argv[i] + 8;
        } else {
            return invalidArgumentError(
                "unknown argument \"%s\" (supported: threads=N, "
                "trace=FILE, faults=SPEC, metrics=FILE%s%s%s%s)",
                argv[i], supports_json ? ", json=FILE" : "",
                supports_workload
                    ? ", seed=N, stream=NAME, classes=SPEC"
                    : "",
                supports_algo ? ", algo=NAME" : "",
                supports_selection ? ", model=NAME, backend=NAME" : "");
        }
    }
    return okStatus();
}

/**
 * Parse the uniform bench arguments — the one place bench CLI syntax
 * is defined: `threads=N` overrides the worker count (same effect as
 * CFCONV_THREADS=N), `json=FILE` requests a structured JSON report,
 * `trace=FILE` arms the Chrome-trace recorder (same effect as
 * CFCONV_TRACE=FILE; flushed at exit, loadable in Perfetto), and
 * `faults=SPEC` arms the fault injector (same effect as
 * CFCONV_FAULTS=SPEC). Pass @p supports_json = false from binaries
 * that have no report so a stray json= errors out instead of silently
 * doing nothing; pass @p supports_workload = true from traffic-driven
 * binaries (bench_serving) to additionally accept `seed=N` (workload
 * seed) and `stream=NAME` (arrival-stream kind); pass
 * @p supports_algo = true from algorithm-aware binaries
 * (bench_fig4_stride) to additionally accept `algo=NAME` (a canonical
 * conv::Algorithm name, validated against the registry); pass
 * @p supports_selection = true from model-sweep binaries
 * (bench_models_report) to additionally accept `model=NAME` and
 * `backend=NAME` filters. `metrics=FILE` (dump the process-wide
 * MetricsRegistry snapshot as deterministic JSON at exit) is accepted
 * everywhere. Unknown arguments and malformed values exit 2 with the
 * structured error naming the offender.
 */
inline BenchArgs
parseBenchArgs(int argc, char **argv, bool supports_json = true,
               bool supports_workload = false,
               bool supports_algo = false,
               bool supports_selection = false)
{
    BenchArgs args;
    Status status = tryParseBenchArgs(argc, argv, supports_json, &args,
                                      supports_workload, supports_algo,
                                      supports_selection);
    // configure() errors already carry a "faults:" prefix.
    if (status.ok() && !args.faultsSpec.empty())
        status = fault::FaultInjector::instance()
                     .configure(args.faultsSpec);
    if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.toString().c_str());
        std::exit(2);
    }
    if (args.threads > 0)
        parallel::setThreads(args.threads);
    if (!args.tracePath.empty())
        trace::start(args.tracePath);
    if (!args.metricsPath.empty()) {
        // Flush at exit so the dump sees everything the bench
        // recorded; the path lives in a function-local static because
        // atexit takes a plain function pointer. Touch the registry
        // singleton first: its destructor must be registered before
        // our handler so the handler still sees a live registry.
        MetricsRegistry::instance();
        static std::string path;
        path = args.metricsPath;
        std::atexit([] {
            writeMetricsJson(path,
                             MetricsRegistry::instance().snapshot());
        });
    }
    return args;
}

/** Machine-parseable memo-cache summary for one backend; printed by
 *  the model-driven benches so the trajectory tracks how much of a
 *  sweep the layer/kernel caches absorbed. */
inline void
printCacheStats(const sim::Accelerator &accelerator)
{
    std::string line = "CACHE " + accelerator.name();
    // Materialize the snapshot: counters() returns a reference into
    // the StatGroup, which must outlive the loop.
    const StatGroup stats = accelerator.cacheStats();
    for (const auto &[name, value] : stats.counters()) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), " | %s=%.0f", name.c_str(),
                      value);
        line += buf;
    }
    std::printf("%s\n", line.c_str());
}

/** Machine-parseable latency-percentile lines from the process-wide
 *  MetricsRegistry (one STAT line per sampled distribution): the
 *  p50/p95/p99/p99.9 come from the Scalar log histograms, so the
 *  model benches expose tail behaviour, not just totals. */
inline void
printLatencyStats()
{
    const StatGroup stats = MetricsRegistry::instance().snapshot();
    for (const auto &[name, s] : stats.scalars()) {
        if (s.count() == 0)
            continue;
        std::printf("STAT %s | n=%llu | mean=%.4g | p50=%.4g | "
                    "p95=%.4g | p99=%.4g | p999=%.4g\n",
                    name.c_str(),
                    static_cast<unsigned long long>(s.count()),
                    s.mean(), s.p50(), s.p95(), s.p99(), s.p999());
    }
}

/** Machine-parseable wall-clock summary; run_all.sh greps "^WALL".
 *  Includes the GEMM micro-kernel backend so speedups in the bench
 *  trajectory are attributable to the kernel actually dispatched. */
inline void
printWallClock(const char *bench_name, const WallTimer &timer)
{
    std::printf("WALL %s | %.3f s | threads=%lld | kernel=%s\n",
                bench_name, timer.seconds(),
                static_cast<long long>(parallel::threads()),
                tensor::activeKernelBackendName());
}

} // namespace cfconv::bench

#endif // CFCONV_BENCH_BENCH_UTIL_H
