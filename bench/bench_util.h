/**
 * @file
 * Shared helpers for the paper-reproduction benchmark binaries. Each
 * binary regenerates one table or figure of the paper and prints the
 * series in a uniform tabular format, alongside the paper's headline
 * numbers for comparison (recorded in EXPERIMENTS.md). All binaries
 * accept a `threads=N` argument (equivalent to CFCONV_THREADS=N) and
 * print a machine-parseable `WALL` line with their wall-clock time.
 */

#ifndef CFCONV_BENCH_BENCH_UTIL_H
#define CFCONV_BENCH_BENCH_UTIL_H

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/metrics.h"
#include "common/parallel.h"
#include "common/table.h"
#include "common/trace.h"
#include "sim/accelerator.h"
#include "tensor/microkernel.h"

namespace cfconv::bench {

/** Print the standard header for one reproduced experiment. */
inline void
experimentHeader(const char *experiment_id, const char *description)
{
    std::printf("\n################################################\n");
    std::printf("# %s\n", experiment_id);
    std::printf("# %s\n", description);
    std::printf("################################################\n");
}

/** Print a one-line paper-vs-measured summary for EXPERIMENTS.md. */
inline void
summaryLine(const char *experiment_id, const char *metric, double paper,
            double measured)
{
    std::printf("SUMMARY %s | %s | paper=%.4g | measured=%.4g\n",
                experiment_id, metric, paper, measured);
}

/** Steady-clock wall timer for the bench-wide WALL summary lines. */
class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}

    double
    seconds() const
    {
        const auto now = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(now - start_).count();
    }

    void reset() { start_ = std::chrono::steady_clock::now(); }

  private:
    std::chrono::steady_clock::time_point start_;
};

/** Parsed uniform bench arguments (see parseBenchArgs). */
struct BenchArgs
{
    /** Destination of the structured JSON report (json=FILE), empty
     *  when not requested. Benches that emit a sim::RunRecord
     *  document honor it; report-less benches reject it. */
    std::string jsonPath;
    /** Destination of the Chrome-trace file (trace=FILE), empty when
     *  the run is untraced. The parser arms the recorder itself. */
    std::string tracePath;
};

/**
 * Parse the uniform bench arguments — the one place bench CLI syntax
 * is defined: `threads=N` overrides the worker count (same effect as
 * CFCONV_THREADS=N), `json=FILE` requests a structured JSON report,
 * and `trace=FILE` arms the Chrome-trace recorder (same effect as
 * CFCONV_TRACE=FILE; flushed at exit, loadable in Perfetto).
 * Pass @p supports_json = false from binaries that have no report so
 * a stray json= errors out instead of silently doing nothing. Unknown
 * arguments are rejected so typos surface.
 */
inline BenchArgs
parseBenchArgs(int argc, char **argv, bool supports_json = true)
{
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "threads=", 8) == 0) {
            const long v = std::strtol(argv[i] + 8, nullptr, 10);
            if (v < 1) {
                std::fprintf(stderr, "bad threads=%s (want >= 1)\n",
                             argv[i] + 8);
                std::exit(2);
            }
            parallel::setThreads(static_cast<Index>(v));
        } else if (supports_json &&
                   std::strncmp(argv[i], "json=", 5) == 0 &&
                   argv[i][5] != '\0') {
            args.jsonPath = argv[i] + 5;
        } else if (std::strncmp(argv[i], "trace=", 6) == 0 &&
                   argv[i][6] != '\0') {
            args.tracePath = argv[i] + 6;
            trace::start(args.tracePath);
        } else {
            std::fprintf(stderr,
                         "unknown argument \"%s\" (supported: "
                         "threads=N, trace=FILE%s)\n",
                         argv[i],
                         supports_json ? ", json=FILE" : "");
            std::exit(2);
        }
    }
    return args;
}

/** Machine-parseable memo-cache summary for one backend; printed by
 *  the model-driven benches so the trajectory tracks how much of a
 *  sweep the layer/kernel caches absorbed. */
inline void
printCacheStats(const sim::Accelerator &accelerator)
{
    std::string line = "CACHE " + accelerator.name();
    // Materialize the snapshot: counters() returns a reference into
    // the StatGroup, which must outlive the loop.
    const StatGroup stats = accelerator.cacheStats();
    for (const auto &[name, value] : stats.counters()) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), " | %s=%.0f", name.c_str(),
                      value);
        line += buf;
    }
    std::printf("%s\n", line.c_str());
}

/** Machine-parseable latency-percentile lines from the process-wide
 *  MetricsRegistry (one STAT line per sampled distribution): the
 *  p50/p95/p99 come from the Scalar log histograms, so the model
 *  benches expose tail behaviour, not just totals. */
inline void
printLatencyStats()
{
    const StatGroup stats = MetricsRegistry::instance().snapshot();
    for (const auto &[name, s] : stats.scalars()) {
        if (s.count() == 0)
            continue;
        std::printf("STAT %s | n=%llu | mean=%.4g | p50=%.4g | "
                    "p95=%.4g | p99=%.4g\n",
                    name.c_str(),
                    static_cast<unsigned long long>(s.count()),
                    s.mean(), s.p50(), s.p95(), s.p99());
    }
}

/** Machine-parseable wall-clock summary; run_all.sh greps "^WALL".
 *  Includes the GEMM micro-kernel backend so speedups in the bench
 *  trajectory are attributable to the kernel actually dispatched. */
inline void
printWallClock(const char *bench_name, const WallTimer &timer)
{
    std::printf("WALL %s | %.3f s | threads=%lld | kernel=%s\n",
                bench_name, timer.seconds(),
                static_cast<long long>(parallel::threads()),
                tensor::activeKernelBackendName());
}

} // namespace cfconv::bench

#endif // CFCONV_BENCH_BENCH_UTIL_H
