/**
 * @file
 * Shared helpers for the paper-reproduction benchmark binaries. Each
 * binary regenerates one table or figure of the paper and prints the
 * series in a uniform tabular format, alongside the paper's headline
 * numbers for comparison (recorded in EXPERIMENTS.md).
 */

#ifndef CFCONV_BENCH_BENCH_UTIL_H
#define CFCONV_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>

#include "common/table.h"

namespace cfconv::bench {

/** Print the standard header for one reproduced experiment. */
inline void
experimentHeader(const char *experiment_id, const char *description)
{
    std::printf("\n################################################\n");
    std::printf("# %s\n", experiment_id);
    std::printf("# %s\n", description);
    std::printf("################################################\n");
}

/** Print a one-line paper-vs-measured summary for EXPERIMENTS.md. */
inline void
summaryLine(const char *experiment_id, const char *metric, double paper,
            double measured)
{
    std::printf("SUMMARY %s | %s | paper=%.4g | measured=%.4g\n",
                experiment_id, metric, paper, measured);
}

} // namespace cfconv::bench

#endif // CFCONV_BENCH_BENCH_UTIL_H
