/**
 * @file
 * Design-space autotuning demonstrator: tune ResNet-50 (batch 8)
 * per layer over the built-in TPU and GPU knob spaces
 * (tune/autotuner) and report the tuner's win over the stock named
 * baselines as a RunRecord document (BENCH_autotune.json): for each
 * backend family one baseline record and one "autotuned(<baseline>)"
 * record whose layers ran on the per-layer winning variants. The
 * tuned choices persist in a TunedConfigDb (TUNED_configs.json), so a
 * repeat run answers every layer from the database — zero search
 * evaluations, byte-identical report (the document is written with an
 * empty ReportMeta; wall-clock histograms never enter it).
 *
 * Arguments beyond the uniform bench set: `db=FILE` overrides the
 * database path, `mode=exhaustive|greedy` picks the search mode.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "models/model_zoo.h"
#include "sim/model_runner.h"
#include "sim/report.h"
#include "tune/autotuner.h"
#include "tune/tuned_db.h"
#include "tune/variant_registry.h"

using namespace cfconv;

namespace {

/** One backend family's tuning campaign. */
struct Campaign
{
    const char *id;       ///< summary-line tag, e.g. "autotune-tpu"
    std::string baseline; ///< stock named baseline to beat
    tune::KnobSpace space;
};

/** Re-run every layer on its chosen variant and assemble the tuned
 *  RunRecord. The accelerator name records the provenance; peak is the
 *  largest among the chosen variants (the machine the tuner asks
 *  for). Layer sims are memoized, so this costs nothing new. */
sim::RunRecord
tunedRecord(const models::ModelSpec &model,
            const tune::ModelTuneResult &result)
{
    sim::RunRecord record;
    record.accelerator = "autotuned(" + result.baseline + ")";
    record.model = model.name;
    record.batch = model.layers.empty() ? 0 : model.layers[0].params.batch;
    record.seconds = 0.0;
    record.dramBytes = 0;

    std::map<std::string, std::unique_ptr<sim::Accelerator>> cache;
    double totalFlops = 0.0;
    for (size_t i = 0; i < model.layers.size(); ++i) {
        const models::ConvLayerSpec &layer = model.layers[i];
        const tune::LayerTuneChoice &choice = result.layers[i];
        auto &accelerator = cache[choice.variant];
        if (!accelerator)
            accelerator = sim::makeAccelerator(choice.variant);
        record.peakTflops =
            std::max(record.peakTflops, accelerator->peakTflops());
        sim::RunOptions options;
        options.groups = layer.groups;
        sim::LayerRecord rec =
            accelerator->runLayer(layer.params, options);
        rec.name = layer.name;
        rec.count = layer.count;
        // The tuner's per-layer win rides along in the report.
        rec.extras["tunedSpeedup"] = choice.speedup();
        const double reps = static_cast<double>(layer.count);
        record.seconds += rec.seconds * reps;
        record.dramBytes +=
            rec.dramBytes * static_cast<Bytes>(layer.count);
        totalFlops += static_cast<double>(rec.flops) * reps;
        record.layers.push_back(std::move(rec));
    }
    record.tflops =
        record.seconds > 0.0 ? totalFlops / record.seconds / 1e12 : 0.0;
    return record;
}

} // namespace

int
main(int argc, char **argv)
{
    // Peel the bench-specific arguments, forward the uniform rest.
    std::string dbPath = "TUNED_configs.json";
    tune::SearchMode mode = tune::SearchMode::Exhaustive;
    std::vector<char *> rest = {argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "db=", 3) == 0 && argv[i][3] != '\0') {
            dbPath = argv[i] + 3;
        } else if (std::strncmp(argv[i], "mode=", 5) == 0) {
            auto parsed = tune::parseSearchMode(argv[i] + 5);
            if (!parsed.ok()) {
                std::fprintf(stderr, "%s\n",
                             parsed.status().toString().c_str());
                return 2;
            }
            mode = parsed.value();
        } else {
            rest.push_back(argv[i]);
        }
    }
    bench::BenchArgs args = bench::parseBenchArgs(
        static_cast<int>(rest.size()), rest.data());
    if (args.jsonPath.empty())
        args.jsonPath = "BENCH_autotune.json";
    const bench::WallTimer wall;

    bench::experimentHeader(
        "autotune",
        "Per-layer design-space autotuning of ResNet-50 (batch 8) "
        "over the named variant zoo, vs the stock baselines");

    const auto &registry = tune::VariantRegistry::instance();
    tune::TunedConfigDb db;
    {
        const tune::DbLoadStats loaded = db.loadOrRecover(dbPath, registry);
        const char *note = loaded.fresh ? " (fresh)"
                           : loaded.recovered ? " (recovered)"
                                              : "";
        std::printf("TUNEDB %s | loaded=%lld | rejected=%lld%s\n",
                    dbPath.c_str(),
                    static_cast<long long>(loaded.loaded),
                    static_cast<long long>(loaded.rejected), note);
    }

    const models::ModelSpec model = models::resnet50(8);
    const std::vector<Campaign> campaigns = {
        {"autotune-tpu", "tpu-v2", tune::tpuKnobSpace()},
        {"autotune-gpu", "gpu-v100", tune::gpuKnobSpace()},
    };

    std::vector<sim::RunRecord> records;
    for (const Campaign &campaign : campaigns) {
        auto tuner = tune::Autotuner::create(campaign.space, registry);
        if (!tuner.ok()) {
            std::fprintf(stderr, "%s\n",
                         tuner.status().toString().c_str());
            return 1;
        }
        tune::TuneOptions options;
        options.mode = mode;
        options.baseline = campaign.baseline;
        options.db = &db;
        auto tuned = tuner.value()->tuneModel(model, options);
        if (!tuned.ok()) {
            std::fprintf(stderr, "%s\n",
                         tuned.status().toString().c_str());
            return 1;
        }
        const tune::ModelTuneResult &result = tuned.value();

        Table t("ResNet-50 per-layer tuning, " + campaign.baseline
                + " baseline (" + std::string(tune::searchModeName(mode))
                + ")");
        t.setHeader({"layer", "variant", "base ms", "tuned ms",
                     "speedup", "evals", "src"});
        for (const auto &layer : result.layers) {
            t.addRow({layer.layerName, layer.variant,
                      cell("%.3f", layer.baselineSeconds * 1e3),
                      cell("%.3f", layer.tunedSeconds * 1e3),
                      cell("%.2fx", layer.speedup()),
                      cell("%lld",
                           static_cast<long long>(layer.evaluations)),
                      layer.fromDb ? "db" : "search"});
        }
        t.print();

        std::printf(
            "TUNE family=%s model=%s mode=%s baseline=%s "
            "evaluations=%lld db_hits=%lld speedup=%.4f\n",
            tune::backendFamilyName(campaign.space.family),
            result.model.c_str(), tune::searchModeName(mode),
            result.baseline.c_str(),
            static_cast<long long>(result.evaluations),
            static_cast<long long>(result.dbHits), result.speedup());
        bench::summaryLine(campaign.id, "tuned speedup vs baseline",
                           1.0, result.speedup());

        const auto baseline = sim::makeAccelerator(campaign.baseline);
        records.push_back(
            sim::ModelRunner(*baseline).runModel(model));
        records.push_back(tunedRecord(model, result));
    }

    // An empty meta keeps the document a pure function of the sim:
    // the second (database-answered) run must be byte-identical.
    if (sim::writeRunRecords(args.jsonPath, records, sim::ReportMeta{}))
        std::printf("wrote %s (%zu records)\n", args.jsonPath.c_str(),
                    records.size());
    if (db.saveFile(dbPath))
        std::printf("wrote %s (%zu entries)\n", dbPath.c_str(),
                    db.size());

    const StatGroup tuneStats = tune::Autotuner::cacheStats();
    std::string line = "CACHE autotuner";
    for (const auto &[name, value] : tuneStats.counters()) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), " | %s=%.0f", name.c_str(),
                      value);
        line += buf;
    }
    std::printf("%s\n", line.c_str());
    bench::printWallClock("bench_autotune", wall);
    return 0;
}
