/**
 * @file
 * Table I reproduction: memory usage (MB) of the IFMaps vs. the
 * explicit-im2col lowered feature matrices for AlexNet, ResNet, VGG16,
 * YOLO, and DenseNet. The paper's absolute values correspond to
 * batch 1 at 4-byte elements; the shape that must hold is the
 * 1.5x-10x blow-up of the lowered matrix.
 */

#include <cstdio>
#include <map>
#include <string>

#include "bench_util.h"
#include "common/table.h"
#include "models/model_zoo.h"

using namespace cfconv;

int
main(int argc, char **argv)
{
    bench::parseBenchArgs(argc, argv, /*supports_json=*/false);
    const bench::WallTimer wall;
    bench::experimentHeader(
        "Table I",
        "Memory usage (MB) of explicit im2col lowered matrices");

    const Index batch = 1;
    // Paper reference (MB): IFMaps / lowered IFMaps.
    const std::map<std::string, std::pair<double, double>> paper = {
        {"AlexNet", {1.39, 14.57}},  {"ResNet", {34.55, 81.11}},
        {"VGG16", {34.65, 311.80}},  {"YOLO", {530.56, 869.50}},
        {"DenseNet", {1196.48, 5641.70}},
    };

    Table table("Table I: explicit-im2col memory usage, batch 1, fp32");
    table.setHeader({"model", "IFMaps (MB)", "lowered (MB)", "ratio",
                     "paper ratio"});

    for (auto model : models::allModels(batch)) {
        bool reported = paper.count(model.name) > 0;
        // Match the paper's 4-byte elements.
        for (auto &layer : model.layers)
            layer.params.dataType = DataType::Fp32;
        const double in_mb =
            static_cast<double>(model.totalInputBytes()) / 1e6;
        const double low_mb =
            static_cast<double>(model.totalLoweredBytes()) / 1e6;
        const double ratio = low_mb / in_mb;
        double paper_ratio = 0.0;
        if (reported) {
            const auto &p = paper.at(model.name);
            paper_ratio = p.second / p.first;
        }
        table.addRow({model.name, cell("%.2f", in_mb),
                      cell("%.2f", low_mb), cell("%.2fx", ratio),
                      reported ? cell("%.2fx", paper_ratio) : "-"});
        if (reported)
            bench::summaryLine("Table-I", (model.name + " blow-up").c_str(),
                               paper_ratio, ratio);
    }
    table.print();
    bench::printWallClock("bench_table1_memory", wall);
    return 0;
}
