/**
 * @file
 * CONV-variant ablations under the channel-first algorithm — the
 * variants Sec. II-C says existing implicit designs handle poorly:
 *  1. Dilated convolution: TPU throughput vs dilation (the dilation
 *     analog of Fig 4b's stride insensitivity).
 *  2. Training passes: decomposed backward-data / backward-filter
 *     GEMM cost relative to the forward pass.
 *  3. Deformable convolution: functional equivalence + the gather
 *     footprint bound of the offset-sampled operand.
 */

#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "im2col/conv_backward.h"
#include "im2col/deformable.h"
#include "tensor/conv_ref.h"
#include "tensor/winograd.h"
#include "tpusim/tpu_sim.h"

using namespace cfconv;

int
main(int argc, char **argv)
{
    bench::parseBenchArgs(argc, argv, /*supports_json=*/false);
    const bench::WallTimer wall;
    tpusim::TpuSim sim((tpusim::TpuConfig::tpuV2()));

    // ---- 1. dilation ----
    bench::experimentHeader(
        "Variant 1",
        "Dilated convolution on the TPU: channel-first handles "
        "dilation exactly like stride (address generation only)");
    Table t1("TPU TFLOPS vs dilation (64ch 56x56 -> 128, k3, batch 8)");
    t1.setHeader({"dilation", "TFLOPS", "vs d=1"});
    double base = 0.0;
    for (Index d : {1L, 2L, 4L}) {
        const auto p = tensor::makeConv(8, 64, 56, 128, 3, 1, d, d);
        const auto r = sim.runConv(p);
        if (d == 1)
            base = r.tflops;
        t1.addRow({cell("%lld", (long long)d), cell("%.2f", r.tflops),
                   cell("%.2f", r.tflops / base)});
        if (d == 4)
            bench::summaryLine("Variant-1", "TFLOPS ratio d4/d1", 1.0,
                               r.tflops / base);
    }
    t1.print();

    // ---- 2. training passes ----
    bench::experimentHeader(
        "Variant 2",
        "Training: decomposed backward passes vs forward on the TPU");
    Table t2("TPU time per pass (us), batch 8");
    t2.setHeader({"layer", "forward", "bwd-data", "bwd-filter",
                  "step/fwd"});
    for (const auto &geom :
         {tensor::makeConv(8, 64, 56, 64, 3, 1, 1),
          tensor::makeConv(8, 128, 28, 128, 3, 1, 1),
          tensor::makeConv(8, 256, 14, 256, 3, 1, 1)}) {
        const double fwd = sim.runConv(geom).seconds;
        const double dgrad =
            sim.runGemm(geom.gemmM(), geom.gemmN(), geom.gemmK())
                .seconds;
        const double wgrad =
            sim.runGemm(geom.gemmK(), geom.gemmM(), geom.gemmN())
                .seconds;
        t2.addRow({geom.toString(), cell("%.1f", fwd * 1e6),
                   cell("%.1f", dgrad * 1e6), cell("%.1f", wgrad * 1e6),
                   cell("%.2fx", (fwd + dgrad + wgrad) / fwd)});
    }
    t2.print();

    // ---- 3. deformable ----
    bench::experimentHeader(
        "Variant 3",
        "Deformable convolution: functional equivalence + footprint");
    const auto p = tensor::makeConv(2, 8, 14, 8, 3, 1, 1);
    tensor::Tensor input = tensor::makeInput(p);
    tensor::Tensor filter = tensor::makeFilter(p);
    input.fillRandom(1);
    filter.fillRandom(2);
    const auto offsets = im2col::DeformableOffsets::random(p, 3, 2.0);
    const auto direct =
        im2col::convDeformableDirect(p, input, offsets, filter);
    const auto implicit =
        im2col::convDeformableImplicit(p, input, offsets, filter);
    const double diff =
        static_cast<double>(implicit.maxAbsDiff(direct));
    std::printf("implicit vs direct deformable conv: max |diff| = "
                "%.2e\n", diff);

    Table t3("Per-tile gather footprint (elements)");
    t3.setHeader({"tile", "rigid", "deformable bound"});
    for (const auto &tile : im2col::decomposeFilter(p)) {
        t3.addRow({cell("<%lld,%lld>", (long long)tile.r,
                        (long long)tile.s),
                   cell("%lld",
                        (long long)im2col::tileFillElems(p, tile)),
                   cell("%lld", (long long)im2col::deformableTileFillBound(
                                    p, tile))});
    }
    t3.print();
    bench::summaryLine("Variant-3", "deformable max |diff|", 0.0, diff);

    // ---- 4. Winograd contrast ----
    bench::experimentHeader(
        "Variant 4",
        "Winograd F(2x2,3x3) vs im2col: fewer multiplies, but the "
        "per-tile transform dataflow is why GEMM engines lower through "
        "im2col instead");
    Table t4("Winograd multiplication reduction (stride-1 3x3 layers)");
    t4.setHeader({"layer", "direct muls", "winograd muls",
                  "reduction", "exact?"});
    for (const auto &geom : {tensor::makeConv(1, 16, 34, 16, 3, 1, 1),
                             tensor::makeConv(1, 8, 15, 8, 3, 1, 1)}) {
        tensor::Tensor in2 = tensor::makeInput(geom);
        tensor::Tensor f2 = tensor::makeFilter(geom);
        in2.fillRandom(5);
        f2.fillRandom(6);
        const auto cost = tensor::winogradCost(geom);
        const double d =
            static_cast<double>(tensor::convWinograd(geom, in2, f2)
                                    .maxAbsDiff(tensor::convDirect(
                                        geom, in2, f2)));
        t4.addRow({geom.toString(),
                   cell("%.2fM", static_cast<double>(cost.directMuls) /
                                     1e6),
                   cell("%.2fM",
                        static_cast<double>(cost.winogradMuls) / 1e6),
                   cell("%.2fx", cost.reduction()),
                   d < 1e-3 ? "yes" : "NO"});
    }
    t4.print();
    bench::summaryLine("Variant-4", "Winograd mul reduction", 2.25,
                       tensor::winogradCost(
                           tensor::makeConv(1, 16, 34, 16, 3, 1, 1))
                           .reduction());
    bench::printWallClock("bench_ablation_variants", wall);
    return 0;
}
