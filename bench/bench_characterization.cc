/**
 * @file
 * Characterization sweep — the workload-space table an IISWC-style
 * artifact ships: effective TFLOPS of the channel-first algorithm on
 * TPU-v2 and V100 across input channels, kernel sizes, and strides,
 * plus the depthwise/grouped occupancy cliff. No direct paper figure;
 * this extends the evaluation to the full design space the paper's
 * text discusses.
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/table.h"
#include "gpusim/gpu_sim.h"
#include "im2col/grouped.h"
#include "tpusim/energy.h"
#include "tpusim/tpu_sim.h"

using namespace cfconv;

int
main(int argc, char **argv)
{
    bench::parseBenchArgs(argc, argv, /*supports_json=*/false);
    const bench::WallTimer wall;
    tpusim::TpuSim tpu((tpusim::TpuConfig::tpuV2()));
    gpusim::GpuSim gpu((gpusim::GpuConfig::v100()));
    const Index batch = 8, hw = 56, co = 128;

    bench::experimentHeader(
        "Characterization 1",
        "Channel-first TFLOPS across (C_I, kernel, stride), batch 8, "
        "56x56 -> 128 channels");
    Table t1("TPU-v2 / V100 TFLOPS sweep");
    t1.setHeader({"C_I", "k", "s", "TPU TFLOPS", "TPU util",
                  "TPU pJ/MAC", "GPU TFLOPS"});
    // Flatten the (C_I, kernel, stride) grid so the combos can be
    // simulated in parallel; the table rows print serially afterwards
    // in the original sweep order.
    struct Combo
    {
        Index ci, k, s;
        tpusim::TpuLayerResult tpu;
        tpusim::TpuEnergyReport energy;
        gpusim::GpuKernelResult gpu;
    };
    std::vector<Combo> combos;
    for (Index ci : {3L, 16L, 64L, 128L, 256L})
        for (Index k : {1L, 3L, 5L})
            for (Index s : {1L, 2L}) {
                if (k == 1 && s == 2)
                    continue; // rarely used; keep the table tight
                combos.push_back({ci, k, s, {}, {}, {}});
            }
    parallel::parallelFor(
        0, static_cast<Index>(combos.size()), 1,
        [&](Index lo, Index hi) {
            for (Index i = lo; i < hi; ++i) {
                Combo &c = combos[i];
                const auto p = tensor::makeConv(batch, c.ci, hw, co,
                                                c.k, c.s, c.k / 2);
                c.tpu = tpu.runConv(p);
                c.energy = tpusim::layerEnergy(tpu.config(), c.tpu);
                c.gpu = gpu.runConv(p, gpusim::GpuRunOptions{});
            }
        });
    for (const Combo &c : combos)
        t1.addRow({cell("%lld", (long long)c.ci),
                   cell("%lld", (long long)c.k),
                   cell("%lld", (long long)c.s),
                   cell("%.1f", c.tpu.tflops),
                   cell("%.0f%%", 100.0 * c.tpu.arrayUtilization),
                   cell("%.2f", c.energy.pjPerMac),
                   cell("%.1f", c.gpu.tflops)});
    t1.print();

    bench::experimentHeader(
        "Characterization 2",
        "Grouped convolution occupancy cliff on the 128x128 array "
        "(C_I = 128, k3): the channel-first schedule's depthwise "
        "weakness");
    Table t2("Row occupancy and functional-FLOP efficiency vs groups");
    t2.setHeader({"groups", "C_I/G", "row occupancy", "TPU TFLOPS"});
    for (Index groups : {1L, 2L, 4L, 16L, 64L, 128L}) {
        im2col::GroupedConvParams gp;
        gp.base = tensor::makeConv(batch, 128, hw, 128, 3, 1, 1);
        gp.groups = groups;
        gp.validate();
        const double occ = im2col::groupedRowOccupancy(gp, 128);
        // TPU cost: block-diagonal packed passes.
        const auto r = tpu.runGroupedConv(gp.base, groups);
        const double tflops = r.tflops;
        t2.addRow({cell("%lld", (long long)groups),
                   cell("%lld", (long long)(128 / groups)),
                   cell("%.1f%%", 100.0 * occ),
                   cell("%.2f", tflops)});
        if (groups == 128)
            bench::summaryLine("Characterization-2",
                               "depthwise row occupancy", 3.0 / 128.0,
                               occ);
    }
    t2.print();

    bench::experimentHeader(
        "Characterization 3",
        "Space-to-depth stem rewrite (production TPU first-layer "
        "treatment)");
    Table t3("Shallow stems with and without space-to-depth");
    t3.setHeader({"layer", "plain (us)", "s2d (us)", "speedup"});
    for (const auto &stem :
         {tensor::makeConv(batch, 3, 224, 64, 7, 2, 3),
          tensor::makeConv(batch, 3, 224, 96, 7, 2, 1),
          tensor::makeConv(batch, 4, 112, 32, 3, 2, 1)}) {
        tpusim::TpuRunOptions s2d;
        s2d.spaceToDepthFirstLayer = true;
        const double plain = tpu.runConv(stem).seconds;
        const double fast = tpu.runConv(stem, s2d).seconds;
        t3.addRow({stem.toString(), cell("%.1f", plain * 1e6),
                   cell("%.1f", fast * 1e6),
                   cell("%.2fx", plain / fast)});
    }
    t3.print();

    bench::experimentHeader(
        "Characterization 4",
        "MobileNetV1 on the TPU: depthwise layers are ~3% of the "
        "FLOPs but dominate the runtime (the occupancy cliff at model "
        "scale)");
    const auto mobilenet = models::mobilenetv1(batch);
    const Index n_mob =
        static_cast<Index>(mobilenet.layers.size());
    std::vector<double> mob_secs(n_mob);
    parallel::parallelFor(0, n_mob, 1, [&](Index lo, Index hi) {
        for (Index i = lo; i < hi; ++i) {
            const auto &l = mobilenet.layers[i];
            mob_secs[i] =
                tpu.runGroupedConv(l.params, l.groups).seconds *
                static_cast<double>(l.count);
        }
    });
    double dw_s = 0.0, other_s = 0.0;
    for (Index i = 0; i < n_mob; ++i)
        (mobilenet.layers[i].groups > 1 ? dw_s : other_s) +=
            mob_secs[i];
    const auto mob = tpu.runModel(mobilenet);
    std::printf("MobileNetV1 batch 8: %.3f ms total, %.1f%% spent in "
                "depthwise layers, effective %.2f TFLOPS (peak %.1f)\n",
                mob.seconds * 1e3, 100.0 * dw_s / (dw_s + other_s),
                mob.tflops, tpu.config().peakTflops());
    bench::summaryLine("Characterization-4",
                       "depthwise share of MobileNet TPU time", 0.5,
                       dw_s / (dw_s + other_s));
    bench::printWallClock("bench_characterization", wall);
    return 0;
}
