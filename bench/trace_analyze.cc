/**
 * @file
 * Offline trace analytics CLI: load a recorded Chrome-trace file
 * (trace=FILE from any bench, or CFCONV_TRACE) and report what the
 * simulated-cycle timelines say — per-layer fill/compute overlap and
 * critical-path breakdown, serving-chip occupancy, resilience events,
 * and (wall=on, the default) thread-pool and memo-cache activity.
 *
 *   trace_analyze IN.trace [json=FILE] [diff=OTHER.trace] [wall=on|off]
 *
 * With diff=OTHER.trace the two analyses align by normalized timeline
 * signature and the deltas are reported instead; json=FILE then
 * receives the "cfconv.trace_analysis_diff" document rather than the
 * single-trace "cfconv.trace_analysis" one. Output is a pure function
 * of the input trace bytes: same trace, same bytes out, regardless of
 * thread count or repetition (scripts/check_analyze.sh enforces it).
 * Bench-style argument handling: unknown or malformed arguments exit
 * 2 naming the offender.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "analyze/analysis.h"
#include "analyze/analysis_report.h"
#include "analyze/diff.h"
#include "analyze/trace_model.h"
#include "common/report.h"

using namespace cfconv;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s IN.trace [json=FILE] [diff=OTHER.trace] "
                 "[wall=on|off]\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string inPath;
    std::string jsonPath;
    std::string diffPath;
    analyze::AnalyzeOptions options;

    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "json=", 5) == 0 &&
            argv[i][5] != '\0') {
            jsonPath = argv[i] + 5;
        } else if (std::strncmp(argv[i], "diff=", 5) == 0 &&
                   argv[i][5] != '\0') {
            diffPath = argv[i] + 5;
        } else if (std::strncmp(argv[i], "wall=", 5) == 0) {
            const std::string v = argv[i] + 5;
            if (v == "on")
                options.includeWall = true;
            else if (v == "off")
                options.includeWall = false;
            else {
                std::fprintf(stderr,
                             "INVALID_ARGUMENT: bad wall=%s (want "
                             "on|off)\n",
                             v.c_str());
                return 2;
            }
        } else if (std::strchr(argv[i], '=') != nullptr) {
            std::fprintf(stderr,
                         "INVALID_ARGUMENT: unknown argument \"%s\" "
                         "(supported: json=FILE, diff=OTHER.trace, "
                         "wall=on|off)\n",
                         argv[i]);
            return 2;
        } else if (inPath.empty()) {
            inPath = argv[i];
        } else {
            std::fprintf(stderr,
                         "INVALID_ARGUMENT: more than one input trace "
                         "(\"%s\" and \"%s\")\n",
                         inPath.c_str(), argv[i]);
            return 2;
        }
    }
    if (inPath.empty())
        return usage(argv[0]);

    auto doc = analyze::parseTraceFile(inPath);
    if (!doc.ok()) {
        std::fprintf(stderr, "%s\n", doc.status().toString().c_str());
        return 1;
    }
    const analyze::TraceAnalysis left =
        analyze::analyzeTrace(doc.value(), options);
    std::printf("%s\n",
                analyze::analysisHeadline(inPath, left).c_str());
    analyze::printAnalysis(left);

    if (diffPath.empty()) {
        if (!jsonPath.empty() &&
            writeFile(jsonPath, analyze::analysisJson(left)))
            std::printf("wrote %s\n", jsonPath.c_str());
        return 0;
    }

    auto other = analyze::parseTraceFile(diffPath);
    if (!other.ok()) {
        std::fprintf(stderr, "%s\n",
                     other.status().toString().c_str());
        return 1;
    }
    const analyze::TraceAnalysis right =
        analyze::analyzeTrace(other.value(), options);
    std::printf("%s\n",
                analyze::analysisHeadline(diffPath, right).c_str());

    const analyze::AnalysisDiff diff =
        analyze::diffAnalyses(left, right);
    std::printf("%s\n", analyze::diffHeadline(diff).c_str());
    analyze::printDiff(diff);
    if (!jsonPath.empty() &&
        writeFile(jsonPath, analyze::diffJson(diff)))
        std::printf("wrote %s\n", jsonPath.c_str());
    return 0;
}
