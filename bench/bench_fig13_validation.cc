/**
 * @file
 * Fig 13 reproduction: TPUSim validation against the TPU-v2
 * measurement stand-in (oracle).
 *  (a) GEMM microbenchmarks with M, N, K swept 256..8192
 *      (paper: 4.42% average error).
 *  (b) CONV layers that do not trigger the multi-tile optimization
 *      (paper: 4.87% average error).
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "oracle/tpu_oracle.h"
#include "tpusim/tpu_sim.h"

using namespace cfconv;

int
main(int argc, char **argv)
{
    bench::parseBenchArgs(argc, argv, /*supports_json=*/false);
    const bench::WallTimer wall;
    tpusim::TpuSim sim((tpusim::TpuConfig::tpuV2()));
    oracle::TpuOracle oracle;

    // ---- (a) GEMM ----
    bench::experimentHeader(
        "Fig 13a", "TPUSim vs TPU-v2 on GEMM microbenchmarks");
    Table ga("Fig 13a: GEMM cycles, TPUSim vs measured");
    ga.setHeader({"M", "K", "N", "TPUSim (us)", "measured (us)",
                  "error"});
    std::vector<double> ref, got;
    const std::vector<Index> dims{256, 512, 1024, 2048, 4096, 8192};
    for (Index m : dims) {
        for (Index k : {512L, 2048L}) {
            for (Index n : {512L, 2048L}) {
                const double s = sim.runGemm(m, k, n).seconds;
                const double o = oracle.gemmSeconds(m, k, n);
                ref.push_back(o);
                got.push_back(s);
                ga.addRow({cell("%lld", (long long)m),
                           cell("%lld", (long long)k),
                           cell("%lld", (long long)n),
                           cell("%.2f", s * 1e6), cell("%.2f", o * 1e6),
                           cell("%.1f%%", 100.0 * (s - o) / o)});
            }
        }
    }
    ga.print();
    bench::summaryLine("Fig-13a", "GEMM avg |error| %", 4.42,
                       meanAbsPctError(ref, got));

    // ---- (b) CONV ----
    bench::experimentHeader(
        "Fig 13b",
        "TPUSim vs TPU-v2 on CONV layers without multi-tile "
        "(C_I >= 128)");
    Table gb("Fig 13b: CONV seconds, TPUSim vs measured");
    gb.setHeader({"layer", "TPUSim (us)", "measured (us)", "error"});
    ref.clear();
    got.clear();
    for (Index ci : {128L, 256L, 512L}) {
        for (Index hw : {14L, 28L, 56L}) {
            for (Index co : {128L, 256L}) {
                const auto p = tensor::makeConv(8, ci, hw, co, 3, 1, 1);
                const double s = sim.runConv(p).seconds;
                const double o = oracle.convSeconds(p);
                ref.push_back(o);
                got.push_back(s);
                gb.addRow({p.toString(), cell("%.2f", s * 1e6),
                           cell("%.2f", o * 1e6),
                           cell("%.1f%%", 100.0 * (s - o) / o)});
            }
        }
    }
    gb.print();
    bench::summaryLine("Fig-13b", "CONV avg |error| %", 4.87,
                       meanAbsPctError(ref, got));
    bench::printWallClock("bench_fig13_validation", wall);
    return 0;
}
