/**
 * @file
 * Fig 18 reproduction: GPU optimizations.
 *  (a) Strided convolutions: our channel-first kernel vs cuDNN on
 *      every stride>1 layer in the benchmark CNNs (paper: +20% on
 *      average, up to +40%).
 *  (b) Inter-tile reuse: reordered vs naive decomposed-filter order on
 *      layers whose global memory accesses are not fully overlapped
 *      (paper: +16.7% on average).
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "gpusim/gpu_sim.h"
#include "models/model_zoo.h"
#include "oracle/gpu_oracle.h"

using namespace cfconv;

int
main(int argc, char **argv)
{
    bench::parseBenchArgs(argc, argv, /*supports_json=*/false);
    const bench::WallTimer wall;
    const Index batch = 8;
    gpusim::GpuSim sim((gpusim::GpuConfig::v100()));
    oracle::GpuOracle cudnn;

    // ---- (a) strided convolution ----
    bench::experimentHeader(
        "Fig 18a",
        "Strided convolutions: ours vs cuDNN (normalized FLOPS)");
    Table ga("Fig 18a: speedup over cuDNN on stride>1 layers");
    ga.setHeader({"layer (model.name WI,CI,CO,WF,s)", "cuDNN TFLOPS",
                  "ours TFLOPS", "speedup"});
    gpusim::GpuRunOptions ours;
    ours.algorithm = gpusim::GpuAlgorithm::ImplicitChannelFirst;
    std::vector<double> speedups;
    for (const auto &layer : models::stridedLayers(batch)) {
        const double c = cudnn.convTflops(layer.params);
        const double o = sim.runConv(layer.params, ours).tflops;
        speedups.push_back(o / c);
        const auto &p = layer.params;
        ga.addRow({cell("%s %lld,%lld,%lld,%lld,%lld",
                        layer.name.c_str(), (long long)p.inW,
                        (long long)p.inChannels, (long long)p.outChannels,
                        (long long)p.kernelW, (long long)p.strideW),
                   cell("%.1f", c), cell("%.1f", o),
                   cell("%.2fx", o / c)});
    }
    ga.print();
    const double avg = geoMean(speedups);
    double best = 0.0;
    for (double s : speedups)
        best = std::max(best, s);
    bench::summaryLine("Fig-18a", "avg speedup (paper 1.20)", 1.20, avg);
    bench::summaryLine("Fig-18a", "max speedup (paper 1.40)", 1.40,
                       best);

    // ---- (b) inter-tile reuse ----
    bench::experimentHeader(
        "Fig 18b",
        "Inter-tile reuse: reordered vs naive tile order on layers "
        "with exposed global-memory traffic");
    Table gb("Fig 18b: inter-tile reuse improvement");
    gb.setHeader({"layer (WI,CI,CO,WF)", "naive (us)", "reuse (us)",
                  "improvement"});
    gpusim::GpuRunOptions naive = ours, reuse = ours;
    naive.interTileReuse = false;
    reuse.interTileReuse = true;
    std::vector<double> gains;
    for (const auto &layer : models::stridedLayers(batch)) {
        const auto base = sim.runConv(layer.params, naive);
        if (!base.memoryBound)
            continue; // the paper selects memory-exposed layers
        const auto opt = sim.runConv(layer.params, reuse);
        gains.push_back(base.seconds / opt.seconds);
        const auto &p = layer.params;
        gb.addRow({cell("%lld,%lld,%lld,%lld", (long long)p.inW,
                        (long long)p.inChannels,
                        (long long)p.outChannels, (long long)p.kernelW),
                   cell("%.1f", base.seconds * 1e6),
                   cell("%.1f", opt.seconds * 1e6),
                   cell("%.1f%%",
                        100.0 * (base.seconds / opt.seconds - 1.0))});
    }
    // Also include the large strided early layers of YOLO/VGG-like
    // shapes where fills dominate.
    for (const auto hw : {112L, 56L}) {
        const auto p = tensor::makeConv(batch, 32, hw, 64, 3, 2, 1);
        const auto base = sim.runConv(p, naive);
        const auto opt = sim.runConv(p, reuse);
        gains.push_back(base.seconds / opt.seconds);
        gb.addRow({cell("%lld,32,64,3", (long long)hw),
                   cell("%.1f", base.seconds * 1e6),
                   cell("%.1f", opt.seconds * 1e6),
                   cell("%.1f%%",
                        100.0 * (base.seconds / opt.seconds - 1.0))});
    }
    gb.print();
    bench::summaryLine("Fig-18b", "avg improvement (paper 1.167)",
                       1.167, geoMean(gains));
    bench::printWallClock("bench_fig18_gpu_opts", wall);
    return 0;
}
