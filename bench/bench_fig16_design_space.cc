/**
 * @file
 * Fig 16 reproduction: hardware design-space exploration with TPUSim.
 *  (a) Systolic array size 32..512 running VGG: peak FLOPS rises while
 *      utilization falls; halving of utilization from 128 to 256
 *      corroborates TPU-v2's choice of 128.
 *  (b) Vector-memory word size 1..32 at fixed 256 KB capacity: SRAM
 *      area (OpenRAM/CACTI stand-in) vs bandwidth idle ratio; word 8
 *      is near the area minimum but leaves the port mostly idle,
 *      explaining TPU-v3's second systolic array.
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/table.h"
#include "models/model_zoo.h"
#include "sram/sram_area_model.h"
#include "tpusim/tpu_sim.h"

using namespace cfconv;

namespace {

/** Run all VGG16 layers on @p config; return {tflops, utilization,
 *  port utilization}. */
struct VggRun
{
    double tflops;
    double utilization;
    double portUtil;
};

VggRun
runVgg(const tpusim::TpuConfig &config, Index batch)
{
    tpusim::TpuSim sim(config);
    double seconds = 0.0;
    Flops flops = 0;
    double util_weighted = 0.0;
    double port_weighted = 0.0;
    for (const auto &layer : models::vgg16(batch).layers) {
        const auto r = sim.runConv(layer.params);
        const double n = static_cast<double>(layer.count);
        seconds += n * r.seconds;
        flops += layer.params.flops() * static_cast<Flops>(layer.count);
        util_weighted += n * r.seconds * r.arrayUtilization;
        port_weighted += n * r.seconds * r.portUtilization;
    }
    return {static_cast<double>(flops) / seconds / 1e12,
            util_weighted / seconds, port_weighted / seconds};
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseBenchArgs(argc, argv, /*supports_json=*/false);
    const bench::WallTimer wall;
    const Index batch = 8;

    // ---- (a) array size ----
    bench::experimentHeader(
        "Fig 16a", "Systolic array size exploration on VGG16");
    Table ga("Fig 16a: performance and utilization vs array size");
    ga.setHeader({"array", "TFLOPS", "utilization"});
    double util128 = 0.0, util256 = 0.0;
    const std::vector<Index> sizes = {32, 64, 128, 256, 512};
    std::vector<VggRun> size_runs(sizes.size());
    // Each grid point owns one result slot; rows print serially after
    // the sweep so output order is stable.
    parallel::parallelFor(
        0, static_cast<Index>(sizes.size()), 1,
        [&](Index lo, Index hi) {
            for (Index i = lo; i < hi; ++i) {
                tpusim::TpuConfig cfg = tpusim::TpuConfig::tpuV2();
                cfg.array.rows = cfg.array.cols = sizes[i];
                cfg.vectorMemories = sizes[i];
                // Keep total on-chip capacity constant (32 MB split
                // over the per-row memories).
                size_runs[i] = runVgg(cfg, batch);
            }
        });
    for (size_t i = 0; i < sizes.size(); ++i) {
        const Index size = sizes[i];
        const VggRun &r = size_runs[i];
        if (size == 128)
            util128 = r.utilization;
        if (size == 256)
            util256 = r.utilization;
        ga.addRow({cell("%lldx%lld", (long long)size, (long long)size),
                   cell("%.1f", r.tflops),
                   cell("%.0f%%", 100.0 * r.utilization)});
    }
    ga.print();
    bench::summaryLine("Fig-16a", "util(256)/util(128)", 0.5,
                       util256 / util128);

    // ---- (b) word size ----
    bench::experimentHeader(
        "Fig 16b",
        "Vector-memory word size: SRAM area vs bandwidth idle ratio "
        "(256 KB arrays, VGG16 inference)");
    Table gb("Fig 16b: word size design space");
    gb.setHeader({"word (elems)", "area (mm^2)", "rel. area",
                  "port idle ratio"});
    sram::SramAreaModel area;
    const Bytes cap = 256 * 1024;
    const std::vector<Index> words = {1, 2, 4, 8, 16, 32};
    std::vector<VggRun> word_runs(words.size());
    parallel::parallelFor(
        0, static_cast<Index>(words.size()), 1,
        [&](Index lo, Index hi) {
            for (Index i = lo; i < hi; ++i) {
                tpusim::TpuConfig cfg = tpusim::TpuConfig::tpuV2();
                cfg.wordElems = words[i];
                word_runs[i] = runVgg(cfg, batch);
            }
        });
    for (size_t i = 0; i < words.size(); ++i) {
        const Index word = words[i];
        const VggRun &r = word_runs[i];
        gb.addRow({cell("%lld", (long long)word),
                   cell("%.2f", area.areaMm2(cap, word)),
                   cell("%.2fx", area.relativeArea(cap, word)),
                   cell("%.0f%%", 100.0 * (1.0 - r.portUtil))});
        if (word == 8) {
            bench::summaryLine("Fig-16b", "word-8 port idle ratio",
                               0.5, 1.0 - r.portUtil);
            bench::summaryLine("Fig-16b", "area(1)/area(8)", 3.2,
                               area.areaMm2(cap, 1) /
                                   area.areaMm2(cap, 8));
        }
    }
    gb.print();

    // ---- (b, follow-on) the TPU-v3 move ----
    bench::experimentHeader(
        "Fig 16b follow-on",
        "Spending the idle word-8 port bandwidth on a second systolic "
        "array (the TPU-v3 design move the paper infers)");
    Table gc("Second MXU speedup vs word size (VGG16, batch 8)");
    gc.setHeader({"word (elems)", "1 MXU (ms)", "2 MXUs (ms)",
                  "speedup"});
    const std::vector<Index> mxu_words = {1, 2, 8};
    std::vector<double> one_ms(mxu_words.size()),
        two_ms(mxu_words.size());
    parallel::parallelFor(
        0, static_cast<Index>(mxu_words.size()), 1,
        [&](Index lo, Index hi) {
            for (Index i = lo; i < hi; ++i) {
                tpusim::TpuConfig one = tpusim::TpuConfig::tpuV2();
                one.wordElems = mxu_words[i];
                tpusim::TpuConfig two = one;
                two.mxus = 2;
                const double total_flops = static_cast<double>(
                    models::vgg16(batch).totalFlops());
                one_ms[i] =
                    total_flops / runVgg(one, batch).tflops / 1e9;
                two_ms[i] =
                    total_flops / runVgg(two, batch).tflops / 1e9;
            }
        });
    for (size_t i = 0; i < mxu_words.size(); ++i) {
        const Index word = mxu_words[i];
        const double s1 = one_ms[i], s2 = two_ms[i];
        gc.addRow({cell("%lld", (long long)word), cell("%.2f", s1),
                   cell("%.2f", s2), cell("%.2fx", s1 / s2)});
        if (word == 8)
            bench::summaryLine("Fig-16b-followon",
                               "2nd MXU speedup at word 8", 2.0,
                               s1 / s2);
    }
    gc.print();
    bench::printWallClock("bench_fig16_design_space", wall);
    return 0;
}
