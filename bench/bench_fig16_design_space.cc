/**
 * @file
 * Fig 16 reproduction: hardware design-space exploration with TPUSim.
 *  (a) Systolic array size 32..512 running VGG: peak FLOPS rises while
 *      utilization falls; halving of utilization from 128 to 256
 *      corroborates TPU-v2's choice of 128.
 *  (b) Vector-memory word size 1..32 at fixed 256 KB capacity: SRAM
 *      area (OpenRAM/CACTI stand-in) vs bandwidth idle ratio; word 8
 *      is near the area minimum but leaves the port mostly idle,
 *      explaining TPU-v3's second systolic array.
 *
 * Every design point is a *named variant* from the tune registry
 * ("tpu-v2-256x256", "tpu-v2-word4", ...), so each swept baseline is
 * reproducible by name anywhere the factory is accepted (benches,
 * chaos failover specs, the autotuner). `json=FILE` additionally dumps
 * the per-variant VGG16 RunRecords.
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/table.h"
#include "models/model_zoo.h"
#include "sim/model_runner.h"
#include "sim/report.h"
#include "sram/sram_area_model.h"

using namespace cfconv;

namespace {

/** Run all VGG16 layers on the named variant; return {tflops,
 *  time-weighted utilization, time-weighted port utilization} plus
 *  the full record for the optional JSON report. */
struct VggRun
{
    double tflops;
    double utilization;
    double portUtil;
    sim::RunRecord record;
};

VggRun
runVgg(const std::string &variant, Index batch)
{
    const auto accelerator = sim::makeAccelerator(variant);
    const sim::RunRecord record =
        sim::ModelRunner(*accelerator).runModel(models::vgg16(batch));
    double util_weighted = 0.0;
    double port_weighted = 0.0;
    for (const auto &layer : record.layers) {
        const double s =
            static_cast<double>(layer.count) * layer.seconds;
        util_weighted += s * layer.utilization;
        port_weighted += s * layer.extras.at("portUtilization");
    }
    return {record.tflops, util_weighted / record.seconds,
            port_weighted / record.seconds, record};
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    const bench::WallTimer wall;
    const Index batch = 8;
    std::vector<sim::RunRecord> records;

    // ---- (a) array size ----
    bench::experimentHeader(
        "Fig 16a", "Systolic array size exploration on VGG16");
    Table ga("Fig 16a: performance and utilization vs array size");
    ga.setHeader({"array", "TFLOPS", "utilization"});
    double util128 = 0.0, util256 = 0.0;
    const std::vector<Index> sizes = {32, 64, 128, 256, 512};
    const std::vector<std::string> size_variants = {
        "tpu-v2-32x32", "tpu-v2-64x64", "tpu-v2", "tpu-v2-256x256",
        "tpu-v2-512x512"};
    std::vector<VggRun> size_runs(sizes.size());
    // Each grid point owns one result slot; rows print serially after
    // the sweep so output order is stable.
    parallel::parallelFor(
        0, static_cast<Index>(sizes.size()), 1,
        [&](Index lo, Index hi) {
            for (Index i = lo; i < hi; ++i)
                size_runs[i] = runVgg(size_variants[i], batch);
        });
    for (size_t i = 0; i < sizes.size(); ++i) {
        const Index size = sizes[i];
        const VggRun &r = size_runs[i];
        if (size == 128)
            util128 = r.utilization;
        if (size == 256)
            util256 = r.utilization;
        ga.addRow({cell("%lldx%lld", (long long)size, (long long)size),
                   cell("%.1f", r.tflops),
                   cell("%.0f%%", 100.0 * r.utilization)});
        records.push_back(r.record);
    }
    ga.print();
    bench::summaryLine("Fig-16a", "util(256)/util(128)", 0.5,
                       util256 / util128);

    // ---- (b) word size ----
    bench::experimentHeader(
        "Fig 16b",
        "Vector-memory word size: SRAM area vs bandwidth idle ratio "
        "(256 KB arrays, VGG16 inference)");
    Table gb("Fig 16b: word size design space");
    gb.setHeader({"word (elems)", "area (mm^2)", "rel. area",
                  "port idle ratio"});
    sram::SramAreaModel area;
    const Bytes cap = 256 * 1024;
    const std::vector<Index> words = {1, 2, 4, 8, 16, 32};
    const std::vector<std::string> word_variants = {
        "tpu-v2-word1", "tpu-v2-word2", "tpu-v2-word4", "tpu-v2",
        "tpu-v2-word16", "tpu-v2-word32"};
    std::vector<VggRun> word_runs(words.size());
    parallel::parallelFor(
        0, static_cast<Index>(words.size()), 1,
        [&](Index lo, Index hi) {
            for (Index i = lo; i < hi; ++i)
                word_runs[i] = runVgg(word_variants[i], batch);
        });
    for (size_t i = 0; i < words.size(); ++i) {
        const Index word = words[i];
        const VggRun &r = word_runs[i];
        gb.addRow({cell("%lld", (long long)word),
                   cell("%.2f", area.areaMm2(cap, word)),
                   cell("%.2fx", area.relativeArea(cap, word)),
                   cell("%.0f%%", 100.0 * (1.0 - r.portUtil))});
        if (word == 8) {
            bench::summaryLine("Fig-16b", "word-8 port idle ratio",
                               0.5, 1.0 - r.portUtil);
            bench::summaryLine("Fig-16b", "area(1)/area(8)", 3.2,
                               area.areaMm2(cap, 1) /
                                   area.areaMm2(cap, 8));
        }
        if (word != 8) // the word-8 point is already in via Fig 16a
            records.push_back(r.record);
    }
    gb.print();

    // ---- (b, follow-on) the TPU-v3 move ----
    bench::experimentHeader(
        "Fig 16b follow-on",
        "Spending the idle word-8 port bandwidth on a second systolic "
        "array (the TPU-v3 design move the paper infers)");
    Table gc("Second MXU speedup vs word size (VGG16, batch 8)");
    gc.setHeader({"word (elems)", "1 MXU (ms)", "2 MXUs (ms)",
                  "speedup"});
    const std::vector<Index> mxu_words = {1, 2, 8};
    const std::vector<std::string> one_variants = {
        "tpu-v2-word1", "tpu-v2-word2", "tpu-v2"};
    const std::vector<std::string> two_variants = {
        "tpu-v2-word1-2mxu", "tpu-v2-word2-2mxu", "tpu-v2-2mxu"};
    std::vector<double> one_ms(mxu_words.size()),
        two_ms(mxu_words.size());
    std::vector<sim::RunRecord> two_records(mxu_words.size());
    parallel::parallelFor(
        0, static_cast<Index>(mxu_words.size()), 1,
        [&](Index lo, Index hi) {
            for (Index i = lo; i < hi; ++i) {
                const double total_flops = static_cast<double>(
                    models::vgg16(batch).totalFlops());
                one_ms[i] =
                    total_flops / runVgg(one_variants[i], batch).tflops
                    / 1e9;
                const VggRun two = runVgg(two_variants[i], batch);
                two_ms[i] = total_flops / two.tflops / 1e9;
                two_records[i] = two.record;
            }
        });
    for (size_t i = 0; i < mxu_words.size(); ++i) {
        const Index word = mxu_words[i];
        const double s1 = one_ms[i], s2 = two_ms[i];
        gc.addRow({cell("%lld", (long long)word), cell("%.2f", s1),
                   cell("%.2f", s2), cell("%.2fx", s1 / s2)});
        if (word == 8)
            bench::summaryLine("Fig-16b-followon",
                               "2nd MXU speedup at word 8", 2.0,
                               s1 / s2);
        records.push_back(two_records[i]);
    }
    gc.print();
    if (!args.jsonPath.empty()
        && sim::writeRunRecords(args.jsonPath, records))
        std::printf("wrote %s (%zu records)\n", args.jsonPath.c_str(),
                    records.size());
    bench::printWallClock("bench_fig16_design_space", wall);
    return 0;
}
